// Semantic ranking: the paper's Figure 3 / ObjectRank scenario.
//
// ObjectRank (Balmin et al., VLDB 2004) ranks typed objects — papers,
// authors, venues — over a graph whose edges carry authority-transfer
// weights chosen by a domain expert. When the expert only cares about a
// region of the data graph (say, the database community), the paper's
// framework applies unchanged: collapse everything else into Λ and run
// the weighted walk on the subgraph.
//
// This example builds a miniature DBLP-style data graph with weighted
// authority-transfer edges, designates the "database community" objects
// as the subgraph, and compares weighted ApproxRank against the weighted
// global walk and the weighted IdealRank.
//
//	go run ./examples/semantic-rank
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	approxrank "repro"
)

// Authority-transfer weights, following ObjectRank's schema-graph idea:
// papers endorse the papers they cite strongly, their authors moderately;
// authors endorse their papers; venues endorse the papers they publish.
const (
	wCites    = 0.7
	wAuthored = 0.2
	wWrites   = 0.8
	wPublish  = 0.3
)

type object struct {
	name string
	kind string // "paper", "author", "venue"
	comm int    // 0 = database community (local), 1 = elsewhere (external)
}

func main() {
	rng := rand.New(rand.NewSource(11))

	// Build a two-community bibliographic world: community 0 (databases)
	// is the region the expert wants ranked; community 1 (systems) is the
	// outside world whose detailed scores we pretend not to know.
	var objs []object
	addObjs := func(comm int, prefix string, papers, authors, venues int) {
		for i := 0; i < venues; i++ {
			objs = append(objs, object{fmt.Sprintf("%s-venue-%d", prefix, i), "venue", comm})
		}
		for i := 0; i < authors; i++ {
			objs = append(objs, object{fmt.Sprintf("%s-author-%d", prefix, i), "author", comm})
		}
		for i := 0; i < papers; i++ {
			objs = append(objs, object{fmt.Sprintf("%s-paper-%d", prefix, i), "paper", comm})
		}
	}
	addObjs(0, "db", 60, 25, 3)
	addObjs(1, "sys", 120, 50, 5)

	byKind := func(comm int, kind string) []int {
		var out []int
		for i, o := range objs {
			if o.comm == comm && o.kind == kind {
				out = append(out, i)
			}
		}
		return out
	}

	b := approxrank.NewBuilder(len(objs))
	link := func(u, v int, w float64) {
		b.AddWeightedEdge(approxrank.NodeID(u), approxrank.NodeID(v), w)
	}
	for comm := 0; comm <= 1; comm++ {
		papers := byKind(comm, "paper")
		authors := byKind(comm, "author")
		venues := byKind(comm, "venue")
		// Citations: mostly within the community, some across.
		other := papers
		if comm == 0 {
			other = byKind(1, "paper")
		} else {
			other = byKind(0, "paper")
		}
		for _, p := range papers {
			nCites := 1 + rng.Intn(4)
			for c := 0; c < nCites; c++ {
				pool := papers
				if rng.Float64() < 0.2 {
					pool = other // cross-community citation
				}
				q := pool[rng.Intn(len(pool))]
				if q != p {
					link(p, q, wCites)
				}
			}
			// Authorship both ways.
			nAuth := 1 + rng.Intn(3)
			for a := 0; a < nAuth; a++ {
				auth := authors[rng.Intn(len(authors))]
				link(p, auth, wAuthored)
				link(auth, p, wWrites)
			}
			// Venue publishes paper.
			link(venues[rng.Intn(len(venues))], p, wPublish)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// The expert's subgraph: every database-community object.
	var local []approxrank.NodeID
	for i, o := range objs {
		if o.comm == 0 {
			local = append(local, approxrank.NodeID(i))
		}
	}
	sub, err := approxrank.NewSubgraph(g, local)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data graph: %d objects, %d weighted links; subgraph: %d objects\n\n",
		g.NumNodes(), g.NumEdges(), sub.N())

	// Global weighted walk (what a full ObjectRank run would cost).
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	// Weighted ApproxRank on the community only.
	ap, err := approxrank.ApproxRank(sub, approxrank.Config{Tolerance: 1e-10})
	if err != nil {
		log.Fatal(err)
	}
	// Weighted IdealRank (Theorem 1 holds for weighted walks too).
	ideal, err := approxrank.IdealRank(sub, global.Scores, approxrank.Config{Tolerance: 1e-10})
	if err != nil {
		log.Fatal(err)
	}

	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = global.Scores[gid]
	}
	approxrank.Normalize(truth)
	est := append([]float64(nil), ap.Scores...)
	approxrank.Normalize(est)
	l1 := must(approxrank.L1(truth, est))
	fr := must(approxrank.Footrule(truth, est))
	idealEst := append([]float64(nil), ideal.Scores...)
	approxrank.Normalize(idealEst)
	idealL1 := must(approxrank.L1(truth, idealEst))

	fmt.Printf("weighted ApproxRank vs global ObjectRank: L1 = %.5f, footrule = %.5f\n", l1, fr)
	fmt.Printf("weighted IdealRank  vs global ObjectRank: L1 = %.2g (exact, Theorem 1)\n\n", idealL1)

	fmt.Println("top-8 database-community objects (global vs ApproxRank):")
	gi := topIndices(truth, 8)
	ai := topIndices(ap.Scores, 8)
	for k := 0; k < 8; k++ {
		fmt.Printf("  %2d. %-16s | %-16s\n", k+1,
			objs[sub.Local[gi[k]]].name, objs[sub.Local[ai[k]]].name)
	}
}

func topIndices(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] > scores[idx[b]] {
			return true
		}
		if scores[idx[a]] < scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// must unwraps a metric result; the example builds equal-length rankings,
// so a comparison error is a bug worth dying on.
func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
