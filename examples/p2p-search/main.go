// P2P web search: the paper's decentralized-ranking scenario.
//
// Each peer of a P2P search network stores its own subgraph of the Web
// and must rank local query answers by global importance. This example
// sets up a JXP-style network (Parreira et al., VLDB 2006 — the paper's
// reference [16]): every peer starts from the ApproxRank estimate
// (uniform assumption about the outside world) and then meets random
// other peers, exchanging score estimates. Watch the worst-peer error
// fall round by round toward the IdealRank/global fixpoint; compare with
// ServerRank (Wang & DeWitt, VLDB 2004), the one-shot server-level
// combination.
//
//	go run ./examples/p2p-search
package main

import (
	"fmt"
	"log"

	approxrank "repro"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

func main() {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{
		Pages:   30000,
		Domains: 10,
		Seed:    21,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web: %d pages, %d links across %d domains\n",
		web.Graph.NumNodes(), web.Graph.NumEdges(), web.NumDomains())

	// Ground truth for measuring convergence (no peer ever computes it).
	truth, err := pagerank.Compute(web.Graph, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		log.Fatal(err)
	}

	// One peer per domain: a disjoint cover of the web.
	assignments := map[string][]graph.NodeID{}
	for d := 0; d < web.NumDomains(); d++ {
		assignments[web.DomainNames[d]] = web.DomainPages(d)
	}
	nw, err := distributed.NewNetwork(web.Graph, assignments, approxrank.Config{Tolerance: 1e-9}, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nJXP meeting rounds (worst peer's L1 error vs true PageRank):")
	e0, err := nw.MaxError(truth.Scores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  round 0 (pure ApproxRank, nobody has met): %.6f\n", e0)
	for round := 1; round <= 6; round++ {
		if _, err := nw.Round(); err != nil {
			log.Fatal(err)
		}
		e, err := nw.MaxError(truth.Scores)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  round %d: %.6f\n", round, e)
	}
	known := 0
	for _, p := range nw.Peers {
		known += p.KnownExternal()
	}
	fmt.Printf("  (peers now hold %d learned external scores in total)\n", known)

	// ServerRank for contrast: one global exchange of aggregate statistics
	// instead of iterative gossip.
	sr, err := distributed.ServerRank(web.Graph,
		func(p graph.NodeID) int { return int(web.Domain[p]) },
		web.NumDomains(), distributed.ServerRankConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := approxrank.Footrule(truth.Scores, sr.Scores)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nServerRank (one-shot combination): footrule vs truth over all pages = %.5f\n", fr)
	fmt.Println("JXP keeps improving with more meetings; ServerRank is cheap but static.")
}
