// Focused crawler: the paper's Figure 1 scenario.
//
// A crawler fetches a fragment of the web starting from a seed page; users
// query that fragment and expect ranking that reflects the *global* link
// structure, not just the crawled pages. This example generates a
// synthetic web of 60k pages, crawls 3% of it breadth-first, and compares
// three rankings of the crawled subgraph against the global truth:
// ApproxRank, local PageRank, and LPR2. It then prints the top-10 pages
// under each ranking so the ordering differences are visible.
//
//	go run ./examples/focused-crawler
package main

import (
	"fmt"
	"log"
	"sort"

	approxrank "repro"
)

func main() {
	// A synthetic global web the crawler will explore.
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{
		Pages:   60000,
		Domains: 20,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	g := web.Graph
	fmt.Printf("global web: %d pages, %d links\n", g.NumNodes(), g.NumEdges())

	// Crawl 3% of the web breadth-first from a well-linked seed.
	seed := approxrank.NodeID(0)
	for p := 0; p < g.NumNodes(); p++ {
		if g.OutDegree(approxrank.NodeID(p)) > g.OutDegree(seed) {
			seed = approxrank.NodeID(p)
		}
	}
	crawled, err := approxrank.BFSCrawl(g, seed, g.NumNodes()*3/100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crawled %d pages starting from page %d\n\n", len(crawled), seed)

	sub, err := approxrank.NewSubgraph(g, crawled)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth for evaluation only: the focused crawler itself never
	// needs this — that is the point of ApproxRank.
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = global.Scores[gid]
	}
	approxrank.Normalize(truth)

	type ranking struct {
		name   string
		scores []float64
	}
	var rankings []ranking

	ap, err := approxrank.ApproxRank(sub, approxrank.Config{})
	if err != nil {
		log.Fatal(err)
	}
	rankings = append(rankings, ranking{"ApproxRank", ap.Scores})

	lp, err := approxrank.LocalPageRank(sub, approxrank.BaselineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rankings = append(rankings, ranking{"local PageRank", lp.Scores})

	l2, err := approxrank.LPR2(sub, approxrank.BaselineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rankings = append(rankings, ranking{"LPR2", l2.Scores})

	fmt.Println("ranking quality against global truth (lower is better):")
	for _, r := range rankings {
		est := append([]float64(nil), r.scores...)
		approxrank.Normalize(est)
		l1 := must(approxrank.L1(truth, est))
		fr := must(approxrank.Footrule(truth, est))
		top := must(approxrank.TopKOverlap(truth, est, 10))
		fmt.Printf("  %-15s L1 = %.5f  footrule = %.5f  top-10 overlap = %.0f%%\n",
			r.name, l1, fr, 100*top)
	}

	// Show the top-10 crawled pages under the true and estimated rankings.
	fmt.Println("\ntop-10 crawled pages:")
	fmt.Printf("  %-12s %-12s %-12s\n", "truth", "ApproxRank", "localPR")
	ti := topIndices(truth, 10)
	ai := topIndices(rankings[0].scores, 10)
	li := topIndices(rankings[1].scores, 10)
	for k := 0; k < 10; k++ {
		fmt.Printf("  page %-7d page %-7d page %-7d\n",
			sub.Local[ti[k]], sub.Local[ai[k]], sub.Local[li[k]])
	}
}

func topIndices(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] > scores[idx[b]] {
			return true
		}
		if scores[idx[a]] < scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// must unwraps a metric result; the example builds equal-length rankings,
// so a comparison error is a bug worth dying on.
func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
