// Localized search engine: the complete Figure 1 loop.
//
// A localized search engine indexes one domain of the web and serves
// keyword queries over it, but its users expect result ordering that
// reflects the whole web's link structure. This example wires the full
// pipeline: generate a synthetic web with per-page terms, designate one
// domain as the engine's corpus, rank it with ApproxRank (global
// out-degrees, Λ boundary — no access to external pages' scores), build
// an inverted index, and answer queries. For contrast the same queries
// are answered under local-PageRank ordering, and both are judged against
// the ordering induced by the true global PageRank.
//
//	go run ./examples/localized-search
package main

import (
	"fmt"
	"log"
	"sort"

	approxrank "repro"
	"repro/internal/gen"
	"repro/internal/search"
)

func main() {
	ds, err := gen.Generate(gen.Config{Pages: 60000, Domains: 14, Topics: 10, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	terms, err := gen.AssignTerms(ds, gen.TermConfig{Seed: 18})
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph

	// The engine's corpus: the smallest domain — the regime where local
	// ordering depends most on the outside world (paper Table IV, top
	// rows).
	domain := 0
	for d := 1; d < ds.NumDomains(); d++ {
		if ds.DomainSize(d) < ds.DomainSize(domain) {
			domain = d
		}
	}
	corpus := ds.DomainPages(domain)
	sub, err := approxrank.NewSubgraph(g, corpus)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("web: %d pages; corpus: domain %d with %d pages\n\n",
		g.NumNodes(), domain, sub.N())

	// Rank the corpus three ways.
	ap, err := approxrank.ApproxRank(sub, approxrank.Config{})
	if err != nil {
		log.Fatal(err)
	}
	lp, err := approxrank.LocalPageRank(sub, approxrank.BaselineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	truthGlobal, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = truthGlobal.Scores[gid]
	}

	// Build one engine per ranking (they share the index construction).
	localTerms := make([][]uint32, sub.N())
	for li, gid := range sub.Local {
		localTerms[li] = terms[gid]
	}
	engines := map[string]*search.Engine{}
	for name, scores := range map[string][]float64{
		"ApproxRank": ap.Scores,
		"localPR":    lp.Scores,
		"truth":      truth,
	} {
		eng, err := search.NewEngine(sub, localTerms, scores)
		if err != nil {
			log.Fatal(err)
		}
		engines[name] = eng
	}

	// Query workload: the three most common terms in the corpus plus a
	// two-term conjunction.
	counts := map[uint32]int{}
	for _, bag := range localTerms {
		for _, t := range bag {
			counts[t]++
		}
	}
	type tc struct {
		t uint32
		c int
	}
	var ranked []tc
	for t, c := range counts {
		ranked = append(ranked, tc{t, c})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].c != ranked[b].c {
			return ranked[a].c > ranked[b].c
		}
		return ranked[a].t < ranked[b].t
	})
	queries := [][]uint32{
		{ranked[0].t},
		{ranked[1].t},
		{ranked[2].t},
		{ranked[0].t, ranked[1].t},
	}

	// Corpus-wide ordering quality first (what every query inherits).
	apFr := must(approxrank.Footrule(truth, ap.Scores))
	lpFr := must(approxrank.Footrule(truth, lp.Scores))
	fmt.Printf("corpus ordering vs global truth (footrule, lower is better):\n")
	fmt.Printf("  ApproxRank %.4f   localPR %.4f\n\n", apFr, lpFr)

	const k = 10
	fmt.Printf("query results (top-%d): agreement with the true-global ordering\n", k)
	for _, q := range queries {
		truthHits, err := engines["truth"].TopK(q, k)
		if err != nil {
			log.Fatal(err)
		}
		want := map[approxrank.NodeID]bool{}
		for _, h := range truthHits {
			want[h.Page] = true
		}
		agree := func(name string) float64 {
			hits, err := engines[name].TopK(q, k)
			if err != nil {
				log.Fatal(err)
			}
			hit := 0
			for _, h := range hits {
				if want[h.Page] {
					hit++
				}
			}
			return float64(hit) / float64(len(truthHits))
		}
		fmt.Printf("  query %v (%d matches): ApproxRank %.0f%%, localPR %.0f%%\n",
			q, engines["truth"].MatchCount(q), 100*agree("ApproxRank"), 100*agree("localPR"))
	}

	// Show one result list.
	q := queries[0]
	fmt.Printf("\ntop-5 for query %v under ApproxRank ordering:\n", q)
	hits, err := engines["ApproxRank"].TopK(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	for i, h := range hits {
		fmt.Printf("  %d. page %-7d score %.3g\n", i+1, h.Page, h.Score)
	}
}

// must unwraps a metric result; the example builds equal-length rankings,
// so a comparison error is a bug worth dying on.
func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
