// Incremental re-ranking: the paper's "updated subgraph" scenario.
//
// The web changes constantly, but updates often concentrate in one region
// while the rest of the graph — and its PageRank scores — stay put. The
// paper's IdealRank handles exactly this: keep the stale scores for the
// unchanged external pages, collapse them into Λ, and re-rank only the
// updated region on an (n+1)-state chain instead of re-running PageRank
// over all N pages.
//
// This example generates a 50k-page web, computes its PageRank, rewires a
// third of the links inside one domain, and compares three ways of
// scoring the updated domain: (a) the stale scores (do nothing),
// (b) IdealRank with the old external scores, and (c) an exact global
// recomputation. IdealRank gets within a whisker of (c) at a fraction of
// the cost.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	approxrank "repro"
)

func main() {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{
		Pages:   50000,
		Domains: 16,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	oldGraph := web.Graph

	// The region that will change: one mid-sized domain.
	domain := 5
	region := web.DomainPages(domain)
	member := map[approxrank.NodeID]bool{}
	for _, p := range region {
		member[p] = true
	}
	fmt.Printf("web: %d pages; updated region: domain %d with %d pages\n",
		oldGraph.NumNodes(), domain, len(region))

	// Yesterday's scores.
	oldPR, err := approxrank.GlobalPageRank(oldGraph, approxrank.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// Today: a third of the region's internal links are rewired.
	rng := rand.New(rand.NewSource(99))
	nb := approxrank.NewBuilder(oldGraph.NumNodes())
	rewired := 0
	for u := 0; u < oldGraph.NumNodes(); u++ {
		uid := approxrank.NodeID(u)
		for _, v := range oldGraph.OutNeighbors(uid) {
			if member[uid] && member[v] && rng.Float64() < 0.33 {
				// Replace this internal link with a different internal target.
				w := region[rng.Intn(len(region))]
				if w != uid {
					nb.AddEdge(uid, w)
					rewired++
					continue
				}
			}
			nb.AddEdge(uid, v)
		}
	}
	newGraph, err := nb.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewired %d links inside the region; external link structure unchanged\n\n", rewired)

	sub, err := approxrank.NewSubgraph(newGraph, region)
	if err != nil {
		log.Fatal(err)
	}

	// (c) Ground truth: full recomputation on the new graph.
	t0 := time.Now()
	newPR, err := approxrank.GlobalPageRank(newGraph, approxrank.PageRankOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fullCost := time.Since(t0)
	truth := restrict(newPR.Scores, sub)

	// (a) Do nothing: keep yesterday's scores for the region.
	stale := restrict(oldPR.Scores, sub)

	// (b) IdealRank on the new subgraph with yesterday's external scores.
	t0 = time.Now()
	ir, err := approxrank.IdealRank(sub, oldPR.Scores, approxrank.Config{})
	if err != nil {
		log.Fatal(err)
	}
	incCost := time.Since(t0)
	incremental := append([]float64(nil), ir.Scores...)
	approxrank.Normalize(incremental)

	report := func(name string, est []float64, cost time.Duration) {
		l1 := must(approxrank.L1(truth, est))
		fr := must(approxrank.Footrule(truth, est))
		costStr := "free"
		if cost > 0 {
			costStr = cost.Round(time.Microsecond).String()
		}
		fmt.Printf("  %-28s L1 = %.6f  footrule = %.6f  cost = %s\n", name, l1, fr, costStr)
	}
	fmt.Println("scoring the updated region against the exact recomputation:")
	report("stale scores (do nothing)", stale, 0)
	report("IdealRank, stale externals", incremental, incCost)
	report("full global recomputation", truth, fullCost)
	fmt.Printf("\nIdealRank re-ranked %d pages instead of %d (%.1fx cheaper here, and the\n"+
		"gap widens with graph size since its cost does not depend on N).\n",
		sub.N(), newGraph.NumNodes(), float64(fullCost)/float64(incCost))
}

// restrict extracts and normalizes the region's scores from a global
// vector.
func restrict(global []float64, sub *approxrank.Subgraph) []float64 {
	out := make([]float64, sub.N())
	for li, gid := range sub.Local {
		out[li] = global[gid]
	}
	approxrank.Normalize(out)
	return out
}

// must unwraps a metric result; the example builds equal-length rankings,
// so a comparison error is a bug worth dying on.
func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
