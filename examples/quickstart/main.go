// Quickstart: rank the paper's worked example (Figures 4–6).
//
// The global graph has four local pages A,B,C,D and three external pages
// X,Y,Z. We compute the true global PageRank, then estimate the local
// pages' scores three ways — ApproxRank (no knowledge of external scores),
// IdealRank (external scores known; exact by Theorem 1), and local
// PageRank (ignore the outside world) — and print them side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	approxrank "repro"
)

func main() {
	const (
		A = iota
		B
		C
		D
		X
		Y
		Z
	)
	names := []string{"A", "B", "C", "D", "X", "Y", "Z"}

	// The paper's Figure 4 global graph.
	g := approxrank.MustFromEdges(7, [][2]approxrank.NodeID{
		{A, B}, {A, C}, {A, X}, {A, Z},
		{B, D},
		{C, B}, {C, D},
		{D, A},
		{X, C}, {X, Y}, {X, Z},
		{Y, C}, {Y, X},
		{Z, C}, {Z, D},
	})

	// The subgraph of interest: the local pages A–D.
	sub, err := approxrank.NewSubgraph(g, []approxrank.NodeID{A, B, C, D})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: global PageRank over all 7 pages.
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	if err != nil {
		log.Fatal(err)
	}

	// ApproxRank: estimates using only the subgraph and its boundary.
	ap, err := approxrank.ApproxRank(sub, approxrank.Config{Tolerance: 1e-12})
	if err != nil {
		log.Fatal(err)
	}

	// IdealRank: uses the known external scores; matches global exactly.
	ideal, err := approxrank.IdealRank(sub, global.Scores, approxrank.Config{Tolerance: 1e-12})
	if err != nil {
		log.Fatal(err)
	}

	// Local PageRank baseline: pretends X, Y, Z don't exist.
	local, err := approxrank.LocalPageRank(sub, approxrank.BaselineConfig{Tolerance: 1e-12})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("page   global     IdealRank  ApproxRank localPR")
	for li, gid := range sub.Local {
		fmt.Printf("%-6s %.6f   %.6f   %.6f  %.6f\n",
			names[gid], global.Scores[gid], ideal.Scores[li], ap.Scores[li], local.Scores[li])
	}
	extSum := 0.0
	for p := X; p <= Z; p++ {
		extSum += global.Scores[p]
	}
	fmt.Printf("Λ      %.6f   %.6f   %.6f  (sum of X,Y,Z vs Λ estimates)\n", extSum, ideal.Lambda, ap.Lambda)

	// How close are the rankings?
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = global.Scores[gid]
	}
	approxrank.Normalize(truth)
	est := append([]float64(nil), ap.Scores...)
	approxrank.Normalize(est)
	l1 := must(approxrank.L1(truth, est))
	fr := must(approxrank.Footrule(truth, est))
	fmt.Printf("\nApproxRank vs truth: L1 = %.6f, Spearman footrule = %.6f\n", l1, fr)
	fmt.Printf("ApproxRank converged in %d iterations; IdealRank in %d.\n", ap.Iterations, ideal.Iterations)
}

// must unwraps a metric result; the example builds equal-length rankings,
// so a comparison error is a bug worth dying on.
func must(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
