// Benchmark harness: one testing.B bench per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out and
// micro-benchmarks of the hot paths.
//
// The table/figure benches run the same drivers as cmd/experiments at a
// reduced scale (benchmarks must fit a -bench run; the full-scale numbers
// recorded in EXPERIMENTS.md come from `go run ./cmd/experiments`). Key
// accuracy values are attached to the bench output via b.ReportMetric, so
// `go test -bench=.` regenerates both the runtimes and the headline
// distances of every experiment.
package approxrank_test

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	approxrank "repro"
	"repro/internal/baseline"
	"repro/internal/blockrank"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/distributed"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hits"
	"repro/internal/metrics"
	"repro/internal/pagerank"
)

// benchScale is large enough for meaningful comparisons, small enough for
// a -bench run (the experiments suite at this scale builds in ~1 s).
var benchScale = experiments.Scale{
	AUPages: 60000, AUDomains: 24, PoliticsPages: 50000, PoliticsTopics: 12, Seed: 2009,
}

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.NewSuite(benchScale)
	})
	if suiteErr != nil {
		b.Fatalf("building suite: %v", suiteErr)
	}
	return suite
}

// BenchmarkTableII regenerates the dataset-characteristics table.
func BenchmarkTableII(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WriteTableII(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
	st := approxrank.ComputeStats(s.AU.Data.Graph)
	b.ReportMetric(float64(st.Edges), "AU-links")
	b.ReportMetric(st.AvgOutDegree, "AU-avg-outdeg")
}

// BenchmarkTableIII regenerates the TS-subgraph accuracy comparison
// (SC vs ApproxRank, L1 and footrule).
func BenchmarkTableIII(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var runs []*experiments.SubgraphRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = s.RunTS(experiments.TSParams{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range runs {
		b.ReportMetric(r.Approx.Footrule, r.Name+"-AR-footrule")
		b.ReportMetric(r.SC.Footrule, r.Name+"-SC-footrule")
	}
}

// BenchmarkTableIV regenerates the DS-subgraph footrule comparison across
// the four algorithms (reduced to 6 domains per iteration).
func BenchmarkTableIV(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var runs []*experiments.SubgraphRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = s.RunDS(6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sumAR, sumLP := 0.0, 0.0
	for _, r := range runs {
		sumAR += r.Approx.Footrule
		sumLP += r.Local.Footrule
	}
	b.ReportMetric(sumAR/float64(len(runs)), "mean-AR-footrule")
	b.ReportMetric(sumLP/float64(len(runs)), "mean-localPR-footrule")
}

// BenchmarkTableV regenerates the TS runtime comparison; the per-algorithm
// runtimes are the point, so they are reported as metrics.
func BenchmarkTableV(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var runs []*experiments.SubgraphRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = s.RunTS(experiments.TSParams{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var sc, ar float64
	for _, r := range runs {
		sc += r.SC.Elapsed.Seconds()
		ar += r.Approx.Elapsed.Seconds()
	}
	b.ReportMetric(sc, "SC-total-sec")
	b.ReportMetric(ar, "ApproxRank-total-sec")
	if ar > 0 {
		b.ReportMetric(sc/ar, "SC-over-ApproxRank")
	}
}

// BenchmarkTableVI regenerates the DS runtime comparison (6 domains).
func BenchmarkTableVI(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var runs []*experiments.SubgraphRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = s.RunDS(6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var sc, ar float64
	for _, r := range runs {
		sc += r.SC.Elapsed.Seconds()
		ar += r.Approx.Elapsed.Seconds()
	}
	b.ReportMetric(sc, "SC-total-sec")
	b.ReportMetric(ar, "ApproxRank-total-sec")
	if ar > 0 {
		b.ReportMetric(sc/ar, "SC-over-ApproxRank")
	}
	b.ReportMetric(s.AU.Elapsed.Seconds(), "globalPR-sec")
}

// BenchmarkFigure7 regenerates the BFS-subgraph accuracy series (the three
// smallest fractions per iteration; the full series runs in
// cmd/experiments).
func BenchmarkFigure7(b *testing.B) {
	s := benchSuite(b)
	fractions := []float64{0.5, 2, 5}
	b.ResetTimer()
	var runs []*experiments.SubgraphRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, err = s.RunBFS(fractions)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range runs {
		b.ReportMetric(r.Approx.Footrule, fmt.Sprintf("AR-at-%.1fpct", r.PctOfGlobal))
		b.ReportMetric(r.Local.Footrule, fmt.Sprintf("localPR-at-%.1fpct", r.PctOfGlobal))
	}
}

// BenchmarkAblationEpsilon sweeps the damping factor against the Theorem 2
// bound.
func BenchmarkAblationEpsilon(b *testing.B) {
	s := benchSuite(b)
	eps := []float64{0.5, 0.85, 0.95}
	b.ResetTimer()
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = s.AblationEpsilon(eps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, p := range pts {
		b.ReportMetric(p.Gap/p.Bound, "gap-over-bound")
	}
}

// BenchmarkAblationMixedE sweeps partial knowledge of external scores.
func BenchmarkAblationMixedE(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = s.AblationMixedE(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(pts[0].Gap, "gap-alpha0")
	b.ReportMetric(pts[len(pts)-1].Gap, "gap-alpha1")
}

// BenchmarkAblationIntraDomain sweeps the intra-domain link fraction.
func BenchmarkAblationIntraDomain(b *testing.B) {
	intras := []float64{0.6, 0.9}
	b.ResetTimer()
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.AblationIntraDomain(intras, 20000, 2009)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(pts[0].Footrule, "footrule-intra0.6")
	b.ReportMetric(pts[len(pts)-1].Footrule, "footrule-intra0.9")
}

// BenchmarkAblationSubgraphSize sweeps the subgraph fraction.
func BenchmarkAblationSubgraphSize(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var pts []experiments.AblationPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = s.AblationSubgraphSize(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if len(pts) > 1 {
		b.ReportMetric(pts[0].Footrule, "footrule-smallest")
		b.ReportMetric(pts[len(pts)-1].Footrule, "footrule-largest")
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the hot paths.
// ---------------------------------------------------------------------

func benchSubgraph(b *testing.B) (*experiments.Suite, *graph.Subgraph) {
	b.Helper()
	s := benchSuite(b)
	order := experiments.DomainsAscending(s.AU.Data)
	d := order[len(order)/2]
	sub, err := graph.NewSubgraph(s.AU.Data.Graph, s.AU.Data.DomainPages(d))
	if err != nil {
		b.Fatal(err)
	}
	return s, sub
}

// BenchmarkGlobalPageRank measures the full-graph power iteration that
// ApproxRank avoids.
func BenchmarkGlobalPageRank(b *testing.B) {
	s := benchSuite(b)
	g := s.AU.Data.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pagerank.Compute(g, pagerank.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApproxChainBuild measures assembling A_approx for a subgraph
// (the paper's per-subgraph preprocessing under a shared Context).
func BenchmarkApproxChainBuild(b *testing.B) {
	s, sub := benchSubgraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewApproxChainCtx(s.AU.Ctx, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApproxRankRun measures the (n+1)-state power iteration alone.
func BenchmarkApproxRankRun(b *testing.B) {
	s, sub := benchSubgraph(b)
	chain, err := core.NewApproxChainCtx(s.AU.Ctx, sub)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := chain.Run(core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIdealRank measures the exact solution given known externals.
func BenchmarkIdealRank(b *testing.B) {
	s, sub := benchSubgraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.IdealRank(sub, s.AU.PR.Scores, core.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalPageRank measures the cheapest (and least accurate)
// baseline.
func BenchmarkLocalPageRank(b *testing.B) {
	_, sub := benchSubgraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LocalPageRank(sub, baseline.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPR2 measures the naïve artificial-node baseline.
func BenchmarkLPR2(b *testing.B) {
	_, sub := benchSubgraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.LPR2(sub, baseline.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSC measures the stochastic-complementation competitor at the
// paper's 25-expansion setting — the order-of-magnitude runtime gap to
// ApproxRank is the paper's headline efficiency result.
func BenchmarkSC(b *testing.B) {
	_, sub := benchSubgraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.SC(sub, baseline.SCConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFootrule measures the partial-ranking metric on a large vector.
func BenchmarkFootrule(b *testing.B) {
	s, sub := benchSubgraph(b)
	truth := s.AU.Truth(sub)
	est, err := core.ApproxRankCtx(s.AU.Ctx, sub, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.AU.Evaluate(sub, est.Scores); err != nil {
			b.Fatal(err)
		}
	}
	_ = truth
}

// BenchmarkGraphBuild measures CSR construction from an edge stream.
func BenchmarkGraphBuild(b *testing.B) {
	s := benchSuite(b)
	g := s.AU.Data.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := graph.NewBuilder(g.NumNodes())
		for u := 0; u < g.NumNodes(); u++ {
			for _, v := range g.OutNeighbors(graph.NodeID(u)) {
				bl.AddEdge(graph.NodeID(u), v)
			}
		}
		if _, err := bl.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures the synthetic web generator.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 20000, Domains: 16, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Extension benches: the related-work systems.
// ---------------------------------------------------------------------

// BenchmarkAccelerationSchemes compares the PageRank iteration schemes of
// the related work on the bench-scale AU graph.
func BenchmarkAccelerationSchemes(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.AccelRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.RunAcceleration()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		name := r.Method
		if i := strings.IndexByte(name, ' '); i >= 0 {
			name = name[:i] // the blockrank row carries a parenthetical
		}
		b.ReportMetric(float64(r.Iterations), name+"-iters")
	}
}

// BenchmarkJXPRound measures one meeting round of a domain-per-peer JXP
// network, reporting the error drop.
func BenchmarkJXPRound(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var pts []experiments.JXPPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = s.RunJXP(3, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(pts[0].MaxError, "round0-maxerr")
	b.ReportMetric(pts[len(pts)-1].MaxError, "round3-maxerr")
}

// BenchmarkPointRank measures single-page estimation at the default
// radius, reporting the mean relative error.
func BenchmarkPointRank(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.PointRankRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.RunPointRank([]int{3}, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(rows[0].MeanRelErr, "mean-rel-err")
	b.ReportMetric(rows[0].MeanInfluence, "mean-influence")
}

// BenchmarkServerRank measures the one-shot distributed combination.
func BenchmarkServerRank(b *testing.B) {
	s := benchSuite(b)
	ds := s.AU.Data
	serverOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := distributed.ServerRank(ds.Graph, serverOf, ds.NumDomains(), distributed.ServerRankConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKendallExact measures the O(n log n) tie-aware Kendall
// distance on a large score vector.
func BenchmarkKendallExact(b *testing.B) {
	s, sub := benchSubgraph(b)
	truth := s.AU.Truth(sub)
	est, err := core.ApproxRankCtx(s.AU.Ctx, sub, core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.KendallTau(truth, est.Scores); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateScenario measures the updated-subgraph strategies,
// reporting the accuracy of the paper's IdealRank-with-stale-externals
// proposal and IAD's sweep count.
func BenchmarkUpdateScenario(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.UpdateRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.RunUpdate(0.33, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		switch r.Strategy {
		case "IdealRank, stale externals (paper)":
			b.ReportMetric(r.L1, "ideal-stale-L1")
		case "IAD update (Langville & Meyer)":
			b.ReportMetric(float64(r.GlobalSweeps), "iad-sweeps")
		case "full recomputation":
			b.ReportMetric(float64(r.GlobalSweeps), "recompute-iters")
		}
	}
}

// BenchmarkBestFirstCrawl measures the focused crawler against BFS on
// collected authority mass at a fixed budget.
func BenchmarkBestFirstCrawl(b *testing.B) {
	s := benchSuite(b)
	g := s.AU.Data.Graph
	seed := graph.NodeID(0)
	for p := 0; p < g.NumNodes(); p++ {
		if g.OutDegree(graph.NodeID(p)) == 4 {
			seed = graph.NodeID(p)
			break
		}
	}
	budget := g.NumNodes() / 50
	b.ResetTimer()
	var bf []graph.NodeID
	for i := 0; i < b.N; i++ {
		var err error
		bf, err = crawler.BestFirst(g, seed, crawler.BestFirstConfig{MaxPages: budget})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	bfs, err := crawler.BFS(g, seed, budget)
	if err != nil {
		b.Fatal(err)
	}
	mass := func(pages []graph.NodeID) float64 {
		m := 0.0
		for _, p := range pages {
			m += s.AU.PR.Scores[p]
		}
		return m
	}
	b.ReportMetric(mass(bf), "bestfirst-mass")
	b.ReportMetric(mass(bfs), "bfs-mass")
}

// BenchmarkBlockRankFull measures the complete 3-stage BlockRank.
func BenchmarkBlockRankFull(b *testing.B) {
	s := benchSuite(b)
	ds := s.AU.Data
	blockOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blockrank.Compute(ds.Graph, blockOf, ds.NumDomains(), blockrank.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGlobalPageRankParallel measures the multi-worker power
// iteration (compare with BenchmarkGlobalPageRank).
func BenchmarkGlobalPageRankParallel(b *testing.B) {
	s := benchSuite(b)
	g := s.AU.Data.Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pagerank.Compute(g, pagerank.Options{Parallelism: -1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopK measures top-K retrieval accuracy across the four
// algorithms (the paper's §V-C argument for order accuracy).
func BenchmarkTopK(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	var rows []experiments.TopKRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.RunTopK([]int{10, 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.Approx, fmt.Sprintf("AR-top%d", r.K))
		b.ReportMetric(r.Local, fmt.Sprintf("localPR-top%d", r.K))
	}
}

// BenchmarkHITS measures hubs-and-authorities on an induced DS subgraph.
func BenchmarkHITS(b *testing.B) {
	_, sub := benchSubgraph(b)
	induced, err := sub.Induce()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hits.Compute(induced, hits.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}
