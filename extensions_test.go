package approxrank_test

import (
	"math"
	"testing"

	approxrank "repro"
)

// TestFacadeObjectRank drives the ObjectRank surface end to end: schema,
// data graph, keyword query, and the authority-graph bridge into the
// subgraph framework.
func TestFacadeObjectRank(t *testing.T) {
	s := approxrank.NewSchema()
	for _, ty := range []string{"paper", "author"} {
		if err := s.AddType(ty); err != nil {
			t.Fatalf("AddType: %v", err)
		}
	}
	if err := s.AddTransfer("paper", "paper", "cites", 0.7); err != nil {
		t.Fatalf("AddTransfer: %v", err)
	}
	if err := s.AddTransfer("paper", "author", "written-by", 0.3); err != nil {
		t.Fatalf("AddTransfer: %v", err)
	}
	if err := s.AddTransfer("author", "paper", "writes", 1.0); err != nil {
		t.Fatalf("AddTransfer: %v", err)
	}
	d, err := approxrank.NewDataGraph(s)
	if err != nil {
		t.Fatalf("NewDataGraph: %v", err)
	}
	p1, _ := d.AddObject("streaming joins", "paper")
	p2, _ := d.AddObject("adaptive joins", "paper")
	a, _ := d.AddObject("carol", "author")
	if err := d.AddRelation(p1, p2, "cites"); err != nil {
		t.Fatalf("AddRelation: %v", err)
	}
	if err := d.AddRelation(p1, a, "written-by"); err != nil {
		t.Fatalf("AddRelation: %v", err)
	}
	if err := d.AddRelation(a, p1, "writes"); err != nil {
		t.Fatalf("AddRelation: %v", err)
	}

	global, err := approxrank.ObjectRank(d, nil, approxrank.ObjectRankConfig{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("ObjectRank: %v", err)
	}
	if len(global.Scores) != 3 || !global.Converged {
		t.Fatalf("global ObjectRank = %+v", global)
	}
	q, err := approxrank.ObjectRankQuery(d, "joins", approxrank.ObjectRankConfig{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("ObjectRankQuery: %v", err)
	}
	if len(q.Scores) != 3 {
		t.Fatalf("query scores = %v", q.Scores)
	}
	if _, err := approxrank.ObjectRankQuery(d, "nomatch", approxrank.ObjectRankConfig{}); err == nil {
		t.Error("query with no matches accepted")
	}
	ag, err := d.AuthorityGraph()
	if err != nil {
		t.Fatalf("AuthorityGraph: %v", err)
	}
	if !ag.Weighted() || ag.NumNodes() != 3 {
		t.Fatalf("authority graph wrong shape")
	}
}

// TestFacadeJXP drives the P2P surface through the facade.
func TestFacadeJXP(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 3000, Domains: 4, Seed: 31})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	assignments := map[string][]approxrank.NodeID{}
	for d := 0; d < web.NumDomains(); d++ {
		assignments[web.DomainNames[d]] = web.DomainPages(d)
	}
	nw, err := approxrank.NewPeerNetwork(web.Graph, assignments, approxrank.Config{Tolerance: 1e-8}, 3)
	if err != nil {
		t.Fatalf("NewPeerNetwork: %v", err)
	}
	truth, err := approxrank.GlobalPageRank(web.Graph, approxrank.PageRankOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	before, err := nw.MaxError(truth.Scores)
	if err != nil {
		t.Fatalf("MaxError: %v", err)
	}
	for r := 0; r < 4; r++ {
		if _, err := nw.Round(); err != nil {
			t.Fatalf("Round: %v", err)
		}
	}
	after, err := nw.MaxError(truth.Scores)
	if err != nil {
		t.Fatalf("MaxError: %v", err)
	}
	if after >= before {
		t.Errorf("JXP error did not improve: %v → %v", before, after)
	}
	// Direct two-peer meeting through the facade.
	a, err := approxrank.NewPeer("x", web.Graph, web.DomainPages(0), approxrank.Config{})
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	b, err := approxrank.NewPeer("y", web.Graph, web.DomainPages(1), approxrank.Config{})
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	if err := approxrank.Meet(a, b); err != nil {
		t.Fatalf("Meet: %v", err)
	}
	if a.KnownExternal() == 0 || b.KnownExternal() == 0 {
		t.Error("meeting taught nothing")
	}
}

// TestFacadeServerRank drives the ServerRank surface.
func TestFacadeServerRank(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 3000, Domains: 5, Seed: 8})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	res, err := approxrank.ServerRank(web.Graph,
		func(p approxrank.NodeID) int { return int(web.Domain[p]) },
		web.NumDomains(), approxrank.ServerRankConfig{})
	if err != nil {
		t.Fatalf("ServerRank: %v", err)
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ServerRank scores sum to %v", sum)
	}
	if len(res.ServerScores) != web.NumDomains() {
		t.Errorf("got %d server scores", len(res.ServerScores))
	}
}

// TestFacadePointRank drives the single-page estimator.
func TestFacadePointRank(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 3000, Domains: 4, Seed: 2})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	truth, err := approxrank.GlobalPageRank(web.Graph, approxrank.PageRankOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	var target approxrank.NodeID
	for p := 0; p < web.Graph.NumNodes(); p++ {
		if web.Graph.InDegree(approxrank.NodeID(p)) > web.Graph.InDegree(target) {
			target = approxrank.NodeID(p)
		}
	}
	res, err := approxrank.EstimatePageRank(web.Graph, target, approxrank.PointRankConfig{Radius: 4})
	if err != nil {
		t.Fatalf("EstimatePageRank: %v", err)
	}
	rel := math.Abs(res.Score-truth.Scores[target]) / truth.Scores[target]
	if rel > 0.3 {
		t.Errorf("radius-4 estimate off by %.0f%%", rel*100)
	}
}

// TestFacadeKendallAndDictionary covers the remaining exports.
func TestFacadeKendallAndDictionary(t *testing.T) {
	a := []float64{3, 2, 1}
	b := []float64{1, 2, 3}
	d, err := approxrank.KendallTau(a, b)
	if err != nil || d != 1 {
		t.Errorf("KendallTau = %v, %v", d, err)
	}
	g, dict, err := approxrank.NamedEdgeGraph([][2]string{
		{"a.com/x", "b.com/y"},
		{"b.com/y", "a.com/x"},
	})
	if err != nil {
		t.Fatalf("NamedEdgeGraph: %v", err)
	}
	if g.NumNodes() != 2 || dict.Len() != 2 {
		t.Fatalf("graph %d nodes, dict %d names", g.NumNodes(), dict.Len())
	}
	id, ok := dict.Lookup("a.com/x")
	if !ok || dict.Name(id) != "a.com/x" {
		t.Fatalf("dictionary round trip failed")
	}
	fresh := approxrank.NewDictionary()
	if fresh.Len() != 0 {
		t.Fatal("new dictionary not empty")
	}
}

// TestFacadeUpdateAndCrawl drives the IAD update, best-first crawl, and
// SCC exports through the facade.
func TestFacadeUpdateAndCrawl(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 4000, Domains: 6, Seed: 44})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	g := web.Graph
	prior, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	res, err := approxrank.UpdatePageRank(g, web.DomainPages(2), prior.Scores, approxrank.IADConfig{Tolerance: 1e-7})
	if err != nil {
		t.Fatalf("UpdatePageRank: %v", err)
	}
	if !res.Converged || res.OuterIterations > 3 {
		t.Errorf("unchanged graph took %d outer iterations", res.OuterIterations)
	}

	crawlBudget := 200
	order, err := approxrank.BestFirstCrawl(g, 0, approxrank.BestFirstConfig{MaxPages: crawlBudget})
	if err != nil {
		t.Fatalf("BestFirstCrawl: %v", err)
	}
	if len(order) == 0 || len(order) > crawlBudget {
		t.Fatalf("crawl returned %d pages", len(order))
	}

	comps := approxrank.StronglyConnectedComponents(g)
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != g.NumNodes() {
		t.Fatalf("SCCs cover %d of %d nodes", total, g.NumNodes())
	}
	if f := approxrank.LargestSCCFraction(g); f <= 0 || f > 1 {
		t.Fatalf("LargestSCCFraction = %v", f)
	}

	// Parallel global PageRank through the facade agrees with sequential.
	par, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-9, Parallelism: 4})
	if err != nil {
		t.Fatalf("parallel GlobalPageRank: %v", err)
	}
	l1, err := approxrank.L1(prior.Scores, par.Scores)
	if err != nil {
		t.Fatalf("L1: %v", err)
	}
	if l1 > 1e-7 {
		t.Errorf("parallel result differs by L1=%v", l1)
	}
}
