package approxrank_test

import (
	"fmt"

	approxrank "repro"
)

// The examples below run as tests (their output is verified), and double
// as godoc usage documentation for the main entry points. They all use
// the paper's Figure 4 graph: local pages A,B,C,D (0–3) and external
// pages X,Y,Z (4–6).

func exampleGraph() *approxrank.Graph {
	return approxrank.MustFromEdges(7, [][2]approxrank.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {0, 6},
		{1, 3},
		{2, 1}, {2, 3},
		{3, 0},
		{4, 2}, {4, 5}, {4, 6},
		{5, 2}, {5, 4},
		{6, 2}, {6, 3},
	})
}

func ExampleApproxRank() {
	g := exampleGraph()
	sub, _ := approxrank.NewSubgraph(g, []approxrank.NodeID{0, 1, 2, 3})
	res, _ := approxrank.ApproxRank(sub, approxrank.Config{Tolerance: 1e-12})
	fmt.Printf("n=%d external=%d converged=%v\n", sub.N(), sub.External(), res.Converged)
	fmt.Printf("Λ estimate: %.3f\n", res.Lambda)
	// Output:
	// n=4 external=3 converged=true
	// Λ estimate: 0.239
}

func ExampleIdealRank() {
	g := exampleGraph()
	sub, _ := approxrank.NewSubgraph(g, []approxrank.NodeID{0, 1, 2, 3})
	global, _ := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	ideal, _ := approxrank.IdealRank(sub, global.Scores, approxrank.Config{Tolerance: 1e-12})
	// Theorem 1: IdealRank reproduces the true scores exactly.
	exact := true
	for li, gid := range sub.Local {
		if diff := ideal.Scores[li] - global.Scores[gid]; diff > 1e-9 || diff < -1e-9 {
			exact = false
		}
	}
	fmt.Println("matches global PageRank:", exact)
	// Output:
	// matches global PageRank: true
}

func ExampleGlobalPageRank() {
	g := exampleGraph()
	res, _ := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	fmt.Printf("pages=%d sum=%.3f converged=%v\n", len(res.Scores), sum, res.Converged)
	// Output:
	// pages=7 sum=1.000 converged=true
}

func ExampleFootrule() {
	// Two score vectors that swap the top pair and tie the rest.
	a := []float64{0.4, 0.3, 0.15, 0.15}
	b := []float64{0.3, 0.4, 0.15, 0.15}
	d, _ := approxrank.Footrule(a, b)
	fmt.Printf("footrule = %.2f\n", d)
	// Output:
	// footrule = 0.25
}

func ExampleNewSubgraph() {
	g := exampleGraph()
	sub, _ := approxrank.NewSubgraph(g, []approxrank.NodeID{3, 0, 1, 2}) // any order
	fmt.Println("local pages:", sub.Local)
	st := sub.Boundary()
	fmt.Printf("internal=%d in-links=%d out-links=%d\n",
		st.InternalEdges, st.InLinksFromExternal, st.OutLinksToExternal)
	// Output:
	// local pages: [0 1 2 3]
	// internal=6 in-links=4 out-links=2
}

func ExampleBestFirstCrawl() {
	g := exampleGraph()
	order, _ := approxrank.BestFirstCrawl(g, 0, approxrank.BestFirstConfig{MaxPages: 4})
	fmt.Println("fetched", len(order), "pages, seed first:", order[0] == 0)
	// Output:
	// fetched 4 pages, seed first: true
}

func ExampleHITS() {
	// Three hubs all endorse page 3; only one endorses page 4.
	g := approxrank.MustFromEdges(5, [][2]approxrank.NodeID{
		{0, 3}, {1, 3}, {2, 3}, {0, 4},
	})
	res, _ := approxrank.HITS(g, approxrank.HITSConfig{})
	fmt.Println("strongest authority is page 3:", res.Authorities[3] > res.Authorities[4])
	// Output:
	// strongest authority is page 3: true
}

func ExampleKendallTau() {
	a := []float64{3, 2, 1}
	b := []float64{1, 2, 3}
	d, _ := approxrank.KendallTau(a, b) // full reversal
	fmt.Printf("kendall distance = %.1f\n", d)
	// Output:
	// kendall distance = 1.0
}

func ExampleMixExternalScores() {
	g := exampleGraph()
	sub, _ := approxrank.NewSubgraph(g, []approxrank.NodeID{0, 1, 2, 3})
	global, _ := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	// Blend 50% true external knowledge into ApproxRank's uniform
	// assumption (the paper's future-work direction).
	mixed, _ := approxrank.MixExternalScores(sub, global.Scores, 0.5)
	chain, _ := approxrank.NewChainWithExternalScores(sub, mixed)
	res, _ := chain.Run(approxrank.Config{Tolerance: 1e-12})
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}
