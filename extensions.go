package approxrank

import (
	"context"

	"repro/internal/blockrank"
	"repro/internal/crawler"
	"repro/internal/distributed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hits"
	"repro/internal/iad"
	"repro/internal/metrics"
	"repro/internal/objectrank"
	"repro/internal/pointrank"
	"repro/internal/search"
)

// This file exports the extension systems built around the paper's core:
// ObjectRank-style semantic ranking (the paper's Figure 2/3 motivation)
// and the decentralized rankers of the related work (JXP, ServerRank).

// Schema is an ObjectRank authority-transfer schema graph.
type Schema = objectrank.Schema

// DataGraph instantiates a Schema with typed objects and relationships.
type DataGraph = objectrank.DataGraph

// ObjectRankConfig carries the ObjectRank walk parameters.
type ObjectRankConfig = objectrank.Config

// ObjectRankResult is the outcome of an ObjectRank computation.
type ObjectRankResult = objectrank.Result

// NewSchema returns an empty authority-transfer schema.
func NewSchema() *Schema { return objectrank.NewSchema() }

// NewDataGraph returns an empty data graph over schema.
func NewDataGraph(schema *Schema) (*DataGraph, error) { return objectrank.NewDataGraph(schema) }

// ObjectRank computes exact ObjectRank scores seeded by baseSet (nil =
// global ranking).
func ObjectRank(d *DataGraph, baseSet []NodeID, cfg ObjectRankConfig) (*ObjectRankResult, error) {
	return objectrank.Compute(d, baseSet, cfg)
}

// ObjectRankQuery computes ObjectRank seeded by the keyword base set of
// query.
func ObjectRankQuery(d *DataGraph, query string, cfg ObjectRankConfig) (*ObjectRankResult, error) {
	return objectrank.ComputeQuery(d, query, cfg)
}

// Peer is a JXP participant: a subgraph owner that refines its global
// score estimates by meeting other peers.
type Peer = distributed.Peer

// PeerNetwork is a set of JXP peers over one global graph.
type PeerNetwork = distributed.Network

// NewPeer creates a JXP peer owning the given pages. Its initial estimate
// is exactly ApproxRank's.
func NewPeer(name string, global *Graph, local []NodeID, cfg Config) (*Peer, error) {
	return distributed.NewPeer(name, global, local, cfg)
}

// NewPeerNetwork creates a JXP network from per-peer page assignments.
func NewPeerNetwork(global *Graph, assignments map[string][]NodeID, cfg Config, seed int64) (*PeerNetwork, error) {
	return distributed.NewNetwork(global, assignments, cfg, seed)
}

// Meet performs one JXP meeting between two peers.
func Meet(a, b *Peer) error { return distributed.Meet(a, b) }

// MeetCtx is Meet under a context.Context; cancelling ctx aborts the two
// post-exchange walks. (PeerNetwork's RoundCtx comes with the type
// alias.)
func MeetCtx(ctx context.Context, a, b *Peer) error { return distributed.MeetCtx(ctx, a, b) }

// ServerRankConfig configures the ServerRank combination.
type ServerRankConfig = distributed.ServerRankConfig

// ServerRankResult carries a ServerRank estimate and its layers.
type ServerRankResult = distributed.ServerRankResult

// ServerRank combines per-server local PageRanks with a server-level
// ranking into global page estimates (Wang & DeWitt, VLDB 2004).
func ServerRank(g *Graph, serverOf func(NodeID) int, numServers int, cfg ServerRankConfig) (*ServerRankResult, error) {
	return distributed.ServerRank(g, serverOf, numServers, cfg)
}

// ServerRankCtx is ServerRank under a context.Context; cancellation is
// checked between per-server runs and inside every walk.
func ServerRankCtx(ctx context.Context, g *Graph, serverOf func(NodeID) int, numServers int, cfg ServerRankConfig) (*ServerRankResult, error) {
	return distributed.ServerRankCtx(ctx, g, serverOf, numServers, cfg)
}

// PointRankConfig configures the single-page local estimator.
type PointRankConfig = pointrank.Config

// PointRankResult reports a single-page estimate and the work done.
type PointRankResult = pointrank.Result

// EstimatePageRank estimates the global PageRank of one target page by
// backward local expansion (Chen, Gan & Suel, CIKM 2004 — the paper's
// reference [17]), without a global computation.
func EstimatePageRank(g *Graph, target NodeID, cfg PointRankConfig) (*PointRankResult, error) {
	return pointrank.Estimate(g, target, cfg)
}

// KendallTau returns the exact Kendall distance with ties (penalty ½)
// between the rankings induced by two score vectors.
func KendallTau(a, b []float64) (float64, error) { return metrics.KendallTau(a, b) }

// Dictionary maps string page identifiers to dense node ids.
type Dictionary = graph.Dictionary

// NewDictionary returns an empty Dictionary.
func NewDictionary() *Dictionary { return graph.NewDictionary() }

// NamedEdgeGraph builds a graph plus Dictionary from string-keyed edges.
func NamedEdgeGraph(edges [][2]string) (*Graph, *Dictionary, error) {
	return graph.NamedEdgeGraph(edges)
}

// BlockRankConfig configures the 3-stage BlockRank acceleration.
type BlockRankConfig = blockrank.Config

// BlockRankResult carries BlockRank's output and per-stage telemetry.
type BlockRankResult = blockrank.Result

// BlockRank runs the 3-stage BlockRank of Kamvar et al. (the paper's
// reference [27]): per-block local PageRank, block-graph PageRank, then
// global PageRank warm-started from their aggregation. The fixpoint
// equals plain PageRank's; the warm start cuts the global iteration
// count on block-structured graphs.
func BlockRank(g *Graph, blockOf func(NodeID) int, numBlocks int, cfg BlockRankConfig) (*BlockRankResult, error) {
	return blockrank.Compute(g, blockOf, numBlocks, cfg)
}

// BlockRankCtx is BlockRank under a context.Context; cancellation is
// checked between blocks and inside all three stages' walks.
func BlockRankCtx(ctx context.Context, g *Graph, blockOf func(NodeID) int, numBlocks int, cfg BlockRankConfig) (*BlockRankResult, error) {
	return blockrank.ComputeCtx(ctx, g, blockOf, numBlocks, cfg)
}

// IADConfig configures iterative aggregation/disaggregation updating.
type IADConfig = iad.Config

// IADResult carries an IAD update's outcome and work counters.
type IADResult = iad.Result

// UpdatePageRank updates a stationary vector after a change confined to
// the given pages, using iterative aggregation/disaggregation (Langville
// & Meyer — the paper's reference [15]). prior is the pre-change
// PageRank; the result matches a full recomputation on g using fewer
// global sweeps.
func UpdatePageRank(g *Graph, changed []NodeID, prior []float64, cfg IADConfig) (*IADResult, error) {
	return iad.Update(g, changed, prior, cfg)
}

// BestFirstConfig parameterizes the focused crawler.
type BestFirstConfig = crawler.BestFirstConfig

// BestFirstCrawl runs the focused crawl of the paper's Figure 1 scenario:
// fetch the frontier page receiving the most authority from the crawled
// subgraph, re-ranking periodically with ApproxRank.
func BestFirstCrawl(g *Graph, seed NodeID, cfg BestFirstConfig) ([]NodeID, error) {
	return crawler.BestFirst(g, seed, cfg)
}

// BestFirstCrawlCtx is BestFirstCrawl under a context.Context; a
// cancelled crawl returns the pages fetched so far plus a non-nil error
// wrapping ctx.Err().
func BestFirstCrawlCtx(ctx context.Context, g *Graph, seed NodeID, cfg BestFirstConfig) ([]NodeID, error) {
	return crawler.BestFirstCtx(ctx, g, seed, cfg)
}

// StronglyConnectedComponents returns g's SCCs in reverse topological
// order of the condensation.
func StronglyConnectedComponents(g *Graph) [][]NodeID {
	return graph.StronglyConnectedComponents(g)
}

// LargestSCCFraction returns the largest SCC's share of the graph.
func LargestSCCFraction(g *Graph) float64 { return graph.LargestSCCFraction(g) }

// HITSConfig configures the HITS iteration.
type HITSConfig = hits.Config

// HITSResult carries the hub and authority vectors.
type HITSResult = hits.Result

// HITS runs Kleinberg's hubs-and-authorities algorithm on g (typically a
// query-focused subgraph obtained via Subgraph.Induce).
func HITS(g *Graph, cfg HITSConfig) (*HITSResult, error) { return hits.Compute(g, cfg) }

// SearchIndex is an inverted index with conjunctive (AND) queries.
type SearchIndex = search.Index

// SearchEngine couples an index over a subgraph's pages with ranking
// scores — the query-answering layer of the paper's Figure 1.
type SearchEngine = search.Engine

// SearchHit is one ranked query answer.
type SearchHit = search.Hit

// NewSearchEngine builds a localized search engine over sub: terms[i] is
// the sorted term bag of local page i and scores[i] its ranking score
// (e.g. ApproxRank output).
func NewSearchEngine(sub *Subgraph, terms [][]uint32, scores []float64) (*SearchEngine, error) {
	return search.NewEngine(sub, terms, scores)
}

// TermConfig parameterizes synthetic page-term assignment.
type TermConfig = gen.TermConfig

// AssignTerms samples a term bag per page of a generated dataset, with
// topical locality; it never alters the dataset's graph.
func AssignTerms(ds *WebDataset, cfg TermConfig) ([][]uint32, error) {
	return gen.AssignTerms(ds, cfg)
}
