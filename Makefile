GO ?= go
FUZZTIME ?= 5s
BENCHTIME ?= 300ms

.PHONY: all build lint cost-report lint-sarif fix-smoke vet test serve-test race bench bench-diff fuzz-smoke

all: build lint vet test

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/arlint ./...

# Top functions under the static cost model, with heaviest call paths.
cost-report:
	$(GO) run ./cmd/arlint -report=cost -top=20 ./...

# SARIF log for code-scanning upload; the file is written even when
# there are findings, so CI can upload before failing.
lint-sarif:
	$(GO) run ./cmd/arlint -format=sarif ./... > arlint.sarif || true
	@test -s arlint.sarif

# -fix must be idempotent: applying fixes to an already-fixed tree
# changes nothing. On a clean tree both runs are no-ops, so any diff
# means a fix fought the checkers.
fix-smoke:
	$(GO) run ./cmd/arlint -fix ./...
	$(GO) run ./cmd/arlint -fix ./...
	git diff --exit-code

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Focused end-to-end pass over the serving layer: httptest-driven
# cache/coalescing/admission/deadline behavior plus the disk warm-restart
# round trip.
serve-test:
	$(GO) test -race -count=1 ./internal/serve/

# Race-detector pass over the concurrent packages: the RankMany
# fail-fast worker pool, the parallel power iteration, the distributed
# partition runtime, the experiment drivers that fan work out across
# goroutines, the serving daemon (single-flight coalescing and the
# admission gate are exactly the interleavings -race exists to catch),
# and the graph loader's parallel in-CSR build team.
race:
	$(GO) test -race ./internal/kernel/ ./internal/core/ ./internal/pagerank/ ./internal/distributed/ ./internal/experiments/ ./internal/serve/ ./internal/graph/

# Focused engine benchmarks (chain construction, ApproxRank, the
# sequential and parallel power iterations, RankMany fan-out, the
# kernel's pooled-vs-respawn sweep pair, and the graph loading pipeline:
# v1-vs-v2 load, zero-copy mmap open, text-loader allocs, and the
# save→mmap→rank end-to-end path) parsed to a machine-readable
# artifact. BENCHTIME trades precision for speed; the graph corpus runs
# at ~1M edges here — set GRAPH_BENCH_CRAWL=1 for the 10M/50M scales.
bench:
	$(GO) test -bench=. -benchmem -benchtime=$(BENCHTIME) -run='^$$' \
		./internal/core/ ./internal/pagerank/ ./internal/kernel/ ./internal/graph/ | $(GO) run ./cmd/benchjson > BENCH_core.json
	@echo "wrote BENCH_core.json"

# Gate the current tree's benchmarks against a baseline artifact:
#   make bench-diff BASELINE=path/to/old.json [THRESHOLD=30]
# Exits non-zero when ns/op or allocs/op regressed past the threshold.
# The default threshold is generous because `make bench` runs at a short
# BENCHTIME — allocs/op is exact, but ns/op carries sampling noise.
THRESHOLD ?= 30
bench-diff: bench
	$(GO) run ./cmd/benchjson -diff -threshold $(THRESHOLD) $(BASELINE) BENCH_core.json

# Short fuzzing pass over every fuzz target; go test accepts one -fuzz
# pattern per package invocation, so each target gets its own run.
fuzz-smoke:
	$(GO) test ./internal/graph/ -run 'FuzzReadBinary$$' -fuzz 'FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph/ -run FuzzReadBinaryV2 -fuzz FuzzReadBinaryV2 -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph/ -run FuzzReadEdgeList -fuzz FuzzReadEdgeList -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph/ -run FuzzSubgraph -fuzz FuzzSubgraph -fuzztime $(FUZZTIME)
	$(GO) test ./internal/metrics/ -run FuzzRankingMetrics -fuzz FuzzRankingMetrics -fuzztime $(FUZZTIME)
