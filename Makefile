GO ?= go
FUZZTIME ?= 5s

.PHONY: all build lint vet test race fuzz-smoke

all: build lint vet test

build:
	$(GO) build ./...

lint:
	$(GO) run ./cmd/arlint ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: the parallel power
# iteration, the distributed partition runtime, and the experiment
# drivers that fan work out across goroutines.
race:
	$(GO) test -race ./internal/pagerank/ ./internal/distributed/ ./internal/experiments/

# Short fuzzing pass over every fuzz target; go test accepts one -fuzz
# pattern per package invocation, so each target gets its own run.
fuzz-smoke:
	$(GO) test ./internal/graph/ -run FuzzReadBinary -fuzz FuzzReadBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph/ -run FuzzReadEdgeList -fuzz FuzzReadEdgeList -fuzztime $(FUZZTIME)
	$(GO) test ./internal/metrics/ -run FuzzRankingMetrics -fuzz FuzzRankingMetrics -fuzztime $(FUZZTIME)
