// Command crawl extracts a subgraph page list from a graph file, either
// by breadth-first crawl from a seed page or by hop-expansion from a seed
// list. The output feeds rank-subgraph's -local flag.
//
// Usage:
//
//	crawl -graph web.bin -mode bfs  -seed 123 -pages 5000        -out local.txt
//	crawl -graph web.bin -mode hops -seeds seeds.txt -hops 3     -out local.txt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/crawler"
	"repro/internal/graph"
)

func main() {
	graphPath := flag.String("graph", "", "input graph file (required)")
	mode := flag.String("mode", "bfs", "crawl mode: bfs or hops")
	seed := flag.Uint("seed", 0, "bfs: seed page id")
	pages := flag.Int("pages", 1000, "bfs: maximum pages to crawl")
	seedsPath := flag.String("seeds", "", "hops: file listing seed page ids")
	hops := flag.Int("hops", 3, "hops: expansion depth")
	out := flag.String("out", "", "output file for the page list (required)")
	flag.Parse()

	if *graphPath == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "crawl: -graph and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM aborts the crawl loop; the partial frontier is
	// discarded (the output file must describe a complete crawl).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		fatal(err)
	}

	var crawled []graph.NodeID
	switch *mode {
	case "bfs":
		crawled, err = crawler.BFSCtx(ctx, g, graph.NodeID(*seed), *pages)
	case "hops":
		if *seedsPath == "" {
			fatal(fmt.Errorf("-mode hops requires -seeds"))
		}
		var seeds []graph.NodeID
		seeds, err = readIDs(*seedsPath)
		if err == nil {
			crawled, err = crawler.HopsCtx(ctx, g, seeds, *hops)
		}
	default:
		err = fmt.Errorf("unknown mode %q (want bfs or hops)", *mode)
	}
	if err != nil {
		fatal(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "# %d pages crawled from %s (%s)\n", len(crawled), *graphPath, *mode)
	for _, p := range crawled {
		fmt.Fprintln(w, p)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("crawled %d of %d pages; wrote %s\n", len(crawled), g.NumNodes(), *out)
}

func readIDs(path string) ([]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []graph.NodeID
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, err := strconv.ParseUint(text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad page id %q", path, line, text)
		}
		ids = append(ids, graph.NodeID(id))
	}
	return ids, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "crawl:", err)
	os.Exit(1)
}
