// Command rank-subgraph estimates PageRank scores for a subgraph of a
// graph file using ApproxRank (default), IdealRank, or one of the paper's
// baselines.
//
// Usage:
//
//	rank-subgraph -graph web.bin -local pages.txt [-algo approx|ideal|local|lpr2|sc|hits]
//	              [-scores scores.txt] [-eps 0.85] [-tol 1e-5] [-top 20] [-out out.txt]
//
// pages.txt lists one local page id per line ('#' comments allowed).
// -scores (required for -algo ideal) is a "page score" file such as the
// one written by the pagerank command.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hits"
)

func main() {
	graphPath := flag.String("graph", "", "input graph file (required)")
	localPath := flag.String("local", "", "file listing local page ids (required)")
	algo := flag.String("algo", "approx", "algorithm: approx, ideal, local, lpr2, sc, hits")
	scoresPath := flag.String("scores", "", "global score file (required for -algo ideal)")
	eps := flag.Float64("eps", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-5, "L1 convergence tolerance")
	top := flag.Int("top", 20, "print the top-K local pages")
	out := flag.String("out", "", "optional output file for all local scores")
	flag.Parse()

	if *graphPath == "" || *localPath == "" {
		fmt.Fprintln(os.Stderr, "rank-subgraph: -graph and -local are required")
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM cancels the ranker's power iteration instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, err := graph.LoadFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	local, err := readIDs(*localPath)
	if err != nil {
		fatal(err)
	}
	sub, err := graph.NewSubgraph(g, local)
	if err != nil {
		fatal(err)
	}

	cfg := core.Config{Epsilon: *eps, Tolerance: *tol}
	blCfg := baseline.Config{Epsilon: *eps, Tolerance: *tol}
	var scores []float64
	var lambda float64
	hasLambda := false
	var iters int

	switch *algo {
	case "approx":
		chain, err := core.NewApproxChain(sub)
		if err != nil {
			fatal(err)
		}
		res, err := chain.RunCtx(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		scores, lambda, hasLambda, iters = res.Scores, res.Lambda, true, res.Iterations
	case "ideal":
		if *scoresPath == "" {
			fatal(fmt.Errorf("-algo ideal requires -scores"))
		}
		global, err := readScores(*scoresPath, g.NumNodes())
		if err != nil {
			fatal(err)
		}
		chain, err := core.NewIdealChain(sub, global)
		if err != nil {
			fatal(err)
		}
		res, err := chain.RunCtx(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		scores, lambda, hasLambda, iters = res.Scores, res.Lambda, true, res.Iterations
	case "local":
		res, err := baseline.LocalPageRankCtx(ctx, sub, blCfg)
		if err != nil {
			fatal(err)
		}
		scores, iters = res.Scores, res.Iterations
	case "lpr2":
		res, err := baseline.LPR2Ctx(ctx, sub, blCfg)
		if err != nil {
			fatal(err)
		}
		scores, iters = res.Scores, res.Iterations
	case "sc":
		res, err := baseline.SCCtx(ctx, sub, baseline.SCConfig{Config: blCfg})
		if err != nil {
			fatal(err)
		}
		scores, iters = res.Scores, res.Iterations
		fmt.Printf("SC: supergraph grew to %d pages (k=%d per expansion)\n", res.SupergraphSize, res.K)
	case "hits":
		induced, err := sub.Induce()
		if err != nil {
			fatal(err)
		}
		res, err := hits.Compute(induced, hits.Config{Tolerance: *tol})
		if err != nil {
			fatal(err)
		}
		scores, iters = res.Authorities, res.Iterations
		fmt.Println("HITS: reporting authority scores over the induced local graph")
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	fmt.Printf("%s on subgraph of %d pages (global graph: %d pages) — %d iterations\n",
		*algo, sub.N(), g.NumNodes(), iters)
	if hasLambda {
		fmt.Printf("estimated total external score (Λ): %.6f\n", lambda)
	}

	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] > scores[idx[b]] {
			return true
		}
		if scores[idx[a]] < scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	k := *top
	if k > len(idx) {
		k = len(idx)
	}
	fmt.Println("rank  page        score")
	for i := 0; i < k; i++ {
		fmt.Printf("%4d  %-10d  %.8f\n", i+1, sub.GlobalID(uint32(idx[i])), scores[idx[i]])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for li, s := range scores {
			fmt.Fprintf(w, "%d %.12g\n", sub.GlobalID(uint32(li)), s)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote local scores to %s\n", *out)
	}
}

func readIDs(path string) ([]graph.NodeID, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var ids []graph.NodeID
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		id, err := strconv.ParseUint(text, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad page id %q", path, line, text)
		}
		ids = append(ids, graph.NodeID(id))
	}
	return ids, sc.Err()
}

func readScores(path string, n int) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	scores := make([]float64, n)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'page score'", path, line)
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil || int(id) >= n {
			return nil, fmt.Errorf("%s:%d: bad page id %q", path, line, fields[0])
		}
		s, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad score %q", path, line, fields[1])
		}
		scores[id] = s
	}
	return scores, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rank-subgraph:", err)
	os.Exit(1)
}
