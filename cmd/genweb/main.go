// Command genweb generates a synthetic web graph and writes it to disk,
// optionally alongside its domain and topic labels.
//
// Usage:
//
//	genweb -out web.bin [-pages N] [-domains D] [-topics T] [-intra F]
//	       [-mean-outdeg M] [-dangling F] [-seed S] [-labels labels.txt]
//
// The output format is chosen by extension: .txt/.edges for the text edge
// list, .v1 for the compact varint binary, anything else for the
// zero-copy v2 binary. Generation streams rows straight into the CSR
// (RowBuilder) and v2 writes stream the CSR arrays verbatim, so the
// peak memory of generating a crawl-scale graph is roughly the graph
// itself.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	out := flag.String("out", "", "output graph file (required)")
	labels := flag.String("labels", "", "optional output file for per-page 'domain topic' labels")
	pages := flag.Int("pages", 100000, "number of pages")
	domains := flag.Int("domains", 38, "number of domains")
	topics := flag.Int("topics", 12, "number of topics")
	intra := flag.Float64("intra", 0.85, "intra-domain link fraction")
	meanOut := flag.Float64("mean-outdeg", 5.5, "mean out-degree")
	dangling := flag.Float64("dangling", 0.04, "dangling page fraction")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "genweb: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := gen.Generate(gen.Config{
		Pages:            *pages,
		Domains:          *domains,
		Topics:           *topics,
		IntraFraction:    *intra,
		MeanOutDegree:    *meanOut,
		DanglingFraction: *dangling,
		Seed:             *seed,
	})
	if err != nil {
		fatal(err)
	}
	if err := graph.SaveFile(*out, ds.Graph); err != nil {
		fatal(err)
	}
	if *labels != "" {
		f, err := os.Create(*labels)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		fmt.Fprintln(w, "# page domain topic")
		for p := 0; p < ds.Graph.NumNodes(); p++ {
			fmt.Fprintf(w, "%d %d %d\n", p, ds.Domain[p], ds.Topic[p])
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	st := graph.ComputeStats(ds.Graph)
	fmt.Printf("wrote %s: %d pages, %d links, avg outdeg %.2f, %d dangling, %d domains\n",
		*out, st.Nodes, st.Edges, st.AvgOutDegree, st.Dangling, ds.NumDomains())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genweb:", err)
	os.Exit(1)
}
