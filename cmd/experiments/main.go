// Command experiments regenerates the paper's evaluation tables and
// figures on synthetic stand-ins for its datasets.
//
// Usage:
//
//	experiments [-scale tiny|paper] [-au N] [-politics N] [-seed S] [what ...]
//
// where each "what" is one of: table2, table3, table4, table5, table6,
// figure7, ablations, all (default: all).
//
// At -scale paper the synthetic datasets hold 300k/220k pages (a ~1/13
// linear scale-down of the paper's 3.9M/4.4M crawls); -scale tiny is a
// seconds-long smoke configuration.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/experiments"
)

func main() {
	scaleName := flag.String("scale", "paper", "dataset scale: tiny or paper")
	auPages := flag.Int("au", 0, "override: pages in the AU-analogue dataset")
	polPages := flag.Int("politics", 0, "override: pages in the politics-analogue dataset")
	seed := flag.Int64("seed", 0, "override: generation seed")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "tiny":
		scale = experiments.Tiny()
	case "paper":
		// zero value fills defaults
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want tiny or paper)\n", *scaleName)
		os.Exit(2)
	}
	if *auPages > 0 {
		scale.AUPages = *auPages
	}
	if *polPages > 0 {
		scale.PoliticsPages = *polPages
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	what := flag.Args()
	if len(what) == 0 {
		what = []string{"all"}
	}
	want := map[string]bool{}
	for _, w := range what {
		switch w {
		case "all":
			for _, k := range []string{"table2", "table3", "table4", "table5", "table6", "figure7", "ablations", "extended"} {
				want[k] = true
			}
		case "table2", "table3", "table4", "table5", "table6", "figure7", "ablations", "extended":
			want[w] = true
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", w)
			os.Exit(2)
		}
	}

	// The full suite runs for minutes at -scale paper; Ctrl-C / SIGTERM
	// aborts whichever experiment is running instead of killing the
	// process mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fmt.Printf("generating datasets (AU=%d pages, politics=%d pages, seed=%d)...\n",
		orDefault(scale.AUPages, 300000), orDefault(scale.PoliticsPages, 220000), orDefault64(scale.Seed, 2009))
	suite, err := experiments.NewSuiteCtx(ctx, scale)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("datasets ready in %v; global PageRank: AU %v (%d iter), politics %v (%d iter)\n\n",
		time.Since(start).Round(time.Millisecond),
		suite.AU.Elapsed.Round(time.Millisecond), suite.AU.PR.Iterations,
		suite.Politics.Elapsed.Round(time.Millisecond), suite.Politics.PR.Iterations)

	if want["table2"] {
		if err := suite.WriteTableII(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	var tsRuns []*experiments.SubgraphRun
	if want["table3"] || want["table5"] {
		fmt.Println("running TS subgraph experiments (Tables III & V)...")
		tsRuns, err = suite.RunTSCtx(ctx, experiments.TSParams{})
		if err != nil {
			fatal(err)
		}
	}
	if want["table3"] {
		if err := experiments.WriteTableIII(os.Stdout, tsRuns); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	var dsRuns []*experiments.SubgraphRun
	if want["table4"] || want["table6"] {
		fmt.Println("running DS subgraph experiments (Tables IV & VI)...")
		dsRuns, err = suite.RunDSCtx(ctx, 12)
		if err != nil {
			fatal(err)
		}
	}
	if want["table4"] {
		if err := experiments.WriteTableIV(os.Stdout, dsRuns); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if want["figure7"] {
		fmt.Println("running BFS subgraph experiments (Figure 7)...")
		bfsRuns, err := suite.RunBFSCtx(ctx, nil)
		if err != nil {
			fatal(err)
		}
		if err := experiments.WriteFigure7(os.Stdout, bfsRuns); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if want["table5"] {
		if err := experiments.WriteTableV(os.Stdout, tsRuns); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if want["table6"] {
		if err := suite.WriteTableVI(os.Stdout, dsRuns); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if want["ablations"] {
		// The ablation drivers predate the context plumbing; check between
		// phases so a signal at least stops the suite at the next boundary.
		if err := ctx.Err(); err != nil {
			fatal(err)
		}
		fmt.Println("running ablations...")
		if pts, err := suite.AblationEpsilon(nil); err != nil {
			fatal(err)
		} else if err := experiments.WriteAblation(os.Stdout, "ABLATION — damping factor vs Theorem 2 bound", "epsilon", pts); err != nil {
			fatal(err)
		}
		fmt.Println()
		if pts, err := suite.AblationMixedE(nil); err != nil {
			fatal(err)
		} else if err := experiments.WriteAblation(os.Stdout, "ABLATION — partial knowledge of external scores (paper future work)", "alpha", pts); err != nil {
			fatal(err)
		}
		fmt.Println()
		if pts, err := experiments.AblationIntraDomain(nil, 0, 2009); err != nil {
			fatal(err)
		} else if err := experiments.WriteAblation(os.Stdout, "ABLATION — intra-domain link fraction", "intra", pts); err != nil {
			fatal(err)
		}
		fmt.Println()
		if pts, err := suite.AblationSubgraphSize(nil); err != nil {
			fatal(err)
		} else if err := experiments.WriteAblation(os.Stdout, "ABLATION — subgraph size (domain unions)", "% of global", pts); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	if want["extended"] {
		fmt.Println("running extended experiments (related-work systems)...")
		if rows, err := suite.RunAccelerationCtx(ctx); err != nil {
			fatal(err)
		} else if err := experiments.WriteAcceleration(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
		if pts, err := suite.RunJXPCtx(ctx, 6, 7); err != nil {
			fatal(err)
		} else if err := experiments.WriteJXP(os.Stdout, pts); err != nil {
			fatal(err)
		}
		fmt.Println()
		if err := ctx.Err(); err != nil {
			fatal(err) // the remaining drivers have no context plumbing
		}
		if rows, err := suite.RunPointRank(nil, 0); err != nil {
			fatal(err)
		} else if err := experiments.WritePointRank(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
		if rows, err := suite.RunUpdate(0.33, 99); err != nil {
			fatal(err)
		} else if err := experiments.WriteUpdate(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
		if rows, err := suite.RunTopK(nil); err != nil {
			fatal(err)
		} else if err := experiments.WriteTopK(os.Stdout, rows); err != nil {
			fatal(err)
		}
		fmt.Println()
	}

	fmt.Printf("total wall clock: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func orDefault(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

func orDefault64(v, d int64) int64 {
	if v == 0 {
		return d
	}
	return v
}
