package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// buildArlint compiles the driver once into a temp dir and returns the
// binary path.
func buildArlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "arlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building arlint: %v\n%s", err, out)
	}
	return bin
}

// runIn runs the binary with args inside dir and returns stdout, stderr
// and the exit code.
func runIn(t *testing.T, bin, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running arlint: %v\n%s", err, stderr.String())
		}
		code = exitErr.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// diagLine is the documented diagnostic format:
// file:line:col: checker: message
var diagLine = regexp.MustCompile(`^[^:]+\.go:\d+:\d+: (floatcmp|gocapture|normreturn|tolerances|panicfree|errflow|lockbalance|maprange|hotalloc|wgbalance|chanleak|ctxflow|hotpure|racecheck|lockorder|spawnloop|falseshare): .+$`)

// allCheckers mirrors analysis.All; the e2e tests assert the driver
// exposes exactly this suite.
var allCheckers = []string{
	"floatcmp", "gocapture", "normreturn", "tolerances", "panicfree",
	"errflow", "lockbalance", "maprange", "hotalloc",
	"wgbalance", "chanleak", "ctxflow", "hotpure",
	"racecheck", "lockorder", "spawnloop", "falseshare",
}

func TestDirtyModule(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "dirtymod"))
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("want ≥3 diagnostics (floatcmp, panicfree, tolerances), got %d:\n%s", len(lines), stdout)
	}
	seen := map[string]bool{}
	for _, line := range lines {
		if !diagLine.MatchString(line) {
			t.Errorf("malformed diagnostic line %q (want file:line:col: checker: message)", line)
			continue
		}
		seen[strings.Split(line, ": ")[1]] = true
	}
	for _, checker := range []string{"floatcmp", "panicfree", "tolerances"} {
		if !seen[checker] {
			t.Errorf("no %s diagnostic in output:\n%s", checker, stdout)
		}
	}
	if !strings.Contains(stderr, "finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
}

func TestCleanModule(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "cleanmod"))
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("want no output on a clean module, got:\n%s", stdout)
	}
}

func TestListFlag(t *testing.T) {
	bin := buildArlint(t)
	stdout, _, code := runIn(t, bin, ".", "-list")
	if code != 0 {
		t.Fatalf("arlint -list exit code = %d, want 0", code)
	}
	for _, checker := range allCheckers {
		if !strings.Contains(stdout, checker) {
			t.Errorf("-list output missing checker %s:\n%s", checker, stdout)
		}
	}
}

func TestListShowsFixSupportAndState(t *testing.T) {
	bin := buildArlint(t)
	stdout, _, code := runIn(t, bin, ".", "-disable=floatcmp", "-list")
	if code != 0 {
		t.Fatalf("arlint -list exit code = %d, want 0", code)
	}
	for _, line := range strings.Split(stdout, "\n") {
		switch {
		case strings.HasPrefix(line, "floatcmp"):
			if !strings.Contains(line, "disabled") {
				t.Errorf("-disable=floatcmp not reflected in -list: %q", line)
			}
		case strings.HasPrefix(line, "errflow"):
			if !strings.Contains(line, "enabled") || !strings.Contains(line, "[fix]") {
				t.Errorf("errflow line should be enabled with [fix]: %q", line)
			}
		case strings.HasPrefix(line, "chanleak"):
			if strings.Contains(line, "[fix]") {
				t.Errorf("chanleak has no fixes but -list claims [fix]: %q", line)
			}
		}
	}
}

func TestCheckerSelection(t *testing.T) {
	bin := buildArlint(t)
	dir := filepath.Join("testdata", "dirtymod")

	stdout, _, code := runIn(t, bin, dir, "-checkers=floatcmp")
	if code != 1 {
		t.Fatalf("-checkers=floatcmp exit code = %d, want 1\n%s", code, stdout)
	}
	for _, line := range strings.Split(strings.TrimRight(stdout, "\n"), "\n") {
		if !strings.Contains(line, ": floatcmp: ") {
			t.Errorf("-checkers=floatcmp leaked another checker's finding: %q", line)
		}
	}

	stdout, _, _ = runIn(t, bin, dir, "-disable=floatcmp")
	if strings.Contains(stdout, ": floatcmp: ") {
		t.Errorf("-disable=floatcmp still reports floatcmp findings:\n%s", stdout)
	}
	if !strings.Contains(stdout, ": panicfree: ") {
		t.Errorf("-disable=floatcmp should leave the other checkers running:\n%s", stdout)
	}

	_, stderr, code := runIn(t, bin, dir, "-checkers=nosuch")
	if code != 2 || !strings.Contains(stderr, "unknown checker") {
		t.Errorf("unknown checker: exit %d stderr %q, want 2 with an unknown-checker error", code, stderr)
	}
}

func TestStaleBaselineReport(t *testing.T) {
	bin := buildArlint(t)
	base := filepath.Join(t.TempDir(), "baseline.json")
	entry := `{"version":1,"findings":[{"file":"gone.go","checker":"floatcmp","message":"long fixed"}]}`
	if err := os.WriteFile(base, []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runIn(t, bin, filepath.Join("testdata", "cleanmod"), "-baseline="+base)
	if code != 0 {
		t.Fatalf("stale entries must stay non-fatal on a clean module, exit = %d\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "stale baseline entry") || !strings.Contains(stderr, "gone.go") {
		t.Errorf("stderr does not report the stale entry: %q", stderr)
	}
}

// TestConcurrencyCheckers drives racecheck and lockorder end to end
// over a module with a seeded data race and an ABBA lock cycle, and
// checks the -checkers selection keeps every other checker quiet.
func TestConcurrencyCheckers(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "racemod"), "-checkers=racecheck,lockorder")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, ": racecheck: ") {
		t.Errorf("no racecheck finding for the unguarded counter:\n%s", stdout)
	}
	if !strings.Contains(stdout, ": lockorder: ") {
		t.Errorf("no lockorder finding for the ABBA cycle:\n%s", stdout)
	}
	for _, line := range strings.Split(strings.TrimRight(stdout, "\n"), "\n") {
		if !strings.Contains(line, ": racecheck: ") && !strings.Contains(line, ": lockorder: ") {
			t.Errorf("-checkers=racecheck,lockorder leaked another checker's finding: %q", line)
		}
	}
}

// TestParallelPerfCheckers drives spawnloop and falseshare end to end
// over a module whose convergence loop respawns its workers each
// iteration and parks their deltas in adjacent slots.
func TestParallelPerfCheckers(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "churnmod"), "-checkers=spawnloop,falseshare")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, ": spawnloop: ") || !strings.Contains(stdout, "persistent round-barriered worker pool") {
		t.Errorf("no spawnloop finding for the per-iteration respawn:\n%s", stdout)
	}
	if !strings.Contains(stdout, ": falseshare: ") || !strings.Contains(stdout, "share a cache line") {
		t.Errorf("no falseshare finding for the adjacent delta slots:\n%s", stdout)
	}
	for _, line := range strings.Split(strings.TrimRight(stdout, "\n"), "\n") {
		if !strings.Contains(line, ": spawnloop: ") && !strings.Contains(line, ": falseshare: ") {
			t.Errorf("-checkers=spawnloop,falseshare leaked another checker's finding: %q", line)
		}
	}
}

// TestCostReport exercises -report=cost: the convergence engine tops
// the ranking, the entry count honors -top, and unknown modes fail.
func TestCostReport(t *testing.T) {
	bin := buildArlint(t)
	dir := filepath.Join("testdata", "churnmod")

	stdout, stderr, code := runIn(t, bin, dir, "-report=cost", "-top=1")
	if code != 0 {
		t.Fatalf("-report=cost exit = %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "cost report: top 1 of 1 functions") {
		t.Errorf("report header does not honor -top:\n%s", stdout)
	}
	if !strings.Contains(stdout, "churnmod.Iterate") || !strings.Contains(stdout, "unbounded-loop") {
		t.Errorf("report does not rank the convergence engine as unbounded:\n%s", stdout)
	}
	if !strings.Contains(stdout, "spawn=") {
		t.Errorf("report is missing the site weights:\n%s", stdout)
	}

	if _, stderr, code := runIn(t, bin, dir, "-report=nosuch"); code != 2 || !strings.Contains(stderr, "unknown report mode") {
		t.Errorf("-report=nosuch: exit %d stderr %q, want 2 with an unknown-mode error", code, stderr)
	}
}

// TestPruneBaseline exercises -prune-baseline: stale entries are
// removed, matched entries survive, and a second prune is a no-op on
// identical bytes (idempotence).
func TestPruneBaseline(t *testing.T) {
	bin := buildArlint(t)
	dir := filepath.Join("testdata", "dirtymod")
	tmp := t.TempDir()

	// Record the module's real findings, then graft a stale entry on.
	clean := filepath.Join(tmp, "clean.json")
	if _, stderr, code := runIn(t, bin, dir, "-write-baseline="+clean); code != 0 {
		t.Fatalf("-write-baseline exit = %d\n%s", code, stderr)
	}
	cleanBytes, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	var file struct {
		Version  int                 `json:"version"`
		Findings []map[string]string `json:"findings"`
	}
	if err := json.Unmarshal(cleanBytes, &file); err != nil {
		t.Fatal(err)
	}
	file.Findings = append(file.Findings, map[string]string{
		"file": "gone.go", "checker": "floatcmp", "message": "long fixed",
	})
	mixedBytes, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	mixed := filepath.Join(tmp, "mixed.json")
	if err := os.WriteFile(mixed, mixedBytes, 0o644); err != nil {
		t.Fatal(err)
	}

	// First prune: the stale entry goes, the matched entries stay, and
	// the rewritten file round-trips to -write-baseline's exact bytes.
	_, stderr, code := runIn(t, bin, dir, "-baseline="+mixed, "-prune-baseline")
	if code != 0 {
		t.Fatalf("prune run exit = %d (the real findings should all be suppressed)\n%s", code, stderr)
	}
	if !strings.Contains(stderr, "pruned 1 stale baseline entry") {
		t.Errorf("stderr does not report the prune: %q", stderr)
	}
	pruned, err := os.ReadFile(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pruned, cleanBytes) {
		t.Errorf("pruned baseline differs from the freshly-written one:\n%s\nwant:\n%s", pruned, cleanBytes)
	}

	// Second prune: nothing stale, nothing rewritten.
	_, stderr, code = runIn(t, bin, dir, "-baseline="+mixed, "-prune-baseline")
	if code != 0 {
		t.Fatalf("second prune run exit = %d\n%s", code, stderr)
	}
	if strings.Contains(stderr, "pruned") {
		t.Errorf("second prune still pruned something: %q", stderr)
	}
	again, err := os.ReadFile(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, pruned) {
		t.Errorf("second prune changed the file: prune is not idempotent")
	}

	// -prune-baseline without -baseline is a usage error.
	if _, stderr, code := runIn(t, bin, dir, "-prune-baseline"); code != 2 || !strings.Contains(stderr, "-baseline") {
		t.Errorf("-prune-baseline alone: exit %d stderr %q, want 2 with a usage error", code, stderr)
	}
}

func TestBadPattern(t *testing.T) {
	bin := buildArlint(t)
	_, stderr, code := runIn(t, bin, filepath.Join("testdata", "cleanmod"), "./nonexistent/...")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for a pattern matching nothing\nstderr:\n%s", code, stderr)
	}
}

func TestSubtreePattern(t *testing.T) {
	bin := buildArlint(t)
	// From the repository root, restricting to a clean subtree must
	// exit 0 even though dirtymod-style fixtures exist elsewhere.
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	stdout, stderr, code := runIn(t, bin, root, "./internal/numeric")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
}
