module racemod

go 1.22
