// Package racemod is an e2e fixture for the concurrency checkers: an
// unguarded write-write race on a package-level counter, and an ABBA
// lock-order cycle between two mutexes.
package racemod

import "sync"

var (
	counter int
	muA     sync.Mutex
	muB     sync.Mutex
)

func race() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter++
	}()
	counter++
	wg.Wait()
}

func lockAB() {
	muA.Lock()
	muB.Lock()
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}
