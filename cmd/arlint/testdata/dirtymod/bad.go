// Package dirtymod violates several arlint invariants on purpose; the
// end-to-end test asserts the driver's exit code and output format.
package dirtymod

// SameScore compares floats exactly.
func SameScore(a, b float64) bool {
	return a == b
}

// Validate panics in library code.
func Validate(n int) {
	if n < 0 {
		panic("negative")
	}
}

// Config mirrors a ranker option struct.
type Config struct {
	Tolerance float64
}

func fill(c *Config) {
	if c.Tolerance == 0 {
		c.Tolerance = 1e-5
	}
}
