// Package churnmod seeds one spawnloop finding (goroutine churn inside
// a convergence loop) and one falseshare finding (adjacent per-worker
// delta slots) for the driver end-to-end tests.
package churnmod

import "sync"

// Iterate respawns its worker set on every convergence iteration and
// hands each worker an unpadded slot of one delta array.
func Iterate(next, cur []float64, parts int, tol float64) {
	partDeltas := make([]float64, parts)
	delta := tol + 1
	for delta > tol {
		var wg sync.WaitGroup
		for w := 0; w < parts; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				d := 0.0
				for v := w; v < len(next); v += parts {
					next[v] = 0.85 * cur[v]
					d += next[v] - cur[v]
				}
				partDeltas[w] = d
			}(w)
		}
		wg.Wait()
		delta = 0
		for _, d := range partDeltas {
			delta += d
		}
		next, cur = cur, next
	}
}
