module churnmod

go 1.22
