// Package cleanmod satisfies every arlint invariant.
package cleanmod

import "errors"

// Less orders scores with a tie-break instead of float equality.
func Less(s []float64, i, j int) bool {
	if s[i] > s[j] {
		return true
	}
	if s[i] < s[j] {
		return false
	}
	return i < j
}

// Validate returns an error instead of panicking.
func Validate(n int) error {
	if n < 0 {
		return errors.New("negative")
	}
	return nil
}
