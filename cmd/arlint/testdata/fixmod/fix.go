// Package fixmod carries mechanically fixable findings for the -fix
// end-to-end test: an ignored error call (rewritten to a sentinel
// discard) and a map-ordered score assembly (rewritten to iterate over
// sorted keys).
package fixmod

import "errors"

func work() error { return errors.New("boom") }

// Drop ignores the error result.
func Drop() {
	work()
}

// ComputeScores assembles the ranking in map-iteration order.
func ComputeScores(weights map[int]float64) []float64 {
	var scores []float64
	for id, w := range weights {
		_ = id
		scores = append(scores, w)
	}
	normalize(scores)
	return scores
}

func normalize(s []float64) {
	total := 0.0
	for _, v := range s {
		total += v
	}
	if total == 0 {
		return
	}
	for i := range s {
		s[i] /= total
	}
}
