package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// copyModule copies a testdata module into a temp dir so tests that
// write (baselines, fixes) never touch the checked-in fixtures.
func copyModule(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			t.Fatalf("fixture module %s has unexpected subdirectory %s", src, e.Name())
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestJSONFormat checks the -format=json schema: an array of findings
// with file/line/column/checker/message fields and stable checker IDs.
func TestJSONFormat(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "dirtymod"), "-format=json")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Checker string `json:"checker"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-format=json output is not a JSON finding array: %v\n%s", err, stdout)
	}
	if len(findings) == 0 {
		t.Fatal("no findings in JSON output for the dirty module")
	}
	known := map[string]bool{}
	for _, c := range allCheckers {
		known[c] = true
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Column <= 0 || f.Message == "" {
			t.Errorf("finding with missing fields: %+v", f)
		}
		if !known[f.Checker] {
			t.Errorf("finding has unknown checker ID %q", f.Checker)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding file %q is absolute; want module-root-relative", f.File)
		}
	}
}

// sarifLog mirrors the subset of SARIF 2.1.0 the driver emits and code
// scanning requires.
type sarifLog struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []struct {
		Tool struct {
			Driver struct {
				Name  string `json:"name"`
				Rules []struct {
					ID               string `json:"id"`
					ShortDescription struct {
						Text string `json:"text"`
					} `json:"shortDescription"`
				} `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []struct {
			RuleID    string `json:"ruleId"`
			RuleIndex int    `json:"ruleIndex"`
			Level     string `json:"level"`
			Message   struct {
				Text string `json:"text"`
			} `json:"message"`
			Locations []struct {
				PhysicalLocation struct {
					ArtifactLocation struct {
						URI string `json:"uri"`
					} `json:"artifactLocation"`
					Region struct {
						StartLine   int `json:"startLine"`
						StartColumn int `json:"startColumn"`
					} `json:"region"`
				} `json:"physicalLocation"`
			} `json:"locations"`
		} `json:"results"`
	} `json:"runs"`
}

// TestSARIFFormat validates the SARIF envelope: version 2.1.0, one run,
// a rule table carrying every checker, and results with physical
// locations.
func TestSARIFFormat(t *testing.T) {
	bin := buildArlint(t)
	stdout, stderr, code := runIn(t, bin, filepath.Join("testdata", "dirtymod"), "-format=sarif")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-format=sarif output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", log.Version)
	}
	if !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("sarif $schema = %q does not reference 2.1.0", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "arlint" {
		t.Errorf("tool name = %q, want arlint", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = i
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no short description", r.ID)
		}
	}
	for _, c := range allCheckers {
		if _, ok := ruleIDs[c]; !ok {
			t.Errorf("rule table missing checker %s", c)
		}
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for the dirty module")
	}
	for _, r := range run.Results {
		if idx, ok := ruleIDs[r.RuleID]; !ok {
			t.Errorf("result references unknown rule %q", r.RuleID)
		} else if r.RuleIndex != idx {
			t.Errorf("result ruleIndex = %d, want %d for rule %s", r.RuleIndex, idx, r.RuleID)
		}
		if r.Level != "warning" {
			t.Errorf("result level = %q, want warning", r.Level)
		}
		if r.Message.Text == "" {
			t.Error("result with empty message")
		}
		if len(r.Locations) != 1 {
			t.Errorf("result has %d locations, want 1", len(r.Locations))
			continue
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || strings.Contains(loc.ArtifactLocation.URI, `\`) {
			t.Errorf("bad artifact URI %q", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine <= 0 {
			t.Errorf("result region missing startLine: %+v", loc.Region)
		}
	}
}

// TestBaseline records the dirty module's findings, then checks that the
// baseline suppresses exactly those findings: the recorded module comes
// back clean, and a finding added afterwards still surfaces.
func TestBaseline(t *testing.T) {
	bin := buildArlint(t)
	dir := copyModule(t, filepath.Join("testdata", "dirtymod"))
	baseline := filepath.Join(dir, "arlint-baseline.json")

	if _, stderr, code := runIn(t, bin, dir, "-write-baseline", baseline); code != 0 {
		t.Fatalf("-write-baseline exit code = %d, want 0\nstderr:\n%s", code, stderr)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	var recorded struct {
		Version  int `json:"version"`
		Findings []struct {
			File    string `json:"file"`
			Checker string `json:"checker"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &recorded); err != nil {
		t.Fatalf("baseline is not valid JSON: %v", err)
	}
	if recorded.Version != 1 || len(recorded.Findings) == 0 {
		t.Fatalf("baseline version/findings = %d/%d, want 1/≥1", recorded.Version, len(recorded.Findings))
	}

	stdout, stderr, code := runIn(t, bin, dir, "-baseline", baseline)
	if code != 0 {
		t.Fatalf("baselined module not clean: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}

	// A finding introduced after the baseline must still surface — and
	// only that finding.
	extra := "package dirtymod\n\nfunc NewSin(a, b float64) bool { return a == b }\n"
	if err := os.WriteFile(filepath.Join(dir, "extra.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code = runIn(t, bin, dir, "-baseline", baseline)
	if code != 1 {
		t.Fatalf("new finding suppressed by stale baseline: exit %d\nstderr:\n%s", code, stderr)
	}
	lines := strings.Split(strings.TrimRight(stdout, "\n"), "\n")
	if len(lines) != 1 || !strings.Contains(lines[0], "extra.go") || !strings.Contains(lines[0], "floatcmp") {
		t.Fatalf("want exactly the new extra.go floatcmp finding, got:\n%s", stdout)
	}
}

// TestFixPipeline applies -fix to a module with fixable findings and
// checks that the module is clean afterwards and that a second -fix run
// changes nothing (idempotency).
func TestFixPipeline(t *testing.T) {
	bin := buildArlint(t)
	dir := copyModule(t, filepath.Join("testdata", "fixmod"))

	// The module starts dirty with fixable findings.
	stdout, _, code := runIn(t, bin, dir)
	if code != 1 {
		t.Fatalf("fixmod should start dirty, exit %d\n%s", code, stdout)
	}

	stdout, stderr, code := runIn(t, bin, dir, "-fix")
	if code != 0 {
		t.Fatalf("-fix left findings behind: exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "fixed fix.go") {
		t.Fatalf("-fix did not report fixing fix.go:\n%s", stderr)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "arlint:allow errflow") {
		t.Errorf("errflow fix did not insert a sentinel:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), "sort.Slice") {
		t.Errorf("maprange fix did not insert sorted-key iteration:\n%s", fixed)
	}
	if !strings.Contains(string(fixed), `"sort"`) {
		t.Errorf("maprange fix did not add the sort import:\n%s", fixed)
	}

	// Second -fix run: already clean, must change nothing.
	_, stderr, code = runIn(t, bin, dir, "-fix")
	if code != 0 {
		t.Fatalf("second -fix run not clean: exit %d\nstderr:\n%s", code, stderr)
	}
	if strings.Contains(stderr, "fixed") {
		t.Errorf("second -fix run rewrote files:\n%s", stderr)
	}
	again, err := os.ReadFile(filepath.Join(dir, "fix.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(fixed) {
		t.Errorf("-fix is not idempotent:\n--- first ---\n%s--- second ---\n%s", fixed, again)
	}
}

// TestBadFormat rejects unknown -format values with exit 2.
func TestBadFormat(t *testing.T) {
	bin := buildArlint(t)
	_, stderr, code := runIn(t, bin, ".", "-format=xml")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 for unknown format\nstderr:\n%s", code, stderr)
	}
}
