// arlint runs the repository's static-analysis suite (internal/analysis)
// over the module containing the current directory.
//
// Usage:
//
//	arlint [flags] [pattern ...]
//
// Patterns select packages by directory: `./...` (the default) analyzes
// the whole module, `./internal/...` a subtree, and a plain directory
// path a single package.
//
// Output formats (-format):
//
//	text   one finding per line: file:line:col: checker: message
//	json   a JSON array of {file, line, column, checker, message, fixable}
//	sarif  a SARIF 2.1.0 log for code-scanning upload
//
// Pipeline flags:
//
//	-checkers a,b         run only the named checkers
//	-disable a,b          run all but the named checkers
//	-baseline FILE        suppress the findings recorded in FILE; stale
//	                      entries (matching nothing) are reported to
//	                      stderr, non-fatally, so they can be pruned
//	-prune-baseline       with -baseline: rewrite FILE with the stale
//	                      entries removed (idempotent — a clean baseline
//	                      is left untouched)
//	-write-baseline FILE  record the current findings in FILE and exit 0
//	-fix                  apply suggested fixes, then re-analyze and
//	                      report what remains
//	-callgraph=dot        print the interprocedural call graph (with the
//	                      per-function effect summaries in the labels) as
//	                      Graphviz dot instead of running the checkers
//	-report=cost          print the top -top functions by modeled static
//	                      cost (loop depth × site weights, callees
//	                      inlined) with their heaviest call paths, instead
//	                      of running the checkers
//	-top N                entry count for -report=cost (default 20)
//
// `-list` prints the suite — one checker per line with its enabled
// state under the current -checkers/-disable selection and whether it
// supports -fix — and exits.
//
// Exit status is 0 when the module is clean (after baseline filtering
// and fixes), 1 when there are findings, and 2 when the module fails to
// load or type-check.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list the checkers (with enabled state and -fix support) and exit")
		checkers      = flag.String("checkers", "", "comma-separated checker names to run (default: all)")
		disable       = flag.String("disable", "", "comma-separated checker names to skip")
		format        = flag.String("format", "text", "output format: text, json or sarif")
		baselinePath  = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		pruneBaseline = flag.Bool("prune-baseline", false, "with -baseline: rewrite the baseline file with stale entries removed")
		writeBaseline = flag.String("write-baseline", "", "record current findings to this file and exit")
		fix           = flag.Bool("fix", false, "apply suggested fixes, then report remaining findings")
		callgraph     = flag.String("callgraph", "", "debug output: 'dot' prints the call graph with summaries and exits")
		report        = flag.String("report", "", "report mode: 'cost' prints the most expensive functions by the static cost model and exits")
		topN          = flag.Int("top", 20, "entry count for -report=cost")
	)
	flag.Parse()
	suite, err := selectCheckers(*checkers, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		os.Exit(2)
	}
	if *list {
		enabled := make(map[string]bool, len(suite))
		for _, a := range suite {
			enabled[a.Name] = true
		}
		for _, a := range analysis.All {
			state := "enabled"
			if !enabled[a.Name] {
				state = "disabled"
			}
			fixes := "     "
			if a.CanFix {
				fixes = "[fix]"
			}
			fmt.Printf("%-12s %-8s %s  %s\n", a.Name, state, fixes, a.Doc)
		}
		return
	}
	switch *callgraph {
	case "", "dot":
	default:
		fmt.Fprintf(os.Stderr, "arlint: unknown callgraph mode %q (want dot)\n", *callgraph)
		os.Exit(2)
	}
	if *callgraph == "dot" {
		os.Exit(withGraph(flag.Args(), func(g *analysis.CallGraph, sums *analysis.Summaries) error {
			return g.WriteDot(os.Stdout, sums)
		}))
	}
	switch *report {
	case "":
	case "cost":
		os.Exit(withGraph(flag.Args(), func(g *analysis.CallGraph, sums *analysis.Summaries) error {
			return g.WriteCostReport(os.Stdout, sums, *topN)
		}))
	default:
		fmt.Fprintf(os.Stderr, "arlint: unknown report mode %q (want cost)\n", *report)
		os.Exit(2)
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "arlint: unknown format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	if *pruneBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "arlint: -prune-baseline requires -baseline FILE")
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), suite, *format, *baselinePath, *writeBaseline, *fix, *pruneBaseline))
}

// selectCheckers resolves -checkers/-disable into the suite to run.
// Both flags name checkers from analysis.All, comma-separated; unknown
// names are an error rather than a silent no-op, so a typo cannot turn
// a checker off in CI unnoticed.
func selectCheckers(only, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(analysis.All))
	for _, a := range analysis.All {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if strings.TrimSpace(csv) == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("-%s: unknown checker %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	keep, err := parse("checkers", only)
	if err != nil {
		return nil, err
	}
	off, err := parse("disable", disable)
	if err != nil {
		return nil, err
	}
	var suite []*analysis.Analyzer
	for _, a := range analysis.All {
		if keep != nil && !keep[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		suite = append(suite, a)
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("the -checkers/-disable selection leaves no checkers to run")
	}
	return suite, nil
}

func run(patterns []string, suite []*analysis.Analyzer, format, baselinePath, writeBaseline string, fix, pruneBaseline bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}

	diags, npkgs, code := analyze(root, cwd, patterns, suite)
	if code != 0 {
		return code
	}

	if fix {
		fixed, err := analysis.ApplyFixes(analysisFset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		for _, f := range fixed {
			fmt.Fprintf(os.Stderr, "arlint: fixed %s\n", relTo(cwd, f))
		}
		if len(fixed) > 0 {
			// The files changed under the loaded ASTs; re-analyze from disk.
			diags, npkgs, code = analyze(root, cwd, patterns, suite)
			if code != 0 {
				return code
			}
		}
	}

	if writeBaseline != "" {
		if err := analysis.WriteBaseline(writeBaseline, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "arlint: recorded %d finding(s) in %s\n", len(diags), writeBaseline)
		return 0
	}
	if baselinePath != "" {
		base, err := analysis.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		filtered, stale := base.Filter(diags, root)
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "arlint: stale baseline entry (matches no finding): %s\n", s)
		}
		if len(stale) > 0 {
			if pruneBaseline {
				// Prune against the unfiltered findings: entries that
				// matched must survive the rewrite.
				removed, err := analysis.PruneBaseline(baselinePath, diags, root)
				if err != nil {
					fmt.Fprintln(os.Stderr, "arlint:", err)
					return 2
				}
				fmt.Fprintf(os.Stderr, "arlint: pruned %d stale baseline entr%s from %s\n",
					removed, map[bool]string{true: "y", false: "ies"}[removed == 1], baselinePath)
			} else {
				fmt.Fprintf(os.Stderr, "arlint: %d stale baseline entr%s in %s; re-run with -prune-baseline to remove\n",
					len(stale), map[bool]string{true: "y", false: "ies"}[len(stale) == 1], baselinePath)
			}
		}
		diags = filtered
	}

	switch format {
	case "json":
		if err := analysis.WriteJSON(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, analysis.All, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relTo(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arlint: %d finding(s) in %d package(s)\n", len(diags), npkgs)
		return 1
	}
	return 0
}

// analysisFset is the FileSet of the most recent analyze call; fixes
// must resolve their positions against it.
var analysisFset *token.FileSet

// analyze loads the module, selects packages by pattern and runs the
// selected checker suite. Returns the findings, the number of packages
// analyzed, and a non-zero exit code on load failure.
func analyze(root, cwd string, patterns []string, suite []*analysis.Analyzer) ([]analysis.Diagnostic, int, int) {
	loader := analysis.NewLoader()
	analysisFset = loader.Fset
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return nil, 0, 2
	}
	selected, err := selectPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return nil, 0, 2
	}
	return analysis.Run(selected, suite), len(selected), 0
}

// withGraph loads the selected packages, builds the call graph and
// summaries exactly as Run would, and hands them to render — the shared
// driver for the non-checking modes (-callgraph=dot, -report=cost).
func withGraph(patterns []string, render func(*analysis.CallGraph, *analysis.Summaries) error) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	selected, err := selectPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	graph := analysis.BuildCallGraph(selected)
	sums := analysis.ComputeSummaries(graph)
	if err := render(graph, sums); err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	return 0
}

// relTo renders file relative to dir when it lies below it.
func relTo(dir, file string) string {
	//arlint:allow errflow a failed Rel falls back to the absolute path by design
	if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// selectPackages filters pkgs by directory patterns resolved against
// cwd. An empty pattern list means "./...".
func selectPackages(pkgs []*analysis.Package, cwd string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		matched := false
		for _, pkg := range pkgs {
			ok := pkg.Dir == dir
			if recursive && !ok {
				ok = strings.HasPrefix(pkg.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return out, nil
}
