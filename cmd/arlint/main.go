// arlint runs the repository's static-analysis suite (internal/analysis)
// over the module containing the current directory.
//
// Usage:
//
//	arlint [-list] [pattern ...]
//
// Patterns select packages by directory: `./...` (the default) analyzes
// the whole module, `./internal/...` a subtree, and a plain directory
// path a single package. Diagnostics are printed one per line as
//
//	file:line:col: checker: message
//
// with file paths relative to the current directory. Exit status is 0
// when the module is clean, 1 when there are findings, and 2 when the
// module fails to load or type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the checkers and exit")
	flag.Parse()
	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	os.Exit(run(flag.Args()))
}

func run(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	pkgs, err := analysis.NewLoader().LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	selected, err := selectPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}

	diags := analysis.Run(selected, analysis.All)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arlint: %d finding(s) in %d package(s)\n", len(diags), len(selected))
		return 1
	}
	return 0
}

// selectPackages filters pkgs by directory patterns resolved against
// cwd. An empty pattern list means "./...".
func selectPackages(pkgs []*analysis.Package, cwd string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		matched := false
		for _, pkg := range pkgs {
			ok := pkg.Dir == dir
			if recursive && !ok {
				ok = strings.HasPrefix(pkg.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return out, nil
}
