// arlint runs the repository's static-analysis suite (internal/analysis)
// over the module containing the current directory.
//
// Usage:
//
//	arlint [flags] [pattern ...]
//
// Patterns select packages by directory: `./...` (the default) analyzes
// the whole module, `./internal/...` a subtree, and a plain directory
// path a single package.
//
// Output formats (-format):
//
//	text   one finding per line: file:line:col: checker: message
//	json   a JSON array of {file, line, column, checker, message, fixable}
//	sarif  a SARIF 2.1.0 log for code-scanning upload
//
// Pipeline flags:
//
//	-baseline FILE        suppress the findings recorded in FILE
//	-write-baseline FILE  record the current findings in FILE and exit 0
//	-fix                  apply suggested fixes, then re-analyze and
//	                      report what remains
//	-callgraph=dot        print the interprocedural call graph (with the
//	                      per-function effect summaries in the labels) as
//	                      Graphviz dot instead of running the checkers
//
// Exit status is 0 when the module is clean (after baseline filtering
// and fixes), 1 when there are findings, and 2 when the module fails to
// load or type-check.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		list          = flag.Bool("list", false, "list the checkers and exit")
		format        = flag.String("format", "text", "output format: text, json or sarif")
		baselinePath  = flag.String("baseline", "", "suppress findings recorded in this baseline file")
		writeBaseline = flag.String("write-baseline", "", "record current findings to this file and exit")
		fix           = flag.Bool("fix", false, "apply suggested fixes, then report remaining findings")
		callgraph     = flag.String("callgraph", "", "debug output: 'dot' prints the call graph with summaries and exits")
	)
	flag.Parse()
	if *list {
		for _, a := range analysis.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	switch *callgraph {
	case "", "dot":
	default:
		fmt.Fprintf(os.Stderr, "arlint: unknown callgraph mode %q (want dot)\n", *callgraph)
		os.Exit(2)
	}
	if *callgraph == "dot" {
		os.Exit(dumpCallGraph(flag.Args()))
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "arlint: unknown format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	os.Exit(run(flag.Args(), *format, *baselinePath, *writeBaseline, *fix))
}

func run(patterns []string, format, baselinePath, writeBaseline string, fix bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}

	diags, npkgs, code := analyze(root, cwd, patterns)
	if code != 0 {
		return code
	}

	if fix {
		fixed, err := analysis.ApplyFixes(analysisFset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		for _, f := range fixed {
			fmt.Fprintf(os.Stderr, "arlint: fixed %s\n", relTo(cwd, f))
		}
		if len(fixed) > 0 {
			// The files changed under the loaded ASTs; re-analyze from disk.
			diags, npkgs, code = analyze(root, cwd, patterns)
			if code != 0 {
				return code
			}
		}
	}

	if writeBaseline != "" {
		if err := analysis.WriteBaseline(writeBaseline, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "arlint: recorded %d finding(s) in %s\n", len(diags), writeBaseline)
		return 0
	}
	if baselinePath != "" {
		base, err := analysis.LoadBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
		diags = base.Filter(diags, root)
	}

	switch format {
	case "json":
		if err := analysis.WriteJSON(os.Stdout, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
	case "sarif":
		if err := analysis.WriteSARIF(os.Stdout, analysis.All, diags, root); err != nil {
			fmt.Fprintln(os.Stderr, "arlint:", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relTo(cwd, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arlint: %d finding(s) in %d package(s)\n", len(diags), npkgs)
		return 1
	}
	return 0
}

// analysisFset is the FileSet of the most recent analyze call; fixes
// must resolve their positions against it.
var analysisFset *token.FileSet

// analyze loads the module, selects packages by pattern and runs the
// full suite. Returns the findings, the number of packages analyzed,
// and a non-zero exit code on load failure.
func analyze(root, cwd string, patterns []string) ([]analysis.Diagnostic, int, int) {
	loader := analysis.NewLoader()
	analysisFset = loader.Fset
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return nil, 0, 2
	}
	selected, err := selectPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return nil, 0, 2
	}
	return analysis.Run(selected, analysis.All), len(selected), 0
}

// dumpCallGraph loads the selected packages, builds the call graph and
// summaries exactly as Run would, and writes the graph as Graphviz dot
// on stdout (-callgraph=dot).
func dumpCallGraph(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	loader := analysis.NewLoader()
	pkgs, err := loader.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	selected, err := selectPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	graph := analysis.BuildCallGraph(selected)
	sums := analysis.ComputeSummaries(graph)
	if err := graph.WriteDot(os.Stdout, sums); err != nil {
		fmt.Fprintln(os.Stderr, "arlint:", err)
		return 2
	}
	return 0
}

// relTo renders file relative to dir when it lies below it.
func relTo(dir, file string) string {
	//arlint:allow errflow a failed Rel falls back to the absolute path by design
	if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return file
}

// selectPackages filters pkgs by directory patterns resolved against
// cwd. An empty pattern list means "./...".
func selectPackages(pkgs []*analysis.Package, cwd string, patterns []string) ([]*analysis.Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []*analysis.Package
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		matched := false
		for _, pkg := range pkgs {
			ok := pkg.Dir == dir
			if recursive && !ok {
				ok = strings.HasPrefix(pkg.Dir, dir+string(filepath.Separator))
			}
			if ok {
				matched = true
				if !seen[pkg.Path] {
					seen[pkg.Path] = true
					out = append(out, pkg)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	return out, nil
}
