// Command rankd is the ranking-as-a-service daemon: it preprocesses one
// global graph at startup and serves subgraph-rank and hybrid search
// queries over HTTP with warm caches, request coalescing, and bounded
// admission (see internal/serve).
//
// Usage:
//
//	rankd -graph web.bin [-addr :8080] [flags]
//	rankd -synthetic 100000 [-seed 1] [-addr :8080] [flags]
//
// -graph loads a graph file (text, v1, or v2 binary — detected by
// content, not name); a v2 file is memory-mapped by default, so startup
// cost and resident heap are independent of graph size (disable with
// -mmap=false). -synthetic generates an N-page web in-process instead,
// with term bags assigned so /v1/search works out of the box. Capacity
// knobs:
//
//	-cache-entries N   LRU capacity (cached subgraph chains + scores)
//	-max-inflight N    concurrent computations admitted
//	-max-queue N       requests allowed to wait for admission (429 beyond)
//	-request-timeout D default per-request budget (503 when exceeded)
//	-max-timeout D     cap on a request-supplied timeout_ms
//	-disk-cache PATH   persistent score cache, loaded at startup and
//	                   saved on graceful shutdown, so restarts are warm
//
// Endpoints: POST /v1/rank, POST /v1/search, GET /v1/stats.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	graphPath := flag.String("graph", "", "input graph file (or use -synthetic)")
	synthetic := flag.Int("synthetic", 0, "generate an N-page synthetic web instead of loading -graph")
	seed := flag.Int64("seed", 1, "generation seed for -synthetic")
	eps := flag.Float64("eps", 0.85, "default damping factor")
	tol := flag.Float64("tol", 1e-5, "default L1 convergence tolerance")
	parallelism := flag.Int("parallelism", 0, "workers per power iteration (0 = sequential, <0 = CPU count)")
	cacheEntries := flag.Int("cache-entries", 1024, "LRU capacity in cached subgraphs")
	maxInFlight := flag.Int("max-inflight", 0, "max concurrent computations (0 = CPU count)")
	maxQueue := flag.Int("max-queue", 0, "max requests waiting for admission (0 = 4x max-inflight)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "default per-request compute budget")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on request-supplied timeouts")
	diskCache := flag.String("disk-cache", "", "persistent score cache file (optional)")
	useMmap := flag.Bool("mmap", true, "memory-map v2 graph files instead of copying them onto the heap")
	flag.Parse()

	if (*graphPath == "") == (*synthetic == 0) {
		fmt.Fprintln(os.Stderr, "rankd: exactly one of -graph or -synthetic is required")
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM initiate a graceful drain: stop accepting, finish
	// in-flight requests, save the disk cache, exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		g     *graph.Graph
		terms [][]uint32
		err   error
	)
	if *synthetic > 0 {
		var ds *gen.Dataset
		ds, err = gen.Generate(gen.Config{Pages: *synthetic, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		g = ds.Graph
		terms, err = gen.AssignTerms(ds, gen.TermConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rankd: generated %d-page synthetic web (seed %d), term corpus attached\n", *synthetic, *seed)
	} else {
		how := "loaded"
		format, err := graph.SniffFile(*graphPath)
		if err != nil {
			fatal(err)
		}
		if format == graph.FormatV2 && *useMmap {
			g, err = graph.MmapFile(*graphPath)
			how = "mapped"
		} else {
			g, err = graph.LoadFile(*graphPath)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rankd: %s %s: %d pages, %d links (search disabled: no term corpus)\n",
			how, *graphPath, g.NumNodes(), g.NumEdges())
	}

	srv, err := serve.NewServer(serve.Options{
		Context:        core.NewContext(g),
		Terms:          terms,
		Rank:           core.Config{Epsilon: *eps, Tolerance: *tol, Parallelism: *parallelism},
		CacheEntries:   *cacheEntries,
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		RequestTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBatch:       256,
		DiskCache:      *diskCache,
		BaseContext:    ctx,
	})
	if err != nil {
		fatal(err)
	}
	if *diskCache != "" {
		n, err := srv.LoadDiskCache()
		if err != nil {
			fmt.Fprintln(os.Stderr, "rankd: warm start failed (continuing cold):", err)
		} else {
			fmt.Printf("rankd: disk cache: %d subgraph entries warm\n", n)
		}
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintln(os.Stderr, "rankd: shutdown:", err)
		}
	}()

	fmt.Printf("rankd: serving on %s\n", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	<-shutdownDone
	if err := srv.SaveDiskCache(); err != nil {
		fatal(err)
	}
	if *diskCache != "" {
		fmt.Printf("rankd: disk cache saved to %s\n", *diskCache)
	}
	// Unmap last: the server's context, chains, and kernel snapshots all
	// alias the mapped CSR, so the mapping must outlive the drain and the
	// cache save above. Heap-backed graphs make this a no-op.
	if err := g.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rankd:", err)
	os.Exit(1)
}
