// Command pagerank computes global PageRank scores for a graph file and
// prints the top-ranked pages (or writes the full vector).
//
// Usage:
//
//	pagerank -graph web.bin [-eps 0.85] [-tol 1e-5] [-top 20] [-out scores.txt]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

func main() {
	path := flag.String("graph", "", "input graph file (required)")
	eps := flag.Float64("eps", 0.85, "damping factor")
	tol := flag.Float64("tol", 1e-5, "L1 convergence tolerance")
	top := flag.Int("top", 20, "print the top-K pages")
	out := flag.String("out", "", "optional output file for the full score vector")
	flag.Parse()

	if *path == "" {
		fmt.Fprintln(os.Stderr, "pagerank: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C / SIGTERM aborts the power iteration cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	g, err := graph.LoadFile(*path)
	if err != nil {
		fatal(err)
	}
	res, err := pagerank.ComputeCtx(ctx, g, pagerank.Options{Epsilon: *eps, Tolerance: *tol})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d pages, %d links; converged=%v after %d iterations in %v\n",
		g.NumNodes(), g.NumEdges(), res.Converged, res.Iterations, res.Elapsed.Round(1000000))

	idx := make([]int, len(res.Scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if res.Scores[idx[a]] > res.Scores[idx[b]] {
			return true
		}
		if res.Scores[idx[a]] < res.Scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	k := *top
	if k > len(idx) {
		k = len(idx)
	}
	fmt.Println("rank  page        score")
	for i := 0; i < k; i++ {
		fmt.Printf("%4d  %-10d  %.8f\n", i+1, idx[i], res.Scores[idx[i]])
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for p, s := range res.Scores {
			fmt.Fprintf(w, "%d %.12g\n", p, s)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote full score vector to %s\n", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pagerank:", err)
	os.Exit(1)
}
