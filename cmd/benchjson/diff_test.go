package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifact(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldArtifact = `[
  {"name":"ApproxRank","pkg":"repro/internal/core","iterations":100,
   "metrics":{"ns/op":1000000,"allocs/op":40,"B/op":500000}},
  {"name":"RankMany/workers=4","pkg":"repro/internal/core","iterations":50,
   "metrics":{"ns/op":2000000,"allocs/op":300}},
  {"name":"Removed","pkg":"repro/internal/core","iterations":10,
   "metrics":{"ns/op":5}}
]`

func TestDiffCleanRun(t *testing.T) {
	dir := t.TempDir()
	oldP := writeArtifact(t, dir, "old.json", oldArtifact)
	// Faster and leaner across the board, plus a brand-new benchmark.
	newP := writeArtifact(t, dir, "new.json", `[
	  {"name":"ApproxRank","pkg":"repro/internal/core","iterations":100,
	   "metrics":{"ns/op":900000,"allocs/op":16,"B/op":350000}},
	  {"name":"RankMany/workers=4","pkg":"repro/internal/core","iterations":50,
	   "metrics":{"ns/op":1500000,"allocs/op":140}},
	  {"name":"Added","pkg":"repro/internal/core","iterations":10,
	   "metrics":{"ns/op":7}}
	]`)
	var out, errw strings.Builder
	if code := runDiff(oldP, newP, 10, &out, &errw); code != 0 {
		t.Fatalf("runDiff = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "ApproxRank") || !strings.Contains(out.String(), "-60.0%") {
		t.Errorf("table missing improvement row:\n%s", out.String())
	}
	// Missing-on-either-side benchmarks warn but do not fail.
	if !strings.Contains(errw.String(), "Removed") || !strings.Contains(errw.String(), "Added") {
		t.Errorf("expected coverage warnings, got: %s", errw.String())
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	dir := t.TempDir()
	oldP := writeArtifact(t, dir, "old.json", oldArtifact)
	// ns/op regressed 50% on one benchmark, allocs doubled on another.
	newP := writeArtifact(t, dir, "new.json", `[
	  {"name":"ApproxRank","pkg":"repro/internal/core","iterations":100,
	   "metrics":{"ns/op":1500000,"allocs/op":40}},
	  {"name":"RankMany/workers=4","pkg":"repro/internal/core","iterations":50,
	   "metrics":{"ns/op":2000000,"allocs/op":600}},
	  {"name":"Removed","pkg":"repro/internal/core","iterations":10,
	   "metrics":{"ns/op":5}}
	]`)
	var out, errw strings.Builder
	if code := runDiff(oldP, newP, 10, &out, &errw); code != 1 {
		t.Fatalf("runDiff = %d, want 1\nstdout: %s", code, out.String())
	}
	if got := strings.Count(out.String(), "REGRESSION"); got != 2 {
		t.Errorf("want 2 REGRESSION marks, got %d:\n%s", got, out.String())
	}
	if !strings.Contains(errw.String(), "regressed more than 10.0%") {
		t.Errorf("stderr = %q", errw.String())
	}
	// A looser threshold lets the same artifacts pass.
	out.Reset()
	errw.Reset()
	if code := runDiff(oldP, newP, 120, &out, &errw); code != 0 {
		t.Fatalf("runDiff(threshold=120) = %d, want 0\nstderr: %s", code, errw.String())
	}
}

func TestDiffZeroToNonzeroAllocs(t *testing.T) {
	rows, _, _ := diffResults(
		[]Result{{Name: "X", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 0}}},
		[]Result{{Name: "X", Metrics: map[string]float64{"ns/op": 100, "allocs/op": 3}}},
		50)
	var found bool
	for _, r := range rows {
		if r.Metric == "allocs/op" {
			found = true
			if !r.Regression || !math.IsInf(r.DeltaPct, 1) {
				t.Errorf("0→3 allocs/op must regress: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("no allocs/op row")
	}
}

func TestDiffBadArtifacts(t *testing.T) {
	dir := t.TempDir()
	good := writeArtifact(t, dir, "good.json", oldArtifact)
	empty := writeArtifact(t, dir, "empty.json", `[]`)
	garbage := writeArtifact(t, dir, "garbage.json", `{not json`)
	for _, tc := range []struct{ name, oldP, newP string }{
		{"missing file", filepath.Join(dir, "nope.json"), good},
		{"empty artifact", good, empty},
		{"garbage", garbage, good},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := runDiff(tc.oldP, tc.newP, 10, &out, &errw); code != 1 {
				t.Fatalf("runDiff = %d, want 1", code)
			}
			if errw.Len() == 0 {
				t.Error("expected a diagnostic on stderr")
			}
		})
	}
}
