package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// diffMetrics are the metrics a -diff run compares. ns/op catches time
// regressions; allocs/op catches hot-path allocation creep — the two
// budgets the kernel layer exists to protect. B/op and custom units are
// reported in the artifact but not gated: they track ns/op and allocs/op
// closely enough that gating them too would only double the noise
// surface.
var diffMetrics = []string{"ns/op", "allocs/op"}

// diffRow is one (benchmark, metric) comparison.
type diffRow struct {
	Key        string  // pkg-qualified benchmark name
	Metric     string  // ns/op or allocs/op
	Old, New   float64 // metric values in the two artifacts
	DeltaPct   float64 // (New-Old)/Old in percent
	Regression bool    // DeltaPct exceeded the threshold
}

// runDiff implements `benchjson -diff [-threshold pct] old.json new.json`:
// it loads two artifacts produced by benchjson, compares ns/op and
// allocs/op for every benchmark present in both, prints a comparison
// table, and exits non-zero when any metric regressed by more than
// thresholdPct percent. Benchmarks present in only one artifact are
// warned about but never fail the diff — renames and additions are
// routine; silent coverage loss is not.
func runDiff(oldPath, newPath string, thresholdPct float64, out, errw io.Writer) int {
	oldRes, err := loadArtifact(oldPath)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	newRes, err := loadArtifact(newPath)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}

	rows, onlyOld, onlyNew := diffResults(oldRes, newRes, thresholdPct)
	for _, k := range onlyOld {
		fmt.Fprintf(errw, "benchjson: warning: %s present only in %s (benchmark removed?)\n", k, oldPath)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(errw, "benchjson: warning: %s present only in %s (new benchmark, no baseline)\n", k, newPath)
	}

	regressions := 0
	fmt.Fprintf(out, "%-52s %-10s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	for _, r := range rows {
		mark := ""
		if r.Regression {
			mark = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "%-52s %-10s %14.6g %14.6g %+8.1f%%%s\n", r.Key, r.Metric, r.Old, r.New, r.DeltaPct, mark)
	}
	if regressions > 0 {
		fmt.Fprintf(errw, "benchjson: %d metric(s) regressed more than %.1f%%\n", regressions, thresholdPct)
		return 1
	}
	return 0
}

// diffResults pairs the two artifacts by pkg-qualified name and compares
// each gated metric, returning the comparison rows (sorted by key, then
// metric) and the keys present in only one artifact.
func diffResults(oldRes, newRes []Result, thresholdPct float64) (rows []diffRow, onlyOld, onlyNew []string) {
	oldBy := indexByKey(oldRes)
	newBy := indexByKey(newRes)
	for k := range oldBy {
		if _, ok := newBy[k]; !ok {
			onlyOld = append(onlyOld, k)
		}
	}
	for k, nr := range newBy {
		or, ok := oldBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		for _, m := range diffMetrics {
			ov, okOld := or.Metrics[m]
			nv, okNew := nr.Metrics[m]
			if !okOld || !okNew {
				continue // e.g. allocs/op absent when -benchmem was off
			}
			row := diffRow{Key: k, Metric: m, Old: ov, New: nv}
			switch {
			case ov > 0:
				row.DeltaPct = (nv - ov) / ov * 100
				row.Regression = row.DeltaPct > thresholdPct
			case nv > 0:
				// From zero to non-zero: infinite relative growth. Only
				// plausible for allocs/op, where it is always real creep.
				row.DeltaPct = math.Inf(1)
				row.Regression = true
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Key != rows[j].Key {
			return rows[i].Key < rows[j].Key
		}
		return rows[i].Metric < rows[j].Metric
	})
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}

// indexByKey maps pkg-qualified benchmark names to results. Procs is
// deliberately not part of the key: CI runners differ in core count, and
// a name collision across proc counts within one artifact is reported by
// keeping the LAST entry (matching go test, which runs them in order).
func indexByKey(results []Result) map[string]Result {
	by := make(map[string]Result, len(results))
	for _, r := range results {
		key := r.Name
		if r.Pkg != "" {
			key = r.Pkg + "." + r.Name
		}
		by[key] = r
	}
	return by
}

// loadArtifact reads one benchjson output file.
func loadArtifact(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return results, nil
}
