package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro/internal/core
BenchmarkApproxRank-8    120    9876543 ns/op    4096 B/op    12 allocs/op
BenchmarkRankMany/workers=4-8    50    222222 ns/op
PASS
ok  	repro/internal/core	2.345s
`

func TestRunParsesBenchOutput(t *testing.T) {
	var out, errw strings.Builder
	if code := run(strings.NewReader(sampleBench), &out, &errw); code != 0 {
		t.Fatalf("run = %d, want 0 (stderr: %q)", code, errw.String())
	}
	var results []Result
	if err := json.Unmarshal([]byte(out.String()), &results); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "ApproxRank" || r.Procs != 8 || r.Pkg != "repro/internal/core" {
		t.Errorf("unexpected first result: %+v", r)
	}
	if r.Metrics["ns/op"] != 9876543 || r.Metrics["allocs/op"] != 12 {
		t.Errorf("unexpected metrics: %v", r.Metrics)
	}
	if results[1].Name != "RankMany/workers=4" {
		t.Errorf("sub-benchmark name = %q", results[1].Name)
	}
}

// TestRunEmptyInputExitsBeforeEncoding is the regression test for the
// order-of-operations bug: with no benchmark lines on stdin, benchjson
// must exit 1 and print NOTHING on stdout — previously it emitted an
// empty JSON array first and only then noticed the input was empty, so a
// pipeline writing the output to a file captured a plausible-looking
// (but vacuous) artifact alongside the failure.
func TestRunEmptyInputExitsBeforeEncoding(t *testing.T) {
	for _, tc := range []struct {
		name, in string
	}{
		{"empty", ""},
		{"no bench lines", "goos: linux\nPASS\nok  \trepro/internal/core\t0.1s\n"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errw strings.Builder
			if code := run(strings.NewReader(tc.in), &out, &errw); code != 1 {
				t.Fatalf("run = %d, want 1", code)
			}
			if out.Len() != 0 {
				t.Errorf("stdout not empty: %q", out.String())
			}
			if !strings.Contains(errw.String(), "no benchmark lines") {
				t.Errorf("stderr = %q, want a 'no benchmark lines' diagnostic", errw.String())
			}
		})
	}
}
