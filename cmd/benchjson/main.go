// benchjson converts `go test -bench` text output on stdin into a JSON
// document on stdout, so benchmark numbers land in a machine-readable
// artifact (`make bench` writes BENCH_core.json) instead of a terminal
// scrollback.
//
// Each benchmark result line
//
//	BenchmarkApproxRank-8    120    9876543 ns/op    4096 B/op    12 allocs/op    34 iterations
//
// becomes one object: the trailing value/unit pairs — the standard
// ns/op, B/op, allocs/op plus any custom b.ReportMetric units — are
// collected into the metrics map verbatim, keyed by unit.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./internal/core/ | benchjson
//
// With -diff, benchjson instead compares two of its own artifacts and
// gates on regressions (see runDiff):
//
//	benchjson -diff [-threshold pct] old.json new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line, parsed.
type Result struct {
	// Name is the benchmark name without the Benchmark prefix, with the
	// -<procs> suffix split off (sub-benchmark paths are preserved:
	// "RankMany/workers=4").
	Name string `json:"name"`
	// Pkg is the package the result came from (the preceding "pkg:" line).
	Pkg string `json:"pkg,omitempty"`
	// Procs is the GOMAXPROCS suffix of the name (0 if absent).
	Procs int `json:"procs,omitempty"`
	// Iterations is the b.N the reported means were averaged over.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every value/unit pair on the line:
	// ns/op, B/op, allocs/op, MB/s and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

func main() {
	diff := flag.Bool("diff", false, "compare two benchjson artifacts: benchjson -diff [-threshold pct] old.json new.json")
	threshold := flag.Float64("threshold", 10, "with -diff, max allowed percent regression in ns/op or allocs/op")
	flag.Parse()
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two artifacts: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout, os.Stderr))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "benchjson: reads `go test -bench` output on stdin; positional arguments need -diff")
		os.Exit(2)
	}
	os.Exit(run(os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of main. The zero-results check happens
// BEFORE anything is encoded: input with no benchmark lines must exit 1
// without printing an empty JSON array that a downstream consumer would
// happily treat as a successful (if benchmark-free) run.
func run(in io.Reader, out, errw io.Writer) int {
	results, err := parse(bufio.NewScanner(in))
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	if len(results) == 0 {
		fmt.Fprintln(errw, "benchjson: no benchmark lines on stdin")
		return 1
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 1
	}
	return 0
}

func parse(sc *bufio.Scanner) ([]Result, error) {
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	results := []Result{}
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is name, iteration count, then value/unit pairs;
		// a bare "BenchmarkX" header line without numbers is skipped.
		if len(fields) < 4 || (len(fields)-2)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Pkg:        pkg,
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		// Split the -<procs> suffix off the last path element.
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Procs = procs
				r.Name = r.Name[:i]
			}
		}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			r.Metrics[fields[i+1]] = v
		}
		if bad {
			continue
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
