// Command graphconv converts graph files between the supported on-disk
// formats — text edge list, compact v1 binary, and the zero-copy v2
// binary — detecting the input format by magic bytes, never by name.
//
// Usage:
//
//	graphconv -in old.bin -out new.v2 [-format auto|v2|v1|text]
//
// The default -format auto chooses by the output extension the same way
// SaveFile does (.txt/.edges → text, .v1 → v1, else v2). Conversion is
// single-copy: the input is decoded into one in-memory CSR and the
// output streamed from those same arrays (the v2 writer in particular
// writes the slice memory verbatim), so converting an N-byte graph
// needs one graph's worth of memory, not two.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/graph"
)

func main() {
	in := flag.String("in", "", "input graph file (required; format sniffed from magic bytes)")
	out := flag.String("out", "", "output graph file (required)")
	format := flag.String("format", "auto", "output format: auto, v2, v1, or text")
	flag.Parse()
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "graphconv: -in and -out are required")
		flag.Usage()
		os.Exit(2)
	}

	inFmt, err := graph.SniffFile(*in)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	g, err := graph.LoadFile(*in)
	if err != nil {
		fatal(err)
	}
	loadDur := time.Since(start)

	start = time.Now()
	if err := save(*out, *format, g); err != nil {
		fatal(err)
	}
	writeDur := time.Since(start)

	fmt.Printf("converted %s (%s) -> %s: %d nodes, %d edges, load %v, write %v\n",
		*in, inFmt, *out, g.NumNodes(), g.NumEdges(), loadDur.Round(time.Millisecond), writeDur.Round(time.Millisecond))
}

func save(path, format string, g *graph.Graph) error {
	if format == "auto" {
		return graph.SaveFile(path, g)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "v2":
		err = graph.WriteBinaryV2(f, g)
	case "v1":
		err = graph.WriteBinary(f, g)
	case "text":
		err = graph.WriteEdgeList(f, g)
	default:
		return fmt.Errorf("graphconv: unknown format %q", format)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphconv:", err)
	os.Exit(1)
}
