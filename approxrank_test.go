package approxrank_test

import (
	"math"
	"testing"

	approxrank "repro"
)

// fig4 builds the paper's worked-example global graph through the public
// API.
func fig4(t testing.TB) (*approxrank.Graph, *approxrank.Subgraph) {
	t.Helper()
	g := approxrank.MustFromEdges(7, [][2]approxrank.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {0, 6},
		{1, 3},
		{2, 1}, {2, 3},
		{3, 0},
		{4, 2}, {4, 5}, {4, 6},
		{5, 2}, {5, 4},
		{6, 2}, {6, 3},
	})
	sub, err := approxrank.NewSubgraph(g, []approxrank.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

// TestPublicAPIQuickstart walks the full quickstart flow through the
// facade: global PageRank, IdealRank exactness, ApproxRank proximity.
func TestPublicAPIQuickstart(t *testing.T) {
	g, sub := fig4(t)
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	ideal, err := approxrank.IdealRank(sub, global.Scores, approxrank.Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("IdealRank: %v", err)
	}
	for li, gid := range sub.Local {
		if math.Abs(ideal.Scores[li]-global.Scores[gid]) > 1e-8 {
			t.Errorf("IdealRank[%d] = %v, want %v", li, ideal.Scores[li], global.Scores[gid])
		}
	}
	ap, err := approxrank.ApproxRank(sub, approxrank.Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	// ApproxRank must preserve the ordering on this example (footrule 0).
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = global.Scores[gid]
	}
	approxrank.Normalize(truth)
	est := append([]float64(nil), ap.Scores...)
	approxrank.Normalize(est)
	fr, err := approxrank.Footrule(truth, est)
	if err != nil {
		t.Fatalf("Footrule: %v", err)
	}
	if fr != 0 {
		t.Errorf("ApproxRank footrule on the worked example = %v, want 0", fr)
	}
	l1, err := approxrank.L1(truth, est)
	if err != nil {
		t.Fatalf("L1: %v", err)
	}
	if l1 > 0.05 {
		t.Errorf("ApproxRank L1 = %v, unexpectedly large", l1)
	}
}

// TestPublicAPIBaselines exercises the baseline entry points.
func TestPublicAPIBaselines(t *testing.T) {
	_, sub := fig4(t)
	if res, err := approxrank.LocalPageRank(sub, approxrank.BaselineConfig{}); err != nil || len(res.Scores) != 4 {
		t.Errorf("LocalPageRank: %v, %d scores", err, len(res.Scores))
	}
	if res, err := approxrank.LPR2(sub, approxrank.BaselineConfig{}); err != nil || len(res.Scores) != 4 {
		t.Errorf("LPR2: %v, %d scores", err, len(res.Scores))
	}
	if res, err := approxrank.SC(sub, approxrank.SCConfig{Expansions: 2}); err != nil || len(res.Scores) != 4 {
		t.Errorf("SC: %v, %d scores", err, len(res.Scores))
	}
}

// TestPublicAPIGeneratedWeb runs the crawl-then-rank loop on a generated
// web and checks that ApproxRank beats local PageRank on ranking accuracy
// (the paper's headline claim, via the public API).
func TestPublicAPIGeneratedWeb(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 8000, Domains: 10, Seed: 5})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	g := web.Graph
	sub, err := approxrank.NewSubgraph(g, web.DomainPages(4))
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = global.Scores[gid]
	}
	approxrank.Normalize(truth)

	footruleOf := func(scores []float64) float64 {
		t.Helper()
		est := append([]float64(nil), scores...)
		approxrank.Normalize(est)
		fr, err := approxrank.Footrule(truth, est)
		if err != nil {
			t.Fatalf("Footrule: %v", err)
		}
		return fr
	}
	ap, err := approxrank.ApproxRank(sub, approxrank.Config{})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	lp, err := approxrank.LocalPageRank(sub, approxrank.BaselineConfig{})
	if err != nil {
		t.Fatalf("LocalPageRank: %v", err)
	}
	apFr, lpFr := footruleOf(ap.Scores), footruleOf(lp.Scores)
	if apFr >= lpFr {
		t.Errorf("ApproxRank footrule %v not better than local PageRank %v", apFr, lpFr)
	}
}

// TestPublicAPIContextReuse: the multi-subgraph workflow through the
// facade gives identical results to one-shot calls.
func TestPublicAPIContextReuse(t *testing.T) {
	web, err := approxrank.GenerateWeb(approxrank.WebConfig{Pages: 4000, Domains: 8, Seed: 9})
	if err != nil {
		t.Fatalf("GenerateWeb: %v", err)
	}
	ctx := approxrank.NewContext(web.Graph)
	for d := 0; d < 3; d++ {
		sub, err := approxrank.NewSubgraph(web.Graph, web.DomainPages(d))
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
		one, err := approxrank.ApproxRank(sub, approxrank.Config{})
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		two, err := approxrank.ApproxRankCtx(ctx, sub, approxrank.Config{})
		if err != nil {
			t.Fatalf("ApproxRankCtx: %v", err)
		}
		for i := range one.Scores {
			if one.Scores[i] != two.Scores[i] {
				t.Fatalf("domain %d: context run differs at %d", d, i)
			}
		}
	}
}

// TestPublicAPIMixedScores: the generalized chain interpolates between
// ApproxRank and IdealRank.
func TestPublicAPIMixedScores(t *testing.T) {
	g, sub := fig4(t)
	global, err := approxrank.GlobalPageRank(g, approxrank.PageRankOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("GlobalPageRank: %v", err)
	}
	mixed, err := approxrank.MixExternalScores(sub, global.Scores, 1)
	if err != nil {
		t.Fatalf("MixExternalScores: %v", err)
	}
	chain, err := approxrank.NewChainWithExternalScores(sub, mixed)
	if err != nil {
		t.Fatalf("NewChainWithExternalScores: %v", err)
	}
	res, err := chain.Run(approxrank.Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for li, gid := range sub.Local {
		if math.Abs(res.Scores[li]-global.Scores[gid]) > 1e-8 {
			t.Errorf("alpha=1 chain deviates at %d", li)
		}
	}
}

// TestPublicAPIGraphIO saves and loads through the facade.
func TestPublicAPIGraphIO(t *testing.T) {
	g, _ := fig4(t)
	path := t.TempDir() + "/g.bin"
	if err := approxrank.SaveGraph(path, g); err != nil {
		t.Fatalf("SaveGraph: %v", err)
	}
	back, err := approxrank.LoadGraph(path)
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch")
	}
	st := approxrank.ComputeStats(back)
	if st.Nodes != 7 || st.Edges != 15 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPublicAPICrawlers exercises the crawl helpers.
func TestPublicAPICrawlers(t *testing.T) {
	g, _ := fig4(t)
	order, err := approxrank.BFSCrawl(g, 0, 5)
	if err != nil || len(order) != 5 {
		t.Fatalf("BFSCrawl: %v, %d pages", err, len(order))
	}
	hop, err := approxrank.CrawlHops(g, []approxrank.NodeID{0}, 1)
	if err != nil || len(hop) != 5 { // 0 plus its 4 out-neighbours
		t.Fatalf("CrawlHops: %v, %v", err, hop)
	}
}
