package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteKendall is the O(n²) reference implementation of K^(1/2).
func bruteKendall(a, b []float64) float64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	cost := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ca := cmpScore(a[i], a[j])
			cb := cmpScore(b[i], b[j])
			switch {
			case ca == cb:
			case ca == 0 || cb == 0:
				cost += 0.5
			default:
				cost++
			}
		}
	}
	return cost / (float64(n) * float64(n-1) / 2)
}

// TestKendallAgainstBruteForce: the O(n log n) implementation matches the
// quadratic reference on random vectors with heavy ties.
func TestKendallAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(7)) // coarse grid forces ties
			b[i] = float64(rng.Intn(7))
		}
		fast, err := KendallTau(a, b)
		if err != nil {
			return false
		}
		return math.Abs(fast-bruteKendall(a, b)) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallEndpoints(t *testing.T) {
	n := 50
	a := make([]float64, n)
	rev := make([]float64, n)
	same := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
		rev[i] = float64(n - i)
		same[i] = 1
	}
	if d, _ := KendallTau(a, a); d != 0 {
		t.Errorf("self distance = %v", d)
	}
	if d, _ := KendallTau(a, rev); d != 1 {
		t.Errorf("reversal distance = %v", d)
	}
	// All-tied vs strict: every pair tied in exactly one → 0.5.
	if d, _ := KendallTau(a, same); d != 0.5 {
		t.Errorf("tied-vs-strict distance = %v", d)
	}
	// Tied in both → 0.
	if d, _ := KendallTau(same, same); d != 0 {
		t.Errorf("all-tied self distance = %v", d)
	}
}

func TestKendallSymmetric(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(5))
			b[i] = rng.Float64()
		}
		ab, err1 := KendallTau(a, b)
		ba, err2 := KendallTau(b, a)
		return err1 == nil && err2 == nil && math.Abs(ab-ba) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKendallErrorsAndDegenerate(t *testing.T) {
	if _, err := KendallTau([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if d, err := KendallTau([]float64{3}, []float64{5}); err != nil || d != 0 {
		t.Errorf("singleton = %v, %v", d, err)
	}
	if d, err := KendallTau(nil, nil); err != nil || d != 0 {
		t.Errorf("empty = %v, %v", d, err)
	}
}

// TestKendallSampleConsistency: the sampler approximates the exact value.
func TestKendallSampleConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = a[i] + 0.3*rng.Float64() // correlated
	}
	exact, err := KendallTau(a, b)
	if err != nil {
		t.Fatalf("KendallTau: %v", err)
	}
	approx, err := KendallTauSample(a, b, 200000, 1)
	if err != nil {
		t.Fatalf("KendallTauSample: %v", err)
	}
	if math.Abs(exact-approx) > 0.01 {
		t.Errorf("sampled %v vs exact %v", approx, exact)
	}
}

func TestStrictInversions(t *testing.T) {
	cases := []struct {
		seq  []float64
		want int64
	}{
		{[]float64{3, 2, 1}, 0},       // descending: no inversions
		{[]float64{1, 2, 3}, 3},       // ascending: all pairs
		{[]float64{2, 2, 2}, 0},       // ties: none
		{[]float64{2, 1, 2}, 1},       // (1,2) ascends
		{[]float64{1}, 0},             //
		{[]float64{5, 1, 4, 2, 3}, 4}, // (1,4),(1,2),(1,3),(2,3)
	}
	for _, c := range cases {
		if got := strictInversions(c.seq); got != c.want {
			t.Errorf("strictInversions(%v) = %d, want %d", c.seq, got, c.want)
		}
	}
}
