// Package metrics implements the ranking-distance measures used in the
// paper's evaluation: the L1 distance between score vectors and the
// Spearman's footrule distance between partial rankings with ties (Fagin
// et al., PODS 2004), plus auxiliary measures (Kendall-tau sampling and
// top-K overlap) used by the extended experiments.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// L1 returns the L1 (Manhattan) distance Σ|a[i] − b[i]| between two score
// vectors of equal length. This is the paper's score-accuracy measure.
func L1(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: L1 length mismatch %d vs %d", len(a), len(b))
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d, nil
}

// Positions converts a score vector into bucket positions for a partial
// ranking: pages are ranked by descending score, pages with equal scores
// form a bucket, and every page in bucket B_i receives the bucket position
//
//	pos(B_i) = Σ_{j<i} |B_j| + (|B_i|+1)/2,
//
// the average 1-based location within the bucket. Scores within tol of one
// another (after sorting) are merged into the same bucket; tol = 0 demands
// exact equality.
func Positions(scores []float64, tol float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] > scores[idx[b]] {
			return true
		}
		if scores[idx[a]] < scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b] // deterministic order inside a bucket
	})
	pos := make([]float64, n)
	covered := 0
	for start := 0; start < n; {
		end := start + 1
		for end < n && scores[idx[start]]-scores[idx[end]] <= tol {
			end++
		}
		size := end - start
		p := float64(covered) + (float64(size)+1)/2
		for k := start; k < end; k++ {
			pos[idx[k]] = p
		}
		covered += size
		start = end
	}
	return pos
}

// Footrule returns the Spearman's footrule distance between two partial
// rankings given as bucket-position vectors (from Positions):
//
//	F(σ1, σ2) = Σ|σ1(i) − σ2(i)| / ⌊n²/2⌋,
//
// the paper's order-accuracy measure, normalized to [0, 1] by the maximum
// possible footrule.
func Footrule(pos1, pos2 []float64) (float64, error) {
	if len(pos1) != len(pos2) {
		return 0, fmt.Errorf("metrics: footrule length mismatch %d vs %d", len(pos1), len(pos2))
	}
	n := len(pos1)
	if n == 0 {
		return 0, fmt.Errorf("metrics: footrule of empty rankings")
	}
	if n == 1 {
		return 0, nil
	}
	sum := 0.0
	for i := range pos1 {
		sum += math.Abs(pos1[i] - pos2[i])
	}
	return sum / math.Floor(float64(n)*float64(n)/2), nil
}

// FootruleScores is the composition of Positions (with exact-tie buckets)
// and Footrule: the distance between the partial rankings induced by two
// score vectors.
func FootruleScores(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: footrule length mismatch %d vs %d", len(a), len(b))
	}
	return Footrule(Positions(a, 0), Positions(b, 0))
}

// TopKOverlap returns |topK(a) ∩ topK(b)| / k: the fraction of the k
// highest-scored pages under a that are also among the k highest-scored
// under b (ties broken by index for determinism). Used by the top-K
// query-answering experiments.
func TopKOverlap(a, b []float64, k int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: topK length mismatch %d vs %d", len(a), len(b))
	}
	if k <= 0 || k > len(a) {
		return 0, fmt.Errorf("metrics: k=%d outside [1,%d]", k, len(a))
	}
	ta := topK(a, k)
	tb := make(map[int]struct{}, k)
	for _, i := range topK(b, k) {
		tb[i] = struct{}{}
	}
	hit := 0
	for _, i := range ta {
		if _, ok := tb[i]; ok {
			hit++
		}
	}
	return float64(hit) / float64(k), nil
}

func topK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] > scores[idx[b]] {
			return true
		}
		if scores[idx[a]] < scores[idx[b]] {
			return false
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

// KendallTauSample estimates the Kendall-tau distance (fraction of
// discordant pairs, ties counting half) between the rankings induced by
// two score vectors by sampling pairs uniformly with the given seed.
// Exact Kendall with ties is O(n²) in the general bucket case; sampling
// keeps the extended experiments tractable on large subgraphs.
func KendallTauSample(a, b []float64, pairs int, seed int64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: kendall length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}
	if pairs <= 0 {
		return 0, fmt.Errorf("metrics: non-positive sample size %d", pairs)
	}
	rng := rand.New(rand.NewSource(seed))
	disc := 0.0
	for s := 0; s < pairs; s++ {
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		ca := cmpScore(a[i], a[j])
		cb := cmpScore(b[i], b[j])
		switch {
		case ca == cb:
			// concordant (or tied the same way): no penalty
		case ca == 0 || cb == 0:
			disc += 0.5 // tie on one side only
		default:
			disc++ // strictly discordant
		}
	}
	return disc / float64(pairs), nil
}

func cmpScore(x, y float64) int {
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}
