package metrics

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzRankingMetrics checks the algebraic invariants of the
// partial-ranking measures on arbitrary score pairs: L1 and footrule are
// symmetric and non-negative, the normalized footrule and Kendall
// distances stay in [0,1], and Positions always emits a valid bucket
// assignment (positions in [1,n] summing to n(n+1)/2). The byte input is
// decoded into two equal-length score vectors; non-finite values are
// mapped back into a finite range so the metrics' preconditions hold.
func FuzzRankingMetrics(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	seed := make([]byte, 0, 64)
	for i := 0; i < 4; i++ {
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(float64(i)*0.25))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(1-float64(i)*0.25))
		seed = append(seed, buf[:]...)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b := scorePairFromBytes(data)
		if len(a) == 0 {
			return
		}
		n := len(a)

		const slack = 1e-9

		l1ab, err := L1(a, b)
		if err != nil {
			t.Fatalf("L1: %v", err)
		}
		l1ba, _ := L1(b, a)
		if math.Abs(l1ab-l1ba) > slack*(1+math.Abs(l1ab)) {
			t.Fatalf("L1 asymmetric: %v vs %v", l1ab, l1ba)
		}
		if l1ab < 0 {
			t.Fatalf("L1 negative: %v", l1ab)
		}

		fab, err := FootruleScores(a, b)
		if err != nil {
			t.Fatalf("footrule: %v", err)
		}
		fba, _ := FootruleScores(b, a)
		if math.Abs(fab-fba) > slack {
			t.Fatalf("footrule asymmetric: %v vs %v", fab, fba)
		}
		if fab < 0 || fab > 1+slack {
			t.Fatalf("footrule %v outside [0,1]", fab)
		}
		if self, _ := FootruleScores(a, a); self != 0 {
			t.Fatalf("footrule(a,a) = %v, want 0", self)
		}

		kab, err := KendallTau(a, b)
		if err != nil {
			t.Fatalf("kendall: %v", err)
		}
		kba, _ := KendallTau(b, a)
		if math.Abs(kab-kba) > slack {
			t.Fatalf("kendall asymmetric: %v vs %v", kab, kba)
		}
		if kab < 0 || kab > 1+slack {
			t.Fatalf("kendall %v outside [0,1]", kab)
		}

		pos := Positions(a, 0)
		sum := 0.0
		for _, p := range pos {
			if p < 1 || p > float64(n) {
				t.Fatalf("position %v outside [1,%d]", p, n)
			}
			sum += p
		}
		want := float64(n) * float64(n+1) / 2
		if math.Abs(sum-want) > slack*want {
			t.Fatalf("positions sum to %v, want %v", sum, want)
		}

		if n >= 1 {
			ov, err := TopKOverlap(a, b, n)
			if err != nil {
				t.Fatalf("topk: %v", err)
			}
			if math.Abs(ov-1) > slack {
				t.Fatalf("full-width top-K overlap %v, want 1", ov)
			}
		}
	})
}

// scorePairFromBytes decodes data into two equal-length finite score
// vectors (16 bytes per position: one float64 for each vector).
func scorePairFromBytes(data []byte) (a, b []float64) {
	n := len(data) / 16
	if n > 256 {
		n = 256 // keep the O(n log n) metrics fast per exec
	}
	a = make([]float64, n)
	b = make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = finiteScore(binary.LittleEndian.Uint64(data[16*i:]))
		b[i] = finiteScore(binary.LittleEndian.Uint64(data[16*i+8:]))
	}
	return a, b
}

// finiteScore maps arbitrary bits to a finite float64, preserving the
// interesting structure (ties, tiny gaps, huge magnitudes) of the raw
// value where possible.
func finiteScore(bits uint64) float64 {
	x := math.Float64frombits(bits)
	if math.IsNaN(x) || math.IsInf(x, 0) {
		// Fold the mantissa bits into a finite value instead of
		// discarding the input.
		return float64(bits%(1<<20)) / (1 << 10)
	}
	return x
}
