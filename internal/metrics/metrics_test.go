package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL1(t *testing.T) {
	d, err := L1([]float64{1, 2, 3}, []float64{0, 4, 3})
	if err != nil {
		t.Fatalf("L1: %v", err)
	}
	if d != 3 {
		t.Fatalf("L1 = %v, want 3", d)
	}
	if _, err := L1([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestPositionsNoTies: distinct scores get ranks 1..n by descending score.
func TestPositionsNoTies(t *testing.T) {
	pos := Positions([]float64{0.1, 0.4, 0.2, 0.3}, 0)
	want := []float64{4, 1, 3, 2}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", pos, want)
		}
	}
}

// TestPositionsWithTies reproduces the paper's bucket-position definition:
// pos(B_i) = Σ_{j<i}|B_j| + (|B_i|+1)/2.
func TestPositionsWithTies(t *testing.T) {
	pos := Positions([]float64{0.4, 0.3, 0.3, 0.1, 0.1, 0.1}, 0)
	// Buckets: {0.4} pos 1; {0.3,0.3} pos 1+(2+1)/2 = 2.5;
	// {0.1×3} pos 3+(3+1)/2 = 5.
	want := []float64{1, 2.5, 2.5, 5, 5, 5}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("Positions = %v, want %v", pos, want)
		}
	}
}

// TestFootruleHandExample: scores a=[0.4,0.3,0.3], b=[0.3,0.4,0.3] give
// footrule (1.5+1.5+0)/⌊9/2⌋ = 0.75.
func TestFootruleHandExample(t *testing.T) {
	f, err := FootruleScores([]float64{0.4, 0.3, 0.3}, []float64{0.3, 0.4, 0.3})
	if err != nil {
		t.Fatalf("FootruleScores: %v", err)
	}
	if math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("footrule = %v, want 0.75", f)
	}
}

// TestFootruleAxioms: identity gives 0, distance is symmetric, and values
// lie in [0, ~1] for reversed rankings.
func TestFootruleAxioms(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			// Coarse grid to force ties.
			a[i] = float64(rng.Intn(6)) / 6
			b[i] = float64(rng.Intn(6)) / 6
		}
		self, err := FootruleScores(a, a)
		if err != nil || self != 0 {
			return false
		}
		ab, err1 := FootruleScores(a, b)
		ba, err2 := FootruleScores(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return ab == ba && ab >= 0 && ab <= 1.0+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFootruleReversal: fully reversed distinct rankings approach the
// normalization bound.
func TestFootruleReversal(t *testing.T) {
	n := 10
	a := make([]float64, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		a[i] = float64(i)
		b[i] = float64(n - i)
	}
	f, err := FootruleScores(a, b)
	if err != nil {
		t.Fatalf("FootruleScores: %v", err)
	}
	// Σ|σ1−σ2| for a reversal of 10 = 2·(9+7+5+3+1) = 50; ⌊100/2⌋ = 50.
	if math.Abs(f-1.0) > 1e-12 {
		t.Fatalf("reversal footrule = %v, want 1", f)
	}
}

// TestFootruleSingleAndErrors covers degenerate inputs.
func TestFootruleSingleAndErrors(t *testing.T) {
	if f, err := FootruleScores([]float64{5}, []float64{7}); err != nil || f != 0 {
		t.Fatalf("single-element footrule = %v, %v", f, err)
	}
	if _, err := FootruleScores([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Footrule(nil, nil); err == nil {
		t.Fatal("empty rankings accepted")
	}
}

// TestPositionsTolerance: near-ties within tol share a bucket.
func TestPositionsTolerance(t *testing.T) {
	pos := Positions([]float64{0.5, 0.5 - 1e-9, 0.1}, 1e-6)
	if pos[0] != pos[1] {
		t.Fatalf("near-tie not merged: %v", pos)
	}
	if pos[2] != 3 {
		t.Fatalf("pos[2] = %v, want 3", pos[2])
	}
	exact := Positions([]float64{0.5, 0.5 - 1e-9, 0.1}, 0)
	if exact[0] == exact[1] {
		t.Fatalf("tol=0 merged distinct scores: %v", exact)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	b := []float64{0.5, 0.1, 0.3, 0.2, 0.4} // top3(a)={0,1,2}, top3(b)={0,4,2}
	ov, err := TopKOverlap(a, b, 3)
	if err != nil {
		t.Fatalf("TopKOverlap: %v", err)
	}
	if math.Abs(ov-2.0/3.0) > 1e-12 {
		t.Fatalf("overlap = %v, want 2/3", ov)
	}
	if _, err := TopKOverlap(a, b, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := TopKOverlap(a, b, 6); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := TopKOverlap(a, b[:3], 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	full, _ := TopKOverlap(a, a, 5)
	if full != 1 {
		t.Fatalf("self overlap = %v, want 1", full)
	}
}

func TestKendallTauSample(t *testing.T) {
	n := 200
	a := make([]float64, n)
	for i := range a {
		a[i] = float64(i)
	}
	// Identical rankings: distance 0.
	d, err := KendallTauSample(a, a, 2000, 1)
	if err != nil {
		t.Fatalf("KendallTauSample: %v", err)
	}
	if d != 0 {
		t.Fatalf("self distance = %v, want 0", d)
	}
	// Reversed rankings: every pair discordant, distance 1.
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(n - i)
	}
	d, err = KendallTauSample(a, b, 2000, 1)
	if err != nil {
		t.Fatalf("KendallTauSample: %v", err)
	}
	if d != 1 {
		t.Fatalf("reversal distance = %v, want 1", d)
	}
	// Errors.
	if _, err := KendallTauSample(a, b[:10], 100, 1); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := KendallTauSample(a, b, 0, 1); err == nil {
		t.Fatal("zero sample size accepted")
	}
	if d, err := KendallTauSample(a[:1], b[:1], 10, 1); err != nil || d != 0 {
		t.Fatalf("singleton distance = %v, %v", d, err)
	}
}
