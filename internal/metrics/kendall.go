package metrics

import (
	"fmt"
	"sort"
)

// KendallTau returns the exact Kendall distance with penalty ½ for ties
// (the K^(1/2) measure of Fagin et al., PODS 2004) between the partial
// rankings induced by two score vectors, normalized by the number of
// pairs:
//
//   - a pair ordered strictly and oppositely in the two rankings costs 1;
//   - a pair tied in exactly one ranking costs ½;
//   - a pair ordered the same way, or tied in both, costs 0.
//
// The computation is O(n log n): discordant pairs are counted as strict
// inversions of the second ranking after sorting by the first, and the
// tie terms come from run lengths.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("metrics: kendall length mismatch %d vs %d", len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, nil
	}

	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Sort by (a desc, b desc); the direction is irrelevant to pair
	// classification as long as both keys use the same one.
	sort.Slice(idx, func(x, y int) bool {
		if a[idx[x]] > a[idx[y]] {
			return true
		}
		if a[idx[x]] < a[idx[y]] {
			return false
		}
		if b[idx[x]] > b[idx[y]] {
			return true
		}
		if b[idx[x]] < b[idx[y]] {
			return false
		}
		return idx[x] < idx[y]
	})

	// Tie pair counts: n1 = pairs tied in a, n2 = pairs tied in b,
	// n3 = pairs tied in both.
	// Exact equality is the definition of a tie in the K^(1/2) measure
	// (same bucket of the partial ranking), not a numeric accident.
	//arlint:allow floatcmp exact ties define the partial-ranking buckets
	n1 := tiePairs(idx, func(i, j int) bool { return a[i] == a[j] })
	//arlint:allow floatcmp exact ties define the partial-ranking buckets
	n3 := tiePairs(idx, func(i, j int) bool { return a[i] == a[j] && b[i] == b[j] })
	// n2 needs b-sorted order.
	bIdx := make([]int, n)
	copy(bIdx, idx)
	sort.Slice(bIdx, func(x, y int) bool {
		if b[bIdx[x]] > b[bIdx[y]] {
			return true
		}
		if b[bIdx[x]] < b[bIdx[y]] {
			return false
		}
		return bIdx[x] < bIdx[y]
	})
	//arlint:allow floatcmp exact ties define the partial-ranking buckets
	n2 := tiePairs(bIdx, func(i, j int) bool { return b[i] == b[j] })

	// Discordant pairs: strict inversions of the b sequence in (a desc,
	// b desc) order. Within an a-tie run the sequence is b-sorted, so
	// those pairs contribute no inversions; equal b values are not strict
	// inversions.
	seq := make([]float64, n)
	for k, i := range idx {
		seq[k] = b[i]
	}
	disc := strictInversions(seq)

	total := float64(n) * float64(n-1) / 2
	tiedExactlyOne := float64(n1-n3) + float64(n2-n3)
	return (float64(disc) + 0.5*tiedExactlyOne) / total, nil
}

// tiePairs counts Σ t·(t−1)/2 over maximal runs of idx where eq holds
// between consecutive members (idx must be sorted so that equal elements
// are adjacent).
func tiePairs(idx []int, eq func(i, j int) bool) int {
	pairs := 0
	run := 1
	for k := 1; k < len(idx); k++ {
		if eq(idx[k-1], idx[k]) {
			run++
			continue
		}
		pairs += run * (run - 1) / 2
		run = 1
	}
	pairs += run * (run - 1) / 2
	return pairs
}

// strictInversions counts pairs k < l with seq[k] < seq[l] (the sequence
// is expected descending, so an ascending pair is an inversion) by merge
// sort. Equal values are not inversions.
func strictInversions(seq []float64) int64 {
	buf := make([]float64, len(seq))
	work := make([]float64, len(seq))
	copy(work, seq)
	return mergeCount(work, buf)
}

func mergeCount(s, buf []float64) int64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mid := n / 2
	inv := mergeCount(s[:mid], buf[:mid]) + mergeCount(s[mid:], buf[mid:n])
	// Merge descending; count strict ascents across the split.
	i, j, k := 0, mid, 0
	for i < mid && j < n {
		if s[i] >= s[j] {
			buf[k] = s[i]
			i++
		} else {
			// s[j] is strictly greater than s[i..mid): each remaining left
			// element forms an inversion with s[j].
			inv += int64(mid - i)
			buf[k] = s[j]
			j++
		}
		k++
	}
	copy(buf[k:], s[i:mid])
	copy(buf[k+mid-i:], s[j:n])
	copy(s, buf[:n])
	return inv
}
