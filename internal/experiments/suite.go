// Package experiments regenerates every table and figure of the paper's
// evaluation section on synthetic stand-ins for its two crawled datasets:
//
//   - Table II  — dataset characteristics
//   - Table III — L1 + Spearman's footrule on TS (topic) subgraphs
//   - Table IV  — footrule on DS (domain) subgraphs, four algorithms
//   - Figure 7  — footrule on BFS subgraphs as crawl size grows
//   - Table V   — runtimes on TS subgraphs (+ SC expansion telemetry)
//   - Table VI  — runtimes on DS subgraphs (+ global PageRank context)
//
// plus the ablation sweeps DESIGN.md calls out (ε, intra-domain fraction,
// mixed external knowledge, subgraph size). Every driver returns typed
// rows and can render itself as a text table, so cmd/experiments and the
// benchmark harness share one implementation.
package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pagerank"
)

// Scale controls how large the synthetic datasets are. The paper's crawls
// hold ~4 M pages; the default scale is a ~1/13 linear scale-down that
// runs the full suite on a laptop in minutes. Ratio-shaped findings
// (who wins, by how much, where SC's runtime blows up) are preserved.
type Scale struct {
	// AUPages is the size of the domain-structured dataset (the AU
	// analogue). Default 300000.
	AUPages int
	// AUDomains is its domain count. Default 38 (the AU dataset's).
	AUDomains int
	// PoliticsPages is the size of the topic-structured dataset (the
	// politics analogue). Default 220000.
	PoliticsPages int
	// PoliticsTopics is its topic count. Default 15.
	PoliticsTopics int
	// Seed drives all generation. Default 2009 (the paper's year).
	Seed int64
}

func (s *Scale) fill() {
	if s.AUPages == 0 {
		s.AUPages = 300000
	}
	if s.AUDomains == 0 {
		s.AUDomains = 38
	}
	if s.PoliticsPages == 0 {
		s.PoliticsPages = 220000
	}
	if s.PoliticsTopics == 0 {
		s.PoliticsTopics = 15
	}
	if s.Seed == 0 {
		s.Seed = 2009
	}
}

// Tiny returns a Scale small enough for unit tests and smoke runs.
func Tiny() Scale {
	return Scale{AUPages: 12000, AUDomains: 12, PoliticsPages: 10000, PoliticsTopics: 8, Seed: 7}
}

// GlobalRun bundles a dataset with its converged global PageRank — the
// ground truth every experiment compares against.
type GlobalRun struct {
	Name    string
	Data    *gen.Dataset
	PR      *pagerank.Result
	Ctx     *core.Context
	Elapsed time.Duration
}

// Suite holds the two datasets and their ground truths.
type Suite struct {
	Scale    Scale
	AU       *GlobalRun
	Politics *GlobalRun
}

// NewSuite generates both datasets and computes their global PageRank.
// It is NewSuiteCtx with context.Background().
func NewSuite(scale Scale) (*Suite, error) {
	return NewSuiteCtx(context.Background(), scale)
}

// NewSuiteCtx is NewSuite under a context; the two global PageRank
// computations — the expensive part of suite construction — run under it.
func NewSuiteCtx(ctx context.Context, scale Scale) (*Suite, error) {
	scale.fill()
	au, err := newGlobalRun(ctx, "AU-syn", gen.Config{
		Pages:            scale.AUPages,
		Domains:          scale.AUDomains,
		SizeLeakExponent: 0.8,
		Seed:             scale.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: AU dataset: %w", err)
	}
	pol, err := newGlobalRun(ctx, "politics-syn", gen.Config{
		Pages:   scale.PoliticsPages,
		Domains: maxInt(scale.AUDomains/2, 4),
		Topics:  scale.PoliticsTopics,
		// Topic crawls need cross-domain topical structure; lower the
		// intra-domain fraction slightly and raise topic affinity so TS
		// subgraphs resemble dmoz category neighbourhoods.
		IntraFraction: 0.7,
		TopicAffinity: 0.75,
		Seed:          scale.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: politics dataset: %w", err)
	}
	return &Suite{Scale: scale, AU: au, Politics: pol}, nil
}

func newGlobalRun(ctx context.Context, name string, cfg gen.Config) (*GlobalRun, error) {
	ds, err := gen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	pr, err := pagerank.ComputeCtx(ctx, ds.Graph, pagerank.Options{})
	if err != nil {
		return nil, err
	}
	return &GlobalRun{
		Name:    name,
		Data:    ds,
		PR:      pr,
		Ctx:     core.NewContext(ds.Graph),
		Elapsed: time.Since(start),
	}, nil
}

// Truth returns the normalized global PageRank restricted to sub — the
// reference vector R1 of the paper's evaluation method.
func (gr *GlobalRun) Truth(sub *graph.Subgraph) []float64 {
	out := make([]float64, sub.N())
	for li, gid := range sub.Local {
		out[li] = gr.PR.Scores[gid]
	}
	normalize(out)
	return out
}

// Evaluate compares an estimate against the global truth for sub, after
// normalizing both to probability distributions, and returns the L1
// distance and the Spearman's footrule distance.
func (gr *GlobalRun) Evaluate(sub *graph.Subgraph, estimate []float64) (l1, footrule float64, err error) {
	truth := gr.Truth(sub)
	est := append([]float64(nil), estimate...)
	normalize(est)
	l1, err = metrics.L1(truth, est)
	if err != nil {
		return 0, 0, err
	}
	footrule, err = metrics.FootruleScores(truth, est)
	if err != nil {
		return 0, 0, err
	}
	return l1, footrule, nil
}

// DomainsAscending returns domain ids sorted by ascending page count —
// the presentation order of Tables IV and VI.
func DomainsAscending(ds *gen.Dataset) []int {
	ids := make([]int, ds.NumDomains())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if ds.DomainSize(ids[a]) != ds.DomainSize(ids[b]) {
			return ds.DomainSize(ids[a]) < ds.DomainSize(ids[b])
		}
		return ids[a] < ids[b]
	})
	return ids
}

// PickDomains selects count domain ids spanning the size spectrum
// (smallest to largest, evenly spread), ascending by size.
func PickDomains(ds *gen.Dataset, count int) []int {
	all := DomainsAscending(ds)
	if count >= len(all) {
		return all
	}
	picked := make([]int, count)
	for i := 0; i < count; i++ {
		picked[i] = all[i*(len(all)-1)/(count-1)]
	}
	return picked
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// avgOutDegree returns the average GLOBAL out-degree of the pages in sub
// (the "Average outdegree" column of Table IV).
func avgOutDegree(sub *graph.Subgraph) float64 {
	total := 0
	for _, gid := range sub.Local {
		total += sub.Global.OutDegree(gid)
	}
	return float64(total) / float64(sub.N())
}

func pct(part, whole int) float64 { return 100 * float64(part) / float64(whole) }

func round(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(x*p) / p
}
