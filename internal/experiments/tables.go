package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"text/tabwriter"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TSParams shape the topic-specific crawls of Tables III and V. The paper
// identifies TS subgraphs by dmoz category plus a crawl "to all pages
// within three links"; the analogue seeds a fraction of the topic's pages
// and expands the same way.
type TSParams struct {
	// SeedFraction of the topic's pages forms the category listing.
	// Default 0.03.
	SeedFraction float64
	// Hops is the crawl depth from the seeds. Default 2 (a third hop on
	// the synthetic graph swallows too much of the scaled-down global
	// graph; the boundary structure, not the hop count, is what Table III
	// exercises).
	Hops int
	// Seed drives the category sampling. Default 41.
	Seed int64
}

func (p *TSParams) fill() {
	if p.SeedFraction == 0 {
		p.SeedFraction = 0.03
	}
	if p.Hops == 0 {
		p.Hops = 2
	}
	if p.Seed == 0 {
		p.Seed = 41
	}
}

// tsNames maps the three crawled topics onto the paper's subgraph names.
var tsNames = []string{"conservatism", "liberalism", "socialism"}

// RunTS crawls three topic subgraphs of the politics dataset (named after
// the paper's liberalism/conservatism/socialism) and runs all algorithms
// on each. The results feed Table III (accuracy) and Table V (runtime).
// It is RunTSCtx with context.Background().
func (s *Suite) RunTS(params TSParams) ([]*SubgraphRun, error) {
	return s.RunTSCtx(context.Background(), params)
}

// RunTSCtx is RunTS under a context; both the crawls and the rankers run
// under it. A cancelled driver returns only the error (per-subgraph
// results already gathered are discarded — the tables need all rows).
func (s *Suite) RunTSCtx(ctx context.Context, params TSParams) ([]*SubgraphRun, error) {
	params.fill()
	ds := s.Politics.Data
	// Rank topics by size; pick a large, a larger, and a clearly smaller
	// one, mirroring the paper's 42797/61724/12991-page trio.
	order := topicsDescending(ds)
	if len(order) < 3 {
		return nil, fmt.Errorf("experiments: need at least 3 topics, have %d", len(order))
	}
	picks := []int{order[1], order[0], order[len(order)/2]}
	topicOf := func(p graph.NodeID) int { return int(ds.Topic[p]) }

	var runs []*SubgraphRun
	for i, topic := range picks {
		rng := rand.New(rand.NewSource(params.Seed + int64(i)))
		frac := params.SeedFraction
		if i == 2 {
			frac /= 3 // the socialism analogue is deliberately small
		}
		pages, err := crawler.TopicCrawlCtx(ctx, ds.Graph, topicOf, topic, frac, params.Hops, rng)
		if err != nil {
			return nil, fmt.Errorf("experiments: topic crawl %s: %w", tsNames[i], err)
		}
		run, err := RunSubgraphCtx(ctx, s.Politics, tsNames[i], pages, AllAlgos(), core.Config{}, baseline.SCConfig{})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func topicsDescending(ds *gen.Dataset) []int {
	counts := make(map[int]int)
	for _, t := range ds.Topic {
		counts[int(t)]++
	}
	var ids []int
	for t := range counts {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(x, y int) bool {
		a, b := ids[x], ids[y]
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	})
	return ids
}

// RunDS runs all algorithms on 12 domain subgraphs of the AU dataset,
// ascending by size. The results feed Table IV (accuracy) and Table VI
// (runtime). It is RunDSCtx with context.Background().
func (s *Suite) RunDS(domains int) ([]*SubgraphRun, error) {
	return s.RunDSCtx(context.Background(), domains)
}

// RunDSCtx is RunDS under a context; every per-domain ranker runs under
// it.
func (s *Suite) RunDSCtx(ctx context.Context, domains int) ([]*SubgraphRun, error) {
	if domains == 0 {
		domains = 12
	}
	picked := PickDomains(s.AU.Data, domains)
	var runs []*SubgraphRun
	for _, d := range picked {
		pages := s.AU.Data.DomainPages(d)
		run, err := RunSubgraphCtx(ctx, s.AU, s.AU.Data.DomainNames[d], pages, AllAlgos(), core.Config{}, baseline.SCConfig{})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// BFSFractions are the crawl sizes of Figure 7, in percent of the global
// graph.
var BFSFractions = []float64{0.1, 0.5, 2, 5, 8, 10, 12, 15, 20}

// RunBFS crawls BFS subgraphs of the AU dataset at the Figure 7 fractions
// and runs local PageRank, LPR2 and ApproxRank on each; SC runs only on
// the two smallest crawls (the paper could not obtain SC rankings for the
// larger ones because frontier scoring becomes too expensive). It is
// RunBFSCtx with context.Background().
func (s *Suite) RunBFS(fractions []float64) ([]*SubgraphRun, error) {
	return s.RunBFSCtx(context.Background(), fractions)
}

// RunBFSCtx is RunBFS under a context; the crawls and rankers run under
// it.
func (s *Suite) RunBFSCtx(ctx context.Context, fractions []float64) ([]*SubgraphRun, error) {
	if fractions == nil {
		fractions = BFSFractions
	}
	g := s.AU.Data.Graph
	seed := bfsSeed(s.AU.Data)
	var runs []*SubgraphRun
	for i, f := range fractions {
		target := int(f / 100 * float64(g.NumNodes()))
		if target < 2 {
			target = 2
		}
		pages, err := crawler.BFSCtx(ctx, g, seed, target)
		if err != nil {
			return nil, fmt.Errorf("experiments: BFS crawl %.1f%%: %w", f, err)
		}
		algos := Algos{Local: true, LPR2: true, Approx: true, SC: i < 2}
		run, err := RunSubgraphCtx(ctx, s.AU, fmt.Sprintf("BFS %.1f%%", f), pages, algos, core.Config{}, baseline.SCConfig{})
		if err != nil {
			return nil, err
		}
		run.PctOfGlobal = f
		runs = append(runs, run)
	}
	return runs, nil
}

// bfsSeed picks the crawl seed: a well-connected page in a mid-sized
// domain (the paper seeds inside www.sounddesign.unimelb.edu.au).
func bfsSeed(ds *gen.Dataset) graph.NodeID {
	order := DomainsAscending(ds)
	mid := order[len(order)/2]
	best := ds.DomainPages(mid)[0]
	for _, p := range ds.DomainPages(mid) {
		if ds.Graph.OutDegree(p) > ds.Graph.OutDegree(best) {
			best = p
		}
	}
	return best
}

// ---------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------

// WriteTableII writes the dataset-characteristics table: the paper's
// surveyed datasets for reference plus the two synthetic stand-ins.
func (s *Suite) WriteTableII(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE II — dataset characteristics (survey rows from the paper; *-rows are this reproduction's synthetic stand-ins)")
	fmt.Fprintln(tw, "dataset\t#pages\t#links\tavg outdeg\t#domains\tdangling")
	fmt.Fprintln(tw, "politics crawl [1]\t4400000\t17300000\t3.9\t—\t—")
	fmt.Fprintln(tw, "edu crawl [1]\t4700000\t22900000\t4.9\t—\t—")
	fmt.Fprintln(tw, "AU crawl (paper §V-D)\t3884199\t23898513\t6.2\t38\t—")
	fmt.Fprintln(tw, "stanford BFS [18]\t1050000\t4980000\t4.7\t—\t—")
	for _, grun := range []*GlobalRun{s.Politics, s.AU} {
		st := graph.ComputeStats(grun.Data.Graph)
		fmt.Fprintf(tw, "%s*\t%d\t%d\t%.2f\t%d\t%d\n",
			grun.Name, st.Nodes, st.Edges, st.AvgOutDegree, grun.Data.NumDomains(), st.Dangling)
	}
	return tw.Flush()
}

// WriteTableIII renders the accuracy comparison on TS subgraphs, with the
// paper's measured values alongside for reference.
func WriteTableIII(w io.Writer, runs []*SubgraphRun) error {
	paper := map[string][4]float64{
		// name → SC L1, ApproxRank L1, SC footrule, ApproxRank footrule
		// (paper Table III, "SC (Implemented)" column).
		"conservatism": {0.0476, 0.0450, 0.0632, 0.0255},
		"liberalism":   {0.0733, 0.0494, 0.0917, 0.0293},
		"socialism":    {0.0442, 0.104, 0.0316, 0.0193},
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE III — distance comparison for TS subgraphs (politics dataset)")
	fmt.Fprintln(tw, "subgraph\tn\tSC L1\tApproxRank L1\tSC footrule\tApproxRank footrule\t| paper: SC L1\tAR L1\tSC fr\tAR fr")
	for _, r := range runs {
		p := paper[r.Name]
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\t%.4f\t| %.4f\t%.4f\t%.4f\t%.4f\n",
			r.Name, r.N, r.SC.L1, r.Approx.L1, r.SC.Footrule, r.Approx.Footrule,
			p[0], p[1], p[2], p[3])
	}
	return tw.Flush()
}

// WriteTableIV renders the footrule comparison on DS subgraphs.
func WriteTableIV(w io.Writer, runs []*SubgraphRun) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TABLE IV — Spearman's footrule distance for DS subgraphs (AU dataset)")
	fmt.Fprintln(tw, "domain\t% of global\tavg outdeg\tlocal PR (■)\tSC (◆)\tLPR2 (●)\tApproxRank (▲)")
	for _, r := range runs {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.5f\t%.5f\t%.5f\t%.6f\n",
			r.Name, r.PctOfGlobal, r.AvgOutDegree,
			r.Local.Footrule, r.SC.Footrule, r.LPR2.Footrule, r.Approx.Footrule)
	}
	return tw.Flush()
}

// WriteFigure7 renders the footrule-vs-crawl-size series of Figure 7.
func WriteFigure7(w io.Writer, runs []*SubgraphRun) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "FIGURE 7 — Spearman's footrule distance for BFS subgraphs (AU dataset)")
	fmt.Fprintln(tw, "crawl %\tn\tlocal PR (■)\tLPR2 (●)\tApproxRank (▲)\tSC (◆)")
	for _, r := range runs {
		sc := "—"
		if r.SC != nil {
			sc = fmt.Sprintf("%.5f", r.SC.Footrule)
		}
		fmt.Fprintf(tw, "%.1f\t%d\t%.5f\t%.5f\t%.5f\t%s\n",
			r.PctOfGlobal, r.N, r.Local.Footrule, r.LPR2.Footrule, r.Approx.Footrule, sc)
	}
	return tw.Flush()
}

// WriteTableV renders the runtime comparison on TS subgraphs.
func WriteTableV(w io.Writer, runs []*SubgraphRun) error {
	return writeRuntime(w, "TABLE V — runtime comparison on TS subgraphs", runs)
}

// WriteTableVI renders the runtime comparison on DS subgraphs, prefixed by
// the global PageRank cost for context (as §V-F does).
func (s *Suite) WriteTableVI(w io.Writer, runs []*SubgraphRun) error {
	fmt.Fprintf(w, "global PageRank on %s: %d pages, %v (%d iterations)\n",
		s.AU.Name, s.AU.Data.Graph.NumNodes(), s.AU.Elapsed.Round(msRound), s.AU.PR.Iterations)
	return writeRuntime(w, "TABLE VI — runtime comparison on DS subgraphs", runs)
}

const msRound = 1000000 // time.Millisecond without importing time here

func writeRuntime(w io.Writer, title string, runs []*SubgraphRun) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintln(tw, "subgraph\tn\tlocal PR\tApproxRank\tSC\tk\t#ext 1st\t#ext 2nd\t#ext 3rd")
	for _, r := range runs {
		front := [3]string{"—", "—", "—"}
		k, scT := "—", "—"
		if r.SC != nil && r.SCInfo != nil {
			for i := 0; i < 3 && i < len(r.SCInfo.FrontierSizes); i++ {
				front[i] = fmt.Sprintf("%d", r.SCInfo.FrontierSizes[i])
			}
			k = fmt.Sprintf("%d", r.SCInfo.K)
			scT = r.SC.Elapsed.Round(msRound).String()
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%s\t%s\t%s\t%s\t%s\n",
			r.Name, r.N,
			r.Local.Elapsed.Round(msRound), r.Approx.Elapsed.Round(msRound),
			scT, k, front[0], front[1], front[2])
	}
	return tw.Flush()
}
