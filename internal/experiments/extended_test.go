package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunAcceleration(t *testing.T) {
	s := testSuite(t)
	rows, err := s.RunAcceleration()
	if err != nil {
		t.Fatalf("RunAcceleration: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	byName := map[string]AccelRow{}
	for _, r := range rows {
		byName[r.Method] = r
		// Every scheme must land close to the tightly converged reference.
		if r.L1 > 1e-2 {
			t.Errorf("%s: L1 vs reference = %v", r.Method, r.L1)
		}
		if r.Iterations < 1 {
			t.Errorf("%s: %d iterations", r.Method, r.Iterations)
		}
	}
	if byName["adaptive(1e-4)"].Frozen == 0 {
		t.Error("adaptive scheme froze no pages")
	}
	if byName["power"].Frozen != 0 {
		t.Error("plain power iteration reported frozen pages")
	}
	// Gauss–Seidel needs fewer sweeps than power iteration on the blocky
	// web-like AU graph.
	if byName["gauss-seidel"].Iterations >= byName["power"].Iterations {
		t.Errorf("Gauss–Seidel took %d sweeps, power %d",
			byName["gauss-seidel"].Iterations, byName["power"].Iterations)
	}
	// The parallel pull sweep computes the same matrix iteration as the
	// sequential push kernel up to float reassociation, so the iteration
	// counts can differ by at most one convergence-test flip.
	di := byName["power(parallel)"].Iterations - byName["power"].Iterations
	if di < -1 || di > 1 {
		t.Errorf("parallel power took %d iterations, sequential %d",
			byName["power(parallel)"].Iterations, byName["power"].Iterations)
	}
	var buf bytes.Buffer
	if err := WriteAcceleration(&buf, rows); err != nil {
		t.Fatalf("WriteAcceleration: %v", err)
	}
	if !strings.Contains(buf.String(), "gauss-seidel") {
		t.Errorf("missing row:\n%s", buf.String())
	}
}

func TestRunJXP(t *testing.T) {
	s := testSuite(t)
	pts, err := s.RunJXP(4, 7)
	if err != nil {
		t.Fatalf("RunJXP: %v", err)
	}
	if len(pts) != 5 { // round 0 + 4 rounds
		t.Fatalf("got %d points, want 5", len(pts))
	}
	if pts[0].Round != 0 || pts[4].Round != 4 {
		t.Fatalf("round numbering wrong: %+v", pts)
	}
	// Meetings must help substantially by the last round.
	if pts[4].MaxError > pts[0].MaxError/2 {
		t.Errorf("JXP error did not halve: round0 %v, round4 %v", pts[0].MaxError, pts[4].MaxError)
	}
	for _, p := range pts {
		if p.MeanError > p.MaxError+1e-12 {
			t.Errorf("round %d: mean %v exceeds max %v", p.Round, p.MeanError, p.MaxError)
		}
	}
	if _, err := s.RunJXP(0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	var buf bytes.Buffer
	if err := WriteJXP(&buf, pts); err != nil {
		t.Fatalf("WriteJXP: %v", err)
	}
	if !strings.Contains(buf.String(), "worst peer") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestRunPointRank(t *testing.T) {
	s := testSuite(t)
	rows, err := s.RunPointRank([]int{1, 4}, 10)
	if err != nil {
		t.Fatalf("RunPointRank: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if !(rows[1].MeanRelErr < rows[0].MeanRelErr) {
		t.Errorf("error did not shrink with radius: %v then %v", rows[0].MeanRelErr, rows[1].MeanRelErr)
	}
	if !(rows[1].MeanInfluence > rows[0].MeanInfluence) {
		t.Errorf("influence set did not grow with radius")
	}
	if _, err := s.RunPointRank(nil, -1); err == nil {
		t.Error("negative target count accepted")
	}
	var buf bytes.Buffer
	if err := WritePointRank(&buf, rows); err != nil {
		t.Fatalf("WritePointRank: %v", err)
	}
	if !strings.Contains(buf.String(), "radius") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}
