package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// AblationPoint is one sample of a one-dimensional parameter sweep.
type AblationPoint struct {
	X        float64 // the swept parameter value
	Gap      float64 // measured L1(IdealRank, ApproxRank) on local pages
	Bound    float64 // Theorem 2 bound ε/(1−ε)·‖E−E_approx‖₁ (0 if n/a)
	L1       float64 // ApproxRank L1 vs normalized global truth
	Footrule float64 // ApproxRank footrule vs global truth
}

// ablationSubgraph picks the sweep target: a mid-sized domain of the AU
// dataset (large enough to be interesting, small enough to iterate fast).
func (s *Suite) ablationSubgraph() (*graph.Subgraph, error) {
	order := DomainsAscending(s.AU.Data)
	d := order[len(order)/2]
	return graph.NewSubgraph(s.AU.Data.Graph, s.AU.Data.DomainPages(d))
}

// eDistance computes ‖E − E_approx‖₁: the L1 distance between the true
// normalized external scores and the uniform assumption.
func eDistance(sub *graph.Subgraph, globalScores []float64) float64 {
	extSum := 0.0
	for gid, sc := range globalScores {
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			extSum += sc
		}
	}
	uni := 1.0 / float64(sub.External())
	d := 0.0
	for gid, sc := range globalScores {
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			d += math.Abs(sc/extSum - uni)
		}
	}
	return d
}

// AblationEpsilon sweeps the damping factor and reports the measured
// IdealRank↔ApproxRank gap against the Theorem 2 bound, which scales as
// ε/(1−ε). The global truth is recomputed per ε (the theorem compares
// like-for-like chains).
func (s *Suite) AblationEpsilon(epsilons []float64) ([]AblationPoint, error) {
	if epsilons == nil {
		epsilons = []float64{0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95}
	}
	sub, err := s.ablationSubgraph()
	if err != nil {
		return nil, err
	}
	var pts []AblationPoint
	for _, eps := range epsilons {
		cfg := core.Config{Epsilon: eps, Tolerance: numeric.TightTolerance}
		truth, err := globalWithEps(s.AU, eps)
		if err != nil {
			return nil, err
		}
		ideal, err := core.IdealRank(sub, truth, cfg)
		if err != nil {
			return nil, err
		}
		ap, err := core.ApproxRankCtx(s.AU.Ctx, sub, cfg)
		if err != nil {
			return nil, err
		}
		gap := 0.0
		for i := range ideal.Scores {
			gap += math.Abs(ideal.Scores[i] - ap.Scores[i])
		}
		pts = append(pts, AblationPoint{
			X:     eps,
			Gap:   gap,
			Bound: eps / (1 - eps) * eDistance(sub, truth),
		})
	}
	return pts, nil
}

// globalWithEps recomputes the global PageRank of grun's graph at a
// non-default damping factor.
func globalWithEps(grun *GlobalRun, eps float64) ([]float64, error) {
	res, err := pagerank.Compute(grun.Data.Graph, pagerank.Options{Epsilon: eps})
	if err != nil {
		return nil, err
	}
	return res.Scores, nil
}

// AblationMixedE sweeps the paper's future-work knob: blending the true
// external scores into E_approx. Gap and ranking error must shrink as the
// blend approaches the truth.
func (s *Suite) AblationMixedE(alphas []float64) ([]AblationPoint, error) {
	if alphas == nil {
		alphas = []float64{0, 0.25, 0.5, 0.75, 1}
	}
	sub, err := s.ablationSubgraph()
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Tolerance: numeric.TightTolerance}
	ideal, err := core.IdealRank(sub, s.AU.PR.Scores, cfg)
	if err != nil {
		return nil, err
	}
	var pts []AblationPoint
	for _, a := range alphas {
		mixed, err := core.MixExternalScores(sub, s.AU.PR.Scores, a)
		if err != nil {
			return nil, err
		}
		chain, err := core.NewChainWithExternalScores(sub, mixed)
		if err != nil {
			return nil, err
		}
		res, err := chain.Run(cfg)
		if err != nil {
			return nil, err
		}
		gap := 0.0
		for i := range res.Scores {
			gap += math.Abs(res.Scores[i] - ideal.Scores[i])
		}
		l1, fr, err := s.AU.Evaluate(sub, res.Scores)
		if err != nil {
			return nil, err
		}
		pts = append(pts, AblationPoint{X: a, Gap: gap, L1: l1, Footrule: fr})
	}
	return pts, nil
}

// AblationIntraDomain regenerates small datasets with varying intra-domain
// link fractions and measures ApproxRank accuracy on a mid-sized domain of
// each — the structural knob that explains why DS subgraphs behave so much
// better than BFS subgraphs.
func AblationIntraDomain(intras []float64, pages int, seed int64) ([]AblationPoint, error) {
	if intras == nil {
		intras = []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
	}
	if pages == 0 {
		pages = 40000
	}
	var pts []AblationPoint
	for _, f := range intras {
		grun, err := newGlobalRun(context.Background(), fmt.Sprintf("intra-%.2f", f), gen.Config{
			Pages:         pages,
			Domains:       16,
			IntraFraction: f,
			Seed:          seed,
		})
		if err != nil {
			return nil, err
		}
		order := DomainsAscending(grun.Data)
		d := order[len(order)/2]
		sub, err := graph.NewSubgraph(grun.Data.Graph, grun.Data.DomainPages(d))
		if err != nil {
			return nil, err
		}
		res, err := core.ApproxRankCtx(grun.Ctx, sub, core.Config{})
		if err != nil {
			return nil, err
		}
		l1, fr, err := grun.Evaluate(sub, res.Scores)
		if err != nil {
			return nil, err
		}
		pts = append(pts, AblationPoint{X: f, L1: l1, Footrule: fr})
	}
	return pts, nil
}

// AblationSubgraphSize grows a DS-style subgraph by taking unions of
// domains (smallest first) at increasing target fractions of the global
// graph, isolating the size trend visible down the rows of Table IV.
func (s *Suite) AblationSubgraphSize(fractions []float64) ([]AblationPoint, error) {
	if fractions == nil {
		fractions = []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5}
	}
	ds := s.AU.Data
	order := DomainsAscending(ds)
	var pts []AblationPoint
	var pages []graph.NodeID
	next := 0
	for _, f := range fractions {
		target := int(f * float64(ds.Graph.NumNodes()))
		for next < len(order) && len(pages) < target {
			pages = append(pages, ds.DomainPages(order[next])...)
			next++
		}
		if len(pages) == 0 || len(pages) >= ds.Graph.NumNodes() {
			break
		}
		sub, err := graph.NewSubgraph(ds.Graph, pages)
		if err != nil {
			return nil, err
		}
		res, err := core.ApproxRankCtx(s.AU.Ctx, sub, core.Config{})
		if err != nil {
			return nil, err
		}
		l1, fr, err := s.AU.Evaluate(sub, res.Scores)
		if err != nil {
			return nil, err
		}
		pts = append(pts, AblationPoint{X: pct(sub.N(), ds.Graph.NumNodes()), L1: l1, Footrule: fr})
	}
	return pts, nil
}

// WriteAblation renders a sweep as a text table. Columns with all-zero
// values are still printed for uniformity; xLabel names the swept knob.
func WriteAblation(w io.Writer, title, xLabel string, pts []AblationPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, title)
	fmt.Fprintf(tw, "%s\tgap L1(ideal,approx)\tThm2 bound\tL1 vs truth\tfootrule vs truth\n", xLabel)
	for _, p := range pts {
		fmt.Fprintf(tw, "%.3f\t%.6f\t%.6f\t%.6f\t%.6f\n", p.X, p.Gap, p.Bound, p.L1, p.Footrule)
	}
	return tw.Flush()
}
