package experiments

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/blockrank"
	"repro/internal/core"
	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/numeric"
	"repro/internal/pagerank"
	"repro/internal/pointrank"
)

// The drivers in this file go beyond the paper's tables: they reproduce
// the behaviours of the related-work systems the paper discusses
// (PageRank accelerations §II-B, the JXP P2P approximation §II-C, the
// single-page local estimator §II-D) on the same synthetic datasets, so
// the paper's positioning claims can be checked quantitatively.

// AccelRow is one iteration scheme's outcome on the global graph.
type AccelRow struct {
	Method     string
	Iterations int
	Elapsed    time.Duration
	// L1 is the distance from a tightly converged reference vector.
	L1 float64
	// Frozen is the adaptive method's final frozen-page count (0 for the
	// other schemes).
	Frozen int
}

// RunAcceleration compares the PageRank iteration schemes of the related
// work (plain power iteration, quadratic extrapolation, Gauss–Seidel,
// adaptive freezing, the parallel pull sweep) on the AU global graph at
// tolerance 1e-8. It is RunAccelerationCtx with context.Background().
func (s *Suite) RunAcceleration() ([]AccelRow, error) {
	return s.RunAccelerationCtx(context.Background())
}

// RunAccelerationCtx is RunAcceleration under a context; every scheme's
// walk (and the tight reference run, the slowest of them) runs under it.
func (s *Suite) RunAccelerationCtx(ctx context.Context) ([]AccelRow, error) {
	g := s.AU.Data.Graph
	ref, err := pagerank.ComputeCtx(ctx, g, pagerank.Options{Tolerance: numeric.ReferenceTolerance, MaxIterations: 5000})
	if err != nil {
		return nil, err
	}
	cases := []struct {
		name string
		opts pagerank.Options
	}{
		{"power", pagerank.Options{Tolerance: numeric.TightTolerance}},
		{"power+extrapolation", pagerank.Options{Tolerance: numeric.TightTolerance, ExtrapolateEvery: 10}},
		{"gauss-seidel", pagerank.Options{Tolerance: numeric.TightTolerance, Method: pagerank.MethodGaussSeidel}},
		{"adaptive(1e-4)", pagerank.Options{Tolerance: numeric.TightTolerance, AdaptiveFreeze: numeric.DefaultAdaptiveFreeze}},
		// The parallel pull sweep computes the same matrix iteration as
		// "power" (the sequential path pushes, the parallel path pulls, so
		// their iterates differ only by float reassociation), making its
		// row isolate the wall-clock effect of edge-balanced workers.
		{"power(parallel)", pagerank.Options{Tolerance: numeric.TightTolerance, Parallelism: -1}},
	}
	var rows []AccelRow
	for _, c := range cases {
		res, err := pagerank.ComputeCtx(ctx, g, c.opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", c.name, err)
		}
		l1, err := metrics.L1(ref.Scores, res.Scores)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AccelRow{
			Method:     c.name,
			Iterations: res.Iterations,
			Elapsed:    res.Elapsed,
			L1:         l1,
			Frozen:     res.FrozenPages,
		})
	}
	// BlockRank exploits the same domain structure the DS experiments use;
	// its row reports only the final global stage's iteration count (the
	// block stages are embarrassingly parallel in the original paper).
	ds := s.AU.Data
	br, err := blockrank.ComputeCtx(ctx, g, func(p graph.NodeID) int { return int(ds.Domain[p]) },
		ds.NumDomains(), blockrank.Config{Tolerance: numeric.TightTolerance})
	if err != nil {
		return nil, fmt.Errorf("experiments: blockrank: %w", err)
	}
	l1, err := metrics.L1(ref.Scores, br.Scores)
	if err != nil {
		return nil, err
	}
	rows = append(rows, AccelRow{
		Method:     fmt.Sprintf("blockrank (stage3 only; +%d local, %d block iters)", br.LocalIterations, br.BlockIterations),
		Iterations: br.GlobalIterations,
		Elapsed:    br.Elapsed,
		L1:         l1,
	})
	return rows, nil
}

// WriteAcceleration renders the scheme comparison.
func WriteAcceleration(w io.Writer, rows []AccelRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENDED — PageRank iteration schemes on the AU global graph (related work §II-B)")
	fmt.Fprintln(tw, "method\titerations\ttime\tL1 vs reference\tfrozen pages")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.2e\t%d\n",
			r.Method, r.Iterations, r.Elapsed.Round(msRound), r.L1, r.Frozen)
	}
	return tw.Flush()
}

// JXPPoint is the network error after one JXP meeting round.
type JXPPoint struct {
	Round     int
	MaxError  float64 // worst peer's L1 error vs truth
	MeanError float64 // mean over peers
}

// RunJXP builds a JXP network with one peer per AU domain (a disjoint
// cover of the global graph) and records the error after each meeting
// round. Round 0 is the pure-ApproxRank starting state, so the series
// quantifies how much meeting-based knowledge improves on the uniform
// external assumption (and converges toward IdealRank). It is RunJXPCtx
// with context.Background().
func (s *Suite) RunJXP(rounds int, seed int64) ([]JXPPoint, error) {
	return s.RunJXPCtx(context.Background(), rounds, seed)
}

// RunJXPCtx is RunJXP under a context: peer initialization and every
// meeting round run under it, so a long gossip simulation can be aborted
// between (or within) rounds.
func (s *Suite) RunJXPCtx(ctx context.Context, rounds int, seed int64) ([]JXPPoint, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("experiments: JXP needs at least 1 round")
	}
	ds := s.AU.Data
	assignments := make(map[string][]graph.NodeID, ds.NumDomains())
	for d := 0; d < ds.NumDomains(); d++ {
		assignments[ds.DomainNames[d]] = ds.DomainPages(d)
	}
	nw, err := distributed.NewNetworkCtx(ctx, ds.Graph, assignments, core.Config{Tolerance: numeric.TightTolerance}, seed)
	if err != nil {
		return nil, err
	}
	point := func(round int) (JXPPoint, error) {
		maxErr, err := nw.MaxError(s.AU.PR.Scores)
		if err != nil {
			return JXPPoint{}, err
		}
		sum := 0.0
		for _, p := range nw.Peers {
			d := 0.0
			for li, gid := range p.Subgraph().Local {
				diff := p.Scores()[li] - s.AU.PR.Scores[gid]
				if diff < 0 {
					diff = -diff
				}
				d += diff
			}
			sum += d
		}
		return JXPPoint{Round: round, MaxError: maxErr, MeanError: sum / float64(len(nw.Peers))}, nil
	}
	pt, err := point(0)
	if err != nil {
		return nil, err
	}
	pts := []JXPPoint{pt}
	for r := 1; r <= rounds; r++ {
		if _, err := nw.RoundCtx(ctx); err != nil {
			return nil, err
		}
		pt, err := point(r)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// WriteJXP renders the convergence series.
func WriteJXP(w io.Writer, pts []JXPPoint) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENDED — JXP meeting rounds, one peer per AU domain (related work §II-C)")
	fmt.Fprintln(tw, "round\tworst peer L1\tmean peer L1")
	for _, p := range pts {
		fmt.Fprintf(tw, "%d\t%.6f\t%.6f\n", p.Round, p.MaxError, p.MeanError)
	}
	return tw.Flush()
}

// PointRankRow is the single-page estimator's quality at one radius.
type PointRankRow struct {
	Radius        int
	MeanRelErr    float64
	MeanInfluence float64
	MeanElapsed   time.Duration
}

// RunPointRank sweeps the backward-expansion radius of the Chen et al.
// single-page estimator over a sample of target pages of the AU graph.
func (s *Suite) RunPointRank(radii []int, targets int) ([]PointRankRow, error) {
	if radii == nil {
		radii = []int{1, 2, 3, 4}
	}
	if targets == 0 {
		targets = 20
	}
	if targets < 1 {
		return nil, fmt.Errorf("experiments: need at least 1 target")
	}
	g := s.AU.Data.Graph
	// Deterministic target sample: evenly spaced pages with in-links.
	var sample []graph.NodeID
	step := g.NumNodes() / (targets + 1)
	if step < 1 {
		step = 1
	}
	for p := step; p < g.NumNodes() && len(sample) < targets; p += step {
		if g.InDegree(graph.NodeID(p)) > 0 {
			sample = append(sample, graph.NodeID(p))
		}
	}
	if len(sample) == 0 {
		return nil, fmt.Errorf("experiments: no targets with in-links found")
	}
	var rows []PointRankRow
	for _, radius := range radii {
		row := PointRankRow{Radius: radius}
		var totalElapsed time.Duration
		for _, target := range sample {
			res, err := pointrank.Estimate(g, target, pointrank.Config{Radius: radius})
			if err != nil {
				return nil, fmt.Errorf("experiments: pointrank radius %d: %w", radius, err)
			}
			truth := s.AU.PR.Scores[target]
			rel := res.Score - truth
			if rel < 0 {
				rel = -rel
			}
			row.MeanRelErr += rel / truth
			row.MeanInfluence += float64(res.InfluenceSize)
			totalElapsed += res.Elapsed
		}
		k := float64(len(sample))
		row.MeanRelErr /= k
		row.MeanInfluence /= k
		row.MeanElapsed = totalElapsed / time.Duration(len(sample))
		rows = append(rows, row)
	}
	return rows, nil
}

// WritePointRank renders the radius sweep.
func WritePointRank(w io.Writer, rows []PointRankRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENDED — single-page local estimation, Chen et al. (related work §II-D)")
	fmt.Fprintln(tw, "radius\tmean relative error\tmean influence set\tmean time per target")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.4f\t%.0f\t%v\n", r.Radius, r.MeanRelErr, r.MeanInfluence, r.MeanElapsed.Round(time.Microsecond))
	}
	return tw.Flush()
}
