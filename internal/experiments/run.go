package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

// AlgoResult is one algorithm's outcome on one subgraph.
type AlgoResult struct {
	L1         float64
	Footrule   float64
	Elapsed    time.Duration
	Iterations int
}

// SCExtra carries the expansion telemetry Tables V and VI report for SC.
type SCExtra struct {
	K              int
	FrontierSizes  []int
	SupergraphSize int
}

// SubgraphRun is the full outcome of running the selected algorithms on
// one subgraph — the common substrate of Tables III–VI and Figure 7.
type SubgraphRun struct {
	Name         string
	N            int     // #nodes in local graph
	PctOfGlobal  float64 // 100·n/N
	AvgOutDegree float64 // average global out-degree of local pages

	Local  *AlgoResult // local PageRank (■)
	LPR2   *AlgoResult // LPR2 (●)
	SC     *AlgoResult // stochastic complementation (◆)
	SCInfo *SCExtra
	Approx *AlgoResult // ApproxRank (▲)
}

// Algos selects which algorithms a run executes. SC is the expensive one;
// Figure 7 disables it on all but the smallest subgraphs, as the paper
// does.
type Algos struct {
	Local  bool
	LPR2   bool
	SC     bool
	Approx bool
}

// AllAlgos runs everything.
func AllAlgos() Algos { return Algos{Local: true, LPR2: true, SC: true, Approx: true} }

// RunSubgraph executes the selected algorithms on the subgraph defined by
// localPages within grun's dataset and evaluates each against the global
// truth. cfg applies to every ranker; scCfg additionally configures SC.
// It is RunSubgraphCtx with context.Background().
func RunSubgraph(grun *GlobalRun, name string, localPages []graph.NodeID,
	algos Algos, cfg core.Config, scCfg baseline.SCConfig) (*SubgraphRun, error) {
	return RunSubgraphCtx(context.Background(), grun, name, localPages, algos, cfg, scCfg)
}

// RunSubgraphCtx is RunSubgraph under a context: every ranker — the
// baselines and ApproxRank alike — runs its walk under ctx, so one
// cancellation aborts whichever algorithm happens to be burning CPU.
func RunSubgraphCtx(ctx context.Context, grun *GlobalRun, name string, localPages []graph.NodeID,
	algos Algos, cfg core.Config, scCfg baseline.SCConfig) (*SubgraphRun, error) {

	sub, err := graph.NewSubgraph(grun.Data.Graph, localPages)
	if err != nil {
		return nil, fmt.Errorf("experiments: subgraph %s: %w", name, err)
	}
	run := &SubgraphRun{
		Name:         name,
		N:            sub.N(),
		PctOfGlobal:  pct(sub.N(), grun.Data.Graph.NumNodes()),
		AvgOutDegree: avgOutDegree(sub),
	}
	blCfg := baseline.Config{Epsilon: cfg.Epsilon, Tolerance: cfg.Tolerance, MaxIterations: cfg.MaxIterations}

	if algos.Local {
		res, err := baseline.LocalPageRankCtx(ctx, sub, blCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: local PageRank on %s: %w", name, err)
		}
		run.Local, err = evaluate(grun, sub, res.Scores, res.Elapsed, res.Iterations)
		if err != nil {
			return nil, err
		}
	}
	if algos.LPR2 {
		res, err := baseline.LPR2Ctx(ctx, sub, blCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: LPR2 on %s: %w", name, err)
		}
		run.LPR2, err = evaluate(grun, sub, res.Scores, res.Elapsed, res.Iterations)
		if err != nil {
			return nil, err
		}
	}
	if algos.SC {
		if scCfg.Epsilon == 0 {
			scCfg.Config = blCfg
		}
		res, err := baseline.SCCtx(ctx, sub, scCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: SC on %s: %w", name, err)
		}
		run.SC, err = evaluate(grun, sub, res.Scores, res.Elapsed, res.Iterations)
		if err != nil {
			return nil, err
		}
		run.SCInfo = &SCExtra{K: res.K, FrontierSizes: res.FrontierSizes, SupergraphSize: res.SupergraphSize}
	}
	if algos.Approx {
		start := time.Now()
		chain, err := core.NewApproxChainCtx(grun.Ctx, sub)
		if err != nil {
			return nil, fmt.Errorf("experiments: ApproxRank on %s: %w", name, err)
		}
		res, err := chain.RunCtx(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: ApproxRank on %s: %w", name, err)
		}
		// Include chain construction in the measured time (the paper's
		// ApproxRank runtimes cover determining A_approx for the subgraph).
		run.Approx, err = evaluate(grun, sub, res.Scores, time.Since(start), res.Iterations)
		if err != nil {
			return nil, err
		}
	}
	return run, nil
}

func evaluate(grun *GlobalRun, sub *graph.Subgraph, scores []float64,
	elapsed time.Duration, iters int) (*AlgoResult, error) {
	l1, fr, err := grun.Evaluate(sub, scores)
	if err != nil {
		return nil, err
	}
	return &AlgoResult{L1: l1, Footrule: fr, Elapsed: elapsed, Iterations: iters}, nil
}

// IdealCheck runs IdealRank on a subgraph and returns its L1 distance from
// the (normalized) global truth. Used by integration tests: the value must
// be ~0 by Theorem 1.
func IdealCheck(grun *GlobalRun, localPages []graph.NodeID, cfg core.Config) (float64, error) {
	sub, err := graph.NewSubgraph(grun.Data.Graph, localPages)
	if err != nil {
		return 0, err
	}
	res, err := core.IdealRank(sub, grun.PR.Scores, cfg)
	if err != nil {
		return 0, err
	}
	l1, _, err := grun.Evaluate(sub, res.Scores)
	return l1, err
}
