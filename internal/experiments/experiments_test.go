package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/graph"
)

// The suite is expensive enough to share across tests.
var (
	tOnce  sync.Once
	tSuite *Suite
	tErr   error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	tOnce.Do(func() {
		tSuite, tErr = NewSuite(Tiny())
	})
	if tErr != nil {
		t.Fatalf("NewSuite: %v", tErr)
	}
	return tSuite
}

func TestSuiteConstruction(t *testing.T) {
	s := testSuite(t)
	if s.AU.Data.Graph.NumNodes() != 12000 {
		t.Errorf("AU pages = %d, want 12000", s.AU.Data.Graph.NumNodes())
	}
	if s.Politics.Data.Graph.NumNodes() != 10000 {
		t.Errorf("politics pages = %d, want 10000", s.Politics.Data.Graph.NumNodes())
	}
	if !s.AU.PR.Converged || !s.Politics.PR.Converged {
		t.Error("global PageRank did not converge")
	}
	if s.AU.Ctx.DanglingCount() == 0 {
		t.Error("expected some dangling pages")
	}
}

// TestIdealRankIntegration: Theorem 1 holds on the generated dataset (an
// end-to-end check through dataset → subgraph → IdealRank).
func TestIdealRankIntegration(t *testing.T) {
	s := testSuite(t)
	pages := s.AU.Data.DomainPages(3)
	// The suite's ground truth uses tolerance 1e-5; IdealRank reproduces
	// it up to iteration error, so allow a small slack.
	l1, err := IdealCheck(s.AU, pages, core.Config{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("IdealCheck: %v", err)
	}
	if l1 > 1e-3 {
		t.Errorf("IdealRank L1 from truth = %v, want ~0", l1)
	}
}

// TestRunDSShape checks the Table IV invariants the paper reports:
// ApproxRank beats every competitor on footrule for DS subgraphs, and SC
// lies between local PageRank and ApproxRank.
func TestRunDSShape(t *testing.T) {
	s := testSuite(t)
	runs, err := s.RunDS(4)
	if err != nil {
		t.Fatalf("RunDS: %v", err)
	}
	if len(runs) != 4 {
		t.Fatalf("got %d runs, want 4", len(runs))
	}
	prevN := 0
	for _, r := range runs {
		if r.N < prevN {
			t.Errorf("domains not ascending by size: %d after %d", r.N, prevN)
		}
		prevN = r.N
		if r.Approx.Footrule >= r.Local.Footrule {
			t.Errorf("%s: ApproxRank footrule %v not better than local PR %v",
				r.Name, r.Approx.Footrule, r.Local.Footrule)
		}
		// The paper's DS subgraphs are ≤10.4% of the global graph; in that
		// regime ApproxRank beats SC strictly. At Tiny() scale the largest
		// domain covers ~30% of the graph, where SC's supergraph is most of
		// the graph and the two become comparable — allow a small slack
		// there.
		if r.PctOfGlobal < 15 {
			if r.Approx.Footrule >= r.SC.Footrule {
				t.Errorf("%s: ApproxRank footrule %v not better than SC %v",
					r.Name, r.Approx.Footrule, r.SC.Footrule)
			}
		} else if r.Approx.Footrule > r.SC.Footrule*1.25 {
			t.Errorf("%s (%.0f%% of global): ApproxRank footrule %v far worse than SC %v",
				r.Name, r.PctOfGlobal, r.Approx.Footrule, r.SC.Footrule)
		}
		if r.Approx.Footrule >= r.LPR2.Footrule {
			t.Errorf("%s: ApproxRank footrule %v not better than LPR2 %v",
				r.Name, r.Approx.Footrule, r.LPR2.Footrule)
		}
		if r.SCInfo == nil || r.SCInfo.K < 1 {
			t.Errorf("%s: missing SC telemetry", r.Name)
		}
	}
}

// TestRunTSShape checks Table III's invariant: ApproxRank's footrule beats
// SC's on every TS subgraph.
func TestRunTSShape(t *testing.T) {
	s := testSuite(t)
	runs, err := s.RunTS(TSParams{})
	if err != nil {
		t.Fatalf("RunTS: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	names := map[string]bool{}
	wins := 0
	for _, r := range runs {
		names[r.Name] = true
		if r.Approx.Footrule < r.SC.Footrule {
			wins++
		}
		// At Tiny() scale individual crawls can be close calls; require
		// ApproxRank to stay within 15% of SC everywhere and to win on the
		// majority (at paper scale it wins on all three, as in Table III).
		if r.Approx.Footrule > r.SC.Footrule*1.15 {
			t.Errorf("%s: ApproxRank footrule %v much worse than SC %v",
				r.Name, r.Approx.Footrule, r.SC.Footrule)
		}
	}
	if wins < 2 {
		t.Errorf("ApproxRank beat SC on only %d of 3 TS subgraphs", wins)
	}
	for _, want := range tsNames {
		if !names[want] {
			t.Errorf("missing TS subgraph %q", want)
		}
	}
	// socialism is the deliberately small one.
	if runs[2].N >= runs[0].N {
		t.Errorf("socialism (%d pages) should be smaller than conservatism (%d)", runs[2].N, runs[0].N)
	}
}

// TestRunBFSShape checks Figure 7's invariants: ApproxRank beats the two
// baselines on every BFS subgraph, and SC runs only on the two smallest.
func TestRunBFSShape(t *testing.T) {
	s := testSuite(t)
	runs, err := s.RunBFS([]float64{0.5, 2, 8})
	if err != nil {
		t.Fatalf("RunBFS: %v", err)
	}
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	for i, r := range runs {
		if r.Approx.Footrule >= r.Local.Footrule {
			t.Errorf("%s: ApproxRank %v not better than local PR %v", r.Name, r.Approx.Footrule, r.Local.Footrule)
		}
		if (r.SC != nil) != (i < 2) {
			t.Errorf("%s: SC presence = %v, want %v", r.Name, r.SC != nil, i < 2)
		}
	}
}

// TestWriters: every table renders without error and contains its header
// and at least one data row.
func TestWriters(t *testing.T) {
	s := testSuite(t)
	ts, err := s.RunTS(TSParams{})
	if err != nil {
		t.Fatalf("RunTS: %v", err)
	}
	ds, err := s.RunDS(3)
	if err != nil {
		t.Fatalf("RunDS: %v", err)
	}
	bfs, err := s.RunBFS([]float64{0.5, 2})
	if err != nil {
		t.Fatalf("RunBFS: %v", err)
	}
	cases := []struct {
		name string
		fn   func(*bytes.Buffer) error
		want string
	}{
		{"TableII", func(b *bytes.Buffer) error { return s.WriteTableII(b) }, "TABLE II"},
		{"TableIII", func(b *bytes.Buffer) error { return WriteTableIII(b, ts) }, "conservatism"},
		{"TableIV", func(b *bytes.Buffer) error { return WriteTableIV(b, ds) }, "ApproxRank"},
		{"TableV", func(b *bytes.Buffer) error { return WriteTableV(b, ts) }, "TABLE V"},
		{"TableVI", func(b *bytes.Buffer) error { return s.WriteTableVI(b, ds) }, "global PageRank"},
		{"Figure7", func(b *bytes.Buffer) error { return WriteFigure7(b, bfs) }, "FIGURE 7"},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.fn(&buf); err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		out := buf.String()
		if !strings.Contains(out, c.want) {
			t.Errorf("%s output missing %q:\n%s", c.name, c.want, out)
		}
		if strings.Count(out, "\n") < 3 {
			t.Errorf("%s output suspiciously short:\n%s", c.name, out)
		}
	}
}

// TestAblationEpsilonShape: the Theorem 2 bound must dominate the measured
// gap at every ε, and both must grow with ε.
func TestAblationEpsilonShape(t *testing.T) {
	s := testSuite(t)
	pts, err := s.AblationEpsilon([]float64{0.5, 0.85})
	if err != nil {
		t.Fatalf("AblationEpsilon: %v", err)
	}
	for _, p := range pts {
		if p.Gap > p.Bound {
			t.Errorf("eps=%v: gap %v exceeds bound %v", p.X, p.Gap, p.Bound)
		}
	}
	if !(pts[1].Bound > pts[0].Bound) {
		t.Errorf("bound did not grow with epsilon: %v then %v", pts[0].Bound, pts[1].Bound)
	}
}

// TestAblationMixedEShape: the gap vanishes at alpha=1 and never grows
// with more knowledge.
func TestAblationMixedEShape(t *testing.T) {
	s := testSuite(t)
	pts, err := s.AblationMixedE([]float64{0, 0.5, 1})
	if err != nil {
		t.Fatalf("AblationMixedE: %v", err)
	}
	if pts[2].Gap > 1e-4 {
		t.Errorf("alpha=1 gap = %v, want ~0", pts[2].Gap)
	}
	if pts[1].Gap > pts[0].Gap+1e-9 {
		t.Errorf("gap grew with knowledge: %v then %v", pts[0].Gap, pts[1].Gap)
	}
}

// TestAblationIntraDomainShape: more intra-domain linkage means easier
// subgraphs (lower ApproxRank footrule at 0.95 than at 0.5).
func TestAblationIntraDomainShape(t *testing.T) {
	pts, err := AblationIntraDomain([]float64{0.5, 0.95}, 8000, 77)
	if err != nil {
		t.Fatalf("AblationIntraDomain: %v", err)
	}
	if !(pts[1].Footrule < pts[0].Footrule) {
		t.Errorf("footrule did not improve with intra-domain fraction: %v then %v",
			pts[0].Footrule, pts[1].Footrule)
	}
}

// TestAblationSubgraphSize: runs and yields points with growing X.
func TestAblationSubgraphSize(t *testing.T) {
	s := testSuite(t)
	pts, err := s.AblationSubgraphSize([]float64{0.05, 0.2, 0.5})
	if err != nil {
		t.Fatalf("AblationSubgraphSize: %v", err)
	}
	if len(pts) < 2 {
		t.Fatalf("too few points: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X <= pts[i-1].X {
			t.Errorf("sizes not increasing: %v after %v", pts[i].X, pts[i-1].X)
		}
	}
}

// TestWriteAblation renders a sweep.
func TestWriteAblation(t *testing.T) {
	var buf bytes.Buffer
	pts := []AblationPoint{{X: 0.5, Gap: 0.1, Bound: 0.2, L1: 0.05, Footrule: 0.01}}
	if err := WriteAblation(&buf, "title", "x", pts); err != nil {
		t.Fatalf("WriteAblation: %v", err)
	}
	if !strings.Contains(buf.String(), "title") || !strings.Contains(buf.String(), "0.100000") {
		t.Errorf("unexpected output:\n%s", buf.String())
	}
}

// TestPickDomains spans the spectrum and stays ascending.
func TestPickDomains(t *testing.T) {
	s := testSuite(t)
	picked := PickDomains(s.AU.Data, 5)
	if len(picked) != 5 {
		t.Fatalf("picked %d domains, want 5", len(picked))
	}
	all := DomainsAscending(s.AU.Data)
	if picked[0] != all[0] || picked[4] != all[len(all)-1] {
		t.Errorf("picked %v does not span smallest %d to largest %d", picked, all[0], all[len(all)-1])
	}
	for i := 1; i < len(picked); i++ {
		if s.AU.Data.DomainSize(picked[i]) < s.AU.Data.DomainSize(picked[i-1]) {
			t.Errorf("picked domains not ascending by size")
		}
	}
	if got := PickDomains(s.AU.Data, 100); len(got) != s.AU.Data.NumDomains() {
		t.Errorf("overlong pick returned %d domains", len(got))
	}
}

// TestEvaluateSelf: the truth evaluated against itself is zero distance.
func TestEvaluateSelf(t *testing.T) {
	s := testSuite(t)
	pages := s.AU.Data.DomainPages(2)
	sub, err := newSub(s, pages)
	if err != nil {
		t.Fatalf("subgraph: %v", err)
	}
	truth := s.AU.Truth(sub)
	l1, fr, err := s.AU.Evaluate(sub, truth)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if l1 > 1e-12 || fr != 0 {
		t.Errorf("self-evaluation: L1=%v footrule=%v", l1, fr)
	}
}

func newSub(s *Suite, pages []graph.NodeID) (*graph.Subgraph, error) {
	return graph.NewSubgraph(s.AU.Data.Graph, pages)
}

// TestRunSubgraphSelective: only the requested algorithms run.
func TestRunSubgraphSelective(t *testing.T) {
	s := testSuite(t)
	pages := s.AU.Data.DomainPages(1)
	run, err := RunSubgraph(s.AU, "sel", pages, Algos{Approx: true}, core.Config{}, baseline.SCConfig{})
	if err != nil {
		t.Fatalf("RunSubgraph: %v", err)
	}
	if run.Approx == nil {
		t.Error("requested algorithm missing")
	}
	if run.Local != nil || run.LPR2 != nil || run.SC != nil || run.SCInfo != nil {
		t.Error("unrequested algorithms ran")
	}
	if run.N != len(pages) {
		t.Errorf("N = %d, want %d", run.N, len(pages))
	}
	if run.AvgOutDegree <= 0 {
		t.Errorf("AvgOutDegree = %v", run.AvgOutDegree)
	}
}

// TestRunSubgraphErrors: invalid subgraph specs are rejected.
func TestRunSubgraphErrors(t *testing.T) {
	s := testSuite(t)
	if _, err := RunSubgraph(s.AU, "bad", nil, AllAlgos(), core.Config{}, baseline.SCConfig{}); err == nil {
		t.Error("empty page set accepted")
	}
	if _, err := RunSubgraph(s.AU, "bad", []graph.NodeID{1 << 30}, AllAlgos(), core.Config{}, baseline.SCConfig{}); err == nil {
		t.Error("out-of-range page accepted")
	}
}

// TestSCConfigPassthrough: a custom SC configuration reaches the
// algorithm (fewer expansions → smaller supergraph).
func TestSCConfigPassthrough(t *testing.T) {
	s := testSuite(t)
	pages := s.AU.Data.DomainPages(1)
	run, err := RunSubgraph(s.AU, "sc2", pages, Algos{SC: true},
		core.Config{}, baseline.SCConfig{Expansions: 2, Config: baseline.Config{Tolerance: 1e-6}})
	if err != nil {
		t.Fatalf("RunSubgraph: %v", err)
	}
	if run.SCInfo == nil {
		t.Fatal("missing SC telemetry")
	}
	if got := run.SCInfo.SupergraphSize; got > len(pages)+2*run.SCInfo.K {
		t.Errorf("supergraph %d larger than 2 expansions allow", got)
	}
}
