package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunUpdate(t *testing.T) {
	s := testSuite(t)
	rows, err := s.RunUpdate(0.35, 11)
	if err != nil {
		t.Fatalf("RunUpdate: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]UpdateRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	stale := byName["stale scores (do nothing)"]
	ideal := byName["IdealRank, stale externals (paper)"]
	iadRow := byName["IAD update (Langville & Meyer)"]
	full := byName["full recomputation"]

	// The paper's proposal must crush doing nothing.
	if ideal.L1 >= stale.L1/5 {
		t.Errorf("IdealRank-with-stale-externals L1 %v not ≪ stale L1 %v", ideal.L1, stale.L1)
	}
	// IAD is (numerically) exact.
	if iadRow.L1 > 1e-4 {
		t.Errorf("IAD L1 = %v, want ~0", iadRow.L1)
	}
	// IAD must need fewer global sweeps than full recomputation.
	if iadRow.GlobalSweeps >= full.GlobalSweeps {
		t.Errorf("IAD sweeps %d, recompute %d", iadRow.GlobalSweeps, full.GlobalSweeps)
	}
	// IdealRank never sweeps the global graph.
	if ideal.GlobalSweeps != 0 {
		t.Errorf("IdealRank reported %d global sweeps", ideal.GlobalSweeps)
	}
	if full.L1 != 0 || full.Footrule != 0 {
		t.Errorf("reference row not exact: %+v", full)
	}

	if _, err := s.RunUpdate(0, 1); err == nil {
		t.Error("zero rewire fraction accepted")
	}
	if _, err := s.RunUpdate(1.5, 1); err == nil {
		t.Error("rewire fraction above 1 accepted")
	}

	var buf bytes.Buffer
	if err := WriteUpdate(&buf, rows); err != nil {
		t.Fatalf("WriteUpdate: %v", err)
	}
	if !strings.Contains(buf.String(), "IAD update") {
		t.Errorf("missing row:\n%s", buf.String())
	}
}

func TestRunTopK(t *testing.T) {
	s := testSuite(t)
	rows, err := s.RunTopK([]int{5, 25, 100})
	if err != nil {
		t.Fatalf("RunTopK: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	sumAR, sumLocal := 0.0, 0.0
	for _, r := range rows {
		for name, v := range map[string]float64{"local": r.Local, "lpr2": r.LPR2, "sc": r.SC, "approx": r.Approx} {
			if v < 0 || v > 1 {
				t.Errorf("K=%d %s overlap %v outside [0,1]", r.K, name, v)
			}
		}
		sumAR += r.Approx
		sumLocal += r.Local
	}
	// ApproxRank must retrieve the true top-K better than local PageRank
	// on aggregate.
	if sumAR <= sumLocal {
		t.Errorf("ApproxRank mean overlap %v not better than local PR %v", sumAR/3, sumLocal/3)
	}
	if _, err := s.RunTopK([]int{0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := s.RunTopK([]int{1 << 30}); err == nil {
		t.Error("huge K accepted")
	}
	var buf bytes.Buffer
	if err := WriteTopK(&buf, rows); err != nil {
		t.Fatalf("WriteTopK: %v", err)
	}
	if !strings.Contains(buf.String(), "top-K") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}
