package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/metrics"
)

// TopKRow reports, for one K, each algorithm's top-K overlap with the
// true global top-K of a DS subgraph (1 = perfect agreement).
type TopKRow struct {
	K      int
	Local  float64
	LPR2   float64
	SC     float64
	Approx float64
}

// RunTopK quantifies the paper's §V-C remark — "in many applications,
// e.g., Top-K query answering, the accuracy of the ordering is more
// important than the accuracy of the scores" — by measuring the fraction
// of the true top-K pages each algorithm retrieves on a mid-sized AU
// domain.
func (s *Suite) RunTopK(ks []int) ([]TopKRow, error) {
	sub, err := s.ablationSubgraph()
	if err != nil {
		return nil, err
	}
	if ks == nil {
		ks = []int{10, 25, 50, 100, 250}
	}
	for _, k := range ks {
		if k < 1 || k > sub.N() {
			return nil, fmt.Errorf("experiments: K=%d outside [1,%d]", k, sub.N())
		}
	}
	truth := s.AU.Truth(sub)

	blCfg := baseline.Config{}
	local, err := baseline.LocalPageRank(sub, blCfg)
	if err != nil {
		return nil, err
	}
	lpr2, err := baseline.LPR2(sub, blCfg)
	if err != nil {
		return nil, err
	}
	sc, err := baseline.SC(sub, baseline.SCConfig{})
	if err != nil {
		return nil, err
	}
	ap, err := core.ApproxRankCtx(s.AU.Ctx, sub, core.Config{})
	if err != nil {
		return nil, err
	}

	var rows []TopKRow
	for _, k := range ks {
		row := TopKRow{K: k}
		if row.Local, err = metrics.TopKOverlap(truth, local.Scores, k); err != nil {
			return nil, err
		}
		if row.LPR2, err = metrics.TopKOverlap(truth, lpr2.Scores, k); err != nil {
			return nil, err
		}
		if row.SC, err = metrics.TopKOverlap(truth, sc.Scores, k); err != nil {
			return nil, err
		}
		if row.Approx, err = metrics.TopKOverlap(truth, ap.Scores, k); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteTopK renders the top-K comparison.
func WriteTopK(w io.Writer, rows []TopKRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENDED — top-K retrieval accuracy on a mid-sized DS subgraph (paper §V-C)")
	fmt.Fprintln(tw, "K\tlocal PR (■)\tLPR2 (●)\tSC (◆)\tApproxRank (▲)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n", r.K, r.Local, r.LPR2, r.SC, r.Approx)
	}
	return tw.Flush()
}
