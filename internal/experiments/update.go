package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/iad"
	"repro/internal/metrics"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// UpdateRow is one strategy's outcome in the updated-subgraph scenario.
type UpdateRow struct {
	Strategy string
	// L1 is the distance from the exact recomputed vector, over the
	// changed region, both restrictions normalized.
	L1 float64
	// Footrule is the ranking distance over the changed region.
	Footrule float64
	// GlobalSweeps counts full-graph power sweeps the strategy used
	// (0 when it touches only the subgraph).
	GlobalSweeps int
	Elapsed      time.Duration
}

// RunUpdate reproduces the paper's "updates confined to a subgraph"
// motivation quantitatively: one AU domain's internal links are rewired,
// and four strategies score the changed region — keeping the stale
// scores, IdealRank over the new subgraph with stale external scores
// (the paper's proposal for this scenario), IAD updating (Langville &
// Meyer), and an exact recomputation (the reference).
func (s *Suite) RunUpdate(rewireFrac float64, seed int64) ([]UpdateRow, error) {
	if rewireFrac <= 0 || rewireFrac >= 1 {
		return nil, fmt.Errorf("experiments: rewire fraction %v outside (0,1)", rewireFrac)
	}
	ds := s.AU.Data
	order := DomainsAscending(ds)
	region := ds.DomainPages(order[len(order)/2])
	member := graph.NewNodeSet(ds.Graph.NumNodes())
	for _, p := range region {
		member.Add(p)
	}

	// Rewire rewireFrac of the region's internal links.
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(ds.Graph.NumNodes())
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		uid := graph.NodeID(u)
		for _, v := range ds.Graph.OutNeighbors(uid) {
			if member.Contains(uid) && member.Contains(v) && rng.Float64() < rewireFrac {
				w := region[rng.Intn(len(region))]
				if w != uid {
					b.AddEdge(uid, w)
					continue
				}
			}
			b.AddEdge(uid, v)
		}
	}
	ng, err := b.Build()
	if err != nil {
		return nil, err
	}
	sub, err := graph.NewSubgraph(ng, region)
	if err != nil {
		return nil, err
	}

	// Reference: exact recomputation on the new graph.
	t0 := time.Now()
	fresh, err := pagerank.Compute(ng, pagerank.Options{Tolerance: numeric.TightTolerance})
	if err != nil {
		return nil, err
	}
	freshElapsed := time.Since(t0)
	truth := restrictNormalized(fresh.Scores, sub)

	evalRegion := func(scores []float64) (float64, float64, error) {
		est := append([]float64(nil), scores...)
		normalize(est)
		l1, err := pagerankL1(truth, est)
		if err != nil {
			return 0, 0, err
		}
		fr, err := metrics.FootruleScores(truth, est)
		return l1, fr, err
	}

	var rows []UpdateRow

	// (a) Stale scores: do nothing.
	stale := restrictNormalized(s.AU.PR.Scores, sub)
	l1, fr, err := evalRegion(stale)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UpdateRow{Strategy: "stale scores (do nothing)", L1: l1, Footrule: fr})

	// (b) IdealRank with stale external scores — the paper's proposal.
	t0 = time.Now()
	ir, err := core.IdealRank(sub, s.AU.PR.Scores, core.Config{})
	if err != nil {
		return nil, err
	}
	irElapsed := time.Since(t0)
	l1, fr, err = evalRegion(ir.Scores)
	if err != nil {
		return nil, err
	}
	rows = append(rows, UpdateRow{Strategy: "IdealRank, stale externals (paper)", L1: l1, Footrule: fr, Elapsed: irElapsed})

	// (c) IAD updating — exact, fewer global sweeps than recomputing.
	t0 = time.Now()
	upd, err := iad.Update(ng, region, s.AU.PR.Scores, iad.Config{Tolerance: numeric.TightTolerance})
	if err != nil {
		return nil, err
	}
	iadElapsed := time.Since(t0)
	l1, fr, err = evalRegion(restrictNormalized(upd.Scores, sub))
	if err != nil {
		return nil, err
	}
	rows = append(rows, UpdateRow{Strategy: "IAD update (Langville & Meyer)", L1: l1, Footrule: fr,
		GlobalSweeps: upd.GlobalSweeps, Elapsed: iadElapsed})

	// (d) Exact recomputation — zero error by construction.
	rows = append(rows, UpdateRow{Strategy: "full recomputation", L1: 0, Footrule: 0,
		GlobalSweeps: fresh.Iterations, Elapsed: freshElapsed})
	return rows, nil
}

// WriteUpdate renders the update-scenario comparison.
func WriteUpdate(w io.Writer, rows []UpdateRow) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "EXTENDED — updated-subgraph scenario: one AU domain rewired (paper §I, §II-E)")
	fmt.Fprintln(tw, "strategy\tL1 vs exact\tfootrule vs exact\tglobal sweeps\ttime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.6f\t%.6f\t%d\t%v\n",
			r.Strategy, r.L1, r.Footrule, r.GlobalSweeps, r.Elapsed.Round(msRound))
	}
	return tw.Flush()
}

func restrictNormalized(global []float64, sub *graph.Subgraph) []float64 {
	out := make([]float64, sub.N())
	for li, gid := range sub.Local {
		out[li] = global[gid]
	}
	normalize(out)
	return out
}

// pagerankL1 is a local L1 helper (the callers have equal-length vectors
// by construction but keep the check).
func pagerankL1(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("experiments: length mismatch")
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d, nil
}
