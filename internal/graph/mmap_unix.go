//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// MmapFile opens a v2 binary graph file with the CSR sections aliased
// directly out of a read-only memory mapping: no decode, no copies, no
// heap growth proportional to the graph — resident memory is whatever
// pages the kernel faults in as sections are touched. Checksums and
// structural invariants are still fully verified (one sequential
// page-in of the file, the cheapest possible first touch).
//
// The returned graph owns the mapping; call Close when done. Every
// slice handed out by the graph — adjacency rows, InCSR/OutCSR, kernel
// snapshots that alias them — dies with Close.
//
// Only v2 files can be mapped (the v1 payload is varint-coded, not an
// image); callers holding a file of unknown format should sniff it
// first (SniffFile) or use LoadFile. On big-endian hosts the mapping
// cannot be aliased and MmapFile transparently falls back to the
// copying reader.
func MmapFile(path string) (*Graph, error) {
	if !hostLittleEndian {
		return readV2Fallback(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < v2HeaderSize {
		return nil, fmt.Errorf("graph: %s: too short for a v2 graph (%d bytes)", path, size)
	}
	if size > int64(^uint(0)>>1) {
		return nil, fmt.Errorf("graph: %s: file too large to map (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := graphFromMapped(data)
	if err != nil {
		_ = syscall.Munmap(data) //arlint:allow errflow cleanup on the parse-failure path; the parse error is the root cause
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	g.mapped = data
	return g, nil
}

func unmapMem(data []byte) error {
	return syscall.Munmap(data)
}
