package graph

import (
	"runtime"
	"sync"
)

// Parallel in-CSR build. Deriving the in-adjacency from a finished
// out-CSR is the dominant cost of loading a v1 file or a v2 file whose
// writer omitted the in-sections, so it runs as a partitioned counting
// sort over a resident worker team (the kernel.SweepPool shape: spawn
// once, broadcast rounds over buffered channels, caller works as
// worker 0):
//
//	phase 1  each worker counts in-degrees for its contiguous source
//	         range into a private count array — no shared writes.
//	phase 2  a sequential pass turns the per-worker counts into
//	         absolute write cursors while filling inOff, fixing the
//	         exact slot every edge will land in.
//	phase 3  each worker re-scans its own source range in order and
//	         scatters sources (and weights) through its private
//	         cursors — every slot is written exactly once, by exactly
//	         one worker.
//
// Because worker ranges are ascending contiguous source blocks and the
// cursor layout orders worker w's edges after worker w-1's within each
// in-row, the output is bit-identical to the sequential build (each
// in-row sorted by ascending source), independent of worker count —
// pinned by test across 1/2/4/8 workers.

// buildIn derives the in-CSR (and in-weights) from a finished out-CSR,
// in parallel when the graph is big enough to pay for the team.
func buildIn(g *Graph) {
	buildInParallel(g, buildWorkers(g.n, len(g.outAdj)))
}

// buildWorkers picks the team size for a parallel in-CSR build: bounded
// by GOMAXPROCS, capped so the per-worker count arrays (W·n·4 bytes)
// stay within a 256 MiB budget, and 1 for graphs too small to amortize
// the barriers or too large for the int32 cursors.
func buildWorkers(n, m int) int {
	const minEdges = 1 << 17
	if m < minEdges || int64(m) > 1<<31-1 {
		return 1
	}
	w := runtime.GOMAXPROCS(0)
	if w > 8 {
		w = 8
	}
	for w > 1 && int64(w)*int64(n)*4 > 1<<28 {
		w--
	}
	return w
}

// buildInParallel is the worker-count-explicit build; tests drive it
// directly to pin bit-identity across team sizes.
func buildInParallel(g *Graph, workers int) {
	m := len(g.outAdj)
	g.inOff = make([]int64, g.n+1)
	g.inAdj = make([]NodeID, m)
	if g.outW != nil {
		g.inW = make([]float64, m)
	}
	if workers <= 1 {
		buildInSeq(g)
		return
	}

	// Contiguous source ranges balanced by edge count, so phase 1 and
	// phase 3 hand each worker a similar share of the scatter work.
	bounds := splitNodesByEdges(g.outOff, g.n, workers)
	counts := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		counts[w] = make([]int32, g.n)
	}

	// Each round is a broadcast/join barrier over the resident team:
	// hand f to every worker over its private buffered channel, work
	// part 0 on the calling goroutine, wait for the rest. Keeping the
	// feed loop and the join here — next to the team construction —
	// is the SweepPool discipline: one spawn per build, amortized over
	// the rounds, not one spawn+join per phase.
	team := newBuildTeam(workers)
	round := func(f func(worker int)) {
		team.wg.Add(len(team.jobs))
		for _, ch := range team.jobs {
			ch <- f
		}
		f(0)
		team.wg.Wait()
	}
	round(func(w int) {
		countRange(g.outAdj, g.outOff[bounds[w]], g.outOff[bounds[w+1]], counts[w])
	})

	// Convert per-worker counts to absolute write cursors in place while
	// filling inOff: for in-row v, worker 0's edges occupy the first
	// slots, worker 1's the next, and so on — matching the order the
	// sequential build (ascending source) would produce.
	total := int64(0)
	for v := 0; v < g.n; v++ {
		g.inOff[v] = total
		for w := 0; w < workers; w++ {
			c := counts[w][v]
			counts[w][v] = int32(total)
			total += int64(c)
		}
	}
	g.inOff[g.n] = total

	round(func(w int) {
		lo, hi := bounds[w], bounds[w+1]
		if g.inW != nil {
			scatterRangeW(g.outOff, g.outAdj, g.outW, lo, hi, counts[w], g.inAdj, g.inW)
		} else {
			scatterRange(g.outOff, g.outAdj, lo, hi, counts[w], g.inAdj)
		}
	})
	team.stop()
}

// buildInSeq is the sequential in-CSR build: count in-degrees, prefix
// sum, cursor scatter in ascending source order (so each in-row comes
// out sorted by source). inOff/inAdj/inW are already allocated.
func buildInSeq(g *Graph) {
	for _, v := range g.outAdj {
		g.inOff[v+1]++
	}
	for u := 0; u < g.n; u++ {
		g.inOff[u+1] += g.inOff[u]
	}
	cursor := make([]int64, g.n)
	copy(cursor, g.inOff[:g.n])
	for u := 0; u < g.n; u++ {
		for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
			v := g.outAdj[k]
			slot := cursor[v]
			g.inAdj[slot] = NodeID(u)
			if g.inW != nil {
				g.inW[slot] = g.outW[k]
			}
			cursor[v]++
		}
	}
}

// countRange tallies the in-degree contribution of the edge slots
// [lo, hi) into cnt. cnt is this worker's private array — no sharing.
//
//arlint:hot
func countRange(outAdj []NodeID, lo, hi int64, cnt []int32) {
	for k := lo; k < hi; k++ {
		cnt[outAdj[k]]++
	}
}

// scatterRange writes the in-adjacency slots owned by one worker: it
// walks the worker's source range in ascending order and places each
// edge's source at the worker's private cursor for the target row.
//
//arlint:hot
func scatterRange(outOff []int64, outAdj []NodeID, lo, hi int, cur []int32, inAdj []NodeID) {
	for u := lo; u < hi; u++ {
		for k := outOff[u]; k < outOff[u+1]; k++ {
			v := outAdj[k]
			inAdj[cur[v]] = NodeID(u)
			cur[v]++
		}
	}
}

// scatterRangeW is scatterRange for weighted graphs: the in-weight
// rides along to the same slot.
//
//arlint:hot
func scatterRangeW(outOff []int64, outAdj []NodeID, outW []float64, lo, hi int, cur []int32, inAdj []NodeID, inW []float64) {
	for u := lo; u < hi; u++ {
		for k := outOff[u]; k < outOff[u+1]; k++ {
			v := outAdj[k]
			slot := cur[v]
			inAdj[slot] = NodeID(u)
			inW[slot] = outW[k]
			cur[v]++
		}
	}
}

// splitNodesByEdges cuts [0, n) into `parts` contiguous node ranges of
// roughly equal edge count (by outOff), returning parts+1 ascending
// bounds. Mirrors kernel.PartitionByEdges without importing kernel.
func splitNodesByEdges(outOff []int64, n, parts int) []int {
	bounds := make([]int, parts+1)
	bounds[parts] = n
	total := outOff[n]
	node := 0
	for p := 1; p < parts; p++ {
		target := total * int64(p) / int64(parts)
		for node < n && outOff[node] < target {
			node++
		}
		bounds[p] = node
	}
	return bounds
}

// buildTeam is a resident worker team for the two build phases: W-1
// goroutines spawned once, caller as worker 0, rounds broadcast over
// buffered(1) channels — the SweepPool discipline, so building a graph
// costs one goroutine spawn per worker per build, not per phase.
type buildTeam struct {
	jobs []chan func(int)
	wg   sync.WaitGroup
}

func newBuildTeam(workers int) *buildTeam {
	t := &buildTeam{jobs: make([]chan func(int), workers-1)}
	for i := range t.jobs {
		ch := make(chan func(int), 1)
		t.jobs[i] = ch
		go t.worker(i+1, ch)
	}
	return t
}

// worker is the body of one resident team goroutine: run the round's
// job for this worker id, hit the barrier, sleep until the next round.
// The loop ends when stop closes the job channel.
func (t *buildTeam) worker(w int, jobs <-chan func(int)) {
	for f := range jobs {
		f(w)
		t.wg.Done()
	}
}

func (t *buildTeam) stop() {
	for _, ch := range t.jobs {
		close(ch)
	}
}
