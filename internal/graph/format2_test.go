package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

// graphsDeepEqual extends graphsEqual to every internal array,
// including the derived in-CSR — bit-level equality of two loads.
func graphsDeepEqual(a, b *Graph) bool {
	if !graphsEqual(a, b) {
		return false
	}
	if len(a.inOff) != len(b.inOff) || len(a.inAdj) != len(b.inAdj) {
		return false
	}
	for i := range a.inOff {
		if a.inOff[i] != b.inOff[i] {
			return false
		}
	}
	for i := range a.inAdj {
		if a.inAdj[i] != b.inAdj[i] {
			return false
		}
	}
	if (a.inW == nil) != (b.inW == nil) || (a.wOut == nil) != (b.wOut == nil) {
		return false
	}
	for i := range a.inW {
		if a.inW[i] != b.inW[i] {
			return false
		}
	}
	for i := range a.wOut {
		if a.wOut[i] != b.wOut[i] {
			return false
		}
	}
	return true
}

func TestV2RoundTrip(t *testing.T) {
	check := func(seed int64, weighted bool) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), weighted)
		var buf bytes.Buffer
		if err := WriteBinaryV2(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinaryV2(&buf)
		if err != nil {
			return false
		}
		return graphsDeepEqual(g, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestV2RoundTripSparseRows exercises the empty-adjacency shapes a
// random dense-ish graph rarely produces: isolated nodes, dangling
// nodes, and a node that only receives edges.
func TestV2RoundTripSparseRows(t *testing.T) {
	g := MustFromEdges(8, [][2]NodeID{{0, 3}, {3, 3}, {5, 0}})
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatalf("WriteBinaryV2: %v", err)
	}
	back, err := ReadBinaryV2(&buf)
	if err != nil {
		t.Fatalf("ReadBinaryV2: %v", err)
	}
	if !graphsDeepEqual(g, back) {
		t.Fatal("sparse-row graph round trip mismatch")
	}
}

// TestV2WriterDeterministic: v2 serialization is byte-identical across
// writes — the CI crawl smoke depends on it (converter output is
// compared with cmp).
func TestV2WriterDeterministic(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), true)
	var a, b bytes.Buffer
	if err := WriteBinaryV2(&a, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryV2(&b, g); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same graph differ")
	}
}

// TestV1ToV2Equivalence pins the converter path: a graph round-tripped
// through v1 and then stored as v2 is bit-identical to storing the
// original as v2 directly.
func TestV1ToV2Equivalence(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(rand.New(rand.NewSource(11)), weighted)
		var v1 bytes.Buffer
		if err := WriteBinary(&v1, g); err != nil {
			t.Fatal(err)
		}
		fromV1, err := ReadBinary(&v1)
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := WriteBinaryV2(&a, g); err != nil {
			t.Fatal(err)
		}
		if err := WriteBinaryV2(&b, fromV1); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("weighted=%v: v1-converted graph serializes differently", weighted)
		}
	}
}

// TestV2NoInSections: a v2 file written without the in-CSR sections
// loads to the same graph (the reader rebuilds the in-adjacency) and
// carries the same format signature (in-sections are derived data).
func TestV2NoInSections(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(rand.New(rand.NewSource(13)), weighted)
		var full, noIn bytes.Buffer
		if err := writeBinaryV2(&full, g, true); err != nil {
			t.Fatal(err)
		}
		if err := writeBinaryV2(&noIn, g, false); err != nil {
			t.Fatal(err)
		}
		if noIn.Len() >= full.Len() {
			t.Fatalf("weighted=%v: no-in file (%d bytes) not smaller than full file (%d bytes)",
				weighted, noIn.Len(), full.Len())
		}
		a, err := ReadBinaryV2(&full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ReadBinaryV2(&noIn)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsDeepEqual(a, b) {
			t.Fatalf("weighted=%v: no-in-section load differs from full load", weighted)
		}
		sa, oka := a.FormatSignature()
		sb, okb := b.FormatSignature()
		if !oka || !okb || sa != sb {
			t.Fatalf("weighted=%v: signatures differ: %x/%v vs %x/%v", weighted, sa, oka, sb, okb)
		}
	}
}

func writeV2File(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.v2bin")
	if err := SaveFile(path, g); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	return path
}

// TestMmapMatchesReadFull: the mmap load and the copying load of the
// same file are bit-identical down to every internal array, and agree
// on the format signature.
func TestMmapMatchesReadFull(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := randomGraph(rand.New(rand.NewSource(17)), weighted)
		path := writeV2File(t, g)
		copied, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := MmapFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsDeepEqual(copied, mapped) {
			t.Fatalf("weighted=%v: mmap load differs from ReadFull load", weighted)
		}
		sc, okc := copied.FormatSignature()
		sm, okm := mapped.FormatSignature()
		if !okc || !okm || sc != sm {
			t.Fatalf("weighted=%v: signature mismatch: %x/%v vs %x/%v", weighted, sc, okc, sm, okm)
		}
		if err := mapped.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

// TestV2RejectsCorruption: the structured failure modes — wrong magic,
// wrong version, truncations at every boundary, implausible section
// tables, and payload bit flips (checksum) — must all be clean errors,
// on both the streaming and the mapped parser.
func TestV2RejectsCorruption(t *testing.T) {
	g := MustFromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}})
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	parse := func(data []byte) error {
		_, errStream := ReadBinaryV2(bytes.NewReader(data))
		_, errMapped := graphFromMapped(data)
		if (errStream == nil) != (errMapped == nil) {
			t.Fatalf("parsers disagree: stream=%v mapped=%v", errStream, errMapped)
		}
		return errStream
	}

	if err := parse(raw); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"magic only":       []byte(magicV2),
		"truncated header": raw[:v2HeaderSize-4],
		"truncated table":  raw[:v2HeaderSize+8],
		"truncated body":   raw[:len(raw)-v2Align-1],
	}
	mutate := func(pos int, delta byte) []byte {
		m := append([]byte(nil), raw...)
		m[pos] ^= delta
		return m
	}
	cases["bad magic"] = mutate(0, 0xff)
	cases["bad version"] = mutate(8, 0x04)
	cases["zero sections"] = mutate(32, raw[32])          // sectionCount ^= itself → 0
	cases["huge section count"] = mutate(33, 0x7f)        // sectionCount |= high bits
	cases["unknown section kind"] = mutate(40, 0x7f)      // first table entry's kind
	cases["misaligned offset"] = mutate(40+8, 0x01)       // first section offset
	cases["wrong section length"] = mutate(40+16, 0x01)   // first section length
	cases["bad checksum field"] = mutate(40+24, 0x01) // first section crc
	// Flip one byte inside every section's payload: each must trip that
	// section's checksum. (Inter-section padding is NOT checksummed —
	// only payload positions are corrupted here.)
	for _, s := range v2SectionsOf(g, true) {
		cases["flipped payload byte in section "+string(rune('0'+s.kind))] = mutate(int(s.offset), 0x10)
	}
	for name, data := range cases {
		if err := parse(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestV2NeverPanics: random single-byte corruptions and truncations of
// a valid v2 image never panic either parser.
func TestV2NeverPanics(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(19)), true)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), raw...)
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))]
		} else {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: v2 parser panicked: %v", trial, r)
				}
			}()
			if back, err := ReadBinaryV2(bytes.NewReader(mutated)); err == nil {
				if verr := back.validate(); verr != nil {
					t.Fatalf("trial %d: accepted stream graph violates invariants: %v", trial, verr)
				}
			}
			if back, err := graphFromMapped(mutated); err == nil {
				if verr := back.validate(); verr != nil {
					t.Fatalf("trial %d: accepted mapped graph violates invariants: %v", trial, verr)
				}
			}
		}()
	}
}

// TestUseAfterClose: Close nils the aliasing slices before unmapping,
// so a stale access panics (recoverable) instead of faulting; closing
// twice and closing a heap graph are no-ops.
func TestUseAfterClose(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(23)), false)
	path := writeV2File(t, g)
	mapped, err := MmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OutNeighbors after Close did not panic")
			}
		}()
		_ = mapped.OutNeighbors(0)
	}()
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("heap-graph Close: %v", err)
	}
	if g.NumEdges() == 0 {
		t.Fatal("heap-graph Close must not release storage")
	}
}

// TestFormatSignature: loads of the same file agree (covered more fully
// by the mmap test), different graphs disagree, and in-memory graphs
// have no signature.
func TestFormatSignature(t *testing.T) {
	g1 := MustFromEdges(4, [][2]NodeID{{0, 1}, {1, 2}})
	g2 := MustFromEdges(4, [][2]NodeID{{0, 1}, {1, 3}})
	if _, ok := g1.FormatSignature(); ok {
		t.Fatal("in-memory graph has a format signature")
	}
	var b1, b2 bytes.Buffer
	if err := WriteBinaryV2(&b1, g1); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryV2(&b2, g2); err != nil {
		t.Fatal(err)
	}
	r1, err := ReadBinaryV2(&b1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ReadBinaryV2(&b2)
	if err != nil {
		t.Fatal(err)
	}
	s1, ok1 := r1.FormatSignature()
	s2, ok2 := r2.FormatSignature()
	if !ok1 || !ok2 {
		t.Fatal("v2-loaded graph missing signature")
	}
	if s1 == s2 {
		t.Fatal("different graphs share a format signature")
	}
}

// TestSniffFile: format detection by content, independent of filename.
func TestSniffFile(t *testing.T) {
	g := MustFromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	dir := t.TempDir()
	writeAs := func(name string, write func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	// Deliberately misleading names: sniffing must ignore them.
	v1 := writeAs("graph.txt", func(f *os.File) error { return WriteBinary(f, g) })
	v2 := writeAs("graph.v1", func(f *os.File) error { return WriteBinaryV2(f, g) })
	txt := writeAs("graph.bin", func(f *os.File) error { return WriteEdgeList(f, g) })
	for path, want := range map[string]Format{v1: FormatV1, v2: FormatV2, txt: FormatText} {
		got, err := SniffFile(path)
		if err != nil {
			t.Fatalf("SniffFile(%s): %v", path, err)
		}
		if got != want {
			t.Errorf("SniffFile(%s) = %v, want %v", path, got, want)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", path, err)
		}
		if !graphsEqual(g, back) {
			t.Errorf("LoadFile(%s): round trip mismatch", path)
		}
	}
}
