package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format: one "src dst" or "src dst weight" pair per line,
// '#' starts a comment, blank lines are skipped. Node count is the largest
// id seen plus one unless a "# nodes: N" header raises it.

// WriteEdgeList writes g in the text edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d\n# edges: %d\n", g.NumNodes(), g.NumEdges())
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(NodeID(u))
		ws := g.OutWeights(NodeID(u))
		for k, v := range adj {
			if ws != nil {
				fmt.Fprintf(bw, "%d %d %g\n", u, v, ws[k])
			} else {
				fmt.Fprintf(bw, "%d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	b := NewBuilder(0)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# nodes:"); ok {
				n, err := strconv.Atoi(strings.TrimSpace(rest))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("graph: bad node header at line %d", line)
				}
				b.EnsureNode(NodeID(n - 1))
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %v", line, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %v", line, err)
		}
		if len(fields) == 3 {
			w, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			b.AddWeightedEdge(NodeID(u), NodeID(v), w)
		} else {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

// Binary format: a fixed magic, a version byte, node and edge counts, then
// the out-CSR as varints (offsets delta-coded, adjacency delta-coded within
// each node). The in-CSR is rebuilt on load. Weighted graphs append the
// weight array as raw float64s.

const binaryMagic = "APXGRAPH"

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	version := byte(1)
	flags := byte(0)
	if g.Weighted() {
		flags |= 1
	}
	_ = bw.WriteByte(version) //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	_ = bw.WriteByte(flags)   //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		_, _ = bw.Write(buf[:n]) //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	}
	putUvarint(uint64(g.NumNodes()))
	putUvarint(uint64(g.NumEdges()))
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(NodeID(u))
		putUvarint(uint64(len(adj)))
		prev := uint64(0)
		for k, v := range adj {
			if k == 0 {
				putUvarint(uint64(v))
			} else {
				putUvarint(uint64(v) - prev) // adjacency is sorted strictly ascending after dedup
			}
			prev = uint64(v)
		}
	}
	if g.Weighted() {
		for _, w := range g.outW {
			if err := binary.Write(bw, binary.LittleEndian, w); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact binary format and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	weighted := flags&1 != 0
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 == 0 || n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	g := &Graph{n: n}
	g.outOff = make([]int64, n+1)
	g.outAdj = make([]NodeID, 0, m)
	for u := 0; u < n; u++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d degree: %w", u, err)
		}
		prev := uint64(0)
		for k := uint64(0); k < deg; k++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d adjacency: %w", u, err)
			}
			v := d
			if k > 0 {
				v = prev + d
			}
			if v >= n64 {
				return nil, fmt.Errorf("graph: node %d edge target %d out of range", u, v)
			}
			g.outAdj = append(g.outAdj, NodeID(v))
			prev = v
		}
		g.outOff[u+1] = g.outOff[u] + int64(deg)
	}
	if len(g.outAdj) != m {
		return nil, fmt.Errorf("graph: edge count mismatch: header %d, body %d", m, len(g.outAdj))
	}
	if weighted {
		g.outW = make([]float64, m)
		if err := binary.Read(br, binary.LittleEndian, g.outW); err != nil {
			return nil, fmt.Errorf("graph: weights: %w", err)
		}
		g.wOut = make([]float64, n)
		for u := 0; u < n; u++ {
			for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
				g.wOut[u] += g.outW[k]
			}
		}
	}
	buildIn(g)
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveFile writes g to path, choosing the format by extension: ".txt" or
// ".edges" selects the text edge list, everything else the binary format.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".edges") {
		if err := WriteEdgeList(f, g); err != nil {
			return err
		}
	} else if err := WriteBinary(f, g); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph written by SaveFile, choosing the format by
// extension the same way.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".edges") {
		return ReadEdgeList(f)
	}
	return ReadBinary(f)
}
