package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Edge-list text format: one "src dst" or "src dst weight" pair per line,
// '#' starts a comment, blank lines are skipped. Node count is the largest
// id seen plus one unless a "# nodes: N" header raises it.

// WriteEdgeList writes g in the text edge-list format. Lines are
// formatted with strconv appends into one reused buffer — no per-edge
// fmt machinery, no per-edge allocations.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d\n# edges: %d\n", g.NumNodes(), g.NumEdges())
	buf := make([]byte, 0, 64)
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(NodeID(u))
		ws := g.OutWeights(NodeID(u))
		for k, v := range adj {
			buf = strconv.AppendUint(buf[:0], uint64(u), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, uint64(v), 10)
			if ws != nil {
				buf = append(buf, ' ')
				buf = strconv.AppendFloat(buf, ws[k], 'g', -1, 64)
			}
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the text edge-list format. The hot path works on
// the scanner's byte view directly: fields are located by index and
// integer ids decoded in place, so a line costs zero allocations (the
// weight column still goes through strconv.ParseFloat, which needs a
// string — only weighted lines pay it).
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	b := NewBuilder(0)
	line := 0
	for sc.Scan() {
		line++
		text := trimSpaceBytes(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		if text[0] == '#' {
			const hdr = "# nodes:"
			if len(text) >= len(hdr) && string(text[:len(hdr)]) == hdr {
				n, err := strconv.Atoi(strings.TrimSpace(string(text[len(hdr):])))
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("graph: bad node header at line %d", line)
				}
				b.EnsureNode(NodeID(n - 1))
			}
			continue
		}
		f0, f1, f2, nf := splitFields(text)
		if nf != 2 && nf != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst [weight]', got %q", line, text)
		}
		u, err := parseUint32Bytes(f0)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source id: %v", line, err)
		}
		v, err := parseUint32Bytes(f1)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target id: %v", line, err)
		}
		if nf == 3 {
			w, err := strconv.ParseFloat(string(f2), 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			b.AddWeightedEdge(NodeID(u), NodeID(v), w)
		} else {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// trimSpaceBytes is bytes.TrimSpace restricted to ASCII whitespace —
// all this format ever produces — without the unicode fallback.
func trimSpaceBytes(b []byte) []byte {
	lo, hi := 0, len(b)
	for lo < hi && isSpaceByte(b[lo]) {
		lo++
	}
	for hi > lo && isSpaceByte(b[hi-1]) {
		hi--
	}
	return b[lo:hi]
}

// splitFields locates up to three whitespace-separated fields of a
// trimmed line by index — the strings.Fields shape without the []string
// allocation. nf counts all fields present (4 means "too many").
func splitFields(b []byte) (f0, f1, f2 []byte, nf int) {
	i := 0
	next := func() []byte {
		for i < len(b) && isSpaceByte(b[i]) {
			i++
		}
		if i == len(b) {
			return nil
		}
		start := i
		for i < len(b) && !isSpaceByte(b[i]) {
			i++
		}
		return b[start:i]
	}
	f0 = next()
	if f0 == nil {
		return nil, nil, nil, 0
	}
	f1 = next()
	if f1 == nil {
		return f0, nil, nil, 1
	}
	f2 = next()
	if f2 == nil {
		return f0, f1, nil, 2
	}
	if next() != nil {
		return f0, f1, f2, 4
	}
	return f0, f1, f2, 3
}

// parseUint32Bytes decodes an unsigned decimal that fits a NodeID,
// without converting the bytes to a string.
func parseUint32Bytes(b []byte) (uint32, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty number")
	}
	var x uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid decimal %q", b)
		}
		x = x*10 + uint64(c-'0')
		if x > math.MaxUint32 {
			return 0, fmt.Errorf("value %q overflows uint32", b)
		}
	}
	return uint32(x), nil
}

// Binary format v1: a fixed magic, a version byte, node and edge counts,
// then the out-CSR as varints (offsets delta-coded, adjacency delta-coded
// within each node). The in-CSR is rebuilt on load. Weighted graphs append
// the weight array as raw little-endian float64s. Format v2 (format2.go)
// supersedes it for anything performance-sensitive; v1 stays as the
// compact interchange format and for old files.

const binaryMagic = "APXGRAPH"

// floatChunk is the per-call buffer of the chunked float codec: 512
// float64s, 4 KiB on the stack, no heap.
const floatChunk = 512

// writeFloats encodes a float64 slice as raw little-endian bytes in
// fixed-size chunks — the explicit form of what reflection-based
// binary.Write did one value (and one interface dispatch) at a time.
func writeFloats(w io.Writer, vals []float64) error {
	var buf [floatChunk * 8]byte
	for len(vals) > 0 {
		c := len(vals)
		if c > floatChunk {
			c = floatChunk
		}
		encodeFloat64s(buf[:c*8], vals[:c])
		if _, err := w.Write(buf[:c*8]); err != nil {
			return err
		}
		vals = vals[c:]
	}
	return nil
}

// readFloats fills a float64 slice from raw little-endian bytes in
// fixed-size chunks.
func readFloats(r io.Reader, vals []float64) error {
	var buf [floatChunk * 8]byte
	for len(vals) > 0 {
		c := len(vals)
		if c > floatChunk {
			c = floatChunk
		}
		if _, err := io.ReadFull(r, buf[:c*8]); err != nil {
			return err
		}
		decodeFloat64s(vals[:c], buf[:c*8])
		vals = vals[c:]
	}
	return nil
}

// encodeFloat64s writes vals as little-endian bytes into dst
// (len(dst) == 8*len(vals)). The byte shifts are spelled out (rather
// than calling binary.LittleEndian) so the loop stays transitively
// pure; the compiler recognizes the idiom and emits a single store.
//
//arlint:hot
func encodeFloat64s(dst []byte, vals []float64) {
	for i, v := range vals {
		b := math.Float64bits(v)
		d := dst[i*8 : i*8+8 : i*8+8]
		d[0] = byte(b)
		d[1] = byte(b >> 8)
		d[2] = byte(b >> 16)
		d[3] = byte(b >> 24)
		d[4] = byte(b >> 32)
		d[5] = byte(b >> 40)
		d[6] = byte(b >> 48)
		d[7] = byte(b >> 56)
	}
}

// decodeFloat64s fills vals from little-endian bytes in src
// (len(src) == 8*len(vals)); see encodeFloat64s for the spelled-out
// little-endian idiom.
//
//arlint:hot
func decodeFloat64s(vals []float64, src []byte) {
	for i := range vals {
		s := src[i*8 : i*8+8 : i*8+8]
		b := uint64(s[0]) | uint64(s[1])<<8 | uint64(s[2])<<16 | uint64(s[3])<<24 |
			uint64(s[4])<<32 | uint64(s[5])<<40 | uint64(s[6])<<48 | uint64(s[7])<<56
		vals[i] = math.Float64frombits(b)
	}
}

// WriteBinary writes g in the compact v1 binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	version := byte(1)
	flags := byte(0)
	if g.Weighted() {
		flags |= 1
	}
	_ = bw.WriteByte(version) //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	_ = bw.WriteByte(flags)   //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(x uint64) {
		n := binary.PutUvarint(buf[:], x)
		_, _ = bw.Write(buf[:n]) //arlint:allow errflow bufio errors are sticky; the final Flush reports them
	}
	putUvarint(uint64(g.NumNodes()))
	putUvarint(uint64(g.NumEdges()))
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(NodeID(u))
		putUvarint(uint64(len(adj)))
		prev := uint64(0)
		for k, v := range adj {
			if k == 0 {
				putUvarint(uint64(v))
			} else {
				putUvarint(uint64(v) - prev) // adjacency is sorted strictly ascending after dedup
			}
			prev = uint64(v)
		}
	}
	if g.Weighted() {
		if err := writeFloats(bw, g.outW); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses the compact v1 binary format and validates the result.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	flags, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	weighted := flags&1 != 0
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n64 == 0 || n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	g := &Graph{n: n}
	g.outOff = make([]int64, n+1)
	g.outAdj = make([]NodeID, 0, m)
	for u := 0; u < n; u++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: node %d degree: %w", u, err)
		}
		prev := uint64(0)
		for k := uint64(0); k < deg; k++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: node %d adjacency: %w", u, err)
			}
			v := d
			if k > 0 {
				v = prev + d
			}
			if v >= n64 {
				return nil, fmt.Errorf("graph: node %d edge target %d out of range", u, v)
			}
			g.outAdj = append(g.outAdj, NodeID(v))
			prev = v
		}
		g.outOff[u+1] = g.outOff[u] + int64(deg)
	}
	if len(g.outAdj) != m {
		return nil, fmt.Errorf("graph: edge count mismatch: header %d, body %d", m, len(g.outAdj))
	}
	if weighted {
		g.outW = make([]float64, m)
		if err := readFloats(br, g.outW); err != nil {
			return nil, fmt.Errorf("graph: weights: %w", err)
		}
		g.wOut = make([]float64, n)
		for u := 0; u < n; u++ {
			for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
				g.wOut[u] += g.outW[k]
			}
		}
	}
	buildIn(g)
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Format identifies one of the on-disk graph formats.
type Format int

const (
	FormatText Format = iota // text edge list
	FormatV1                 // compact varint binary (magic "APXGRAPH")
	FormatV2                 // sectioned zero-copy binary (magic "APXGRF2\0")
)

func (f Format) String() string {
	switch f {
	case FormatV1:
		return "v1"
	case FormatV2:
		return "v2"
	default:
		return "text"
	}
}

// sniffFormat classifies the first bytes of a graph file. Anything that
// matches neither binary magic is treated as text — the text parser
// produces the intelligible error for genuinely unreadable input.
func sniffFormat(prefix []byte) Format {
	if len(prefix) >= 8 {
		switch string(prefix[:8]) {
		case binaryMagic:
			return FormatV1
		case magicV2:
			return FormatV2
		}
	}
	return FormatText
}

// SniffFile reports the on-disk format of a graph file by its magic
// bytes. Callers deciding between MmapFile and LoadFile (only v2 can be
// mapped) sniff first.
func SniffFile(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return FormatText, err
	}
	defer f.Close()
	var prefix [8]byte
	n, err := io.ReadFull(f, prefix[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return FormatText, err
	}
	// A short read just means a file smaller than any binary magic —
	// sniffFormat classifies whatever bytes exist as text.
	return sniffFormat(prefix[:n]), nil
}

// SaveFile writes g to path, choosing the format by extension: ".txt"
// or ".edges" selects the text edge list, ".v1" the compact v1 binary,
// everything else the zero-copy v2 binary. (Extensions only matter on
// the write side; LoadFile sniffs magic bytes.)
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".txt") || strings.HasSuffix(path, ".edges"):
		err = WriteEdgeList(f, g)
	case strings.HasSuffix(path, ".v1"):
		err = WriteBinary(f, g)
	default:
		err = WriteBinaryV2(f, g)
	}
	if err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a graph in any supported format, detected by content
// (v1 magic, v2 magic, else text) rather than filename — renamed or
// extension-less files load correctly. For the zero-copy load of a v2
// file use MmapFile instead.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	prefix, err := br.Peek(8)
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	switch sniffFormat(prefix) {
	case FormatV1:
		return ReadBinary(br)
	case FormatV2:
		return ReadBinaryV2(br)
	default:
		return ReadEdgeList(br)
	}
}
