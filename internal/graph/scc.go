package graph

// StronglyConnectedComponents returns the strongly connected components
// of g using an iterative Tarjan algorithm (explicit stacks — web-scale
// graphs overflow a recursive one). Components are emitted in reverse
// topological order of the condensation (every edge between components
// points from a later-emitted component to an earlier one), and the node
// lists are in ascending id order.
//
// PageRank's Ergodic-theorem argument requires irreducibility; the
// damping term supplies it on any graph, but the SCC structure still
// matters for diagnostics: a subgraph that splits into many tiny SCCs
// behaves very differently under local PageRank than one dominated by a
// giant component.
func StronglyConnectedComponents(g *Graph) [][]NodeID {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int32
		stack   []NodeID // Tarjan's component stack
		comps   [][]NodeID
	)

	// Explicit DFS frame: node plus the position within its adjacency.
	type frame struct {
		v   NodeID
		idx int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{NodeID(root), 0})
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, NodeID(root))
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			adj := g.OutNeighbors(f.v)
			if f.idx < len(adj) {
				w := adj[f.idx]
				f.idx++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// f.v is finished: propagate its low-link and pop a component
			// if it is a root.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []NodeID
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sortIDs(comp)
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// LargestSCCFraction returns the size of the largest strongly connected
// component as a fraction of the graph.
func LargestSCCFraction(g *Graph) float64 {
	best := 0
	for _, c := range StronglyConnectedComponents(g) {
		if len(c) > best {
			best = len(c)
		}
	}
	return float64(best) / float64(g.NumNodes())
}

func sortIDs(ids []NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
