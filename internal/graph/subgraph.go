package graph

import "fmt"

// Subgraph ties a set of local pages to the global graph they were drawn
// from. It is the input shape shared by every subgraph ranker in this
// repository: the paper's G_l together with enough of G_g to reason about
// the boundary.
type Subgraph struct {
	Global *Graph
	// Local maps local id (0..n-1) to global id; it is sorted ascending
	// and free of duplicates.
	Local []NodeID
	// Member answers "is this global id a local page?" in O(1).
	Member *NodeSet
	// globalToLocal maps a global id to its local id + 1 (0 = external).
	// Kept as a dense array: subgraph ranking touches it once per edge.
	globalToLocal []uint32
}

// NewSubgraph validates and indexes a set of local pages within global.
// The ids in local may be in any order; they are sorted and deduplicated.
func NewSubgraph(global *Graph, local []NodeID) (*Subgraph, error) {
	if global == nil {
		return nil, fmt.Errorf("graph: nil global graph")
	}
	if len(local) == 0 {
		return nil, fmt.Errorf("graph: subgraph needs at least one local page")
	}
	member := NewNodeSet(global.NumNodes())
	for _, id := range local {
		if int(id) >= global.NumNodes() {
			return nil, fmt.Errorf("graph: local page %d outside global graph (N=%d)", id, global.NumNodes())
		}
		member.Add(id)
	}
	sorted := member.Slice()
	if member.Len() == global.NumNodes() {
		return nil, fmt.Errorf("graph: subgraph equals the global graph; use global PageRank instead")
	}
	g2l := make([]uint32, global.NumNodes())
	for li, gid := range sorted {
		g2l[gid] = uint32(li) + 1
	}
	return &Subgraph{Global: global, Local: sorted, Member: member, globalToLocal: g2l}, nil
}

// N returns the number of local pages (the paper's n).
func (s *Subgraph) N() int { return len(s.Local) }

// External returns the number of external pages (the paper's N−n).
func (s *Subgraph) External() int { return s.Global.NumNodes() - len(s.Local) }

// LocalID returns the local id of global page gid and whether gid is local.
func (s *Subgraph) LocalID(gid NodeID) (uint32, bool) {
	v := s.globalToLocal[gid]
	return v - 1, v != 0
}

// GlobalID returns the global id of local page li.
func (s *Subgraph) GlobalID(li uint32) NodeID { return s.Local[li] }

// Induce materializes the induced local graph: the n local pages and the
// edges of the global graph with both endpoints local. Edge weights are
// preserved for weighted global graphs. The returned graph uses local ids;
// Subgraph.Local maps them back.
func (s *Subgraph) Induce() (*Graph, error) {
	b := NewBuilder(s.N())
	for li, gid := range s.Local {
		adj := s.Global.OutNeighbors(gid)
		ws := s.Global.OutWeights(gid)
		for k, v := range adj {
			lv, ok := s.LocalID(v)
			if !ok {
				continue
			}
			if ws != nil {
				b.AddWeightedEdge(uint32(li), lv, ws[k])
			} else {
				b.AddEdge(uint32(li), lv)
			}
		}
	}
	if b.NumEdges() == 0 {
		// A subgraph with no internal edges is legal (all pages dangling);
		// the builder requires at least a node count.
		b.EnsureNode(uint32(s.N() - 1))
	}
	return b.Build()
}

// BoundaryStats summarizes the coupling between local and external pages.
type BoundaryStats struct {
	// OutLinksToExternal counts edges from local pages to external pages.
	OutLinksToExternal int
	// InLinksFromExternal counts edges from external pages to local pages.
	InLinksFromExternal int
	// InternalEdges counts edges with both endpoints local.
	InternalEdges int
	// ExternalInNeighbors counts distinct external pages with at least one
	// edge into the subgraph (the support of the Λ row).
	ExternalInNeighbors int
}

// Boundary computes BoundaryStats by scanning only the adjacency of local
// pages.
func (s *Subgraph) Boundary() BoundaryStats {
	var st BoundaryStats
	seen := NewNodeSet(s.Global.NumNodes())
	for _, gid := range s.Local {
		for _, v := range s.Global.OutNeighbors(gid) {
			if _, ok := s.LocalID(v); ok {
				st.InternalEdges++
			} else {
				st.OutLinksToExternal++
			}
		}
		for _, u := range s.Global.InNeighbors(gid) {
			if _, ok := s.LocalID(u); !ok {
				st.InLinksFromExternal++
				if !seen.Contains(u) {
					seen.Add(u)
					st.ExternalInNeighbors++
				}
			}
		}
	}
	return st
}
