package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {0, 1}}) // dup 0→1
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d, want 4 (duplicate merged)", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 1 || g.OutDegree(3) != 0 {
		t.Fatalf("unexpected out-degrees %d %d %d %d",
			g.OutDegree(0), g.OutDegree(1), g.OutDegree(2), g.OutDegree(3))
	}
	if !g.Dangling(3) || g.Dangling(0) {
		t.Fatal("dangling detection wrong")
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if got := g.InNeighbors(2); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("InNeighbors(2) = %v", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) || g.HasEdge(3, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestBuilderSelfLoopKept(t *testing.T) {
	g := MustFromEdges(2, [][2]NodeID{{0, 0}, {0, 1}})
	if g.NumEdges() != 2 || !g.HasEdge(0, 0) {
		t.Fatal("self-loop was not preserved")
	}
}

func TestBuilderEmptyGraphRejected(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestBuilderMixedModesRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddWeightedEdge(1, 0, 2)
	if _, err := b.Build(); err == nil {
		t.Fatal("mixed weighted/unweighted edges accepted")
	}
	b2 := NewBuilder(2)
	b2.AddWeightedEdge(1, 0, 2)
	b2.AddEdge(0, 1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("mixed unweighted/weighted edges accepted")
	}
}

func TestWeightedBuilder(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 1, 3) // merged: weight 5
	b.AddWeightedEdge(0, 2, 5)
	b.AddWeightedEdge(1, 2, 1)
	b.AddWeightedEdge(2, 0, -1) // ignored
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	ws := g.OutWeights(0)
	if len(ws) != 2 || ws[0] != 5 || ws[1] != 5 {
		t.Fatalf("OutWeights(0) = %v", ws)
	}
	if g.WeightOut(0) != 10 {
		t.Fatalf("WeightOut(0) = %v, want 10", g.WeightOut(0))
	}
	if p := g.TransitionProb(0, 0); math.Abs(p-0.5) > 1e-15 {
		t.Fatalf("TransitionProb(0,0) = %v, want 0.5", p)
	}
	if !g.Dangling(2) {
		t.Fatal("node 2 with only a rejected negative edge must be dangling")
	}
	// In-weights must mirror out-weights.
	inW := g.InWeights(2)
	inN := g.InNeighbors(2)
	if len(inN) != 2 || inN[0] != 0 || inN[1] != 1 || inW[0] != 5 || inW[1] != 1 {
		t.Fatalf("in-adjacency of 2: %v weights %v", inN, inW)
	}
}

// TestInOutConsistency property: for random graphs, the in-adjacency is
// exactly the transpose of the out-adjacency.
func TestInOutConsistency(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		b := NewBuilder(n)
		m := rng.Intn(200)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// Count edges via both directions.
		type pair struct{ u, v NodeID }
		out := map[pair]bool{}
		for u := 0; u < n; u++ {
			for _, v := range g.OutNeighbors(NodeID(u)) {
				out[pair{NodeID(u), v}] = true
			}
		}
		cnt := 0
		for v := 0; v < n; v++ {
			for _, u := range g.InNeighbors(NodeID(v)) {
				if !out[pair{u, NodeID(v)}] {
					return false
				}
				cnt++
			}
		}
		return cnt == len(out) && cnt == g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDanglingNodes(t *testing.T) {
	g := MustFromEdges(5, [][2]NodeID{{0, 1}, {1, 2}})
	d := g.DanglingNodes()
	if len(d) != 3 || d[0] != 2 || d[1] != 3 || d[2] != 4 {
		t.Fatalf("DanglingNodes = %v", d)
	}
}

func TestNodeSet(t *testing.T) {
	s := NewNodeSet(100)
	if s.Len() != 0 || s.Contains(5) {
		t.Fatal("new set not empty")
	}
	s.Add(5)
	s.Add(63)
	s.Add(64)
	s.Add(5) // duplicate
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(5) || !s.Contains(63) || !s.Contains(64) || s.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if got := s.Slice(); len(got) != 3 || got[0] != 5 || got[1] != 63 || got[2] != 64 {
		t.Fatalf("Slice = %v", got)
	}
	s.Remove(63)
	if s.Contains(63) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	s.Remove(63) // idempotent
	if s.Len() != 2 {
		t.Fatal("double remove changed count")
	}
	c := s.Clone()
	c.Add(1)
	if s.Contains(1) {
		t.Fatal("clone aliases original")
	}
	// Growth beyond initial capacity.
	s.Add(1000)
	if !s.Contains(1000) {
		t.Fatal("growth failed")
	}
	if s.Contains(2000) {
		t.Fatal("contains beyond words should be false")
	}
}

func TestSubgraphBasics(t *testing.T) {
	g := MustFromEdges(6, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}})
	sub, err := NewSubgraph(g, []NodeID{3, 1, 0, 1}) // unsorted, duplicate
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	if sub.N() != 3 || sub.External() != 3 {
		t.Fatalf("N=%d External=%d", sub.N(), sub.External())
	}
	if sub.Local[0] != 0 || sub.Local[1] != 1 || sub.Local[2] != 3 {
		t.Fatalf("Local = %v", sub.Local)
	}
	if li, ok := sub.LocalID(3); !ok || li != 2 {
		t.Fatalf("LocalID(3) = %d,%v", li, ok)
	}
	if _, ok := sub.LocalID(2); ok {
		t.Fatal("2 must be external")
	}
	if sub.GlobalID(2) != 3 {
		t.Fatalf("GlobalID(2) = %d", sub.GlobalID(2))
	}
}

func TestSubgraphErrors(t *testing.T) {
	g := MustFromEdges(3, [][2]NodeID{{0, 1}})
	if _, err := NewSubgraph(nil, []NodeID{0}); err == nil {
		t.Error("nil global accepted")
	}
	if _, err := NewSubgraph(g, nil); err == nil {
		t.Error("empty local set accepted")
	}
	if _, err := NewSubgraph(g, []NodeID{7}); err == nil {
		t.Error("out-of-range local page accepted")
	}
	if _, err := NewSubgraph(g, []NodeID{0, 1, 2}); err == nil {
		t.Error("subgraph == global accepted")
	}
}

func TestInduce(t *testing.T) {
	g := MustFromEdges(6, [][2]NodeID{
		{0, 1}, {0, 4}, {1, 3}, {3, 0}, {4, 1}, {5, 3},
	})
	sub, err := NewSubgraph(g, []NodeID{0, 1, 3})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	local, err := sub.Induce()
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if local.NumNodes() != 3 {
		t.Fatalf("induced nodes = %d, want 3", local.NumNodes())
	}
	// Internal edges: 0→1, 1→3, 3→0 (in local ids 0→1, 1→2, 2→0).
	if local.NumEdges() != 3 {
		t.Fatalf("induced edges = %d, want 3", local.NumEdges())
	}
	if !local.HasEdge(0, 1) || !local.HasEdge(1, 2) || !local.HasEdge(2, 0) {
		t.Fatal("induced edges wrong")
	}
}

func TestInduceNoInternalEdges(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 2}, {1, 3}})
	sub, err := NewSubgraph(g, []NodeID{0, 1})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	local, err := sub.Induce()
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	if local.NumNodes() != 2 || local.NumEdges() != 0 {
		t.Fatalf("induced %d nodes %d edges, want 2/0", local.NumNodes(), local.NumEdges())
	}
}

func TestBoundary(t *testing.T) {
	// Figure 4 graph: locals A,B,C,D (0–3), externals X,Y,Z (4–6).
	g := MustFromEdges(7, [][2]NodeID{
		{0, 1}, {0, 2}, {0, 4}, {0, 6},
		{1, 3},
		{2, 1}, {2, 3},
		{3, 0},
		{4, 2}, {4, 5}, {4, 6},
		{5, 2}, {5, 4},
		{6, 2}, {6, 3},
	})
	sub, err := NewSubgraph(g, []NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	st := sub.Boundary()
	if st.InternalEdges != 6 {
		t.Errorf("InternalEdges = %d, want 6", st.InternalEdges)
	}
	if st.OutLinksToExternal != 2 {
		t.Errorf("OutLinksToExternal = %d, want 2", st.OutLinksToExternal)
	}
	if st.InLinksFromExternal != 4 {
		t.Errorf("InLinksFromExternal = %d, want 4 (X→C, Y→C, Z→C, Z→D)", st.InLinksFromExternal)
	}
	if st.ExternalInNeighbors != 3 {
		t.Errorf("ExternalInNeighbors = %d, want 3", st.ExternalInNeighbors)
	}
}

func TestStats(t *testing.T) {
	g := MustFromEdges(5, [][2]NodeID{{0, 0}, {0, 1}, {1, 2}, {2, 1}, {3, 1}})
	st := ComputeStats(g)
	if st.Nodes != 5 || st.Edges != 5 {
		t.Fatalf("nodes/edges = %d/%d", st.Nodes, st.Edges)
	}
	if st.Dangling != 1 { // node 4
		t.Errorf("Dangling = %d, want 1", st.Dangling)
	}
	if st.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", st.SelfLoops)
	}
	if st.Sources != 2 { // nodes 3 and 4 have no in-edges... node 0 has self-loop
		t.Errorf("Sources = %d, want 2", st.Sources)
	}
	if st.MaxInDegree != 3 { // node 1 ← 0,2,3
		t.Errorf("MaxInDegree = %d, want 3", st.MaxInDegree)
	}
	if math.Abs(st.AvgOutDegree-1.0) > 1e-15 {
		t.Errorf("AvgOutDegree = %v, want 1", st.AvgOutDegree)
	}
}

func TestDegreeHistograms(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 2}})
	h := OutDegreeHistogram(g, 2)
	// degrees: 3,1,0,0 capped at 2 → bucket0:2, bucket1:1, bucket2:1
	if h[0] != 2 || h[1] != 1 || h[2] != 1 {
		t.Fatalf("OutDegreeHistogram = %v", h)
	}
	hi := InDegreeHistogram(g, 10)
	// in-degrees: 0,1,2,1
	if hi[0] != 1 || hi[1] != 2 || hi[2] != 1 {
		t.Fatalf("InDegreeHistogram = %v", hi)
	}
}
