package graph_test

// Loading-pipeline benchmarks, run from an external test package so the
// corpus can come from internal/gen and the end-to-end pipeline can
// rank through internal/core.
//
// The corpus is a synthetic web (gen.Generate) written once per scale
// and shared by every benchmark in the run. The default scale is ~1M
// edges — big enough that the v1-vs-v2 load gap and the O(1) mmap
// footprint are unambiguous, small enough for CI. Crawl scale (10M and
// 50M edges) is gated behind GRAPH_BENCH_CRAWL=1: at 50M edges the
// corpus alone is ~600 MB of CSR.
//
// The headline numbers these exist to pin:
//
//   - LoadV2 is ≥5× faster than LoadV1 at the same edge count (varint
//     decode + in-CSR rebuild vs straight io.ReadFull into the arrays);
//   - MmapV2 allocs/op and B/op are small constants independent of
//     graph size (the payload stays in the page cache; only the Graph
//     header and section bookkeeping touch the heap);
//   - ReadEdgeList/WriteEdgeList allocs/op stay flat (reused line
//     buffers, no strings.Fields garbage).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

type benchScale struct {
	name  string
	pages int // ~5.3 edges/page at gen defaults
}

func benchScales() []benchScale {
	s := []benchScale{{"1M", 200_000}}
	if os.Getenv("GRAPH_BENCH_CRAWL") != "" {
		s = append(s, benchScale{"10M", 1_900_000}, benchScale{"50M", 9_500_000})
	}
	return s
}

// corpus is one generated graph with its on-disk renditions, built
// lazily and shared across benchmarks (the 50M corpus takes real time
// to generate; paying it once per `go test -bench` run is enough).
type corpus struct {
	g      *graph.Graph
	v1, v2 string
	v1Size int64
	v2Size int64
}

var corpora struct {
	sync.Mutex
	dir     string
	byPages map[int]*corpus
}

func corpusFor(b *testing.B, pages int) *corpus {
	b.Helper()
	corpora.Lock()
	defer corpora.Unlock()
	if c, ok := corpora.byPages[pages]; ok {
		return c
	}
	if corpora.dir == "" {
		dir, err := os.MkdirTemp("", "graphbench")
		if err != nil {
			b.Fatal(err)
		}
		corpora.dir = dir
		corpora.byPages = make(map[int]*corpus)
	}
	ds, err := gen.Generate(gen.Config{Pages: pages, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	c := &corpus{
		g:  ds.Graph,
		v1: filepath.Join(corpora.dir, fmt.Sprintf("%d.v1", pages)),
		v2: filepath.Join(corpora.dir, fmt.Sprintf("%d.v2", pages)),
	}
	if err := graph.SaveFile(c.v1, c.g); err != nil {
		b.Fatal(err)
	}
	if err := graph.SaveFile(c.v2, c.g); err != nil {
		b.Fatal(err)
	}
	for _, p := range []struct {
		path string
		size *int64
	}{{c.v1, &c.v1Size}, {c.v2, &c.v2Size}} {
		st, err := os.Stat(p.path)
		if err != nil {
			b.Fatal(err)
		}
		*p.size = st.Size()
	}
	corpora.byPages[pages] = c
	return c
}

func TestMain(m *testing.M) {
	code := m.Run()
	if corpora.dir != "" {
		os.RemoveAll(corpora.dir)
	}
	os.Exit(code)
}

func forEachScale(b *testing.B, fn func(b *testing.B, c *corpus)) {
	for _, s := range benchScales() {
		b.Run(s.name, func(b *testing.B) {
			c := corpusFor(b, s.pages) // first caller pays generation; keep it out of the timing
			b.ResetTimer()
			fn(b, c)
		})
	}
}

var sinkGraph *graph.Graph

func BenchmarkLoadV1(b *testing.B) {
	forEachScale(b, func(b *testing.B, c *corpus) {
		b.SetBytes(c.v1Size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graph.LoadFile(c.v1)
			if err != nil {
				b.Fatal(err)
			}
			sinkGraph = g
		}
	})
}

func BenchmarkLoadV2(b *testing.B) {
	forEachScale(b, func(b *testing.B, c *corpus) {
		b.SetBytes(c.v2Size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graph.LoadFile(c.v2)
			if err != nil {
				b.Fatal(err)
			}
			sinkGraph = g
		}
	})
}

// BenchmarkMmapV2 measures the zero-copy open: allocs/op and B/op are
// the whole point — they must stay small constants however large the
// file is, because the CSR payload is aliased out of the mapping.
func BenchmarkMmapV2(b *testing.B) {
	forEachScale(b, func(b *testing.B, c *corpus) {
		b.SetBytes(c.v2Size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graph.MmapFile(c.v2)
			if err != nil {
				b.Fatal(err)
			}
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPipelineV2 is the crawl-shaped end-to-end path: serialize
// the generated graph to v2, map it back, build a ranking context over
// the mapped CSR, rank one subgraph, tear down. Generation itself runs
// once as corpus setup (it is deterministic input, not pipeline).
func BenchmarkPipelineV2(b *testing.B) {
	forEachScale(b, func(b *testing.B, c *corpus) {
		local := make([]graph.NodeID, 100)
		for i := range local {
			local[i] = graph.NodeID(i * (c.g.NumNodes() / len(local)))
		}
		path := filepath.Join(corpora.dir, "pipeline.v2")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := graph.SaveFile(path, c.g); err != nil {
				b.Fatal(err)
			}
			m, err := graph.MmapFile(path)
			if err != nil {
				b.Fatal(err)
			}
			sub, err := graph.NewSubgraph(m, local)
			if err != nil {
				b.Fatal(err)
			}
			chain, err := core.NewApproxChainCtx(core.NewContext(m), sub)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := chain.Run(core.Config{}); err != nil {
				b.Fatal(err)
			}
			if err := m.Close(); err != nil {
				b.Fatal(err)
			}
		}
		if err := os.Remove(path); err != nil {
			b.Fatal(err)
		}
	})
}

// Text-loader allocation benchmarks: the parse and format hot paths
// must not allocate per line (reused buffers, byte-slice field
// splitting) — allocs/op here is the regression tripwire.
func BenchmarkReadEdgeList(b *testing.B) {
	c := corpusFor(b, 200_000)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, c.g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := graph.ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		sinkGraph = g
	}
}

func BenchmarkWriteEdgeList(b *testing.B) {
	c := corpusFor(b, 200_000)
	var buf bytes.Buffer
	if err := graph.WriteEdgeList(&buf, c.g); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := graph.WriteEdgeList(&buf, c.g); err != nil {
			b.Fatal(err)
		}
	}
}
