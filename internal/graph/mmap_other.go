//go:build !unix

package graph

// MmapFile on platforms without a usable mmap: a transparent fallback
// to the copying v2 reader. Same signature, same verification, same
// FormatSignature — just heap-backed instead of page-cache-backed, so
// Close is a no-op.
func MmapFile(path string) (*Graph, error) {
	return readV2Fallback(path)
}

func unmapMem(data []byte) error { return nil }
