package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// Binary format v2: a sectioned, 64-byte-aligned layout whose payload IS
// the in-memory representation. Where v1 varint-codes the out-adjacency
// and rebuilds everything else on load, v2 stores every array a Graph
// holds at runtime — outOff, outAdj, the materialized inOff/inAdj, and
// the weight arrays when present — as raw little-endian machine words at
// aligned file offsets. Loading is therefore io.ReadFull into
// preallocated slices (no per-edge decode loop, no append growth, no
// in-CSR rebuild), and MmapFile goes one step further: the sections are
// aliased straight out of an mmap'd region, so the CSR costs zero heap
// regardless of graph size.
//
// Layout (all integers little-endian):
//
//	[0, 8)    magic "APXGRF2\0"
//	[8, 40)   fixed header: version u32, flags u32, numNodes i64,
//	          numEdges i64, sectionCount u32, reserved u32
//	[40, ...) section table: sectionCount × 32-byte entries
//	          {kind u32, reserved u32, offset i64, length i64, crc u64}
//	...       payload sections, each at a 64-byte-aligned offset, in
//	          table order, zero-padded between sections
//
// Section kinds (lengths in bytes; n = numNodes, m = numEdges):
//
//	1 outOff  (n+1)·8   int64 CSR offsets
//	2 outAdj  m·4       uint32 edge targets
//	3 inOff   (n+1)·8   int64 in-CSR offsets
//	4 inAdj   m·4       uint32 edge sources
//	5 outW    m·8       float64 out-edge weights (weighted only)
//	6 inW     m·8       float64 in-edge weights (weighted only)
//	7 wOut    n·8       float64 per-node total out-weight (weighted only)
//
// The in-sections are optional: a writer that has only the out-CSR may
// omit them, and the reader rebuilds the in-adjacency with the parallel
// build (bit-identical to the sequential one). Each crc is CRC-32C
// (Castagnoli) over the section's payload bytes, widened to u64;
// readers verify it before trusting a section, and the per-section
// checksums double as the graph's format signature (FormatSignature) so
// caches keyed on graph identity never walk the adjacency a second
// time.

const (
	magicV2 = "APXGRF2\x00"

	v2Version     = uint32(2)
	v2FlagWeighted = uint32(1)

	v2HeaderSize  = 40 // magic + fixed header
	v2SectionSize = 32 // one section-table entry
	v2Align       = 64

	secOutOff = uint32(1)
	secOutAdj = uint32(2)
	secInOff  = uint32(3)
	secInAdj  = uint32(4)
	secOutW   = uint32(5)
	secInW    = uint32(6)
	secWOut   = uint32(7)

	maxV2Sections = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether the running machine stores integers
// little-endian, which is what gates the zero-copy paths: on LE hosts
// the file payload and the in-memory slices are the same bytes.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// v2Section describes one payload section during writing or parsing.
type v2Section struct {
	kind   uint32
	offset int64
	length int64 // payload bytes
	crc    uint64
}

// v2SectionsOf lists the sections a graph serializes to, in file order.
// withIn controls whether the materialized in-CSR is included; writers
// that stream a graph whose in-adjacency was never built omit it and
// let the reader's parallel build recreate it.
func v2SectionsOf(g *Graph, withIn bool) []v2Section {
	n, m := int64(g.n), int64(len(g.outAdj))
	secs := []v2Section{
		{kind: secOutOff, length: (n + 1) * 8},
		{kind: secOutAdj, length: m * 4},
	}
	if withIn {
		secs = append(secs,
			v2Section{kind: secInOff, length: (n + 1) * 8},
			v2Section{kind: secInAdj, length: m * 4})
	}
	if g.outW != nil {
		secs = append(secs, v2Section{kind: secOutW, length: m * 8})
		if withIn {
			secs = append(secs, v2Section{kind: secInW, length: m * 8})
		}
		secs = append(secs, v2Section{kind: secWOut, length: n * 8})
	}
	off := alignUp(v2HeaderSize + int64(len(secs))*v2SectionSize)
	for i := range secs {
		secs[i].offset = off
		off = alignUp(off + secs[i].length)
	}
	return secs
}

func alignUp(off int64) int64 {
	return (off + v2Align - 1) &^ (v2Align - 1)
}

// sectionPayload returns the graph array backing a section kind.
// Exactly one of the three returns is non-nil.
func (g *Graph) sectionPayload(kind uint32) (i64 []int64, u32 []uint32, f64 []float64) {
	switch kind {
	case secOutOff:
		return g.outOff, nil, nil
	case secOutAdj:
		return nil, g.outAdj, nil
	case secInOff:
		return g.inOff, nil, nil
	case secInAdj:
		return nil, g.inAdj, nil
	case secOutW:
		return nil, nil, g.outW
	case secInW:
		return nil, nil, g.inW
	case secWOut:
		return nil, nil, g.wOut
	}
	// Unreachable: kinds come from v2SectionsOf, which emits only the
	// cases above.
	panic("graph: unknown v2 section kind") //arlint:allow panicfree internal invariant, not an input error
}

// WriteBinaryV2 writes g in binary format v2 (with the in-CSR sections
// included, so readers and MmapFile never rebuild anything). The output
// is deterministic: the same graph always serializes to the same bytes.
func WriteBinaryV2(w io.Writer, g *Graph) error {
	return writeBinaryV2(w, g, true)
}

func writeBinaryV2(w io.Writer, g *Graph, withIn bool) error {
	secs := v2SectionsOf(g, withIn)
	for i := range secs {
		secs[i].crc = sectionCRC(g, secs[i].kind)
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [v2HeaderSize]byte
	copy(hdr[:8], magicV2)
	le := binary.LittleEndian
	le.PutUint32(hdr[8:], v2Version)
	flags := uint32(0)
	if g.outW != nil {
		flags |= v2FlagWeighted
	}
	le.PutUint32(hdr[12:], flags)
	le.PutUint64(hdr[16:], uint64(g.n))
	le.PutUint64(hdr[24:], uint64(len(g.outAdj)))
	le.PutUint32(hdr[32:], uint32(len(secs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var ent [v2SectionSize]byte
	for _, s := range secs {
		le.PutUint32(ent[0:], s.kind)
		le.PutUint32(ent[4:], 0)
		le.PutUint64(ent[8:], uint64(s.offset))
		le.PutUint64(ent[16:], uint64(s.length))
		le.PutUint64(ent[24:], s.crc)
		if _, err := bw.Write(ent[:]); err != nil {
			return err
		}
	}
	written := v2HeaderSize + int64(len(secs))*v2SectionSize
	for _, s := range secs {
		if err := writePad(bw, s.offset-written); err != nil {
			return err
		}
		if err := writeSectionPayload(bw, g, s.kind); err != nil {
			return err
		}
		written = s.offset + s.length
	}
	// Trailing pad so the file length is a multiple of the alignment —
	// harmless for readers, and it keeps concatenation-style tooling
	// (dd, split) on aligned boundaries.
	if err := writePad(bw, alignUp(written)-written); err != nil {
		return err
	}
	return bw.Flush()
}

var zeroPad [v2Align]byte

func writePad(w io.Writer, pad int64) error {
	for pad > 0 {
		c := pad
		if c > v2Align {
			c = v2Align
		}
		if _, err := w.Write(zeroPad[:c]); err != nil {
			return err
		}
		pad -= c
	}
	return nil
}

// sectionCRC checksums a section's payload. On little-endian hosts this
// runs directly over the slice memory; otherwise over the encoded form.
func sectionCRC(g *Graph, kind uint32) uint64 {
	i64, u32, f64 := g.sectionPayload(kind)
	if hostLittleEndian {
		var b []byte
		switch {
		case i64 != nil:
			b = int64Bytes(i64)
		case u32 != nil:
			b = uint32Bytes(u32)
		default:
			b = float64Bytes(f64)
		}
		return uint64(crc32.Checksum(b, castagnoli))
	}
	return uint64(crc32.Checksum(encodePortable(i64, u32, f64), castagnoli))
}

// writeSectionPayload streams one section's payload. Little-endian
// hosts write the slice memory verbatim (the zero-copy write half of
// the format's contract); big-endian hosts encode explicitly.
func writeSectionPayload(w io.Writer, g *Graph, kind uint32) error {
	i64, u32, f64 := g.sectionPayload(kind)
	if hostLittleEndian {
		var b []byte
		switch {
		case i64 != nil:
			b = int64Bytes(i64)
		case u32 != nil:
			b = uint32Bytes(u32)
		default:
			b = float64Bytes(f64)
		}
		_, err := w.Write(b)
		return err
	}
	_, err := w.Write(encodePortable(i64, u32, f64))
	return err
}

// encodePortable little-endian-encodes a section on hosts whose memory
// layout cannot be written verbatim. Only ever runs on big-endian
// machines, so it favors clarity over speed.
func encodePortable(i64 []int64, u32 []uint32, f64 []float64) []byte {
	le := binary.LittleEndian
	switch {
	case i64 != nil:
		b := make([]byte, len(i64)*8)
		for i, v := range i64 {
			le.PutUint64(b[i*8:], uint64(v))
		}
		return b
	case u32 != nil:
		b := make([]byte, len(u32)*4)
		for i, v := range u32 {
			le.PutUint32(b[i*4:], v)
		}
		return b
	default:
		b := make([]byte, len(f64)*8)
		for i, v := range f64 {
			le.PutUint64(b[i*8:], math.Float64bits(v))
		}
		return b
	}
}

// int64Bytes / uint32Bytes / float64Bytes reinterpret a typed slice as
// its backing bytes (little-endian hosts only; the callers gate on
// hostLittleEndian). The views alias the slice memory — callers must
// not let them outlive it.
func int64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func uint32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func float64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// v2Header is the parsed fixed header + section table.
type v2Header struct {
	flags    uint32
	n        int
	m        int
	sections []v2Section
}

// parseV2Header decodes and sanity-checks the fixed header and section
// table from hdr (the first v2HeaderSize bytes) and table (the raw
// section-table bytes).
func parseV2Header(hdr, table []byte) (*v2Header, error) {
	le := binary.LittleEndian
	if string(hdr[:8]) != magicV2 {
		return nil, fmt.Errorf("graph: bad v2 magic %q", hdr[:8])
	}
	if v := le.Uint32(hdr[8:]); v != v2Version {
		return nil, fmt.Errorf("graph: unsupported v2 version %d", v)
	}
	flags := le.Uint32(hdr[12:])
	n64 := le.Uint64(hdr[16:])
	m64 := le.Uint64(hdr[24:])
	nsec := le.Uint32(hdr[32:])
	if n64 == 0 || n64 > 1<<31 || m64 > 1<<40 {
		return nil, fmt.Errorf("graph: implausible v2 sizes n=%d m=%d", n64, m64)
	}
	if nsec == 0 || nsec > maxV2Sections {
		return nil, fmt.Errorf("graph: implausible v2 section count %d", nsec)
	}
	if len(table) < int(nsec)*v2SectionSize {
		return nil, fmt.Errorf("graph: truncated v2 section table")
	}
	h := &v2Header{flags: flags, n: int(n64), m: int(m64)}
	prevEnd := v2HeaderSize + int64(nsec)*v2SectionSize
	seen := make(map[uint32]bool, nsec)
	for i := uint32(0); i < nsec; i++ {
		ent := table[i*v2SectionSize:]
		s := v2Section{
			kind:   le.Uint32(ent[0:]),
			offset: int64(le.Uint64(ent[8:])),
			length: int64(le.Uint64(ent[16:])),
			crc:    le.Uint64(ent[24:]),
		}
		if s.kind < secOutOff || s.kind > secWOut {
			return nil, fmt.Errorf("graph: unknown v2 section kind %d", s.kind)
		}
		if seen[s.kind] {
			return nil, fmt.Errorf("graph: duplicate v2 section kind %d", s.kind)
		}
		seen[s.kind] = true
		if want := sectionLength(s.kind, h.n, h.m); s.length != want {
			return nil, fmt.Errorf("graph: v2 section %d length %d, want %d", s.kind, s.length, want)
		}
		// The offset cap (far above any legal file, n ≤ 2³¹ and m ≤ 2⁴⁰)
		// keeps offset+length arithmetic overflow-free on hostile input.
		if s.offset < prevEnd || s.offset > 1<<56 || s.offset%v2Align != 0 {
			return nil, fmt.Errorf("graph: v2 section %d misplaced at offset %d", s.kind, s.offset)
		}
		prevEnd = s.offset + s.length
		h.sections = append(h.sections, s)
	}
	weighted := flags&v2FlagWeighted != 0
	if !seen[secOutOff] || !seen[secOutAdj] {
		return nil, fmt.Errorf("graph: v2 file missing out-CSR sections")
	}
	if seen[secInOff] != seen[secInAdj] {
		return nil, fmt.Errorf("graph: v2 file has only half an in-CSR")
	}
	if weighted && !seen[secOutW] {
		return nil, fmt.Errorf("graph: weighted v2 file missing out-weight section")
	}
	if !weighted && (seen[secOutW] || seen[secInW] || seen[secWOut]) {
		return nil, fmt.Errorf("graph: unweighted v2 file carries weight sections")
	}
	if seen[secInW] && !seen[secInAdj] {
		return nil, fmt.Errorf("graph: v2 in-weight section without in-CSR")
	}
	if weighted && seen[secInAdj] != seen[secInW] {
		return nil, fmt.Errorf("graph: weighted v2 in-CSR without in-weight section")
	}
	return h, nil
}

func sectionLength(kind uint32, n, m int) int64 {
	switch kind {
	case secOutOff, secInOff:
		return int64(n+1) * 8
	case secOutAdj, secInAdj:
		return int64(m) * 4
	case secOutW, secInW:
		return int64(m) * 8
	case secWOut:
		return int64(n) * 8
	}
	return -1
}

// formatSignature folds the identity-bearing parts of a v2 header — the
// node and edge counts, the weighted flag, and the out-side section
// checksums — into one 64-bit FNV-1a value. In-CSR sections are
// excluded so a file written with and without them signs identically
// (they are derived data). Both the ReadFull and the mmap loaders stamp
// it on the Graph, so signature consumers (the serving daemon's disk
// cache) never re-walk the adjacency.
func (h *v2Header) formatSignature() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	sig := uint64(fnvOffset)
	mix := func(x uint64) {
		sig = (sig ^ x) * fnvPrime
	}
	mix(uint64(h.n))
	mix(uint64(h.m))
	mix(uint64(h.flags & v2FlagWeighted))
	for _, s := range h.sections {
		switch s.kind {
		case secOutOff, secOutAdj, secOutW:
			mix(uint64(s.kind))
			mix(s.crc)
		}
	}
	return sig
}

// ReadBinaryV2 parses binary format v2 from a stream: every section is
// read with io.ReadFull into an exactly-sized slice (on little-endian
// hosts straight into the slice memory), checksums are verified, and a
// file without in-CSR sections gets its in-adjacency rebuilt by the
// parallel build. The result is validated before it is returned.
func ReadBinaryV2(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [v2HeaderSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading v2 header: %w", err)
	}
	if string(hdr[:8]) != magicV2 {
		return nil, fmt.Errorf("graph: bad v2 magic %q", hdr[:8])
	}
	nsec := binary.LittleEndian.Uint32(hdr[32:])
	if nsec == 0 || nsec > maxV2Sections {
		return nil, fmt.Errorf("graph: implausible v2 section count %d", nsec)
	}
	table := make([]byte, int(nsec)*v2SectionSize)
	if _, err := io.ReadFull(br, table); err != nil {
		return nil, fmt.Errorf("graph: reading v2 section table: %w", err)
	}
	h, err := parseV2Header(hdr[:], table)
	if err != nil {
		return nil, err
	}
	g := &Graph{n: h.n}
	pos := v2HeaderSize + int64(nsec)*v2SectionSize
	for _, s := range h.sections {
		if err := discard(br, s.offset-pos); err != nil {
			return nil, fmt.Errorf("graph: v2 section %d padding: %w", s.kind, err)
		}
		if err := readSection(br, g, s); err != nil {
			return nil, err
		}
		pos = s.offset + s.length
	}
	return finishV2(g, h)
}

// finishV2 derives whatever a v2 image did not carry (the in-CSR when
// the writer omitted it), validates, and stamps the format signature.
func finishV2(g *Graph, h *v2Header) (*Graph, error) {
	if g.inOff == nil {
		buildIn(g)
	}
	if g.outW != nil && g.wOut == nil {
		computeWOut(g)
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	g.fileSig, g.hasSig = h.formatSignature(), true
	return g, nil
}

// computeWOut fills the per-node total out-weight from the out-weights.
func computeWOut(g *Graph) {
	g.wOut = make([]float64, g.n)
	for u := 0; u < g.n; u++ {
		s := 0.0
		for k := g.outOff[u]; k < g.outOff[u+1]; k++ {
			s += g.outW[k]
		}
		g.wOut[u] = s
	}
}

func discard(br *bufio.Reader, pad int64) error {
	if pad < 0 {
		return fmt.Errorf("graph: overlapping sections")
	}
	_, err := br.Discard(int(pad))
	return err
}

// readSection reads one section payload into a freshly allocated,
// exactly-sized slice attached to g, verifying its checksum. On
// little-endian hosts the file bytes land directly in the slice memory;
// big-endian hosts read into a scratch buffer and decode.
func readSection(br *bufio.Reader, g *Graph, s v2Section) error {
	i64, u32, f64 := allocSection(g, s.kind)
	var payload []byte
	if hostLittleEndian {
		switch {
		case i64 != nil:
			payload = int64Bytes(i64)
		case u32 != nil:
			payload = uint32Bytes(u32)
		default:
			payload = float64Bytes(f64)
		}
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("graph: v2 section %d: %w", s.kind, err)
		}
	} else {
		payload = make([]byte, s.length)
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("graph: v2 section %d: %w", s.kind, err)
		}
		decodePortable(payload, i64, u32, f64)
	}
	if crc := uint64(crc32.Checksum(payload, castagnoli)); crc != s.crc {
		return fmt.Errorf("graph: v2 section %d checksum mismatch", s.kind)
	}
	return nil
}

// allocSection allocates the exactly-sized destination slice for a
// section and attaches it to g, returning the typed view to fill.
func allocSection(g *Graph, kind uint32) (i64 []int64, u32 []uint32, f64 []float64) {
	n, m := g.n, 0
	switch kind {
	case secOutOff:
		g.outOff = make([]int64, n+1)
		return g.outOff, nil, nil
	case secInOff:
		g.inOff = make([]int64, n+1)
		return g.inOff, nil, nil
	case secOutAdj:
		m = sectionCap(g)
		g.outAdj = make([]NodeID, m)
		return nil, g.outAdj, nil
	case secInAdj:
		m = sectionCap(g)
		g.inAdj = make([]NodeID, m)
		return nil, g.inAdj, nil
	case secOutW:
		m = sectionCap(g)
		g.outW = make([]float64, m)
		return nil, nil, g.outW
	case secInW:
		m = sectionCap(g)
		g.inW = make([]float64, m)
		return nil, nil, g.inW
	case secWOut:
		g.wOut = make([]float64, n)
		return nil, nil, g.wOut
	}
	// Unreachable: parseV2Header already rejected unknown section kinds.
	panic("graph: unknown v2 section kind") //arlint:allow panicfree internal invariant, not an input error
}

// sectionCap returns the edge count the out-CSR header promised; the
// out-offset section always precedes the adjacency sections (ascending
// offsets + table order produced by v2SectionsOf), so outOff is set.
func sectionCap(g *Graph) int {
	if g.outOff != nil {
		return int(g.outOff[g.n])
	}
	return 0
}

// decodePortable is the big-endian-host inverse of encodePortable.
func decodePortable(b []byte, i64 []int64, u32 []uint32, f64 []float64) {
	le := binary.LittleEndian
	switch {
	case i64 != nil:
		for i := range i64 {
			i64[i] = int64(le.Uint64(b[i*8:]))
		}
	case u32 != nil:
		for i := range u32 {
			u32[i] = le.Uint32(b[i*4:])
		}
	default:
		for i := range f64 {
			f64[i] = math.Float64frombits(le.Uint64(b[i*8:]))
		}
	}
}

// graphFromMapped assembles a Graph over an mmap'd v2 image: sections
// are aliased straight out of data (zero heap for the CSR), checksums
// and structural invariants are verified — one sequential page-in, far
// cheaper than any decode — and missing derived sections (in-CSR,
// wOut) are built on the heap. The caller owns data's lifetime and
// attaches it to Graph.mapped on success.
func graphFromMapped(data []byte) (*Graph, error) {
	if len(data) < v2HeaderSize {
		return nil, fmt.Errorf("graph: v2 image too short (%d bytes)", len(data))
	}
	if string(data[:8]) != magicV2 {
		return nil, fmt.Errorf("graph: bad v2 magic %q", data[:8])
	}
	nsec := binary.LittleEndian.Uint32(data[32:])
	if nsec == 0 || nsec > maxV2Sections {
		return nil, fmt.Errorf("graph: implausible v2 section count %d", nsec)
	}
	if int64(len(data)) < v2HeaderSize+int64(nsec)*v2SectionSize {
		return nil, fmt.Errorf("graph: truncated v2 section table")
	}
	h, err := parseV2Header(data[:v2HeaderSize], data[v2HeaderSize:])
	if err != nil {
		return nil, err
	}
	g := &Graph{n: h.n}
	for _, s := range h.sections {
		if s.offset+s.length > int64(len(data)) {
			return nil, fmt.Errorf("graph: v2 section %d exceeds file size", s.kind)
		}
		payload := data[s.offset : s.offset+s.length]
		if crc := uint64(crc32.Checksum(payload, castagnoli)); crc != s.crc {
			return nil, fmt.Errorf("graph: v2 section %d checksum mismatch", s.kind)
		}
		aliasSection(g, s.kind, payload)
	}
	return finishV2(g, h)
}

// aliasSection points a Graph array directly at a section's mapped
// payload bytes. Little-endian hosts only (MmapFile falls back to the
// copying reader elsewhere).
func aliasSection(g *Graph, kind uint32, payload []byte) {
	switch kind {
	case secOutOff:
		g.outOff = aliasInt64(payload)
	case secInOff:
		g.inOff = aliasInt64(payload)
	case secOutAdj:
		g.outAdj = aliasUint32(payload)
	case secInAdj:
		g.inAdj = aliasUint32(payload)
	case secOutW:
		g.outW = aliasFloat64(payload)
	case secInW:
		g.inW = aliasFloat64(payload)
	case secWOut:
		g.wOut = aliasFloat64(payload)
	}
}

func aliasInt64(b []byte) []int64 {
	if len(b) == 0 {
		return []int64{}
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func aliasUint32(b []byte) []uint32 {
	if len(b) == 0 {
		return []uint32{}
	}
	return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func aliasFloat64(b []byte) []float64 {
	if len(b) == 0 {
		return []float64{}
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

// readV2Fallback is the copying load path behind MmapFile on platforms
// (or hosts) where aliasing a mapping is impossible: plain ReadBinaryV2
// over the opened file.
func readV2Fallback(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinaryV2(f)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	return g, nil
}

// FormatSignature returns the graph's stored format signature and
// whether one exists. Graphs loaded from a v2 file (ReadBinaryV2 or
// MmapFile) carry a signature derived from the file's section
// checksums; graphs built in memory or loaded from v1/text do not, and
// callers fall back to walking the adjacency. Two loads of the same v2
// file — mmap'd or copied — always agree.
func (g *Graph) FormatSignature() (uint64, bool) {
	return g.fileSig, g.hasSig
}

// Close releases the resources behind a memory-mapped graph: every
// slice aliasing the mapping is nilled FIRST (so a stale use panics
// with an index error instead of faulting on unmapped pages) and the
// mapping is then unmapped. Closing a heap-backed graph is a no-op, as
// is closing twice — callers can unconditionally defer Close.
//
// Lifetime rule: every slice obtained from the graph — OutNeighbors
// rows, InCSR/OutCSR, and any kernel.Snapshot/PushSnapshot that aliased
// them — dies with Close. Release snapshots and finish sweeps before
// closing the graph they were built from.
func (g *Graph) Close() error {
	m := g.mapped
	if m == nil {
		return nil
	}
	g.mapped = nil
	g.outOff, g.inOff = nil, nil
	g.outAdj, g.inAdj = nil, nil
	g.outW, g.inW, g.wOut = nil, nil, nil
	return unmapMem(m)
}
