package graph

import (
	"testing"
)

// FuzzSubgraph drives subgraph extraction with arbitrary graphs and
// member sets decoded from the fuzz input. The invariants are the heart
// of the paper's G_l-within-G_g setup: extraction must never panic, the
// NodeSet and Local slice must describe the same membership, local and
// global ids must be inverse bijections, and the induced graph must
// contain exactly the global edges with both endpoints local —
// multiplicity aside, extraction neither invents nor loses edges.
func FuzzSubgraph(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 0, 3, 4}, []byte{0, 1, 2})
	f.Add([]byte{3, 0, 0}, []byte{2})
	f.Add([]byte{1}, []byte{0})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, graphData, memberData []byte) {
		g := decodeFuzzGraph(graphData)
		if g == nil {
			return
		}
		var local []NodeID
		for _, b := range memberData {
			// Deliberately out-of-range sometimes: NewSubgraph must reject,
			// not panic.
			local = append(local, NodeID(b))
		}
		sub, err := NewSubgraph(g, local)
		if err != nil {
			return
		}

		// Local is sorted, deduplicated, and agrees with the Member set.
		if sub.Member.Len() != len(sub.Local) {
			t.Fatalf("Member.Len() = %d, len(Local) = %d", sub.Member.Len(), len(sub.Local))
		}
		for i, gid := range sub.Local {
			if i > 0 && sub.Local[i-1] >= gid {
				t.Fatalf("Local not sorted/deduplicated at %d: %v", i, sub.Local)
			}
			if !sub.Member.Contains(gid) {
				t.Fatalf("Local[%d] = %d missing from Member set", i, gid)
			}
		}

		// LocalID and GlobalID are inverse bijections over the members.
		for li, gid := range sub.Local {
			got, ok := sub.LocalID(gid)
			if !ok || got != uint32(li) {
				t.Fatalf("LocalID(GlobalID(%d)) = %d,%v, want %d,true", li, got, ok, li)
			}
		}
		for gid := 0; gid < g.NumNodes(); gid++ {
			if _, ok := sub.LocalID(NodeID(gid)); ok != sub.Member.Contains(NodeID(gid)) {
				t.Fatalf("LocalID(%d) membership %v disagrees with Member set %v",
					gid, ok, sub.Member.Contains(NodeID(gid)))
			}
		}

		induced, err := sub.Induce()
		if err != nil {
			t.Fatalf("Induce on a valid subgraph: %v", err)
		}
		if induced.NumNodes() != sub.N() {
			t.Fatalf("induced graph has %d nodes, want %d", induced.NumNodes(), sub.N())
		}
		// Every induced edge maps back to a global edge between members,
		// and every global member-to-member edge survives induction. The
		// builder deduplicates parallel edges, so compare edge sets.
		for li := 0; li < induced.NumNodes(); li++ {
			for _, lv := range induced.OutNeighbors(NodeID(li)) {
				u, v := sub.GlobalID(uint32(li)), sub.GlobalID(uint32(lv))
				if !g.HasEdge(u, v) {
					t.Fatalf("induced edge %d->%d has no global counterpart %d->%d", li, lv, u, v)
				}
			}
		}
		for li, gid := range sub.Local {
			for _, v := range g.OutNeighbors(gid) {
				lv, ok := sub.LocalID(v)
				if !ok {
					continue
				}
				if !induced.HasEdge(NodeID(li), NodeID(lv)) {
					t.Fatalf("global edge %d->%d between members lost in induction", gid, v)
				}
			}
		}
	})
}

// decodeFuzzGraph builds a small graph from fuzz bytes: the first byte
// picks the node count (1..64), the rest pair up into edges with both
// endpoints reduced mod n. Returns nil when the input cannot make a
// graph.
func decodeFuzzGraph(data []byte) *Graph {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%64 + 1
	b := NewBuilder(n)
	b.EnsureNode(NodeID(n - 1))
	pairs := data[1:]
	for i := 0; i+1 < len(pairs); i += 2 {
		b.AddEdge(NodeID(int(pairs[i])%n), NodeID(int(pairs[i+1])%n))
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}
