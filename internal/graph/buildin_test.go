package graph

import (
	"math/rand"
	"testing"
)

// reGraph copies only the out-CSR of g into a fresh Graph, ready for an
// in-CSR build.
func reGraph(g *Graph) *Graph {
	g2 := &Graph{n: g.n}
	g2.outOff = append([]int64(nil), g.outOff...)
	g2.outAdj = append([]NodeID(nil), g.outAdj...)
	if g.outW != nil {
		g2.outW = append([]float64(nil), g.outW...)
		g2.wOut = append([]float64(nil), g.wOut...)
	}
	return g2
}

func inEqual(t *testing.T, workers int, want, got *Graph) {
	t.Helper()
	for i := range want.inOff {
		if want.inOff[i] != got.inOff[i] {
			t.Fatalf("workers=%d: inOff[%d] = %d, want %d", workers, i, got.inOff[i], want.inOff[i])
		}
	}
	for i := range want.inAdj {
		if want.inAdj[i] != got.inAdj[i] {
			t.Fatalf("workers=%d: inAdj[%d] = %d, want %d", workers, i, got.inAdj[i], want.inAdj[i])
		}
	}
	for i := range want.inW {
		if want.inW[i] != got.inW[i] {
			t.Fatalf("workers=%d: inW[%d] = %v, want %v", workers, i, got.inW[i], want.inW[i])
		}
	}
}

// TestBuildInParallelBitIdentical pins the parallel in-CSR build to the
// sequential one across team sizes: identical inOff, inAdj, and inW,
// bit for bit, on graphs big enough that every worker owns real work
// and small skewed ones where some workers own none.
func TestBuildInParallelBitIdentical(t *testing.T) {
	shapes := []struct {
		name     string
		n, m     int
		weighted bool
	}{
		{"unweighted", 2000, 12000, false},
		{"weighted", 1500, 9000, true},
		{"tiny", 5, 8, false},
		{"sparse", 3000, 100, false},
	}
	for _, sh := range shapes {
		rng := rand.New(rand.NewSource(int64(sh.n)))
		b := NewBuilder(sh.n)
		for i := 0; i < sh.m; i++ {
			u, v := NodeID(rng.Intn(sh.n)), NodeID(rng.Intn(sh.n))
			if sh.weighted {
				b.AddWeightedEdge(u, v, 0.5*float64(1+rng.Intn(6)))
			} else {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		seq := reGraph(g)
		buildInParallel(seq, 1)
		if err := seq.validate(); err != nil {
			t.Fatalf("%s: sequential build invalid: %v", sh.name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			par := reGraph(g)
			buildInParallel(par, workers)
			if err := par.validate(); err != nil {
				t.Fatalf("%s workers=%d: parallel build invalid: %v", sh.name, workers, err)
			}
			inEqual(t, workers, seq, par)
		}
	}
}

// TestBuildWorkers pins the gating rules: small graphs and absurd edge
// counts stay sequential; the count-array budget shrinks the team.
func TestBuildWorkers(t *testing.T) {
	if w := buildWorkers(1000, 1000); w != 1 {
		t.Errorf("small graph got %d workers, want 1", w)
	}
	if w := buildWorkers(1000, 1<<32); w != 1 {
		t.Errorf("int32-overflowing edge count got %d workers, want 1", w)
	}
	// 100M nodes × 4 bytes = 400MB per worker count array — must clamp
	// to one worker under the 256MiB budget.
	if w := buildWorkers(100_000_000, 1<<20); w != 1 {
		t.Errorf("huge node count got %d workers, want 1", w)
	}
}

// TestRowBuilderMatchesBuilder: for row-grouped input (ascending
// sources, duplicates allowed) RowBuilder and Builder produce identical
// graphs.
func TestRowBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 300
	b := NewBuilder(n)
	rb := NewRowBuilder(n)
	row := make([]NodeID, 0, 16)
	for u := 0; u < n; u++ {
		if rng.Intn(5) == 0 {
			continue // dangling row
		}
		deg := 1 + rng.Intn(10)
		row = row[:0]
		for e := 0; e < deg; e++ {
			v := NodeID(rng.Intn(n))
			b.AddEdge(NodeID(u), v)
			row = append(row, v)
		}
		if err := rb.AddRow(NodeID(u), row); err != nil {
			t.Fatalf("AddRow(%d): %v", u, err)
		}
	}
	want, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !graphsDeepEqual(want, got) {
		t.Fatal("RowBuilder graph differs from Builder graph")
	}
}

func TestRowBuilderErrors(t *testing.T) {
	rb := NewRowBuilder(10)
	if err := rb.AddRow(12, []NodeID{1}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := rb.AddRow(5, []NodeID{1}); err != nil {
		t.Fatalf("AddRow(5): %v", err)
	}
	if err := rb.AddRow(3, []NodeID{1}); err == nil {
		t.Error("out-of-order row accepted")
	}
	if err := rb.AddRow(7, []NodeID{10}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := NewRowBuilder(0).Build(); err == nil {
		t.Error("empty graph accepted")
	}
}

// TestRowBuilderTrailingDangling: rows for the last nodes may be absent
// entirely; Build must still produce full offset arrays.
func TestRowBuilderTrailingDangling(t *testing.T) {
	rb := NewRowBuilder(6)
	if err := rb.AddRow(1, []NodeID{0, 2, 2, 0}); err != nil {
		t.Fatal(err)
	}
	g, err := rb.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges, want 6 nodes 2 edges (dedup)", g.NumNodes(), g.NumEdges())
	}
	for u := 2; u < 6; u++ {
		if g.OutDegree(NodeID(u)) != 0 {
			t.Fatalf("node %d should be dangling", u)
		}
	}
}
