package graph

import (
	"bytes"
	"strings"
	"testing"
)

// Native fuzz targets for the two parsers. Under plain `go test` these
// run their seed corpus; under `go test -fuzz` they explore. Either way
// the invariant is the same: arbitrary input must produce a clean error
// or a graph whose structural invariants validate — never a panic.

func FuzzReadBinary(f *testing.F) {
	g := MustFromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {0, 0}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := back.validate(); verr != nil {
			t.Fatalf("accepted graph violates invariants: %v", verr)
		}
	})
}

// FuzzReadBinaryV2 drives both v2 parsers — the streaming reader and
// the mapped-image reader — over the same input: each must reject with
// a clean error or accept a graph whose invariants validate, and they
// must agree on acceptance.
func FuzzReadBinaryV2(f *testing.F) {
	g := MustFromEdges(5, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {0, 0}})
	var full, noIn bytes.Buffer
	if err := writeBinaryV2(&full, g, true); err != nil {
		f.Fatal(err)
	}
	if err := writeBinaryV2(&noIn, g, false); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	f.Add(noIn.Bytes())
	f.Add([]byte(magicV2))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		streamed, errStream := ReadBinaryV2(bytes.NewReader(data))
		mapped, errMapped := graphFromMapped(data)
		if (errStream == nil) != (errMapped == nil) {
			t.Fatalf("parsers disagree: stream=%v mapped=%v", errStream, errMapped)
		}
		if errStream != nil {
			return
		}
		if verr := streamed.validate(); verr != nil {
			t.Fatalf("accepted stream graph violates invariants: %v", verr)
		}
		if verr := mapped.validate(); verr != nil {
			t.Fatalf("accepted mapped graph violates invariants: %v", verr)
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# nodes: 5\n0 1 2.5\n")
	f.Add("")
	f.Add("a b c\n")
	f.Fuzz(func(t *testing.T, data string) {
		back, err := ReadEdgeList(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := back.validate(); verr != nil {
			t.Fatalf("accepted graph violates invariants: %v", verr)
		}
	})
}
