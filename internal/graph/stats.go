package graph

import "sort"

// Stats summarizes the degree structure of a graph. It backs the dataset
// characterization table (the analogue of the paper's Table II) and the
// generator tests.
type Stats struct {
	Nodes           int
	Edges           int
	Dangling        int     // nodes with no outgoing edges
	Sources         int     // nodes with no incoming edges
	SelfLoops       int     // edges u→u
	AvgOutDegree    float64 // Edges / Nodes
	MaxOutDegree    int
	MaxInDegree     int
	MedianOutDegree int
}

// ComputeStats scans g once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	st := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	outDegs := make([]int, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		id := NodeID(u)
		od := g.OutDegree(id)
		outDegs[u] = od
		if od == 0 {
			st.Dangling++
		}
		if od > st.MaxOutDegree {
			st.MaxOutDegree = od
		}
		if g.InDegree(id) == 0 {
			st.Sources++
		}
		if d := g.InDegree(id); d > st.MaxInDegree {
			st.MaxInDegree = d
		}
		if g.HasEdge(id, id) {
			st.SelfLoops++
		}
	}
	if st.Nodes > 0 {
		st.AvgOutDegree = float64(st.Edges) / float64(st.Nodes)
		sort.Ints(outDegs)
		st.MedianOutDegree = outDegs[len(outDegs)/2]
	}
	return st
}

// OutDegreeHistogram returns counts[d] = number of nodes with out-degree d,
// capping the histogram at maxDeg (larger degrees land in the last bucket).
func OutDegreeHistogram(g *Graph, maxDeg int) []int {
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.NumNodes(); u++ {
		d := g.OutDegree(NodeID(u))
		if d > maxDeg {
			d = maxDeg
		}
		counts[d]++
	}
	return counts
}

// InDegreeHistogram is OutDegreeHistogram for in-degrees.
func InDegreeHistogram(g *Graph, maxDeg int) []int {
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.NumNodes(); u++ {
		d := g.InDegree(NodeID(u))
		if d > maxDeg {
			d = maxDeg
		}
		counts[d]++
	}
	return counts
}
