package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSCCKnownGraphs(t *testing.T) {
	// Two 3-cycles bridged by one edge, plus an isolated node.
	g := MustFromEdges(7, [][2]NodeID{
		{0, 1}, {1, 2}, {2, 0},
		{2, 3}, // bridge
		{3, 4}, {4, 5}, {5, 3},
	})
	comps := StronglyConnectedComponents(g)
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3: %v", len(comps), comps)
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[3] != 2 || sizes[1] != 1 {
		t.Fatalf("component sizes wrong: %v", comps)
	}
	// Reverse topological order: the downstream cycle {3,4,5} must be
	// emitted before the upstream {0,1,2}.
	pos := map[NodeID]int{}
	for i, c := range comps {
		for _, v := range c {
			pos[v] = i
		}
	}
	if !(pos[3] < pos[0]) {
		t.Errorf("condensation order wrong: %v", comps)
	}
}

func TestSCCSingleCycle(t *testing.T) {
	n := 50
	edges := make([][2]NodeID, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]NodeID{NodeID(i), NodeID((i + 1) % n)}
	}
	g := MustFromEdges(n, edges)
	comps := StronglyConnectedComponents(g)
	if len(comps) != 1 || len(comps[0]) != n {
		t.Fatalf("cycle should be one SCC, got %d comps", len(comps))
	}
	if LargestSCCFraction(g) != 1 {
		t.Fatalf("LargestSCCFraction = %v", LargestSCCFraction(g))
	}
}

func TestSCCDAG(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 3}, {2, 3}})
	comps := StronglyConnectedComponents(g)
	if len(comps) != 4 {
		t.Fatalf("DAG should have singleton SCCs, got %v", comps)
	}
}

// TestSCCPartitionProperty: components partition the node set, and any
// two nodes in one component reach each other (checked by BFS on random
// small graphs).
func TestSCCPartitionProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewBuilder(n)
		m := rng.Intn(90)
		for i := 0; i < m; i++ {
			b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		comps := StronglyConnectedComponents(g)
		seen := make([]bool, n)
		for _, c := range comps {
			for _, v := range c {
				if seen[v] {
					return false // node in two components
				}
				seen[v] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false // node missing
			}
		}
		// Mutual reachability within each component.
		reach := func(from, to NodeID) bool {
			if from == to {
				return true
			}
			visited := NewNodeSet(n)
			visited.Add(from)
			queue := []NodeID{from}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range g.OutNeighbors(u) {
					if v == to {
						return true
					}
					if !visited.Contains(v) {
						visited.Add(v)
						queue = append(queue, v)
					}
				}
			}
			return false
		}
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			// Spot-check first against last member both ways.
			a, z := c[0], c[len(c)-1]
			if !reach(a, z) || !reach(z, a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSCCDeepChain: the iterative implementation must handle chains far
// deeper than any recursion limit.
func TestSCCDeepChain(t *testing.T) {
	n := 200000
	edges := make([][2]NodeID, 0, n)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]NodeID{NodeID(i), NodeID(i + 1)})
	}
	g := MustFromEdges(n, edges)
	comps := StronglyConnectedComponents(g)
	if len(comps) != n {
		t.Fatalf("chain of %d nodes produced %d SCCs", n, len(comps))
	}
}
