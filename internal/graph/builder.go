package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are merged (weights are summed for weighted graphs); self-loops are
// kept — the web graph contains them and the Λ super-node relies on one.
//
// A Builder is either weighted or unweighted for its whole life: the first
// call to AddEdge or AddWeightedEdge fixes the mode, and mixing the two is
// an error reported by Build.
type Builder struct {
	n        int
	src, dst []NodeID
	w        []float64
	weighted bool
	fixed    bool
	mixErr   bool
}

// NewBuilder returns a Builder for a graph with numNodes nodes.
// numNodes may be grown later with EnsureNode.
func NewBuilder(numNodes int) *Builder {
	return &Builder{n: numNodes}
}

// NumNodes returns the current node count.
func (b *Builder) NumNodes() int { return b.n }

// NumEdges returns the number of edges added so far (before dedup).
func (b *Builder) NumEdges() int { return len(b.src) }

// EnsureNode grows the node count so that id is a valid node.
func (b *Builder) EnsureNode(id NodeID) {
	if int(id) >= b.n {
		b.n = int(id) + 1
	}
}

// AddEdge records the unweighted directed edge u→v.
func (b *Builder) AddEdge(u, v NodeID) {
	if b.fixed && b.weighted {
		b.mixErr = true
		return
	}
	b.fixed = true
	b.EnsureNode(u)
	b.EnsureNode(v)
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
}

// AddWeightedEdge records the directed edge u→v carrying authority-transfer
// weight w. Non-positive weights are ignored.
func (b *Builder) AddWeightedEdge(u, v NodeID, w float64) {
	if b.fixed && !b.weighted {
		b.mixErr = true
		return
	}
	b.fixed = true
	b.weighted = true
	b.EnsureNode(u)
	b.EnsureNode(v)
	if w <= 0 {
		return
	}
	b.src = append(b.src, u)
	b.dst = append(b.dst, v)
	b.w = append(b.w, w)
}

// Build sorts, deduplicates and freezes the accumulated edges into a Graph.
// The Builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.mixErr {
		return nil, fmt.Errorf("graph: builder mixed AddEdge and AddWeightedEdge")
	}
	if b.n == 0 {
		return nil, fmt.Errorf("graph: cannot build an empty graph")
	}
	m := len(b.src)

	// Sort edge triples by (src, dst) via an index permutation so weights
	// stay aligned.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		ia, ic := idx[a], idx[c]
		if b.src[ia] != b.src[ic] {
			return b.src[ia] < b.src[ic]
		}
		return b.dst[ia] < b.dst[ic]
	})

	g := &Graph{n: b.n}
	g.outOff = make([]int64, b.n+1)
	g.outAdj = make([]NodeID, 0, m)
	if b.weighted {
		g.outW = make([]float64, 0, m)
	}

	// Deduplicate while filling the out-CSR.
	for pos := 0; pos < m; {
		i := idx[pos]
		u, v := b.src[i], b.dst[i]
		w := 0.0
		for pos < m && b.src[idx[pos]] == u && b.dst[idx[pos]] == v {
			if b.weighted {
				w += b.w[idx[pos]]
			}
			pos++
		}
		g.outAdj = append(g.outAdj, v)
		if b.weighted {
			g.outW = append(g.outW, w)
		}
		g.outOff[u+1]++
	}
	for u := 0; u < b.n; u++ {
		g.outOff[u+1] += g.outOff[u]
	}

	buildIn(g)
	if b.weighted {
		g.wOut = make([]float64, b.n)
		for u := 0; u < b.n; u++ {
			for _, w := range g.OutWeights(NodeID(u)) {
				g.wOut[u] += w
			}
		}
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromEdges is a convenience constructor that builds an unweighted graph
// with numNodes nodes from the given (src, dst) pairs.
func FromEdges(numNodes int, edges [][2]NodeID) (*Graph, error) {
	b := NewBuilder(numNodes)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges but panics on error. Intended for tests and
// examples where the edge list is a literal.
func MustFromEdges(numNodes int, edges [][2]NodeID) *Graph {
	g, err := FromEdges(numNodes, edges)
	if err != nil {
		panic(err)
	}
	return g
}
