package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() || a.Weighted() != b.Weighted() {
		return false
	}
	for u := 0; u < a.NumNodes(); u++ {
		oa, ob := a.OutNeighbors(NodeID(u)), b.OutNeighbors(NodeID(u))
		if len(oa) != len(ob) {
			return false
		}
		for k := range oa {
			if oa[k] != ob[k] {
				return false
			}
		}
		if a.Weighted() {
			wa, wb := a.OutWeights(NodeID(u)), b.OutWeights(NodeID(u))
			for k := range wa {
				if wa[k] != wb[k] {
					return false
				}
			}
		}
	}
	return true
}

func randomGraph(rng *rand.Rand, weighted bool) *Graph {
	n := 2 + rng.Intn(40)
	b := NewBuilder(n)
	m := rng.Intn(150)
	for i := 0; i < m; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 0.25*float64(1+rng.Intn(8)))
		} else {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestEdgeListRoundTrip(t *testing.T) {
	check := func(seed int64, weighted bool) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), weighted)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	check := func(seed int64, weighted bool) bool {
		g := randomGraph(rand.New(rand.NewSource(seed)), weighted)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		back, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return graphsEqual(g, back)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListParsing(t *testing.T) {
	in := `# nodes: 5
# a comment
0 1

1 2
2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadEdgeList: %v", err)
	}
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5 (header)", g.NumNodes())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",              // too few fields
		"0 1 2 3\n",        // too many fields
		"a 1\n",            // bad source
		"0 b\n",            // bad target
		"0 1 x\n",          // bad weight
		"# nodes: -3\n0 1", // bad header
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := MustFromEdges(3, [][2]NodeID{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:4])); err == nil {
		t.Error("truncated magic accepted")
	}
	bad := append([]byte("WRONGMAG"), raw[8:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	badVer := append([]byte(nil), raw...)
	badVer[8] = 99
	if _, err := ReadBinary(bytes.NewReader(badVer)); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	g := MustFromEdges(4, [][2]NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	dir := t.TempDir()
	for _, name := range []string{"g.txt", "g.edges", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if !graphsEqual(g, back) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestBinaryNeverPanics: random single-byte corruptions of a valid
// binary image must produce either a clean error or a valid graph —
// never a panic or an invariant-violating graph.
func TestBinaryNeverPanics(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(1)), false)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), raw...)
		// Flip one random byte, or truncate.
		if rng.Intn(4) == 0 {
			mutated = mutated[:rng.Intn(len(mutated))]
		} else {
			pos := rng.Intn(len(mutated))
			mutated[pos] ^= byte(1 + rng.Intn(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadBinary panicked: %v", trial, r)
				}
			}()
			back, err := ReadBinary(bytes.NewReader(mutated))
			if err != nil {
				return // clean rejection
			}
			// Accepted: must still satisfy all structural invariants.
			if verr := back.validate(); verr != nil {
				t.Fatalf("trial %d: corrupted graph accepted with broken invariants: %v", trial, verr)
			}
		}()
	}
}

// TestEdgeListNeverPanics: random text mutations of a valid edge list.
func TestEdgeListNeverPanics(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(3)), true)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	raw := buf.String()
	rng := rand.New(rand.NewSource(4))
	garble := []byte("xX9-# .\t\n")
	for trial := 0; trial < 300; trial++ {
		mutated := []byte(raw)
		pos := rng.Intn(len(mutated))
		mutated[pos] = garble[rng.Intn(len(garble))]
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: ReadEdgeList panicked: %v", trial, r)
				}
			}()
			back, err := ReadEdgeList(strings.NewReader(string(mutated)))
			if err != nil {
				return
			}
			if verr := back.validate(); verr != nil {
				t.Fatalf("trial %d: corrupted edge list accepted with broken invariants: %v", trial, verr)
			}
		}()
	}
}
