package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Dictionary maps external page identifiers (URLs, DOIs, entity keys) to
// dense NodeIDs and back. Real link data arrives keyed by string; the
// ranking engines want dense ids. A Dictionary is append-only: ids are
// assigned in first-seen order, so the same input stream always produces
// the same numbering.
type Dictionary struct {
	byName map[string]NodeID
	names  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]NodeID)}
}

// Intern returns the id for name, assigning the next dense id on first
// sight.
func (d *Dictionary) Intern(name string) NodeID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := NodeID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the id for name and whether it is known.
func (d *Dictionary) Lookup(name string) (NodeID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name assigned to id; it panics if id was never
// assigned (a programming error, like indexing past a slice).
func (d *Dictionary) Name(id NodeID) string { return d.names[id] }

// Len returns the number of interned names.
func (d *Dictionary) Len() int { return len(d.names) }

// WriteTo serializes the dictionary as one name per line, in id order.
// Names must not contain newlines; Intern rejects nothing, so WriteTo
// validates here.
func (d *Dictionary) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for id, name := range d.names {
		if strings.ContainsAny(name, "\n\r") {
			return n, fmt.Errorf("graph: name %q of page %d contains a newline", name, id)
		}
		k, err := fmt.Fprintln(bw, name)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDictionary parses the WriteTo format.
func ReadDictionary(r io.Reader) (*Dictionary, error) {
	d := NewDictionary()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		name := sc.Text()
		if _, dup := d.byName[name]; dup {
			return nil, fmt.Errorf("graph: duplicate name %q at line %d", name, line)
		}
		d.Intern(name)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// NamedEdgeGraph builds a Graph and Dictionary from string-keyed edges —
// the convenience path from raw crawl output to a rankable graph.
func NamedEdgeGraph(edges [][2]string) (*Graph, *Dictionary, error) {
	d := NewDictionary()
	b := NewBuilder(0)
	for _, e := range edges {
		b.AddEdge(d.Intern(e[0]), d.Intern(e[1]))
	}
	if d.Len() == 0 {
		return nil, nil, fmt.Errorf("graph: no edges")
	}
	b.EnsureNode(NodeID(d.Len() - 1))
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, d, nil
}

// DomainOf extracts the host-like prefix of a URL-ish name: the text
// between the optional scheme and the first '/'. It backs domain-subgraph
// construction from named edge lists.
func DomainOf(name string) string {
	s := name
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// GroupByDomain buckets all interned names by DomainOf and returns the
// domains in descending bucket-size order with their members.
func (d *Dictionary) GroupByDomain() []DomainGroup {
	buckets := map[string][]NodeID{}
	for id, name := range d.names {
		dom := DomainOf(name)
		buckets[dom] = append(buckets[dom], NodeID(id))
	}
	out := make([]DomainGroup, 0, len(buckets))
	for dom, ids := range buckets {
		out = append(out, DomainGroup{Domain: dom, Pages: ids})
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a].Pages) != len(out[b].Pages) {
			return len(out[a].Pages) > len(out[b].Pages)
		}
		return out[a].Domain < out[b].Domain
	})
	return out
}

// DomainGroup is one domain's pages within a Dictionary.
type DomainGroup struct {
	Domain string
	Pages  []NodeID
}
