// Package graph provides a compact directed-graph engine used by every
// ranking algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form over dense uint32
// node ids. Both the out-adjacency and the in-adjacency are materialized:
// PageRank-style push iterations walk out-edges, while the Λ-row
// construction in the ApproxRank/IdealRank framework aggregates over the
// in-edges of local pages. Graphs are immutable after construction; build
// them with a Builder or load them with LoadEdgeList/ReadBinary.
package graph

import (
	"fmt"
)

// NodeID identifies a node. Ids are dense: a graph with n nodes uses ids
// 0..n-1.
type NodeID = uint32

// Graph is an immutable directed graph in CSR form. An optional parallel
// weight array turns it into a weighted graph (used by the ObjectRank-style
// authority-transfer variant); when weights are absent every out-edge of a
// node carries equal transition probability 1/outdegree.
type Graph struct {
	n int

	outOff []int64  // len n+1
	outAdj []NodeID // len m, sorted within each node's slice
	inOff  []int64  // len n+1
	inAdj  []NodeID // len m, sorted within each node's slice

	// Optional edge weights, parallel to outAdj and inAdj. Either both are
	// nil (unweighted) or both have length m. Weights are raw authority
	// transfer amounts; transition probabilities divide by WeightOut(i).
	outW []float64
	inW  []float64

	// wOut[i] is the sum of outgoing edge weights of i (only set when
	// weighted). For unweighted graphs the out-degree plays this role.
	wOut []float64

	// mapped is the mmap'd file region backing the slices above when the
	// graph was loaded with MmapFile; nil for heap-backed graphs. Close
	// releases it.
	mapped []byte

	// fileSig is the format signature carried by a v2 file (FNV-1a over
	// the out-section checksums); hasSig distinguishes a real signature
	// from the zero value. See FormatSignature.
	fileSig uint64
	hasSig  bool
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outAdj) }

// Weighted reports whether the graph carries per-edge weights.
func (g *Graph) Weighted() bool { return g.outW != nil }

// OutDegree returns the out-degree of node u.
func (g *Graph) OutDegree(u NodeID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the in-degree of node u.
func (g *Graph) InDegree(u NodeID) int {
	return int(g.inOff[u+1] - g.inOff[u])
}

// OutNeighbors returns the successors of u. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// InNeighbors returns the predecessors of u. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) InNeighbors(u NodeID) []NodeID {
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(u), or nil for an
// unweighted graph.
func (g *Graph) OutWeights(u NodeID) []float64 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[u]:g.outOff[u+1]]
}

// InWeights returns the weights parallel to InNeighbors(u), or nil for an
// unweighted graph.
func (g *Graph) InWeights(u NodeID) []float64 {
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inOff[u]:g.inOff[u+1]]
}

// InCSR exposes the graph's materialized in-adjacency as flat CSR
// slices (kernel.FlatInSource), letting the iteration kernel alias
// them instead of rebuilding the in-adjacency per snapshot. Only
// unweighted graphs qualify (ok=false otherwise): their rows are
// exact — a dangling node has no out-edges at all, every listed edge
// carries probability 1/outdegree, and sources within each row are
// ascending — whereas a weighted node with zero total out-weight is
// dangling yet may still list neighbors, so its rows cannot be taken
// verbatim. The returned slices alias internal storage and must not be
// modified.
func (g *Graph) InCSR() (off []int64, src []NodeID, ok bool) {
	if g.outW != nil {
		return nil, nil, false
	}
	return g.inOff, g.inAdj, true
}

// OutCSR is the push-side mirror of InCSR (kernel.FlatOutSource): the
// materialized out-adjacency as flat CSR slices, under the same
// unweighted-only exactness contract. The returned slices alias
// internal storage and must not be modified.
func (g *Graph) OutCSR() (off []int64, dst []NodeID, ok bool) {
	if g.outW != nil {
		return nil, nil, false
	}
	return g.outOff, g.outAdj, true
}

// WeightOut returns the total outgoing edge weight of u. For unweighted
// graphs it equals the out-degree.
func (g *Graph) WeightOut(u NodeID) float64 {
	if g.wOut != nil {
		return g.wOut[u]
	}
	return float64(g.OutDegree(u))
}

// Dangling reports whether u has no outgoing edges (or, in a weighted
// graph, zero total outgoing weight).
func (g *Graph) Dangling(u NodeID) bool {
	if g.wOut != nil {
		return g.wOut[u] == 0
	}
	return g.outOff[u+1] == g.outOff[u]
}

// TransitionProb returns the probability that the PageRank random surfer,
// standing on u and following links, moves along the edge with out-slot
// index k (an index into OutNeighbors(u)).
func (g *Graph) TransitionProb(u NodeID, k int) float64 {
	if g.outW != nil {
		return g.outW[g.outOff[u]+int64(k)] / g.wOut[u]
	}
	return 1.0 / float64(g.OutDegree(u))
}

// HasEdge reports whether the edge u→v exists, in O(log outdeg(u)).
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.OutNeighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// DanglingNodes returns the ids of all dangling nodes.
func (g *Graph) DanglingNodes() []NodeID {
	// Two passes: count, then fill an exact-size slice — one allocation
	// instead of append-doubling growth.
	cnt := 0
	for u := 0; u < g.n; u++ {
		if g.Dangling(NodeID(u)) {
			cnt++
		}
	}
	if cnt == 0 {
		return nil
	}
	out := make([]NodeID, 0, cnt)
	for u := 0; u < g.n; u++ {
		if g.Dangling(NodeID(u)) {
			out = append(out, NodeID(u))
		}
	}
	return out
}

// validate checks structural invariants; it is used by tests and by the
// binary reader on untrusted input.
func (g *Graph) validate() error {
	if len(g.outOff) != g.n+1 || len(g.inOff) != g.n+1 {
		return fmt.Errorf("graph: offset arrays have wrong length")
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	if g.outOff[g.n] != int64(len(g.outAdj)) || g.inOff[g.n] != int64(len(g.inAdj)) {
		return fmt.Errorf("graph: final offsets do not match edge count")
	}
	if len(g.outAdj) != len(g.inAdj) {
		return fmt.Errorf("graph: out/in edge counts differ: %d vs %d", len(g.outAdj), len(g.inAdj))
	}
	for u := 0; u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] || g.inOff[u] > g.inOff[u+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", u)
		}
	}
	for _, v := range g.outAdj {
		if int(v) >= g.n {
			return fmt.Errorf("graph: out-edge target %d out of range (n=%d)", v, g.n)
		}
	}
	for _, v := range g.inAdj {
		if int(v) >= g.n {
			return fmt.Errorf("graph: in-edge source %d out of range (n=%d)", v, g.n)
		}
	}
	if (g.outW == nil) != (g.inW == nil) {
		return fmt.Errorf("graph: inconsistent weight arrays")
	}
	if g.outW != nil && (len(g.outW) != len(g.outAdj) || len(g.inW) != len(g.inAdj)) {
		return fmt.Errorf("graph: weight arrays have wrong length")
	}
	return nil
}
