package graph

import "math/bits"

// NodeSet is a bitset over dense node ids. It is the membership structure
// used to split a global graph into local and external pages: algorithms
// probe it once per edge endpoint, so Contains must be O(1).
type NodeSet struct {
	words []uint64
	count int
}

// NewNodeSet returns an empty set able to hold ids 0..capacity-1.
func NewNodeSet(capacity int) *NodeSet {
	return &NodeSet{words: make([]uint64, (capacity+63)/64)}
}

// NodeSetOf builds a set containing exactly the given ids.
func NodeSetOf(capacity int, ids []NodeID) *NodeSet {
	s := NewNodeSet(capacity)
	for _, id := range ids {
		s.Add(id)
	}
	return s
}

// Add inserts id into the set.
func (s *NodeSet) Add(id NodeID) {
	w, b := id/64, id%64
	if int(w) >= len(s.words) {
		grown := make([]uint64, w+1)
		copy(grown, s.words)
		s.words = grown
	}
	if s.words[w]&(1<<b) == 0 {
		s.words[w] |= 1 << b
		s.count++
	}
}

// Remove deletes id from the set.
func (s *NodeSet) Remove(id NodeID) {
	w, b := id/64, id%64
	if int(w) >= len(s.words) {
		return
	}
	if s.words[w]&(1<<b) != 0 {
		s.words[w] &^= 1 << b
		s.count--
	}
}

// Contains reports whether id is in the set.
func (s *NodeSet) Contains(id NodeID) bool {
	w, b := id/64, id%64
	return int(w) < len(s.words) && s.words[w]&(1<<b) != 0
}

// Len returns the number of ids in the set.
func (s *NodeSet) Len() int { return s.count }

// Slice returns the members in increasing id order.
func (s *NodeSet) Slice() []NodeID {
	out := make([]NodeID, 0, s.count)
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, NodeID(wi*64+b))
			w &= w - 1
		}
	}
	return out
}

// Clone returns an independent copy of the set.
func (s *NodeSet) Clone() *NodeSet {
	c := &NodeSet{words: make([]uint64, len(s.words)), count: s.count}
	copy(c.words, s.words)
	return c
}
