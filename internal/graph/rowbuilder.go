package graph

import (
	"fmt"
	"slices"
)

// RowBuilder builds an unweighted graph directly in CSR form from edges
// that arrive grouped by ascending source node. Where Builder buffers
// every (src, dst) pair and globally sorts at Build time — ~24 bytes
// per edge plus an O(m log m) sort — RowBuilder appends each finished
// row straight into the out-CSR after a per-row sort+dedup: ~4 bytes
// per edge of steady-state memory and no global pass. This is the shape
// streaming generators produce (genweb emits pages in id order), which
// is what lets them write crawl-scale graphs the Builder couldn't hold.
//
// For row-grouped input the result is identical to Builder's: a global
// sort by (src, dst) of row-grouped edges equals per-row sorts, and
// dedup-within-row equals global dedup.
type RowBuilder struct {
	n      int
	next   NodeID // lowest source id AddRow will accept
	outOff []int64
	outAdj []NodeID
}

// NewRowBuilder returns a RowBuilder for a graph with numNodes nodes.
// Unlike Builder the node count is fixed up front: rows are keyed by
// source id and targets must already be in range.
func NewRowBuilder(numNodes int) *RowBuilder {
	b := &RowBuilder{n: numNodes}
	if numNodes > 0 {
		b.outOff = make([]int64, numNodes+1)
	}
	return b
}

// AddRow appends the complete out-edge row of node u. Rows must arrive
// in strictly ascending source order; skipped sources get empty rows.
// targets is sorted and deduplicated in place (callers reuse the slice
// across rows); self-loops are kept, out-of-range targets are errors.
func (b *RowBuilder) AddRow(u NodeID, targets []NodeID) error {
	if int(u) >= b.n {
		return fmt.Errorf("graph: row source %d out of range (n=%d)", u, b.n)
	}
	if u < b.next {
		return fmt.Errorf("graph: row for node %d arrived after node %d", u, b.next)
	}
	slices.Sort(targets)
	targets = slices.Compact(targets)
	if len(targets) > 0 && int(targets[len(targets)-1]) >= b.n {
		return fmt.Errorf("graph: row %d target %d out of range (n=%d)", u, targets[len(targets)-1], b.n)
	}
	for v := b.next; v < u; v++ {
		b.outOff[v+1] = b.outOff[v]
	}
	b.outAdj = append(b.outAdj, targets...)
	b.outOff[u+1] = int64(len(b.outAdj))
	b.next = u + 1
	return nil
}

// Build freezes the accumulated rows into a Graph, deriving the in-CSR
// with the parallel build. The RowBuilder must not be reused.
func (b *RowBuilder) Build() (*Graph, error) {
	if b.n == 0 {
		return nil, fmt.Errorf("graph: cannot build an empty graph")
	}
	for v := int(b.next); v < b.n; v++ {
		b.outOff[v+1] = b.outOff[v]
	}
	g := &Graph{n: b.n, outOff: b.outOff, outAdj: b.outAdj}
	if g.outAdj == nil {
		g.outAdj = []NodeID{}
	}
	buildIn(g)
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}
