package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("http://a.example/x")
	b := d.Intern("http://b.example/y")
	a2 := d.Intern("http://a.example/x")
	if a != a2 {
		t.Fatalf("re-intern changed id: %d vs %d", a, a2)
	}
	if a == b {
		t.Fatal("distinct names share an id")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "http://a.example/x" {
		t.Fatalf("Name(%d) = %q", a, d.Name(a))
	}
	if id, ok := d.Lookup("http://b.example/y"); !ok || id != b {
		t.Fatalf("Lookup = %d,%v", id, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing name")
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	for _, n := range []string{"x", "y", "z/with/slash", "päge"} {
		d.Intern(n)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadDictionary(&buf)
	if err != nil {
		t.Fatalf("ReadDictionary: %v", err)
	}
	if back.Len() != d.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), d.Len())
	}
	for i := 0; i < d.Len(); i++ {
		if back.Name(NodeID(i)) != d.Name(NodeID(i)) {
			t.Fatalf("name %d changed: %q vs %q", i, back.Name(NodeID(i)), d.Name(NodeID(i)))
		}
	}
}

func TestDictionaryWriteRejectsNewlines(t *testing.T) {
	d := NewDictionary()
	d.Intern("bad\nname")
	if _, err := d.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("newline in name accepted")
	}
}

func TestReadDictionaryRejectsDuplicates(t *testing.T) {
	if _, err := ReadDictionary(strings.NewReader("a\nb\na\n")); err == nil {
		t.Fatal("duplicate name accepted")
	}
}

func TestNamedEdgeGraph(t *testing.T) {
	g, d, err := NamedEdgeGraph([][2]string{
		{"a.com/1", "b.com/1"},
		{"a.com/1", "a.com/2"},
		{"b.com/1", "a.com/1"},
	})
	if err != nil {
		t.Fatalf("NamedEdgeGraph: %v", err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("graph %d/%d, want 3/3", g.NumNodes(), g.NumEdges())
	}
	a1, _ := d.Lookup("a.com/1")
	b1, _ := d.Lookup("b.com/1")
	if !g.HasEdge(a1, b1) || !g.HasEdge(b1, a1) {
		t.Fatal("edges missing")
	}
	if _, _, err := NamedEdgeGraph(nil); err == nil {
		t.Fatal("empty edge list accepted")
	}
}

func TestDomainOf(t *testing.T) {
	cases := map[string]string{
		"http://www.anu.edu.au/science/x.html": "www.anu.edu.au",
		"https://cs.umd.edu/":                  "cs.umd.edu",
		"cs.umd.edu/page":                      "cs.umd.edu",
		"plainhost":                            "plainhost",
	}
	for in, want := range cases {
		if got := DomainOf(in); got != want {
			t.Errorf("DomainOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGroupByDomain(t *testing.T) {
	d := NewDictionary()
	for _, n := range []string{"a.com/1", "a.com/2", "a.com/3", "b.com/1", "b.com/2", "c.com/1"} {
		d.Intern(n)
	}
	groups := d.GroupByDomain()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	if groups[0].Domain != "a.com" || len(groups[0].Pages) != 3 {
		t.Fatalf("largest group = %+v", groups[0])
	}
	if groups[2].Domain != "c.com" || len(groups[2].Pages) != 1 {
		t.Fatalf("smallest group = %+v", groups[2])
	}
}
