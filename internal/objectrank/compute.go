package objectrank

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Config carries the ObjectRank walk parameters. The zero value selects
// the customary settings (ε = 0.85, L1 tolerance 1e-5, ≤1000 iterations).
type Config struct {
	Epsilon       float64
	Tolerance     float64
	MaxIterations int
}

func (c *Config) fill() error {
	if c.Epsilon == 0 {
		c.Epsilon = numeric.DefaultDamping
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("objectrank: damping factor %v outside (0,1)", c.Epsilon)
	}
	if c.Tolerance == 0 {
		c.Tolerance = numeric.DefaultTolerance
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("objectrank: negative tolerance %v", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("objectrank: MaxIterations %d < 1", c.MaxIterations)
	}
	return nil
}

// Result is the outcome of an ObjectRank computation.
type Result struct {
	// Scores holds one score per object. Unlike PageRank these need not
	// sum to 1: authority leaks at objects whose total outgoing transfer
	// rate is below 1 (exact ObjectRank semantics).
	Scores     []float64
	Iterations int
	Converged  bool
	Elapsed    time.Duration
}

// Compute runs the exact ObjectRank fixpoint
//
//	r = ε·Aᵀ·r + (1−ε)·q
//
// where A carries the per-edge transfer weights (rate/outdeg-of-kind, NOT
// normalized to be stochastic) and q is the base-set distribution: 1/|B|
// on each object of baseSet, or uniform over all objects when baseSet is
// empty (global ObjectRank).
func Compute(d *DataGraph, baseSet []graph.NodeID, cfg Config) (*Result, error) {
	if d == nil || d.NumObjects() == 0 {
		return nil, fmt.Errorf("objectrank: empty data graph")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := d.NumObjects()
	q := make([]float64, n)
	if len(baseSet) == 0 {
		u := 1.0 / float64(n)
		for i := range q {
			q[i] = u
		}
	} else {
		share := 1.0 / float64(len(baseSet))
		for _, id := range baseSet {
			if int(id) >= n {
				return nil, fmt.Errorf("objectrank: base object %d out of range", id)
			}
			q[id] += share
		}
	}

	// Precompute per-edge weights grouped by source for the push sweep.
	out := make([][]outEdge, n)
	for _, e := range d.edges {
		w, err := d.transferWeight(e)
		if err != nil {
			return nil, err
		}
		out[e.from] = append(out[e.from], outEdge{e.to, w})
	}

	start := time.Now()
	cur := make([]float64, n)
	copy(cur, q)
	next := make([]float64, n)
	res := &Result{}
	eps := cfg.Epsilon
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		delta := pushSweep(next, cur, q, out, eps)
		cur, next = next, cur
		res.Iterations = iter
		if delta < cfg.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	res.Elapsed = time.Since(start)
	return res, nil
}

// outEdge is one precomputed transfer edge of the push sweep: target
// object and authority-transfer weight, grouped by source.
type outEdge struct {
	to graph.NodeID
	w  float64
}

// pushSweep computes one ObjectRank iteration,
//
//	next[v] = (1−eps)·q[v] + eps·Σ_{u→v} cur[u]·w(u→v),
//
// by pushing each object's scaled score along its precomputed out-edges,
// and returns the L1 delta to the previous iterate. Sources with no mass
// or no edges skip their row.
//
//arlint:hot
func pushSweep(next, cur, q []float64, out [][]outEdge, eps float64) float64 {
	n := len(next)
	for v := 0; v < n; v++ {
		next[v] = (1 - eps) * q[v]
	}
	for u := 0; u < n; u++ {
		if cur[u] == 0 || len(out[u]) == 0 {
			continue
		}
		xu := eps * cur[u]
		for _, e := range out[u] {
			next[e.to] += xu * e.w
		}
	}
	delta := 0.0
	for i := 0; i < n; i++ {
		delta += math.Abs(next[i] - cur[i])
	}
	return delta
}

// ComputeQuery is Compute seeded by the keyword base set of query. It
// returns an error when no object matches the query (an empty base set
// would silently compute the global ranking instead).
func ComputeQuery(d *DataGraph, query string, cfg Config) (*Result, error) {
	base := d.BaseSet(query)
	if len(base) == 0 {
		return nil, fmt.Errorf("objectrank: no objects match query %q", query)
	}
	return Compute(d, base, cfg)
}
