package objectrank

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

// dblpSchema builds the paper's Figure 2 style authority-transfer schema.
func dblpSchema(t testing.TB) *Schema {
	t.Helper()
	s := NewSchema()
	for _, ty := range []string{"paper", "author", "conference"} {
		if err := s.AddType(ty); err != nil {
			t.Fatalf("AddType(%s): %v", ty, err)
		}
	}
	add := func(from, to, label string, rate float64) {
		t.Helper()
		if err := s.AddTransfer(from, to, label, rate); err != nil {
			t.Fatalf("AddTransfer(%s,%s,%s): %v", from, to, label, err)
		}
	}
	add("paper", "paper", "cites", 0.7)
	add("paper", "author", "written-by", 0.2)
	add("paper", "conference", "published-in", 0.1)
	add("author", "paper", "writes", 1.0)
	add("conference", "paper", "publishes", 1.0)
	return s
}

func dblpData(t testing.TB) *DataGraph {
	t.Helper()
	d, err := NewDataGraph(dblpSchema(t))
	if err != nil {
		t.Fatalf("NewDataGraph: %v", err)
	}
	mustObj := func(name, ty string) graph.NodeID {
		t.Helper()
		id, err := d.AddObject(name, ty)
		if err != nil {
			t.Fatalf("AddObject(%s): %v", name, err)
		}
		return id
	}
	icde := mustObj("ICDE", "conference")
	vldb := mustObj("VLDB", "conference")
	alice := mustObj("Alice Liddell", "author")
	bob := mustObj("Bob Stone", "author")
	p1 := mustObj("ApproxRank subgraph ranking", "paper")
	p2 := mustObj("ObjectRank keyword search", "paper")
	p3 := mustObj("PageRank citation ranking", "paper")
	rel := func(u, v graph.NodeID, label string) {
		t.Helper()
		if err := d.AddRelation(u, v, label); err != nil {
			t.Fatalf("AddRelation(%s,%s): %v", d.Name(u), d.Name(v), err)
		}
	}
	rel(p1, p2, "cites")
	rel(p1, p3, "cites")
	rel(p2, p3, "cites")
	rel(p1, alice, "written-by")
	rel(p2, alice, "written-by")
	rel(p2, bob, "written-by")
	rel(p3, bob, "written-by")
	rel(alice, p1, "writes")
	rel(alice, p2, "writes")
	rel(bob, p2, "writes")
	rel(bob, p3, "writes")
	rel(p1, icde, "published-in")
	rel(p2, vldb, "published-in")
	rel(p3, vldb, "published-in")
	rel(icde, p1, "publishes")
	rel(vldb, p2, "publishes")
	rel(vldb, p3, "publishes")
	return d
}

func TestSchemaValidation(t *testing.T) {
	s := NewSchema()
	if err := s.AddType(""); err == nil {
		t.Error("empty type accepted")
	}
	if err := s.AddType("paper"); err != nil {
		t.Fatalf("AddType: %v", err)
	}
	if err := s.AddType("paper"); err == nil {
		t.Error("duplicate type accepted")
	}
	if err := s.AddTransfer("paper", "ghost", "cites", 0.5); err == nil {
		t.Error("unknown target type accepted")
	}
	if err := s.AddTransfer("ghost", "paper", "cites", 0.5); err == nil {
		t.Error("unknown source type accepted")
	}
	if err := s.AddTransfer("paper", "paper", "cites", 1.5); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := s.AddTransfer("paper", "paper", "", 0.5); err == nil {
		t.Error("empty label accepted")
	}
	if err := s.AddTransfer("paper", "paper", "cites", 0.7); err != nil {
		t.Fatalf("AddTransfer: %v", err)
	}
	if err := s.AddTransfer("paper", "paper", "cites", 0.7); err == nil {
		t.Error("duplicate transfer accepted")
	}
	if err := s.AddTransfer("paper", "paper", "extends", 0.7); err != nil {
		t.Fatalf("AddTransfer: %v", err)
	}
	// Total rate 1.4 > 1: Validate must reject.
	if err := s.Validate(); err == nil {
		t.Error("schema emitting 1.4 accepted")
	}
	if _, err := NewDataGraph(s); err == nil {
		t.Error("NewDataGraph accepted a divergent schema")
	}
}

func TestDataGraphConstruction(t *testing.T) {
	d := dblpData(t)
	if d.NumObjects() != 7 {
		t.Fatalf("NumObjects = %d, want 7", d.NumObjects())
	}
	id, ok := d.Lookup("VLDB")
	if !ok || d.TypeOf(id) != "conference" {
		t.Fatalf("Lookup(VLDB) = %d,%v type %s", id, ok, d.TypeOf(id))
	}
	if _, err := d.AddObject("VLDB", "conference"); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := d.AddObject("X", "ghost"); err == nil {
		t.Error("unknown type accepted")
	}
	p1, _ := d.Lookup("ApproxRank subgraph ranking")
	icde, _ := d.Lookup("ICDE")
	if err := d.AddRelation(icde, p1, "cites"); err == nil {
		t.Error("conference-cites-paper accepted (no such transfer)")
	}
	if err := d.AddRelation(99, p1, "cites"); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestBaseSet(t *testing.T) {
	d := dblpData(t)
	base := d.BaseSet("ranking")
	if len(base) != 2 { // two paper titles contain "ranking"
		t.Fatalf("BaseSet(ranking) = %v", base)
	}
	base = d.BaseSet("subgraph ranking")
	if len(base) != 1 {
		t.Fatalf("BaseSet(subgraph ranking) = %v", base)
	}
	if d.Name(base[0]) != "ApproxRank subgraph ranking" {
		t.Fatalf("wrong match %q", d.Name(base[0]))
	}
	if got := d.BaseSet("zebra"); got != nil {
		t.Fatalf("BaseSet(zebra) = %v", got)
	}
	if got := d.BaseSet(""); got != nil {
		t.Fatalf("BaseSet(empty) = %v", got)
	}
}

func TestObjectsOfTypes(t *testing.T) {
	d := dblpData(t)
	papers, err := d.ObjectsOfTypes("paper")
	if err != nil || len(papers) != 3 {
		t.Fatalf("ObjectsOfTypes(paper) = %v, %v", papers, err)
	}
	both, err := d.ObjectsOfTypes("paper", "author")
	if err != nil || len(both) != 5 {
		t.Fatalf("ObjectsOfTypes(paper,author) = %v, %v", both, err)
	}
	if _, err := d.ObjectsOfTypes("ghost"); err == nil {
		t.Error("unknown type accepted")
	}
}

// TestComputeGlobal: global ObjectRank converges, scores are positive,
// and the much-cited paper dominates the leaf paper.
func TestComputeGlobal(t *testing.T) {
	d := dblpData(t)
	res, err := Compute(d, nil, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	p1, _ := d.Lookup("ApproxRank subgraph ranking")
	p3, _ := d.Lookup("PageRank citation ranking")
	if !(res.Scores[p3] > res.Scores[p1]) {
		t.Errorf("cited paper %v should outrank citing paper %v", res.Scores[p3], res.Scores[p1])
	}
	for i, s := range res.Scores {
		if s <= 0 {
			t.Errorf("score[%d] = %v", i, s)
		}
	}
}

// TestQueryBiasesRanking: seeding at the "objectrank" paper raises its
// score relative to the global ranking.
func TestQueryBiasesRanking(t *testing.T) {
	d := dblpData(t)
	global, err := Compute(d, nil, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	q, err := ComputeQuery(d, "objectrank", Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("ComputeQuery: %v", err)
	}
	p2, _ := d.Lookup("ObjectRank keyword search")
	gSum, qSum := 0.0, 0.0
	for i := range global.Scores {
		gSum += global.Scores[i]
		qSum += q.Scores[i]
	}
	if !(q.Scores[p2]/qSum > global.Scores[p2]/gSum) {
		t.Errorf("query seeding did not bias the matching paper: %v vs %v",
			q.Scores[p2]/qSum, global.Scores[p2]/gSum)
	}
	if _, err := ComputeQuery(d, "zebra", Config{}); err == nil {
		t.Error("query with empty base set accepted")
	}
}

// TestAuthorityLeak: a paper-only chain with total out-rate < 1 leaks, so
// scores sum to less than 1 (exact ObjectRank semantics, unlike PageRank).
func TestAuthorityLeak(t *testing.T) {
	s := NewSchema()
	if err := s.AddType("paper"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransfer("paper", "paper", "cites", 0.7); err != nil {
		t.Fatal(err)
	}
	d, err := NewDataGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	var prev graph.NodeID
	for i := 0; i < 5; i++ {
		id, err := d.AddObject(string(rune('a'+i)), "paper")
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			if err := d.AddRelation(prev, id, "cites"); err != nil {
				t.Fatal(err)
			}
		}
		prev = id
	}
	res, err := Compute(d, nil, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sum := 0.0
	for _, sc := range res.Scores {
		sum += sc
	}
	if sum >= 1 {
		t.Errorf("scores sum to %v; expected leakage below 1", sum)
	}
}

// TestCalibratedMatchesPageRank: when every object's total outgoing
// transfer is exactly 1 and no object is dangling, exact ObjectRank
// equals PageRank on the authority graph with the base set as the
// personalization vector. This cross-validates the two engines.
func TestCalibratedMatchesPageRank(t *testing.T) {
	s := NewSchema()
	if err := s.AddType("page"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddTransfer("page", "page", "links", 1.0); err != nil {
		t.Fatal(err)
	}
	d, err := NewDataGraph(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := d.AddObject(string(rune('A'+i/26))+string(rune('a'+i%26)), "page"); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < n; u++ {
		deg := 1 + rng.Intn(4)
		for e := 0; e < deg; e++ {
			v := rng.Intn(n)
			if v == u {
				v = (v + 1) % n
			}
			if err := d.AddRelation(graph.NodeID(u), graph.NodeID(v), "links"); err != nil {
				t.Fatal(err)
			}
		}
	}
	or, err := Compute(d, nil, Config{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	ag, err := d.AuthorityGraph()
	if err != nil {
		t.Fatalf("AuthorityGraph: %v", err)
	}
	pr, err := pagerank.Compute(ag, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	for i := range or.Scores {
		if math.Abs(or.Scores[i]-pr.Scores[i]) > 1e-8 {
			t.Fatalf("object %d: ObjectRank %v vs PageRank %v", i, or.Scores[i], pr.Scores[i])
		}
	}
}

// TestSubgraphObjectRank: the Figure 3 scenario end to end — rank only
// the objects of interest with ApproxRank/IdealRank over the authority
// graph; IdealRank must reproduce the global weighted walk exactly.
func TestSubgraphObjectRank(t *testing.T) {
	d := dblpData(t)
	ag, err := d.AuthorityGraph()
	if err != nil {
		t.Fatalf("AuthorityGraph: %v", err)
	}
	local, err := d.ObjectsOfTypes("paper", "author")
	if err != nil {
		t.Fatalf("ObjectsOfTypes: %v", err)
	}
	sub, err := graph.NewSubgraph(ag, local)
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	global, err := pagerank.Compute(ag, pagerank.Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	ideal, err := core.IdealRank(sub, global.Scores, core.Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("IdealRank: %v", err)
	}
	for li, gid := range sub.Local {
		if math.Abs(ideal.Scores[li]-global.Scores[gid]) > 1e-8 {
			t.Fatalf("IdealRank deviates on %s", d.Name(gid))
		}
	}
	ap, err := core.ApproxRank(sub, core.Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	if len(ap.Scores) != len(local) {
		t.Fatalf("ApproxRank returned %d scores", len(ap.Scores))
	}
}

func TestComputeValidation(t *testing.T) {
	d := dblpData(t)
	if _, err := Compute(nil, nil, Config{}); err == nil {
		t.Error("nil data graph accepted")
	}
	if _, err := Compute(d, []graph.NodeID{999}, Config{}); err == nil {
		t.Error("out-of-range base object accepted")
	}
	if _, err := Compute(d, nil, Config{Epsilon: 2}); err == nil {
		t.Error("bad epsilon accepted")
	}
	if _, err := Compute(d, nil, Config{Tolerance: -1}); err == nil {
		t.Error("bad tolerance accepted")
	}
	if _, err := Compute(d, nil, Config{MaxIterations: -1}); err == nil {
		t.Error("bad MaxIterations accepted")
	}
}
