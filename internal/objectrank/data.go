package objectrank

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// DataGraph instantiates a Schema: typed objects connected by labelled
// relationships. Objects carry a name whose lower-cased whitespace-split
// terms form the keyword index for query base sets (ObjectRank seeds the
// walk at the objects matching the query keywords).
type DataGraph struct {
	schema *Schema

	names   []string
	types   []int
	byName  map[string]graph.NodeID
	keyword map[string][]graph.NodeID

	edges []dataEdge
	// outByKind[u][kind] = number of outgoing edges of u with that
	// (label, target type) kind — the ObjectRank denominator.
	outByKind []map[transferKey]int
}

type dataEdge struct {
	from, to graph.NodeID
	label    string
}

// NewDataGraph returns an empty data graph over schema.
func NewDataGraph(schema *Schema) (*DataGraph, error) {
	if schema == nil {
		return nil, fmt.Errorf("objectrank: nil schema")
	}
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &DataGraph{
		schema:  schema,
		byName:  make(map[string]graph.NodeID),
		keyword: make(map[string][]graph.NodeID),
	}, nil
}

// Schema returns the schema the data graph instantiates.
func (d *DataGraph) Schema() *Schema { return d.schema }

// AddObject registers a typed object and indexes its name's terms.
// Object names must be unique.
func (d *DataGraph) AddObject(name, typeName string) (graph.NodeID, error) {
	t, ok := d.schema.typeOf(typeName)
	if !ok {
		return 0, fmt.Errorf("objectrank: unknown type %q", typeName)
	}
	if name == "" {
		return 0, fmt.Errorf("objectrank: empty object name")
	}
	if _, dup := d.byName[name]; dup {
		return 0, fmt.Errorf("objectrank: object %q already exists", name)
	}
	id := graph.NodeID(len(d.names))
	d.names = append(d.names, name)
	d.types = append(d.types, t)
	d.byName[name] = id
	d.outByKind = append(d.outByKind, nil)
	for _, term := range strings.Fields(strings.ToLower(name)) {
		d.keyword[term] = append(d.keyword[term], id)
	}
	return id, nil
}

// AddRelation records a labelled edge between two objects. The label must
// carry a transfer rate for the endpoint types in the schema.
func (d *DataGraph) AddRelation(from, to graph.NodeID, label string) error {
	if int(from) >= len(d.names) || int(to) >= len(d.names) {
		return fmt.Errorf("objectrank: relation endpoints out of range")
	}
	ft, tt := d.types[from], d.types[to]
	if _, ok := d.schema.rate(ft, tt, label); !ok {
		return fmt.Errorf("objectrank: schema has no transfer %s -%s-> %s",
			d.schema.TypeName(ft), label, d.schema.TypeName(tt))
	}
	d.edges = append(d.edges, dataEdge{from, to, label})
	k := transferKey{ft, tt, label}
	if d.outByKind[from] == nil {
		d.outByKind[from] = make(map[transferKey]int)
	}
	d.outByKind[from][k]++
	return nil
}

// NumObjects returns the number of objects.
func (d *DataGraph) NumObjects() int { return len(d.names) }

// Name returns object id's name.
func (d *DataGraph) Name(id graph.NodeID) string { return d.names[id] }

// TypeOf returns object id's type name.
func (d *DataGraph) TypeOf(id graph.NodeID) string { return d.schema.TypeName(d.types[id]) }

// Lookup resolves an object by name.
func (d *DataGraph) Lookup(name string) (graph.NodeID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// BaseSet returns the objects whose names contain every query term
// (lower-cased exact term match) — ObjectRank's keyword base set.
func (d *DataGraph) BaseSet(query string) []graph.NodeID {
	terms := strings.Fields(strings.ToLower(query))
	if len(terms) == 0 {
		return nil
	}
	counts := make(map[graph.NodeID]int)
	for _, term := range terms {
		seen := make(map[graph.NodeID]bool)
		for _, id := range d.keyword[term] {
			if !seen[id] {
				seen[id] = true
				counts[id]++
			}
		}
	}
	var out []graph.NodeID
	for id, c := range counts {
		if c == len(terms) {
			out = append(out, id)
		}
	}
	sortNodeIDs(out)
	return out
}

// ObjectsOfTypes returns all objects whose type is among the given type
// names — the natural subgraph of a domain expert's interest (the paper's
// Figure 3 scenario).
func (d *DataGraph) ObjectsOfTypes(typeNames ...string) ([]graph.NodeID, error) {
	want := make(map[int]bool, len(typeNames))
	for _, tn := range typeNames {
		t, ok := d.schema.typeOf(tn)
		if !ok {
			return nil, fmt.Errorf("objectrank: unknown type %q", tn)
		}
		want[t] = true
	}
	var out []graph.NodeID
	for id, t := range d.types {
		if want[t] {
			out = append(out, graph.NodeID(id))
		}
	}
	return out, nil
}

// transferWeight returns the ObjectRank authority transferred along one
// concrete edge: rate(kind)/#edges-of-that-kind-from-u. A data edge whose
// kind has no authority-transfer rate in the schema is a modeling error:
// silently treating it as rate 0 would quietly starve every object behind
// it, so the mismatch is reported to the caller instead.
func (d *DataGraph) transferWeight(e dataEdge) (float64, error) {
	k := transferKey{d.types[e.from], d.types[e.to], e.label}
	rate, ok := d.schema.rate(k.from, k.to, e.label)
	if !ok {
		return 0, fmt.Errorf("objectrank: no authority transfer rate for edge kind %s-[%s]->%s",
			d.schema.TypeName(k.from), e.label, d.schema.TypeName(k.to))
	}
	return rate / float64(d.outByKind[e.from][k]), nil
}

// AuthorityGraph materializes the weighted authority-transfer graph: edge
// u→v carries weight rate/outdeg-of-kind. Parallel relations of the same
// kind merge (their weights sum back to the kind's total). The result
// plugs into the subgraph-ranking framework; note that graph-based walks
// normalize each node's outgoing weights to 1, so they match exact
// ObjectRank semantics precisely when every object's total outgoing
// transfer is 1 (see Compute for the unnormalized semantics).
func (d *DataGraph) AuthorityGraph() (*graph.Graph, error) {
	if len(d.names) == 0 {
		return nil, fmt.Errorf("objectrank: empty data graph")
	}
	b := graph.NewBuilder(len(d.names))
	for _, e := range d.edges {
		w, err := d.transferWeight(e)
		if err != nil {
			return nil, err
		}
		b.AddWeightedEdge(e.from, e.to, w)
	}
	return b.Build()
}

func sortNodeIDs(ids []graph.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
