// Package objectrank implements ObjectRank-style semantic ranking (Balmin
// et al., VLDB 2004) — the paper's Figure 2/3 motivation for ranking a
// subgraph. A schema graph assigns authority-transfer rates to typed
// relationships between entity sets (papers cite papers, authors write
// papers, venues publish papers, …); a data graph instantiates objects
// and relationships; ObjectRank scores are the fixpoint of the authority
// walk seeded by a query-specific base set.
//
// The package computes exact ObjectRank semantics (per-edge-type transfer
// rates, no stochastic normalization, authority may leak) and also
// exports the data graph as a weighted graph.Graph so the subgraph
// framework (core.ApproxRank / core.IdealRank) can rank a region of the
// data graph without scoring all of it — the scenario of the paper's
// Figure 3.
package objectrank

import "fmt"

// Schema is an authority-transfer schema graph: entity types plus typed
// transfer edges annotated with rates in [0, 1].
type Schema struct {
	typeIDs   map[string]int
	typeNames []string
	transfers map[transferKey]float64
}

type transferKey struct {
	from, to int
	label    string
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{typeIDs: make(map[string]int), transfers: make(map[transferKey]float64)}
}

// AddType registers an entity type. Re-adding an existing type is an
// error (it usually indicates a typo in schema construction).
func (s *Schema) AddType(name string) error {
	if name == "" {
		return fmt.Errorf("objectrank: empty type name")
	}
	if _, dup := s.typeIDs[name]; dup {
		return fmt.Errorf("objectrank: type %q already defined", name)
	}
	s.typeIDs[name] = len(s.typeNames)
	s.typeNames = append(s.typeNames, name)
	return nil
}

// AddTransfer annotates the typed relationship label from→to with an
// authority-transfer rate. A rate of 0.2 on (paper, author, "written-by")
// means each paper passes 20 % of its authority to its authors, split
// evenly among them.
func (s *Schema) AddTransfer(from, to, label string, rate float64) error {
	fi, ok := s.typeIDs[from]
	if !ok {
		return fmt.Errorf("objectrank: unknown source type %q", from)
	}
	ti, ok := s.typeIDs[to]
	if !ok {
		return fmt.Errorf("objectrank: unknown target type %q", to)
	}
	if rate < 0 || rate > 1 {
		return fmt.Errorf("objectrank: transfer rate %v outside [0,1]", rate)
	}
	if label == "" {
		return fmt.Errorf("objectrank: empty transfer label")
	}
	k := transferKey{fi, ti, label}
	if _, dup := s.transfers[k]; dup {
		return fmt.Errorf("objectrank: transfer %s -%s-> %s already defined", from, label, to)
	}
	s.transfers[k] = rate
	return nil
}

// NumTypes returns the number of registered types.
func (s *Schema) NumTypes() int { return len(s.typeNames) }

// TypeName returns the name of type id t.
func (s *Schema) TypeName(t int) string { return s.typeNames[t] }

// typeOf resolves a type name.
func (s *Schema) typeOf(name string) (int, bool) {
	t, ok := s.typeIDs[name]
	return t, ok
}

// rate returns the transfer rate for (from, to, label) and whether such a
// transfer is defined.
func (s *Schema) rate(from, to int, label string) (float64, bool) {
	r, ok := s.transfers[transferKey{from, to, label}]
	return r, ok
}

// TotalOutRate returns the maximum total transfer rate a node of the
// given type can emit: the sum of rates over its outgoing transfer kinds.
// Schemas with TotalOutRate ≤ 1 everywhere cannot amplify authority and
// guarantee the ObjectRank iteration converges for any ε < 1.
func (s *Schema) TotalOutRate(typeName string) (float64, error) {
	t, ok := s.typeOf(typeName)
	if !ok {
		return 0, fmt.Errorf("objectrank: unknown type %q", typeName)
	}
	sum := 0.0
	for k, r := range s.transfers {
		if k.from == t {
			sum += r
		}
	}
	return sum, nil
}

// Validate checks that every type's total outgoing transfer rate is at
// most 1 + slack (guaranteeing a contraction for ε < 1/(1+slack)).
func (s *Schema) Validate() error {
	for _, name := range s.typeNames {
		total, err := s.TotalOutRate(name)
		if err != nil {
			return err
		}
		if total > 1+1e-9 {
			return fmt.Errorf("objectrank: type %q emits total transfer rate %v > 1; the authority walk may diverge", name, total)
		}
	}
	return nil
}
