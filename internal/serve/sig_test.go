package serve

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestGraphSignatureMmapStable: the daemon's cache-versioning signature
// is identical whether a v2 graph was memory-mapped or copy-loaded —
// a warm disk cache written by one boot mode is valid in the other.
// Also pins that the v2 fast path actually fires (signature comes from
// the file, not an adjacency walk) by checking it against the graph's
// own FormatSignature.
func TestGraphSignatureMmapStable(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	n := 300
	b := graph.NewBuilder(n)
	for i := 0; i < 1800; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.v2")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	copied, err := graph.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := graph.MmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	sigCopied := GraphSignature(copied)
	sigMapped := GraphSignature(mapped)
	if sigCopied != sigMapped {
		t.Fatalf("signature differs across load modes: %x vs %x", sigCopied, sigMapped)
	}
	if fileSig, ok := mapped.FormatSignature(); !ok || fileSig != sigMapped {
		t.Fatalf("v2 fast path not taken: file sig %x/%v, GraphSignature %x", fileSig, ok, sigMapped)
	}
	// The in-memory original has no file signature and takes the walking
	// path — a different hash domain, but still deterministic.
	if GraphSignature(g) != GraphSignature(g) {
		t.Fatal("walking signature not deterministic")
	}
}
