// Package serve turns the ApproxRank library into a ranking-as-a-service
// daemon: a long-lived HTTP server that holds one preprocessed
// core.Context per global graph and answers subgraph-rank and hybrid
// search queries at high QPS with only local per-query cost — the
// paper's "preprocess the global graph once" argument, cached all the
// way to the network edge.
//
// Four cooperating mechanisms keep the serving path cheap and bounded:
//
//  1. an LRU cache of frozen, ready-to-iterate chain state keyed by
//     canonical subgraph identity (sorted node-ID hash, verified
//     exactly), so repeat queries skip NewApproxChainCtx entirely and
//     repeat queries under the same configuration skip the power
//     iteration too;
//  2. single-flight coalescing, so N concurrent requests for the same
//     uncached subgraph trigger one computation and share the result;
//  3. bounded admission — a semaphore-gated compute tier with a bounded
//     wait queue and per-request deadlines, answering 429/503 with
//     Retry-After under overload instead of melting;
//  4. a versioned on-disk score cache loaded at startup, so restarts are
//     warm (see disk.go for the consistency rules).
//
// Endpoints: POST /v1/rank (subgraph → scores; also accepts a batch of
// subgraphs served through core.RankManyCtx's partial-results contract),
// POST /v1/search (terms + subgraph → score-fused top-K), and GET
// /v1/stats (the counters in Stats).
package serve

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/search"
)

// Options configures a Server. Context is required; everything else has
// serving-grade defaults.
type Options struct {
	// Context is the preprocessed global graph (core.NewContext).
	Context *core.Context
	// Terms optionally holds one term bag per GLOBAL page (indexed by
	// page id), enabling /v1/search. nil disables the search endpoint.
	Terms [][]uint32
	// Rank carries the default rank parameters (epsilon, tolerance, max
	// iterations, parallelism). Requests may override epsilon, tolerance
	// and max iterations per call; Deadline is ignored in favor of the
	// request timeout below.
	Rank core.Config
	// CacheEntries bounds the LRU of cached subgraph entries. Default 128.
	CacheEntries int
	// MaxInFlight bounds concurrently running computations (admission
	// semaphore). Default core's parallel default (the CPU count).
	MaxInFlight int
	// MaxQueue bounds how many admitted requests may WAIT for a compute
	// token; beyond it requests are rejected with 429. Default
	// 4×MaxInFlight.
	MaxQueue int
	// RequestTimeout is the default per-request compute budget (queue
	// wait included). Default 10s.
	RequestTimeout time.Duration
	// MaxTimeout caps a request-supplied timeout_ms. Default 30s.
	MaxTimeout time.Duration
	// MaxBatch bounds the number of subgraphs in one batch request.
	// Default 256.
	MaxBatch int
	// DiskCache is the path of the persistent score cache ("" disables).
	// The Server never writes it implicitly — call SaveDiskCache (e.g.
	// on shutdown) and LoadDiskCache (at startup).
	DiskCache string
	// BaseContext, when non-nil, parents every computation's context, so
	// cancelling it drains the compute tier. Default context.Background —
	// computations are NOT tied to any single request's context, because
	// coalesced waiters share them.
	BaseContext context.Context
}

// flight is one in-progress computation that concurrent identical
// requests coalesce onto. res/err are written under the server mutex
// before done is closed and read under it after.
type flight struct {
	ids    []graph.NodeID
	cfgKey string
	done   chan struct{}
	res    *core.Result
	err    error
}

// Server is the ranking daemon's HTTP surface. All mutable state (LRU
// cache, in-flight table, counters) is guarded by one mutex; the
// computations themselves run outside it.
type Server struct {
	gctx       *core.Context
	terms      [][]uint32
	rank       core.Config
	defTimeout time.Duration
	maxTimeout time.Duration
	maxBatch   int
	diskPath   string
	sig        uint64
	base       context.Context
	adm        *admission
	mux        *http.ServeMux

	mu      sync.Mutex
	cache   *lruCache
	flights map[uint64][]*flight
	stats   Stats
	// computeHook, when set (tests only), runs inside each computation
	// while it holds its admission token, before the iteration starts —
	// the seam the load-shaped tests use to observe coalescing and
	// admission deterministically.
	computeHook func()
}

// NewServer validates opts and builds the daemon (without loading the
// disk cache — call LoadDiskCache explicitly so callers can log it).
func NewServer(opts Options) (*Server, error) {
	if opts.Context == nil {
		return nil, fmt.Errorf("serve: nil core context")
	}
	if opts.Terms != nil && len(opts.Terms) != opts.Context.Graph().NumNodes() {
		return nil, fmt.Errorf("serve: %d term bags for %d pages", len(opts.Terms), opts.Context.Graph().NumNodes())
	}
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 128
	}
	if opts.CacheEntries < 1 {
		return nil, fmt.Errorf("serve: CacheEntries %d < 1", opts.CacheEntries)
	}
	if opts.MaxInFlight == 0 {
		opts.MaxInFlight = defaultInFlight()
	}
	if opts.MaxInFlight < 1 {
		return nil, fmt.Errorf("serve: MaxInFlight %d < 1", opts.MaxInFlight)
	}
	if opts.MaxQueue == 0 {
		opts.MaxQueue = 4 * opts.MaxInFlight
	}
	if opts.MaxQueue < 0 {
		return nil, fmt.Errorf("serve: negative MaxQueue %d", opts.MaxQueue)
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 10 * time.Second
	}
	if opts.MaxTimeout == 0 {
		opts.MaxTimeout = 30 * time.Second
	}
	if opts.RequestTimeout < 0 || opts.MaxTimeout < 0 {
		return nil, fmt.Errorf("serve: negative timeout")
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 256
	}
	if opts.BaseContext == nil {
		opts.BaseContext = context.Background()
	}
	s := &Server{
		gctx:       opts.Context,
		terms:      opts.Terms,
		rank:       opts.Rank,
		defTimeout: opts.RequestTimeout,
		maxTimeout: opts.MaxTimeout,
		maxBatch:   opts.MaxBatch,
		diskPath:   opts.DiskCache,
		sig:        GraphSignature(opts.Context.Graph()),
		base:       opts.BaseContext,
		adm:        newAdmission(opts.MaxInFlight, opts.MaxQueue),
		cache:      newLRU(opts.CacheEntries),
		flights:    make(map[uint64][]*flight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/rank", s.handleRank)
	s.mux.HandleFunc("POST /v1/search", s.handleSearch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsSnapshotLocked()
}

// cfgKey canonicalizes the parameters that select a converged result.
// Deadline and Parallelism are deliberately excluded: a result that
// converged under any deadline is valid under every other, and the
// worker count only reassociates floating-point sums within the
// convergence tolerance.
func cfgKey(cfg core.Config) string {
	return strconv.FormatFloat(cfg.Epsilon, 'g', -1, 64) + ";" +
		strconv.FormatFloat(cfg.Tolerance, 'g', -1, 64) + ";" +
		strconv.Itoa(cfg.MaxIterations)
}

// rankScores answers one subgraph-rank query through the full serving
// path: result cache → in-flight coalescing → admission-gated
// computation. It returns the converged result, the canonical ids, and
// whether the answer came straight from cache.
func (s *Server) rankScores(reqCtx context.Context, ids []graph.NodeID, cfg core.Config) (*core.Result, bool, error) {
	h := hashIDs(ids)
	key := cfgKey(cfg)
	s.mu.Lock()
	if e, ok := s.cache.get(h, ids); ok {
		if res, ok2 := e.results[key]; ok2 {
			s.stats.ResultHits++
			s.mu.Unlock()
			return res, true, nil
		}
	}
	fl := s.matchFlightLocked(h, ids, key)
	if fl != nil {
		s.stats.CoalescedWaits++
		s.mu.Unlock()
	} else {
		fl = &flight{ids: ids, cfgKey: key, done: make(chan struct{})}
		s.flights[h] = append(s.flights[h], fl)
		s.mu.Unlock()
		go s.runFlight(fl, h, cfg)
	}
	select {
	case <-fl.done:
	case <-reqCtx.Done():
		// This request's budget expired while the shared computation was
		// still running; the computation itself continues for the others.
		return nil, false, reqCtx.Err()
	}
	s.mu.Lock()
	res, err := fl.res, fl.err
	s.mu.Unlock()
	return res, false, err
}

// matchFlightLocked finds an in-flight computation for the exact
// identity and configuration. Caller holds s.mu.
func (s *Server) matchFlightLocked(h uint64, ids []graph.NodeID, key string) *flight {
	for _, fl := range s.flights[h] {
		if fl.cfgKey == key && idsEqual(fl.ids, ids) {
			return fl
		}
	}
	return nil
}

// runFlight executes one coalesced computation and publishes its outcome:
// result and in-flight removal commit atomically under the mutex, then
// done is closed — so a request can never miss both the flight and the
// cached result.
func (s *Server) runFlight(fl *flight, h uint64, cfg core.Config) {
	res, err := s.compute(fl.ids, h, fl.cfgKey, cfg)
	s.mu.Lock()
	fl.res, fl.err = res, err
	bucket := s.flights[h]
	for i, b := range bucket {
		if b == fl {
			bucket[i] = bucket[len(bucket)-1]
			s.flights[h] = bucket[:len(bucket)-1]
			break
		}
	}
	if len(s.flights[h]) == 0 {
		delete(s.flights, h)
	}
	s.mu.Unlock()
	close(fl.done)
}

// compute runs one admission-gated power iteration, reusing the cached
// frozen chain when present and caching chain + result on success. The
// request budget (cfg.Deadline) covers the queue wait AND the iteration:
// the context carrying it is derived here, before acquire, and RunCtx
// inherits whatever remains of it.
func (s *Server) compute(ids []graph.NodeID, h uint64, key string, cfg core.Config) (*core.Result, error) {
	ctx := s.base
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(s.base, cfg.Deadline)
		defer cancel()
		cfg.Deadline = 0 // budget already carried by ctx; don't restart it at RunCtx
	}
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()

	s.mu.Lock()
	s.stats.InFlight++
	hook := s.computeHook
	var chain *core.ExtendedChain
	var sub *graph.Subgraph
	if e, ok := s.cache.get(h, ids); ok && e.chain != nil {
		chain, sub = e.chain, e.sub
		s.stats.ChainHits++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.stats.InFlight--
		s.mu.Unlock()
	}()
	if hook != nil {
		hook()
	}

	if chain == nil {
		var err error
		sub, err = graph.NewSubgraph(s.gctx.Graph(), ids)
		if err != nil {
			return nil, badRequest(err)
		}
		chain, err = core.NewApproxChainCtx(s.gctx, sub)
		if err != nil {
			return nil, badRequest(err)
		}
	}

	s.mu.Lock()
	s.stats.Computations++
	s.mu.Unlock()
	res, err := chain.RunCtx(ctx, cfg)
	if err != nil {
		return nil, err
	}
	s.storeResult(ids, h, key, sub, chain, res)
	return res, nil
}

// storeResult caches a converged result (and the frozen chain behind it)
// under the canonical identity, creating or refreshing the LRU entry.
func (s *Server) storeResult(ids []graph.NodeID, h uint64, key string, sub *graph.Subgraph, chain *core.ExtendedChain, res *core.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(h, ids)
	if !ok {
		e = &entry{
			hash:    h,
			ids:     ids,
			results: make(map[string]*core.Result),
			engines: make(map[string]*search.Engine),
		}
		s.stats.Evictions += int64(s.cache.add(e))
	}
	if e.chain == nil {
		e.chain, e.sub = chain, sub
	}
	e.results[key] = res
}

// searchEngine returns (building and caching if needed) the search
// engine for a ranked subgraph: the index over the subgraph's term bags
// fused with the configuration's converged scores.
func (s *Server) searchEngine(ids []graph.NodeID, key string, res *core.Result) (*search.Engine, error) {
	h := hashIDs(ids)
	s.mu.Lock()
	e, ok := s.cache.get(h, ids)
	var eng *search.Engine
	var sub *graph.Subgraph
	if ok {
		eng = e.engines[key]
		sub = e.sub
	}
	s.mu.Unlock()
	if eng != nil {
		return eng, nil
	}
	if sub == nil {
		// Disk-warm entry (or evicted between rank and search): rebuild
		// the subgraph shell; the scores themselves stay cached.
		var err error
		sub, err = graph.NewSubgraph(s.gctx.Graph(), ids)
		if err != nil {
			return nil, badRequest(err)
		}
	}
	localTerms := make([][]uint32, sub.N())
	for li, gid := range sub.Local {
		localTerms[li] = s.terms[gid]
	}
	eng, err := search.NewEngine(sub, localTerms, res.Scores)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.EnginesBuilt++
	if e2, ok2 := s.cache.get(h, ids); ok2 {
		if e2.sub == nil {
			e2.sub = sub
		}
		e2.engines[key] = eng
	}
	s.mu.Unlock()
	return eng, nil
}

// rankBatch serves a batch of subgraphs through core.RankManyCtx's
// bounded worker tier under one admission token. Items that fail
// validation are answered per-item; a mid-batch failure cancels the
// remainder (the library's fail-fast contract) but the survivors —
// chains that completed before the poison — are still served and cached,
// which is exactly what the partial-results slice exists for.
func (s *Server) rankBatch(items [][]uint32, cfg core.Config) ([]*core.Result, []error, error) {
	results := make([]*core.Result, len(items))
	errs := make([]error, len(items))
	idLists := make([][]graph.NodeID, len(items))
	subs := make([]*graph.Subgraph, 0, len(items))
	backMap := make([]int, 0, len(items))
	numNodes := s.gctx.Graph().NumNodes()
	for i, nodes := range items {
		ids, err := canonicalIDs(nodes, numNodes)
		if err != nil {
			errs[i] = err
			continue
		}
		sub, err := graph.NewSubgraph(s.gctx.Graph(), ids)
		if err != nil {
			errs[i] = badRequest(err)
			continue
		}
		idLists[i] = ids
		subs = append(subs, sub)
		backMap = append(backMap, i)
	}

	var batchErr error
	if len(subs) > 0 {
		ctx := s.base
		if cfg.Deadline > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(s.base, cfg.Deadline)
			defer cancel()
			cfg.Deadline = 0
		}
		if err := s.adm.acquire(ctx); err != nil {
			return nil, nil, err
		}
		defer s.adm.release()
		var partial []*core.Result
		partial, batchErr = core.RankManyCtx(ctx, s.gctx, subs, cfg, s.rank.Parallelism)
		key := cfgKey(cfg)
		for bi, res := range partial {
			i := backMap[bi]
			if res == nil {
				continue
			}
			results[i] = res
			// Batch survivors warm the same cache the single-query path
			// reads, chains excluded (RankManyCtx owns and discards them).
			s.storeResult(idLists[i], hashIDs(idLists[i]), key, subs[bi], nil, res)
		}
		for bi := range partial {
			if partial[bi] == nil && errs[backMap[bi]] == nil {
				errs[backMap[bi]] = batchErr
			}
		}
	}

	s.mu.Lock()
	for i := range items {
		if results[i] != nil {
			s.stats.BatchChainsRun++
		} else {
			s.stats.BatchChainsFailed++
		}
	}
	s.mu.Unlock()
	return results, errs, nil
}

// defaultInFlight admits one computation per schedulable CPU: the
// chains are CPU-bound, so more in-flight work than threads only adds
// contention (the same cap core.RankMany applies to its workers).
func defaultInFlight() int {
	if n := pagerank.DefaultParallelism(); n > 1 {
		return n
	}
	return 1
}
