package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testWeb generates the shared synthetic corpus: a small global graph
// with term bags, deterministic per seed.
func testWeb(t *testing.T, pages int, seed int64) (*gen.Dataset, [][]uint32) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Pages: pages, Domains: 4, Topics: 4, Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	terms, err := gen.AssignTerms(ds, gen.TermConfig{Seed: seed + 1})
	if err != nil {
		t.Fatalf("AssignTerms: %v", err)
	}
	return ds, terms
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(opts)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// post sends one JSON request and decodes the JSON response into out
// (when out != nil), returning the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response: %v", err)
		}
	}
	return resp.StatusCode
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func pagesOf(ds *gen.Dataset, domain, n int) []uint32 {
	ids := ds.DomainPages(domain)
	if len(ids) > n {
		ids = ids[:n]
	}
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}

// TestRankCacheHitMiss: the first query computes, the repeat is a free
// cache hit, and the scores match the library run exactly.
func TestRankCacheHitMiss(t *testing.T) {
	ds, _ := testWeb(t, 400, 1)
	gctx := core.NewContext(ds.Graph)
	s, hs := newTestServer(t, Options{Context: gctx})
	nodes := pagesOf(ds, 0, 20)

	var first rankResult
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes}, &first); code != http.StatusOK {
		t.Fatalf("first rank: status %d", code)
	}
	if first.Cached || !first.Converged {
		t.Fatalf("first rank: cached=%v converged=%v", first.Cached, first.Converged)
	}
	var second rankResult
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes}, &second); code != http.StatusOK {
		t.Fatalf("second rank: status %d", code)
	}
	if !second.Cached {
		t.Error("repeat query not served from cache")
	}
	// Requests with the same set in another order share the entry.
	shuffled := append([]uint32{}, nodes...)
	shuffled[0], shuffled[len(shuffled)-1] = shuffled[len(shuffled)-1], shuffled[0]
	shuffled = append(shuffled, nodes[0]) // and a duplicate
	var third rankResult
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: shuffled}, &third); code != http.StatusOK {
		t.Fatalf("shuffled rank: status %d", code)
	}
	if !third.Cached {
		t.Error("canonicalized repeat not served from cache")
	}

	st := s.Stats()
	if st.Computations != 1 || st.Misses != 1 || st.ResultHits != 2 {
		t.Errorf("stats = %+v, want 1 computation, 1 miss, 2 hits", st)
	}

	// The served scores are the library's, bit for bit.
	sub, err := graph.NewSubgraph(ds.Graph, func() []graph.NodeID {
		ids := make([]graph.NodeID, len(nodes))
		for i, v := range nodes {
			ids[i] = graph.NodeID(v)
		}
		return ids
	}())
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	want, err := core.ApproxRankCtx(gctx, sub, core.Config{})
	if err != nil {
		t.Fatalf("ApproxRankCtx: %v", err)
	}
	if len(first.Scores) != len(want.Scores) {
		t.Fatalf("got %d scores, want %d", len(first.Scores), len(want.Scores))
	}
	for i := range want.Scores {
		if first.Scores[i] != want.Scores[i] {
			t.Fatalf("score %d: served %v, library %v", i, first.Scores[i], want.Scores[i])
		}
	}
}

// TestCoalescingLoadShape is the load-shaped acceptance test: M
// identical concurrent requests for one uncached subgraph must trigger
// exactly 1 computation with M−1 coalesced waits — observed through the
// stats endpoint, not timing.
func TestCoalescingLoadShape(t *testing.T) {
	ds, _ := testWeb(t, 400, 2)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})

	const m = 8
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	s.computeHook = func() {
		once.Do(func() { close(started) })
		<-release
	}

	nodes := pagesOf(ds, 1, 16)
	var wg sync.WaitGroup
	codes := make([]int, m)
	results := make([]rankResult, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes}, &results[i])
		}(i)
	}
	// The leader is inside the (blocked) computation; wait until every
	// other request has registered as a coalesced waiter, then let the
	// single computation finish.
	<-started
	waitFor(t, "M-1 coalesced waiters", func() bool {
		return s.Stats().CoalescedWaits == m-1
	})
	close(release)
	wg.Wait()

	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	for i := 1; i < m; i++ {
		if len(results[i].Scores) != len(results[0].Scores) {
			t.Fatalf("request %d: %d scores vs %d", i, len(results[i].Scores), len(results[0].Scores))
		}
		for j := range results[0].Scores {
			if results[i].Scores[j] != results[0].Scores[j] {
				t.Fatalf("request %d: coalesced scores differ at %d", i, j)
			}
		}
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Errorf("computations = %d, want exactly 1", st.Computations)
	}
	if st.CoalescedWaits != m-1 {
		t.Errorf("coalesced_waits = %d, want %d", st.CoalescedWaits, m-1)
	}
	if st.Misses != 1 || st.ResultHits != 0 {
		t.Errorf("stats = %+v, want 1 miss and 0 hits", st)
	}
}

// TestAdmissionRejection: with a one-slot semaphore and no wait queue, a
// second computation is rejected with 429 and Retry-After while the
// first still runs.
func TestAdmissionRejection(t *testing.T) {
	ds, _ := testWeb(t, 400, 3)
	s, hs := newTestServer(t, Options{
		Context:     core.NewContext(ds.Graph),
		MaxInFlight: 1,
		MaxQueue:    -0, // 0 would default; use explicit below
	})
	// MaxQueue 0 defaults to 4×inflight in NewServer; rebuild with an
	// explicitly tiny queue through the admission gate directly.
	s.adm = newAdmission(1, 0)

	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{})
	s.computeHook = func() {
		once.Do(func() { close(started) })
		<-release
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var codeA int
	go func() {
		defer wg.Done()
		codeA = post(t, hs.URL+"/v1/rank", rankRequest{Nodes: pagesOf(ds, 0, 12)}, nil)
	}()
	<-started

	buf, _ := json.Marshal(rankRequest{Nodes: pagesOf(ds, 1, 12)})
	resp, err := http.Post(hs.URL+"/v1/rank", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overloaded request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	wg.Wait()
	if codeA != http.StatusOK {
		t.Errorf("admitted request: status %d", codeA)
	}
	st := s.Stats()
	if st.AdmissionRejected != 1 {
		t.Errorf("admission_rejected = %d, want 1", st.AdmissionRejected)
	}
	if st.InFlight != 0 {
		t.Errorf("in_flight = %d after drain, want 0", st.InFlight)
	}
}

// TestDeadline503: a request whose budget expires before the power
// iteration can run fails with 503, and the failure is not cached. The
// compute hook stalls the computation well past the 30ms budget (small
// chains otherwise hit an exact fixed point long before any realistic
// deadline).
func TestDeadline503(t *testing.T) {
	ds, _ := testWeb(t, 400, 4)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})
	s.computeHook = func() { time.Sleep(500 * time.Millisecond) }
	req := rankRequest{
		Nodes:     pagesOf(ds, 2, 16),
		TimeoutMS: 30,
	}
	buf, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/rank", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	st := s.Stats()
	if st.DeadlineFailures < 1 {
		t.Errorf("deadline_failures = %d, want >= 1", st.DeadlineFailures)
	}
	if st.CacheEntries != 0 {
		t.Errorf("failed computation was cached: %d entries", st.CacheEntries)
	}
}

// TestLRUEviction: a one-entry cache evicts on every new subgraph, so an
// A-B-A pattern recomputes A.
func TestLRUEviction(t *testing.T) {
	ds, _ := testWeb(t, 400, 5)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph), CacheEntries: 1})
	a := pagesOf(ds, 0, 10)
	b := pagesOf(ds, 1, 10)
	for _, nodes := range [][]uint32{a, b, a} {
		if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes}, nil); code != http.StatusOK {
			t.Fatalf("rank: status %d", code)
		}
	}
	st := s.Stats()
	if st.Computations != 3 || st.Misses != 3 || st.ResultHits != 0 {
		t.Errorf("stats = %+v, want 3 computations/misses and 0 hits", st)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1", st.CacheEntries)
	}
}

// TestDiskCacheWarmRestart is the restart half of the acceptance test: a
// repeat request against a fresh server with the disk cache present is a
// warm hit — answered without any power iteration.
func TestDiskCacheWarmRestart(t *testing.T) {
	ds, _ := testWeb(t, 400, 6)
	path := filepath.Join(t.TempDir(), "cache.gob")
	nodes := pagesOf(ds, 3, 14)

	s1, hs1 := newTestServer(t, Options{Context: core.NewContext(ds.Graph), DiskCache: path})
	var cold rankResult
	if code := post(t, hs1.URL+"/v1/rank", rankRequest{Nodes: nodes}, &cold); code != http.StatusOK {
		t.Fatalf("cold rank: status %d", code)
	}
	if err := s1.SaveDiskCache(); err != nil {
		t.Fatalf("SaveDiskCache: %v", err)
	}

	// "Restart": a brand-new server over the same graph and cache file.
	s2, hs2 := newTestServer(t, Options{Context: core.NewContext(ds.Graph), DiskCache: path})
	n, err := s2.LoadDiskCache()
	if err != nil {
		t.Fatalf("LoadDiskCache: %v", err)
	}
	if n != 1 {
		t.Fatalf("loaded %d entries, want 1", n)
	}
	var warm rankResult
	if code := post(t, hs2.URL+"/v1/rank", rankRequest{Nodes: nodes}, &warm); code != http.StatusOK {
		t.Fatalf("warm rank: status %d", code)
	}
	if !warm.Cached {
		t.Error("restart query not served from the disk-warmed cache")
	}
	st := s2.Stats()
	if st.Computations != 0 || st.Misses != 0 {
		t.Errorf("warm restart ran a power iteration: %+v", st)
	}
	if st.ResultHits != 1 || st.DiskEntriesLoaded != 1 {
		t.Errorf("stats = %+v, want 1 result hit from 1 disk entry", st)
	}
	for i := range cold.Scores {
		if warm.Scores[i] != cold.Scores[i] {
			t.Fatalf("score %d differs across restart: %v vs %v", i, warm.Scores[i], cold.Scores[i])
		}
	}

	// A server over a DIFFERENT graph must reject the file as stale.
	ds2, _ := testWeb(t, 400, 7)
	s3, err := NewServer(Options{Context: core.NewContext(ds2.Graph), DiskCache: path})
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	if n, err := s3.LoadDiskCache(); err != nil || n != 0 {
		t.Errorf("stale-graph load: n=%d err=%v, want 0 entries", n, err)
	}
}

// TestSearchEndpoint: hybrid ranked search over a cached subgraph; the
// engine is built once and reused.
func TestSearchEndpoint(t *testing.T) {
	ds, terms := testWeb(t, 800, 8)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph), Terms: terms})
	nodes := pagesOf(ds, 0, 60)

	// Probe the most common term within the subgraph so the query has
	// matches.
	counts := map[uint32]int{}
	var probe uint32
	best := 0
	for _, v := range nodes {
		for _, tm := range terms[v] {
			counts[tm]++
			if counts[tm] > best {
				best, probe = counts[tm], tm
			}
		}
	}
	if best == 0 {
		t.Fatal("no terms in test subgraph")
	}

	var r1 searchResponse
	if code := post(t, hs.URL+"/v1/search", searchRequest{Nodes: nodes, Terms: []uint32{probe}, K: 5}, &r1); code != http.StatusOK {
		t.Fatalf("search: status %d", code)
	}
	if len(r1.Hits) == 0 || r1.Matches != best {
		t.Fatalf("search: %d hits, %d matches (want %d matches)", len(r1.Hits), r1.Matches, best)
	}
	if len(r1.Hits) > 5 {
		t.Fatalf("k=5 returned %d hits", len(r1.Hits))
	}
	member := map[uint32]bool{}
	for _, v := range nodes {
		member[v] = true
	}
	for i, h := range r1.Hits {
		if !member[h.Page] {
			t.Errorf("hit %d outside the subgraph", h.Page)
		}
		if i > 0 && h.Score > r1.Hits[i-1].Score {
			t.Error("hits not score-descending")
		}
	}

	var r2 searchResponse
	if code := post(t, hs.URL+"/v1/search", searchRequest{Nodes: nodes, Terms: []uint32{probe}, K: 5}, &r2); code != http.StatusOK {
		t.Fatalf("repeat search: status %d", code)
	}
	if !r2.Cached {
		t.Error("repeat search did not reuse the cached rank")
	}
	st := s.Stats()
	if st.EnginesBuilt != 1 {
		t.Errorf("engines_built = %d, want 1 (engine must be reused)", st.EnginesBuilt)
	}
	if st.Computations != 1 || st.SearchRequests != 2 {
		t.Errorf("stats = %+v, want 1 computation over 2 search requests", st)
	}
}

// TestBatchPartialResults: a poisoned batch item fails alone; the
// survivors are served and warm the cache for the single-query path.
func TestBatchPartialResults(t *testing.T) {
	ds, _ := testWeb(t, 400, 9)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})
	whole := make([]uint32, ds.Graph.NumNodes())
	for i := range whole {
		whole[i] = uint32(i)
	}
	items := [][]uint32{pagesOf(ds, 0, 10), whole, pagesOf(ds, 1, 10)}

	var resp struct {
		Results []batchItem `json:"results"`
	}
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Subgraphs: items}, &resp); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("batch returned %d items", len(resp.Results))
	}
	if resp.Results[0].Result == nil || resp.Results[2].Result == nil {
		t.Fatalf("survivors not served: %+v", resp.Results)
	}
	if resp.Results[1].Error == "" || resp.Results[1].Result != nil {
		t.Fatalf("poisoned item not failed: %+v", resp.Results[1])
	}
	st := s.Stats()
	if st.BatchChainsRun != 2 || st.BatchChainsFailed != 1 {
		t.Errorf("stats = %+v, want 2 run / 1 failed", st)
	}

	// The batch warmed the result cache: a single query for a survivor
	// is a free hit.
	var single rankResult
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: items[0]}, &single); code != http.StatusOK {
		t.Fatalf("post-batch rank: status %d", code)
	}
	if !single.Cached {
		t.Error("batch survivor not cached for the single-query path")
	}
	if s.Stats().Computations != 0 {
		t.Errorf("single-query path recomputed a batch survivor")
	}
}

// TestValidation covers the 4xx surface.
func TestValidation(t *testing.T) {
	ds, _ := testWeb(t, 400, 10)
	_, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})

	cases := []struct {
		name string
		body any
		want int
	}{
		{"empty body", rankRequest{}, http.StatusBadRequest},
		{"both nodes and subgraphs", rankRequest{Nodes: []uint32{1}, Subgraphs: [][]uint32{{2}}}, http.StatusBadRequest},
		{"node out of range", rankRequest{Nodes: []uint32{0, 400}}, http.StatusBadRequest},
		{"whole graph", rankRequest{Nodes: func() []uint32 {
			v := make([]uint32, 400)
			for i := range v {
				v[i] = uint32(i)
			}
			return v
		}()}, http.StatusBadRequest},
		{"bad epsilon", rankRequest{Nodes: []uint32{1, 2}, Epsilon: 1.5}, http.StatusBadRequest},
		{"negative timeout", rankRequest{Nodes: []uint32{1, 2}, TimeoutMS: -1}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := post(t, hs.URL+"/v1/rank", tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// Malformed JSON.
	resp, err := http.Post(hs.URL+"/v1/rank", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}

	// Method enforcement.
	getResp, err := http.Get(hs.URL + "/v1/rank")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/rank: status %d, want 405", getResp.StatusCode)
	}

	// Search without a term corpus is a client-visible config error.
	if code := post(t, hs.URL+"/v1/search", searchRequest{Nodes: []uint32{1, 2}, Terms: []uint32{1}}, nil); code != http.StatusBadRequest {
		t.Errorf("search without corpus: status %d, want 400", code)
	}

	// Stats endpoint answers GET only.
	stResp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var st Stats
	if err := json.NewDecoder(stResp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	stResp.Body.Close()
}

// TestChainReuseAcrossConfigs: a second configuration for a cached
// subgraph reuses the frozen chain (no rebuild) but runs its own
// iteration.
func TestChainReuseAcrossConfigs(t *testing.T) {
	ds, _ := testWeb(t, 400, 11)
	s, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})
	nodes := pagesOf(ds, 2, 12)
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes}, nil); code != http.StatusOK {
		t.Fatalf("rank: status %d", code)
	}
	if code := post(t, hs.URL+"/v1/rank", rankRequest{Nodes: nodes, Tolerance: 1e-8}, nil); code != http.StatusOK {
		t.Fatalf("rank (tighter tolerance): status %d", code)
	}
	st := s.Stats()
	if st.Misses != 1 || st.ChainHits != 1 || st.Computations != 2 {
		t.Errorf("stats = %+v, want 1 miss + 1 chain hit over 2 computations", st)
	}
	if st.CacheEntries != 1 {
		t.Errorf("cache_entries = %d, want 1 (one subgraph, two configs)", st.CacheEntries)
	}
}

// TestStatsEndpointShape: the JSON field names are the dashboard
// contract; keep them stable.
func TestStatsEndpointShape(t *testing.T) {
	ds, _ := testWeb(t, 400, 12)
	_, hs := newTestServer(t, Options{Context: core.NewContext(ds.Graph)})
	resp, err := http.Get(hs.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, field := range []string{
		"rank_requests", "search_requests", "batch_requests",
		"result_hits", "chain_hits", "misses",
		"computations", "coalesced_waits",
		"in_flight", "admission_rejected", "deadline_failures",
		"cache_entries", "evictions", "disk_entries_loaded", "engines_built",
		"batch_chains_run", "batch_chains_failed",
	} {
		if _, ok := raw[field]; !ok {
			t.Errorf("stats JSON missing %q (got %v)", field, raw)
		}
	}
}

// TestCanonicalIDs: unit coverage for the identity normalization every
// cache layer depends on.
func TestCanonicalIDs(t *testing.T) {
	ids, err := canonicalIDs([]uint32{5, 1, 5, 3, 1}, 10)
	if err != nil {
		t.Fatalf("canonicalIDs: %v", err)
	}
	want := []graph.NodeID{1, 3, 5}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v, want %v", ids, want)
		}
	}
	if _, err := canonicalIDs(nil, 10); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := canonicalIDs([]uint32{10}, 10); err == nil {
		t.Error("out-of-range node accepted")
	}
	if hashIDs(want) == hashIDs(want[:2]) {
		t.Error("prefix hash collision")
	}
	if !idsEqual(want, want) || idsEqual(want, want[:2]) {
		t.Error("idsEqual broken")
	}
}

// TestLRUInternals: bucket bookkeeping survives eviction churn and a
// forced hash collision never serves the wrong entry.
func TestLRUInternals(t *testing.T) {
	c := newLRU(2)
	e1 := &entry{hash: 7, ids: []graph.NodeID{1}}
	e2 := &entry{hash: 7, ids: []graph.NodeID{2}} // forced collision
	e3 := &entry{hash: 9, ids: []graph.NodeID{3}}
	if ev := c.add(e1); ev != 0 {
		t.Fatalf("evicted %d adding e1", ev)
	}
	if ev := c.add(e2); ev != 0 {
		t.Fatalf("evicted %d adding e2", ev)
	}
	if got, ok := c.get(7, []graph.NodeID{1}); !ok || got != e1 {
		t.Fatalf("collision lookup returned %v", got)
	}
	if got, ok := c.get(7, []graph.NodeID{2}); !ok || got != e2 {
		t.Fatalf("collision lookup returned %v", got)
	}
	if _, ok := c.get(7, []graph.NodeID{99}); ok {
		t.Fatal("phantom entry")
	}
	// e1 was just touched via get? No: last get promoted e2. Touch e1 so
	// e2 is the LRU victim.
	c.get(7, []graph.NodeID{1})
	if ev := c.add(e3); ev != 1 {
		t.Fatalf("evicted %d adding e3, want 1", ev)
	}
	if _, ok := c.get(7, []graph.NodeID{2}); ok {
		t.Fatal("victim e2 still present")
	}
	if _, ok := c.get(7, []graph.NodeID{1}); !ok {
		t.Fatal("e1 wrongly evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

// TestGraphSignature: identical generation → identical signature;
// different graphs → different signatures.
func TestGraphSignature(t *testing.T) {
	ds1, _ := testWeb(t, 300, 20)
	ds1b, _ := testWeb(t, 300, 20)
	ds2, _ := testWeb(t, 300, 21)
	if GraphSignature(ds1.Graph) != GraphSignature(ds1b.Graph) {
		t.Error("deterministic generation produced differing signatures")
	}
	if GraphSignature(ds1.Graph) == GraphSignature(ds2.Graph) {
		t.Error("different graphs share a signature")
	}
}

// TestServerValidation: constructor-level option errors.
func TestServerValidation(t *testing.T) {
	ds, terms := testWeb(t, 300, 22)
	if _, err := NewServer(Options{}); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := NewServer(Options{Context: core.NewContext(ds.Graph), Terms: terms[:10]}); err == nil {
		t.Error("short term corpus accepted")
	}
	if _, err := NewServer(Options{Context: core.NewContext(ds.Graph), CacheEntries: -1}); err == nil {
		t.Error("negative cache capacity accepted")
	}
	if _, err := NewServer(Options{Context: core.NewContext(ds.Graph), MaxInFlight: -2}); err == nil {
		t.Error("negative in-flight accepted")
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
