package serve

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pagerank"
	"repro/internal/search"
)

// diskFormat is the layout version of the cache file; any change to the
// gob'd structures below bumps it, and a mismatch discards the file
// (scores are a cache — recomputing beats misreading).
const diskFormat uint32 = 1

// diskFile is the on-disk shape of the score cache. GraphSig binds the
// cached scores to the exact global graph snapshot they were computed
// from: a daemon restarted over a regenerated or updated graph discards
// the file wholesale rather than serving stale ranks (the snapshot
// version ↔ disk cache invalidation rule in DESIGN.md).
type diskFile struct {
	Format   uint32
	GraphSig uint64
	Entries  []diskEntry
}

// diskEntry is one cached subgraph: its canonical ids and the converged
// results per configuration key. Chains and search engines are NOT
// persisted — they are cheap to rebuild lazily relative to the power
// iteration the scores paid for.
type diskEntry struct {
	IDs     []uint32
	Results []diskResult
}

type diskResult struct {
	CfgKey     string
	Scores     []float64
	Lambda     float64
	Iterations int
	Converged  bool
}

// GraphSignature fingerprints a global graph, versioning every cache
// keyed by "scores of a subgraph of THIS graph". Graphs loaded from a
// v2 binary file carry a signature precomputed from the file's section
// checksums — used directly, so an mmap-backed daemon never forces the
// whole adjacency through memory just to fingerprint it. Other graphs
// get FNV-1a over the node count and the full out-adjacency stream.
// (The two schemes hash different inputs: a daemon switching an
// existing graph file to v2 discards its old disk cache once.)
func GraphSignature(g *graph.Graph) uint64 {
	if sig, ok := g.FormatSignature(); ok {
		return sig
	}
	h := uint64(fnvOffset64)
	h = (h ^ uint64(g.NumNodes())) * fnvPrime64
	h = (h ^ uint64(g.NumEdges())) * fnvPrime64
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.OutNeighbors(graph.NodeID(u))
		h = (h ^ uint64(len(adj))) * fnvPrime64
		for _, v := range adj {
			h = (h ^ uint64(v)) * fnvPrime64
		}
	}
	return h
}

// SaveDiskCache writes the current result cache to the configured path
// (atomically, via a temp file + rename) so the next start is warm. It
// is a no-op without a configured path. Only converged results are
// persisted — the cache must never warm-start an answer the live path
// would have refused to serve.
func (s *Server) SaveDiskCache() error {
	if s.diskPath == "" {
		return nil
	}
	df := diskFile{Format: diskFormat, GraphSig: s.sig}
	s.mu.Lock()
	for el := s.cache.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		de := diskEntry{IDs: ids2uint32(e.ids)}
		for key, res := range e.results {
			if !res.Converged {
				continue
			}
			de.Results = append(de.Results, diskResult{
				CfgKey:     key,
				Scores:     res.Scores,
				Lambda:     res.Lambda,
				Iterations: res.Iterations,
				Converged:  res.Converged,
			})
		}
		if len(de.Results) > 0 {
			df.Entries = append(df.Entries, de)
		}
	}
	s.mu.Unlock()
	// Results within an entry were collected in map order; sort for a
	// deterministic file (the entry order — LRU front to back — already
	// is).
	for i := range df.Entries {
		sortDiskResults(df.Entries[i].Results)
	}

	tmp, err := os.CreateTemp(filepath.Dir(s.diskPath), ".rankd-cache-*")
	if err != nil {
		return fmt.Errorf("serve: disk cache: %w", err)
	}
	defer func() {
		// Best-effort cleanup; after a successful rename the path is gone
		// and the remove is a no-op.
		_ = os.Remove(tmp.Name()) //arlint:allow errflow cleanup of a temp file that may already be renamed away
	}()
	if err := gob.NewEncoder(tmp).Encode(&df); err != nil {
		_ = tmp.Close() //arlint:allow errflow the encode error is the root cause; the close is cleanup
		return fmt.Errorf("serve: disk cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: disk cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.diskPath); err != nil {
		return fmt.Errorf("serve: disk cache: %w", err)
	}
	return nil
}

// LoadDiskCache warms the result cache from the configured path,
// returning how many subgraph entries it recovered. A missing file is a
// cold start (0, nil); a file written by a different format version or —
// crucially — a different graph snapshot is discarded as stale (0, nil).
// Loaded entries carry scores only: the first query for a cached
// subgraph is answered without any power iteration, and chains/engines
// rebuild lazily if ever needed.
func (s *Server) LoadDiskCache() (int, error) {
	if s.diskPath == "" {
		return 0, nil
	}
	f, err := os.Open(s.diskPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, fmt.Errorf("serve: disk cache: %w", err)
	}
	defer f.Close()
	var df diskFile
	if err := gob.NewDecoder(f).Decode(&df); err != nil {
		return 0, fmt.Errorf("serve: disk cache: %w", err)
	}
	if df.Format != diskFormat || df.GraphSig != s.sig {
		return 0, nil
	}
	numNodes := s.gctx.Graph().NumNodes()
	loaded := 0
	// Entries were saved front (most recent) to back; inserting in
	// reverse restores the LRU order, and capacity enforcement drops the
	// coldest tail if the file outgrew the configured cache.
	s.mu.Lock()
	for i := len(df.Entries) - 1; i >= 0; i-- {
		de := df.Entries[i]
		ids, err := canonicalIDs(de.IDs, numNodes)
		if err != nil || len(de.Results) == 0 {
			continue
		}
		h := hashIDs(ids)
		if _, dup := s.cache.get(h, ids); dup {
			continue
		}
		e := &entry{
			hash:    h,
			ids:     ids,
			results: make(map[string]*core.Result, len(de.Results)),
			engines: make(map[string]*search.Engine),
		}
		for _, dr := range de.Results {
			e.results[dr.CfgKey] = &core.Result{
				Result: pagerank.Result{
					Scores:     dr.Scores,
					Iterations: dr.Iterations,
					Converged:  dr.Converged,
				},
				Lambda: dr.Lambda,
			}
		}
		s.stats.Evictions += int64(s.cache.add(e))
		loaded++
	}
	s.stats.DiskEntriesLoaded += int64(loaded)
	s.mu.Unlock()
	return loaded, nil
}

// sortDiskResults orders results by configuration key (insertion sort —
// an entry rarely holds more than a couple of configurations).
func sortDiskResults(rs []diskResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].CfgKey < rs[j-1].CfgKey; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
