package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// maxBodyBytes bounds request bodies: a million-node subgraph id list is
// ~8 MB of JSON; anything bigger is not a rank query.
const maxBodyBytes = 16 << 20

// retryAfterSeconds is the Retry-After hint on 429/503 responses. The
// admission queue drains at compute speed, so "soon" is honest; the
// value exists so well-behaved clients back off at all.
const retryAfterSeconds = "1"

// errNoNodes rejects requests with an empty subgraph.
var errNoNodes = errors.New("serve: empty node list")

// nodeRangeError rejects node ids outside the global graph.
type nodeRangeError struct {
	id uint32
	n  int
}

func (e *nodeRangeError) Error() string {
	return fmt.Sprintf("serve: node %d outside global graph (N=%d)", e.id, e.n)
}

// errBadRequest marks errors caused by the request (as opposed to
// overload or deadline), so the handler can answer 400.
var errBadRequest = errors.New("bad request")

// badRequest wraps err as a client error.
func badRequest(err error) error {
	return fmt.Errorf("%w: %w", errBadRequest, err)
}

// rankRequest is the body of POST /v1/rank. Exactly one of Nodes
// (single subgraph) or Subgraphs (batch) must be set. The rank
// parameters default to the server's configuration when zero.
type rankRequest struct {
	Nodes     []uint32   `json:"nodes,omitempty"`
	Subgraphs [][]uint32 `json:"subgraphs,omitempty"`

	TimeoutMS     int64   `json:"timeout_ms,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Tolerance     float64 `json:"tolerance,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
}

// rankResult is one ranked subgraph: scores positionally aligned with
// the canonical (sorted-distinct) node list.
type rankResult struct {
	Nodes      []uint32  `json:"nodes"`
	Scores     []float64 `json:"scores"`
	Lambda     float64   `json:"lambda"`
	Iterations int       `json:"iterations"`
	Converged  bool      `json:"converged"`
	Cached     bool      `json:"cached"`
}

// batchItem is one entry of a batch response: a result or an error.
type batchItem struct {
	Result *rankResult `json:"result,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// searchRequest is the body of POST /v1/search: a conjunctive term query
// over a subgraph, answered with the K highest-ranked matching pages.
type searchRequest struct {
	Nodes []uint32 `json:"nodes"`
	Terms []uint32 `json:"terms"`
	K     int      `json:"k,omitempty"`

	TimeoutMS     int64   `json:"timeout_ms,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	Tolerance     float64 `json:"tolerance,omitempty"`
	MaxIterations int     `json:"max_iterations,omitempty"`
}

type searchHit struct {
	Page  uint32  `json:"page"`
	Score float64 `json:"score"`
}

type searchResponse struct {
	Hits    []searchHit `json:"hits"`
	Matches int         `json:"matches"`
	Cached  bool        `json:"cached"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// decodeJSON reads one JSON body into dst with a size bound.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(dst); err != nil {
		return badRequest(err)
	}
	return nil
}

// requestConfig merges the server's rank defaults with a request's
// overrides and budget. Validation happens here so configuration
// mistakes answer 400 rather than surfacing as opaque compute failures.
func (s *Server) requestConfig(eps, tol float64, maxIter int, timeoutMS int64) (core.Config, error) {
	cfg := s.rank
	if eps != 0 {
		if eps <= 0 || eps >= 1 {
			return cfg, badRequest(fmt.Errorf("epsilon %v outside (0,1)", eps))
		}
		cfg.Epsilon = eps
	}
	if tol != 0 {
		if tol < 0 {
			return cfg, badRequest(fmt.Errorf("negative tolerance %v", tol))
		}
		cfg.Tolerance = tol
	}
	if maxIter != 0 {
		if maxIter < 1 {
			return cfg, badRequest(fmt.Errorf("max_iterations %d < 1", maxIter))
		}
		cfg.MaxIterations = maxIter
	}
	if timeoutMS < 0 {
		return cfg, badRequest(fmt.Errorf("negative timeout_ms %d", timeoutMS))
	}
	timeout := s.defTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
	}
	cfg.Deadline = timeout
	// Normalize zero-valued knobs to their concrete defaults NOW, so the
	// result-cache key never aliases "default" and its explicit value.
	if err := cfg.Normalize(); err != nil {
		return cfg, badRequest(err)
	}
	return cfg, nil
}

// handleRank serves POST /v1/rank: single subgraph or batch.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var req rankRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if (len(req.Nodes) == 0) == (len(req.Subgraphs) == 0) {
		s.writeError(w, badRequest(errors.New(`exactly one of "nodes" or "subgraphs" must be set`)))
		return
	}
	cfg, err := s.requestConfig(req.Epsilon, req.Tolerance, req.MaxIterations, req.TimeoutMS)
	if err != nil {
		s.writeError(w, err)
		return
	}

	if len(req.Subgraphs) > 0 {
		s.handleRankBatch(w, req.Subgraphs, cfg)
		return
	}

	ids, err := canonicalIDs(req.Nodes, s.gctx.Graph().NumNodes())
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	s.mu.Lock()
	s.stats.RankRequests++
	s.mu.Unlock()
	reqCtx, cancel := context.WithTimeout(r.Context(), cfg.Deadline)
	defer cancel()
	res, cached, err := s.rankScores(reqCtx, ids, cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, rankResultOf(ids2uint32(ids), res, cached))
}

// handleRankBatch serves the batch form of /v1/rank. The response is
// always 200 with per-item results/errors (unless admission rejects the
// whole batch): partial success is the point.
func (s *Server) handleRankBatch(w http.ResponseWriter, items [][]uint32, cfg core.Config) {
	if len(items) > s.maxBatch {
		s.writeError(w, badRequest(fmt.Errorf("batch of %d subgraphs exceeds limit %d", len(items), s.maxBatch)))
		return
	}
	s.mu.Lock()
	s.stats.BatchRequests++
	s.mu.Unlock()
	results, errs, err := s.rankBatch(items, cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := make([]batchItem, len(items))
	for i := range items {
		if results[i] != nil {
			canon, cerr := canonicalIDs(items[i], s.gctx.Graph().NumNodes())
			if cerr != nil {
				// canonicalIDs succeeded moments ago inside rankBatch for
				// every item that has a result; a failure here is a bug.
				out[i] = batchItem{Error: cerr.Error()}
				continue
			}
			out[i] = batchItem{Result: rankResultOf(ids2uint32(canon), results[i], false)}
		} else if errs[i] != nil {
			out[i] = batchItem{Error: errs[i].Error()}
		} else {
			out[i] = batchItem{Error: "not computed"}
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Results []batchItem `json:"results"`
	}{Results: out})
}

// handleSearch serves POST /v1/search: rank the subgraph through the
// same cached path, then answer the conjunctive term query from the
// score-fused engine.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.terms == nil {
		s.writeError(w, badRequest(errors.New("no term corpus loaded; /v1/search is disabled")))
		return
	}
	var req searchRequest
	if err := decodeJSON(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Terms) == 0 {
		s.writeError(w, badRequest(errors.New(`"terms" must be non-empty`)))
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 1 {
		s.writeError(w, badRequest(fmt.Errorf("k=%d < 1", req.K)))
		return
	}
	cfg, err := s.requestConfig(req.Epsilon, req.Tolerance, req.MaxIterations, req.TimeoutMS)
	if err != nil {
		s.writeError(w, err)
		return
	}
	ids, err := canonicalIDs(req.Nodes, s.gctx.Graph().NumNodes())
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	s.mu.Lock()
	s.stats.SearchRequests++
	s.mu.Unlock()
	reqCtx, cancel := context.WithTimeout(r.Context(), cfg.Deadline)
	defer cancel()
	res, cached, err := s.rankScores(reqCtx, ids, cfg)
	if err != nil {
		s.writeError(w, err)
		return
	}
	eng, err := s.searchEngine(ids, cfgKey(cfg), res)
	if err != nil {
		s.writeError(w, err)
		return
	}
	hits, err := eng.TopK(req.Terms, req.K)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	resp := searchResponse{
		Hits:    make([]searchHit, len(hits)),
		Matches: eng.MatchCount(req.Terms),
		Cached:  cached,
	}
	for i, h := range hits {
		resp.Hits[i] = searchHit{Page: uint32(h.Page), Score: h.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats serves GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.statsSnapshotLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// writeError maps an error to its HTTP status — 400 for request
// mistakes, 429 for a full admission queue, 503 for an exceeded budget —
// counts it, and writes the JSON error body.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, errOverloaded):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.mu.Lock()
		s.stats.AdmissionRejected++
		s.mu.Unlock()
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds)
		s.mu.Lock()
		s.stats.DeadlineFailures++
		s.mu.Unlock()
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// writeJSON writes one JSON response. An encode failure after the header
// has gone out is unactionable (the client sees the truncated body), so
// the error is deliberately discarded.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v) //arlint:allow errflow the status line is already sent; the client sees the truncated body
}

// rankResultOf shapes a core result for the wire.
func rankResultOf(nodes []uint32, res *core.Result, cached bool) *rankResult {
	return &rankResult{
		Nodes:      nodes,
		Scores:     res.Scores,
		Lambda:     res.Lambda,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Cached:     cached,
	}
}

// ids2uint32 converts canonical ids back to the wire type.
func ids2uint32(ids []graph.NodeID) []uint32 {
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out
}
