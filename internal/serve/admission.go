package serve

import (
	"context"
	"errors"
	"sync"
)

// errOverloaded is returned when both the in-flight semaphore and the
// bounded wait queue are full: the request is rejected immediately (HTTP
// 429) rather than queued without bound — the server sheds load instead
// of melting.
var errOverloaded = errors.New("serve: admission queue full")

// admission is the bounded-admission gate in front of the compute tier:
// at most inFlight computations hold a token concurrently, and at most
// queue further acquirers may wait for one. A waiter that outlives its
// context's deadline gives up (HTTP 503 with Retry-After); an acquirer
// that would exceed the queue bound is rejected on the spot. The wait
// itself selects on the caller's context — never on time.After, whose
// per-iteration timer would leak under load (arlint's timerleak check).
type admission struct {
	sem   chan struct{}
	mu    sync.Mutex
	queue int // remaining wait-queue slots
}

func newAdmission(inFlight, queue int) *admission {
	return &admission{sem: make(chan struct{}, inFlight), queue: queue}
}

// acquire obtains a compute token, waiting (within the queue bound) until
// one frees or ctx is done. On success the caller must call release.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}
	a.mu.Lock()
	if a.queue <= 0 {
		a.mu.Unlock()
		return errOverloaded
	}
	a.queue--
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queue++
		a.mu.Unlock()
	}()
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a token acquired by acquire.
func (a *admission) release() { <-a.sem }
