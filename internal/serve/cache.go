package serve

import (
	"container/list"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/search"
)

// entry is one cached subgraph: its canonical identity, the frozen
// ready-to-iterate chain (so repeat queries skip NewApproxChainCtx
// entirely), and the converged results and search engines per rank
// configuration. Entries loaded from the disk cache start with a nil
// sub/chain — the scores alone answer repeat queries; the chain is
// rebuilt only if a NEW configuration asks for an iteration.
type entry struct {
	hash    uint64
	ids     []graph.NodeID // canonical: sorted ascending, distinct
	sub     *graph.Subgraph
	chain   *core.ExtendedChain
	results map[string]*core.Result
	engines map[string]*search.Engine
}

// lruCache is an LRU of entries keyed by the FNV-1a hash of the canonical
// (sorted-distinct) node-ID list. Hash collisions are resolved exactly:
// each bucket holds the (almost always single) entries sharing a hash and
// lookups compare the full ID lists, so a collision degrades to a second
// compare, never to a wrong answer. Not safe for concurrent use — the
// Server serializes access under its mutex.
type lruCache struct {
	cap    int
	ll     *list.List // front = most recently used; values are *entry
	byHash map[uint64][]*list.Element
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), byHash: make(map[uint64][]*list.Element)}
}

// get returns the entry for the canonical id list, promoting it to most
// recently used.
func (c *lruCache) get(hash uint64, ids []graph.NodeID) (*entry, bool) {
	for _, el := range c.byHash[hash] {
		e := el.Value.(*entry)
		if idsEqual(e.ids, ids) {
			c.ll.MoveToFront(el)
			return e, true
		}
	}
	return nil, false
}

// add inserts a new entry as most recently used and returns how many
// entries were evicted to stay within capacity. The caller must have
// checked get first — duplicate identities are the caller's bug.
func (c *lruCache) add(e *entry) int {
	el := c.ll.PushFront(e)
	c.byHash[e.hash] = append(c.byHash[e.hash], el)
	evicted := 0
	for c.ll.Len() > c.cap {
		c.removeElement(c.ll.Back())
		evicted++
	}
	return evicted
}

func (c *lruCache) removeElement(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	bucket := c.byHash[e.hash]
	for i, b := range bucket {
		if b == el {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			break
		}
	}
	if len(bucket) == 0 {
		delete(c.byHash, e.hash)
	} else {
		c.byHash[e.hash] = bucket
	}
}

// len returns the number of cached entries.
func (c *lruCache) len() int { return c.ll.Len() }

// canonicalIDs validates and canonicalizes a request's node list: every
// id must fall inside the global graph, and the returned copy is sorted
// ascending with duplicates removed — the subgraph identity every cache
// layer keys on (graph.NewSubgraph applies the same normalization, so
// the key and the built subgraph can never disagree).
func canonicalIDs(nodes []uint32, numNodes int) ([]graph.NodeID, error) {
	if len(nodes) == 0 {
		return nil, errNoNodes
	}
	ids := make([]graph.NodeID, len(nodes))
	for i, v := range nodes {
		if int(v) >= numNodes {
			return nil, &nodeRangeError{id: v, n: numNodes}
		}
		ids[i] = graph.NodeID(v)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w], nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashIDs is the canonical subgraph identity hash: FNV-1a over the
// length and the sorted-distinct node ids. It runs on every request, so
// it is kept pure and allocation-free.
//
//arlint:hot
func hashIDs(ids []graph.NodeID) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(len(ids))) * fnvPrime64
	for _, id := range ids {
		h = (h ^ uint64(id)) * fnvPrime64
	}
	return h
}

// idsEqual reports whether two canonical id lists denote the same
// subgraph — the exact check behind every hashed lookup.
//
//arlint:hot
func idsEqual(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
