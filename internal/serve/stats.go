package serve

// Stats is a point-in-time snapshot of the daemon's counters, exposed as
// JSON by GET /v1/stats. It is the seed of the observability layer: every
// serving mechanism (cache, coalescing, admission, disk warmth) reports
// here, and the load-shaped tests assert on these numbers rather than on
// timing.
type Stats struct {
	// RankRequests / SearchRequests / BatchRequests count accepted
	// (parse-valid) requests per endpoint; BatchRequests are /v1/rank
	// calls that carried a subgraph batch.
	RankRequests   int64 `json:"rank_requests"`
	SearchRequests int64 `json:"search_requests"`
	BatchRequests  int64 `json:"batch_requests"`

	// ResultHits count requests answered from a cached converged result
	// (no chain build, no iteration). ChainHits count requests that found
	// the frozen chain but ran a fresh iteration for a new configuration.
	// Misses count requests that had to build the chain.
	ResultHits int64 `json:"result_hits"`
	ChainHits  int64 `json:"chain_hits"`
	Misses     int64 `json:"misses"`

	// Computations counts power iterations actually run by the serving
	// tier (batch items excluded — see BatchChainsRun). CoalescedWaits
	// counts requests that piggybacked on an identical in-flight
	// computation instead of starting their own.
	Computations   int64 `json:"computations"`
	CoalescedWaits int64 `json:"coalesced_waits"`

	// InFlight is the number of computations currently holding an
	// admission token; AdmissionRejected counts immediate 429s (queue
	// full) and DeadlineFailures counts 503s (compute or queue deadline
	// exceeded, or the client gone while coalesced).
	InFlight          int64 `json:"in_flight"`
	AdmissionRejected int64 `json:"admission_rejected"`
	DeadlineFailures  int64 `json:"deadline_failures"`

	// CacheEntries / Evictions describe the LRU; DiskEntriesLoaded is how
	// many entries the startup warm-load recovered; EnginesBuilt counts
	// search-engine constructions (a repeat search is free).
	CacheEntries      int64 `json:"cache_entries"`
	Evictions         int64 `json:"evictions"`
	DiskEntriesLoaded int64 `json:"disk_entries_loaded"`
	EnginesBuilt      int64 `json:"engines_built"`

	// BatchChainsRun counts chains completed inside batch requests;
	// BatchChainsFailed counts batch items answered with a per-item error
	// (the survivors of a poisoned batch are still served — the
	// RankManyCtx partial-results contract).
	BatchChainsRun    int64 `json:"batch_chains_run"`
	BatchChainsFailed int64 `json:"batch_chains_failed"`
}

// statsSnapshot returns the current counters. The caller must hold s.mu.
func (s *Server) statsSnapshotLocked() Stats {
	st := s.stats
	st.CacheEntries = int64(s.cache.len())
	return st
}
