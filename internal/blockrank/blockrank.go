// Package blockrank implements the 3-stage BlockRank algorithm of Kamvar,
// Haveliwala, Manning & Golub ("Exploiting the block structure of the web
// for computing PageRank", 2003) — reference [27] of the paper, described
// step by step in its related work: (1) compute local PageRank scores for
// each host/block; (2) compute the importance of blocks on the block
// graph; (3) run standard global PageRank started from the weighted
// aggregation of the local scores. The block structure it exploits — most
// links are intra-host — is the same structure that makes the paper's DS
// subgraphs easy to rank.
package blockrank

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// Config carries the walk parameters used by all three stages. The zero
// value selects the customary settings (ε = 0.85, tolerance 1e-5; the
// local stage uses a looser tolerance since its output only seeds the
// global stage).
type Config struct {
	Epsilon       float64
	Tolerance     float64
	MaxIterations int
	// LocalTolerance is the convergence threshold of the per-block stage.
	// Default 10× Tolerance (a rough local solution is enough for a good
	// starting vector).
	LocalTolerance float64
}

func (c *Config) fill() error {
	if c.Epsilon == 0 {
		c.Epsilon = numeric.DefaultDamping
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("blockrank: damping factor %v outside (0,1)", c.Epsilon)
	}
	if c.Tolerance == 0 {
		c.Tolerance = numeric.DefaultTolerance
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("blockrank: negative tolerance %v", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("blockrank: MaxIterations %d < 1", c.MaxIterations)
	}
	if c.LocalTolerance == 0 {
		c.LocalTolerance = 10 * c.Tolerance
	}
	if c.LocalTolerance < 0 {
		return fmt.Errorf("blockrank: negative local tolerance %v", c.LocalTolerance)
	}
	return nil
}

// Result carries the BlockRank output and per-stage telemetry.
type Result struct {
	// Scores is the final global PageRank vector (identical fixpoint to
	// plain PageRank; BlockRank changes how fast it is reached).
	Scores []float64
	// Start is the stage-3 starting vector: local scores weighted by
	// block importance. Exposed so experiments can measure how close the
	// aggregation already is.
	Start []float64
	// BlockScores is the PageRank of the block graph.
	BlockScores []float64
	// LocalIterations sums stage-1 iterations over blocks;
	// BlockIterations and GlobalIterations count stages 2 and 3.
	LocalIterations  int
	BlockIterations  int
	GlobalIterations int
	Elapsed          time.Duration
}

// Compute runs the 3-stage BlockRank on g with the given block
// assignment (blockOf must map every page to 0..numBlocks−1). It is
// ComputeCtx with context.Background().
func Compute(g *graph.Graph, blockOf func(graph.NodeID) int, numBlocks int, cfg Config) (*Result, error) {
	return ComputeCtx(context.Background(), g, blockOf, numBlocks, cfg)
}

// ComputeCtx is Compute under a context. Cancellation is checked between
// the per-block stage-1 runs and inside every PageRank walk of all three
// stages; an aborted computation returns only the error.
func ComputeCtx(ctx context.Context, g *graph.Graph, blockOf func(graph.NodeID) int, numBlocks int, cfg Config) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("blockrank: nil graph")
	}
	if numBlocks < 1 {
		return nil, fmt.Errorf("blockrank: need at least 1 block, got %d", numBlocks)
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := g.NumNodes()
	block := make([]int, n)
	pagesOf := make([][]graph.NodeID, numBlocks)
	for p := 0; p < n; p++ {
		b := blockOf(graph.NodeID(p))
		if b < 0 || b >= numBlocks {
			return nil, fmt.Errorf("blockrank: page %d assigned to block %d outside [0,%d)", p, b, numBlocks)
		}
		block[p] = b
		pagesOf[b] = append(pagesOf[b], graph.NodeID(p))
	}
	for b, pages := range pagesOf {
		if len(pages) == 0 {
			return nil, fmt.Errorf("blockrank: block %d has no pages", b)
		}
	}
	res := &Result{}

	// Stage 1: local PageRank per block over intra-block links.
	local := make([]float64, n)
	for bi, pages := range pagesOf {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("blockrank: cancelled before block %d: %w", bi, err)
		}
		pos := make(map[graph.NodeID]uint32, len(pages))
		for i, p := range pages {
			pos[p] = uint32(i)
		}
		lb := graph.NewBuilder(len(pages))
		for i, p := range pages {
			adj := g.OutNeighbors(p)
			ws := g.OutWeights(p)
			for k, v := range adj {
				if block[v] != bi {
					continue
				}
				if ws != nil {
					lb.AddWeightedEdge(uint32(i), pos[v], ws[k])
				} else {
					lb.AddEdge(uint32(i), pos[v])
				}
			}
		}
		lg, err := lb.Build()
		if err != nil {
			return nil, fmt.Errorf("blockrank: block %d graph: %w", bi, err)
		}
		pr, err := pagerank.ComputeCtx(ctx, lg, pagerank.Options{
			Epsilon: cfg.Epsilon, Tolerance: cfg.LocalTolerance, MaxIterations: cfg.MaxIterations,
		})
		if err != nil {
			return nil, fmt.Errorf("blockrank: block %d local PageRank: %w", bi, err)
		}
		res.LocalIterations += pr.Iterations
		for i, p := range pages {
			local[p] = pr.Scores[i]
		}
	}

	// Stage 2: BlockRank on the block graph. Following the paper, the
	// edge weight from block I to J aggregates the transition
	// probabilities of the underlying links weighted by the local rank of
	// the source page: Σ_{i∈I, j∈J} A[i][j]·l_I(i).
	bb := graph.NewBuilder(numBlocks)
	for p := 0; p < n; p++ {
		u := graph.NodeID(p)
		if g.Dangling(u) || local[p] == 0 {
			continue
		}
		wout := g.WeightOut(u)
		adj := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for k, v := range adj {
			prob := 1.0 / wout
			if ws != nil {
				prob = ws[k] / wout
			}
			w := local[p] * prob
			if w > 0 {
				bb.AddWeightedEdge(uint32(block[p]), uint32(block[v]), w)
			}
		}
	}
	bg, err := bb.Build()
	if err != nil {
		return nil, fmt.Errorf("blockrank: block graph: %w", err)
	}
	bpr, err := pagerank.ComputeCtx(ctx, bg, pagerank.Options{
		Epsilon: cfg.Epsilon, Tolerance: cfg.Tolerance, MaxIterations: cfg.MaxIterations,
	})
	if err != nil {
		return nil, fmt.Errorf("blockrank: block PageRank: %w", err)
	}
	res.BlockIterations = bpr.Iterations
	res.BlockScores = bpr.Scores

	// Stage 3: global PageRank from the aggregated start vector
	// x0[p] = l(p)·b(block(p)).
	x0 := make([]float64, n)
	sum := 0.0
	for p := 0; p < n; p++ {
		x0[p] = local[p] * bpr.Scores[block[p]]
		sum += x0[p]
	}
	if sum <= 0 {
		return nil, fmt.Errorf("blockrank: degenerate start vector")
	}
	for p := range x0 {
		x0[p] /= sum
	}
	res.Start = append([]float64(nil), x0...)
	gpr, err := pagerank.ComputeCtx(ctx, g, pagerank.Options{
		Epsilon: cfg.Epsilon, Tolerance: cfg.Tolerance, MaxIterations: cfg.MaxIterations, Start: x0,
	})
	if err != nil {
		return nil, fmt.Errorf("blockrank: global PageRank: %w", err)
	}
	res.GlobalIterations = gpr.Iterations
	res.Scores = gpr.Scores
	res.Elapsed = time.Since(start)
	return res, nil
}
