package blockrank

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

func testWeb(t testing.TB, pages, domains int) *gen.Dataset {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Pages: pages, Domains: domains, Seed: 29})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return ds
}

// TestSameFixpoint: BlockRank's final vector equals plain PageRank's (it
// only changes the starting point of the final stage).
func TestSameFixpoint(t *testing.T) {
	ds := testWeb(t, 6000, 8)
	blockOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	br, err := Compute(ds.Graph, blockOf, ds.NumDomains(), Config{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	plain, err := pagerank.Compute(ds.Graph, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	d := 0.0
	for i := range br.Scores {
		d += math.Abs(br.Scores[i] - plain.Scores[i])
	}
	if d > 1e-6 {
		t.Fatalf("BlockRank deviates from plain PageRank by L1=%g", d)
	}
}

// TestWarmStartQuality: the aggregated start vector must land much closer
// to the fixpoint than the uniform cold start, and the warm-started final
// stage must not need meaningfully more sweeps than a cold one.
//
// Note the deliberate asymmetry of this assertion: on our synthetic
// graphs BlockRank's *iteration savings* are marginal even though its
// start vector is close — the aggregation nails the fast-mixing
// intra-block structure, so the residual error lies almost entirely along
// the slowest (inter-block) eigenmodes, which decay at the same rate from
// any start. The original BlockRank speedups also relied on the local
// stages being cheap and parallel; the quantitative comparison lives in
// the acceleration experiment and EXPERIMENTS.md.
func TestWarmStartQuality(t *testing.T) {
	ds := testWeb(t, 20000, 16)
	blockOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	br, err := Compute(ds.Graph, blockOf, ds.NumDomains(), Config{Tolerance: 1e-8})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	plain, err := pagerank.Compute(ds.Graph, pagerank.Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	if br.GlobalIterations > plain.Iterations+5 {
		t.Errorf("warm start took %d global iterations, cold start %d",
			br.GlobalIterations, plain.Iterations)
	}
	// The start vector must be far closer to the fixpoint than uniform.
	warm, cold := 0.0, 0.0
	uniform := 1.0 / float64(len(br.Start))
	for i := range br.Start {
		warm += math.Abs(br.Start[i] - plain.Scores[i])
		cold += math.Abs(uniform - plain.Scores[i])
	}
	// With the generator's size-dependent leakage, local PageRank within
	// small domains is a rough approximation, so expect a clear — not
	// dramatic — improvement over the uniform start (about 2× here).
	if warm > cold*0.7 {
		t.Errorf("aggregated start vector L1=%v, uniform start L1=%v — aggregation too weak", warm, cold)
	}
}

// TestBlockScores: block importances form a distribution and the largest
// block (which receives preferential in-links) is not negligible.
func TestBlockScores(t *testing.T) {
	ds := testWeb(t, 6000, 8)
	blockOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	br, err := Compute(ds.Graph, blockOf, ds.NumDomains(), Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	sum := 0.0
	for _, s := range br.BlockScores {
		if s < 0 {
			t.Fatal("negative block score")
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("block scores sum to %v", sum)
	}
	if br.LocalIterations == 0 || br.BlockIterations == 0 || br.GlobalIterations == 0 {
		t.Fatalf("missing stage telemetry: %+v", br)
	}
}

// TestSingleBlockDegeneratesToPageRank: with one block, stages 1–2 are
// trivial and stage 3 equals plain PageRank.
func TestSingleBlockDegeneratesToPageRank(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	br, err := Compute(g, func(graph.NodeID) int { return 0 }, 1, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	plain, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	for i := range br.Scores {
		if math.Abs(br.Scores[i]-plain.Scores[i]) > 1e-9 {
			t.Fatalf("score %d differs: %v vs %v", i, br.Scores[i], plain.Scores[i])
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	if _, err := Compute(nil, func(graph.NodeID) int { return 0 }, 1, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Compute(g, func(graph.NodeID) int { return 0 }, 0, Config{}); err == nil {
		t.Error("zero blocks accepted")
	}
	if _, err := Compute(g, func(graph.NodeID) int { return 5 }, 2, Config{}); err == nil {
		t.Error("out-of-range block accepted")
	}
	if _, err := Compute(g, func(graph.NodeID) int { return 0 }, 2, Config{}); err == nil {
		t.Error("empty block accepted")
	}
	if _, err := Compute(g, func(graph.NodeID) int { return 0 }, 1, Config{Epsilon: -1}); err == nil {
		t.Error("bad epsilon accepted")
	}
	if _, err := Compute(g, func(graph.NodeID) int { return 0 }, 1, Config{Tolerance: -1}); err == nil {
		t.Error("bad tolerance accepted")
	}
}
