package search

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIndexBasics(t *testing.T) {
	terms := [][]uint32{
		{1, 2, 3},
		{2, 3},
		{3},
		{},
	}
	ix := BuildIndex(terms)
	if ix.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if got := ix.Postings(3); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Postings(3) = %v", got)
	}
	if got := ix.Query([]uint32{2, 3}); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Query(2,3) = %v", got)
	}
	if got := ix.Query([]uint32{1, 3}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Query(1,3) = %v", got)
	}
	if got := ix.Query([]uint32{99}); got != nil {
		t.Fatalf("Query(99) = %v", got)
	}
	if got := ix.Query(nil); got != nil {
		t.Fatalf("Query(nil) = %v", got)
	}
	// Duplicate query terms behave like a single occurrence.
	if got := ix.Query([]uint32{3, 3, 3}); len(got) != 3 {
		t.Fatalf("Query(3,3,3) = %v", got)
	}
}

// TestBuildIndexDuplicateTerms is the regression test for the silent
// postings corruption: a document with a repeated term id used to produce
// duplicate entries in that term's postings list, violating the
// sorted-DISTINCT invariant Query's intersection and galloping search rely
// on (duplicate documents in results, matches dropped when the duplicate
// shadowed a later entry).
func TestBuildIndexDuplicateTerms(t *testing.T) {
	terms := [][]uint32{
		{5, 5, 7},       // adjacent duplicate (sorted bag)
		{7},
		{5, 7, 5, 5},    // non-adjacent duplicates (unsorted bag)
		{1, 5},
	}
	ix := BuildIndex(terms)
	if got := ix.Postings(5); len(got) != 3 || got[0] != 0 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Postings(5) = %v, want [0 2 3]", got)
	}
	// The intersection must return each matching document exactly once.
	if got := ix.Query([]uint32{5, 7}); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Query(5,7) = %v, want [0 2]", got)
	}
	// Galloping path: one long clean list against a short duplicated one.
	many := make([][]uint32, 200)
	for d := range many {
		many[d] = []uint32{9}
	}
	many[17] = []uint32{3, 3, 9}
	many[150] = []uint32{3, 9, 3}
	ix = BuildIndex(many)
	if got := ix.Query([]uint32{3, 9}); len(got) != 2 || got[0] != 17 || got[1] != 150 {
		t.Fatalf("galloping Query(3,9) = %v, want [17 150]", got)
	}
}

// TestQueryAgainstBruteForce: random indexes, random conjunctive queries.
func TestQueryAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		docs := 1 + rng.Intn(60)
		vocab := 1 + rng.Intn(12)
		terms := make([][]uint32, docs)
		for d := range terms {
			k := rng.Intn(6)
			seen := map[uint32]struct{}{}
			for i := 0; i < k; i++ {
				tm := uint32(rng.Intn(vocab))
				if _, dup := seen[tm]; !dup {
					seen[tm] = struct{}{}
					terms[d] = append(terms[d], tm)
				}
			}
			sortU32(terms[d])
		}
		ix := BuildIndex(terms)
		q := make([]uint32, 1+rng.Intn(3))
		for i := range q {
			q[i] = uint32(rng.Intn(vocab))
		}
		got := ix.Query(q)
		// Brute force.
		var want []int
		for d, bag := range terms {
			ok := true
			for _, qt := range q {
				found := false
				for _, tm := range bag {
					if tm == qt {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, d)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestGallopingIntersect exercises the asymmetric-length path.
func TestGallopingIntersect(t *testing.T) {
	long := make([]int, 1000)
	for i := range long {
		long[i] = i * 2 // evens
	}
	short := []int{3, 10, 500, 999, 1998}
	got := intersect(short, long)
	want := []int{10, 500, 1998}
	if len(got) != len(want) {
		t.Fatalf("intersect = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("intersect = %v, want %v", got, want)
		}
	}
}

// TestEngineEndToEnd: index a domain of a generated web, rank it with
// ApproxRank, and answer queries.
func TestEngineEndToEnd(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 5000, Domains: 6, Topics: 5, Seed: 3})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	allTerms, err := gen.AssignTerms(ds, gen.TermConfig{Seed: 4})
	if err != nil {
		t.Fatalf("AssignTerms: %v", err)
	}
	sub, err := graph.NewSubgraph(ds.Graph, ds.DomainPages(2))
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	res, err := core.ApproxRank(sub, core.Config{})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	localTerms := make([][]uint32, sub.N())
	for li, gid := range sub.Local {
		localTerms[li] = allTerms[gid]
	}
	eng, err := NewEngine(sub, localTerms, res.Scores)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	// Find a term with a healthy posting list and query it.
	var probe uint32
	best := 0
	counts := map[uint32]int{}
	for _, bag := range localTerms {
		for _, tm := range bag {
			counts[tm]++
			if counts[tm] > best {
				best = counts[tm]
				probe = tm
			}
		}
	}
	hits, err := eng.TopK([]uint32{probe}, 10)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for the most common term")
	}
	if eng.MatchCount([]uint32{probe}) != best {
		t.Fatalf("MatchCount = %d, want %d", eng.MatchCount([]uint32{probe}), best)
	}
	// Hits are score-descending and pages belong to the subgraph.
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatalf("hits not sorted: %v", hits)
		}
	}
	for _, h := range hits {
		if _, local := sub.LocalID(h.Page); !local {
			t.Fatalf("hit %d outside the subgraph", h.Page)
		}
	}
	if _, err := eng.TopK([]uint32{probe}, 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestEngineValidation(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 200, Domains: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sub, err := graph.NewSubgraph(ds.Graph, ds.DomainPages(0))
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	if _, err := NewEngine(nil, nil, nil); err == nil {
		t.Error("nil subgraph accepted")
	}
	if _, err := NewEngine(sub, make([][]uint32, 3), make([]float64, sub.N())); err == nil {
		t.Error("mismatched term bags accepted")
	}
}

// TestAssignTerms: determinism, topical locality, and validation.
func TestAssignTerms(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 4000, Domains: 4, Topics: 4, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	a, err := gen.AssignTerms(ds, gen.TermConfig{Seed: 7})
	if err != nil {
		t.Fatalf("AssignTerms: %v", err)
	}
	b, err := gen.AssignTerms(ds, gen.TermConfig{Seed: 7})
	if err != nil {
		t.Fatalf("AssignTerms: %v", err)
	}
	for p := range a {
		if len(a[p]) != len(b[p]) {
			t.Fatalf("page %d: nondeterministic term count", p)
		}
		for i := range a[p] {
			if a[p][i] != b[p][i] {
				t.Fatalf("page %d: nondeterministic terms", p)
			}
		}
	}
	// Topical locality: same-topic pages share terms more than
	// cross-topic pages (sampled).
	rng := rand.New(rand.NewSource(8))
	sameOverlap, crossOverlap := 0.0, 0.0
	samples := 0
	for i := 0; i < 3000; i++ {
		p := rng.Intn(len(a))
		q := rng.Intn(len(a))
		if p == q || len(a[p]) == 0 || len(a[q]) == 0 {
			continue
		}
		ov := overlap(a[p], a[q])
		if ds.Topic[p] == ds.Topic[q] {
			sameOverlap += ov
		} else {
			crossOverlap += ov
		}
		samples++
	}
	if samples == 0 || sameOverlap <= crossOverlap {
		t.Errorf("no topical locality in terms: same %v vs cross %v", sameOverlap, crossOverlap)
	}
	if _, err := gen.AssignTerms(nil, gen.TermConfig{}); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := gen.AssignTerms(ds, gen.TermConfig{VocabSize: -1}); err == nil {
		t.Error("negative vocabulary accepted")
	}
	if _, err := gen.AssignTerms(ds, gen.TermConfig{MeanTerms: -1}); err == nil {
		t.Error("negative mean terms accepted")
	}
	if _, err := gen.AssignTerms(ds, gen.TermConfig{TopicVocabFraction: 2}); err == nil {
		t.Error("bad topic fraction accepted")
	}
}

func overlap(a, b []uint32) float64 {
	m := map[uint32]struct{}{}
	for _, x := range a {
		m[x] = struct{}{}
	}
	hit := 0
	for _, y := range b {
		if _, ok := m[y]; ok {
			hit++
		}
	}
	return float64(hit)
}
