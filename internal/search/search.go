// Package search implements the query-answering layer of the paper's
// Figure 1: a localized search engine indexes the pages of a subgraph and
// answers keyword queries with results ranked by PageRank-style scores
// (from ApproxRank, so the ordering reflects the global link structure
// the index never sees).
//
// The index is a classic sorted-postings inverted index with AND
// semantics; ranking is score-descending over the matching pages.
package search

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Index maps term ids to sorted postings lists of local page indices.
type Index struct {
	postings map[uint32][]int
	numDocs  int
}

// BuildIndex indexes terms[i] for document i. Term bags are conventionally
// sorted distinct term ids, but repeated term ids are tolerated: each
// document appears at most once in any postings list. Without that
// defensive dedup a duplicated term would insert the same document twice,
// and the duplicate entries would break Query's sorted-intersection
// invariants (duplicate documents in results, galloping search finding
// only the first copy).
func BuildIndex(terms [][]uint32) *Index {
	ix := &Index{postings: make(map[uint32][]int), numDocs: len(terms)}
	for doc, bag := range terms {
		for _, t := range bag {
			// All appends for one document are consecutive, so a duplicate
			// term (sorted or not) can only ever repeat the LAST entry of
			// its postings list.
			if l := ix.postings[t]; len(l) > 0 && l[len(l)-1] == doc {
				continue
			}
			ix.postings[t] = append(ix.postings[t], doc)
		}
	}
	// Documents are visited in increasing order, so postings are sorted.
	return ix
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// Postings returns the documents containing term (sorted ascending). The
// slice aliases internal storage.
func (ix *Index) Postings(term uint32) []int { return ix.postings[term] }

// Query returns the documents containing ALL query terms, sorted
// ascending. An empty query matches nothing.
func (ix *Index) Query(query []uint32) []int {
	if len(query) == 0 {
		return nil
	}
	// Intersect from the rarest list outward.
	lists := make([][]int, 0, len(query))
	seen := map[uint32]struct{}{}
	for _, t := range query {
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		l := ix.postings[t]
		if len(l) == 0 {
			return nil
		}
		lists = append(lists, l)
	}
	sort.Slice(lists, func(a, b int) bool { return len(lists[a]) < len(lists[b]) })
	result := lists[0]
	for _, l := range lists[1:] {
		result = intersect(result, l)
		if len(result) == 0 {
			return nil
		}
	}
	// Copy so callers can keep the result.
	return append([]int(nil), result...)
}

// intersect merges two sorted lists, keeping common entries. The longer
// list is probed by galloping search when it is much longer.
func intersect(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make([]int, 0, len(a))
	if len(b) > 16*len(a) {
		// Galloping: binary-search each element of the short list.
		for _, x := range a {
			i := sort.SearchInts(b, x)
			if i < len(b) && b[i] == x {
				out = append(out, x)
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Hit is one ranked query answer.
type Hit struct {
	// Doc is the local document index; Page the global page id.
	Doc   int
	Page  graph.NodeID
	Score float64
}

// Engine couples an index over a subgraph's pages with their ranking
// scores — the complete localized search engine of Figure 1.
type Engine struct {
	index  *Index
	pages  []graph.NodeID // local doc → global page id
	scores []float64      // local doc → ranking score
}

// NewEngine builds an engine over the subgraph sub whose pages carry the
// given term bags and ranking scores (both indexed by subgraph-local id,
// e.g. ApproxRank output).
func NewEngine(sub *graph.Subgraph, terms [][]uint32, scores []float64) (*Engine, error) {
	if sub == nil {
		return nil, fmt.Errorf("search: nil subgraph")
	}
	if len(terms) != sub.N() || len(scores) != sub.N() {
		return nil, fmt.Errorf("search: got %d term bags and %d scores for %d pages",
			len(terms), len(scores), sub.N())
	}
	return &Engine{
		index:  BuildIndex(terms),
		pages:  sub.Local,
		scores: scores,
	}, nil
}

// TopK answers a conjunctive keyword query with the k highest-ranked
// matching pages (fewer if the match set is smaller).
func (e *Engine) TopK(query []uint32, k int) ([]Hit, error) {
	if k < 1 {
		return nil, fmt.Errorf("search: k=%d < 1", k)
	}
	match := e.index.Query(query)
	hits := make([]Hit, 0, len(match))
	for _, doc := range match {
		hits = append(hits, Hit{Doc: doc, Page: e.pages[doc], Score: e.scores[doc]})
	}
	sort.Slice(hits, func(a, b int) bool {
		if hits[a].Score > hits[b].Score {
			return true
		}
		if hits[a].Score < hits[b].Score {
			return false
		}
		return hits[a].Page < hits[b].Page
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits, nil
}

// MatchCount returns the number of pages matching the query.
func (e *Engine) MatchCount(query []uint32) int { return len(e.index.Query(query)) }
