package crawler

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func lineGraph(n int) *graph.Graph {
	edges := make([][2]graph.NodeID, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]graph.NodeID{graph.NodeID(i), graph.NodeID(i + 1)})
	}
	return graph.MustFromEdges(n, edges)
}

func TestBFSBasic(t *testing.T) {
	g := graph.MustFromEdges(7, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {5, 6},
	})
	order, err := BFS(g, 0, 10)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	// Reachable from 0: {0,1,2,3,4}; 5 and 6 unreachable.
	if len(order) != 5 {
		t.Fatalf("BFS reached %d pages, want 5: %v", len(order), order)
	}
	if order[0] != 0 || order[1] != 1 || order[2] != 2 || order[3] != 3 || order[4] != 4 {
		t.Fatalf("BFS order %v", order)
	}
}

func TestBFSRespectsLimit(t *testing.T) {
	g := lineGraph(100)
	order, err := BFS(g, 0, 7)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if len(order) != 7 {
		t.Fatalf("BFS returned %d pages, want 7", len(order))
	}
	for i, p := range order {
		if int(p) != i {
			t.Fatalf("BFS order %v", order)
		}
	}
}

func TestBFSErrors(t *testing.T) {
	g := lineGraph(5)
	if _, err := BFS(g, 99, 3); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := BFS(g, 0, 0); err == nil {
		t.Error("maxPages=0 accepted")
	}
}

func TestHopsLevels(t *testing.T) {
	g := lineGraph(10)
	got, err := Hops(g, []graph.NodeID{0}, 3)
	if err != nil {
		t.Fatalf("Hops: %v", err)
	}
	if len(got) != 4 { // 0,1,2,3
		t.Fatalf("Hops(3) reached %v", got)
	}
	got, err = Hops(g, []graph.NodeID{0, 5}, 1)
	if err != nil {
		t.Fatalf("Hops: %v", err)
	}
	if len(got) != 4 { // 0,5,1,6
		t.Fatalf("Hops from two seeds reached %v", got)
	}
	got, err = Hops(g, []graph.NodeID{9}, 5)
	if err != nil {
		t.Fatalf("Hops: %v", err)
	}
	if len(got) != 1 { // 9 is dangling
		t.Fatalf("Hops from sink reached %v", got)
	}
	// Hop 0 = seeds only, duplicates removed.
	got, err = Hops(g, []graph.NodeID{2, 2, 3}, 0)
	if err != nil {
		t.Fatalf("Hops: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("Hops(0) = %v", got)
	}
}

func TestHopsErrors(t *testing.T) {
	g := lineGraph(5)
	if _, err := Hops(g, nil, 2); err == nil {
		t.Error("empty seeds accepted")
	}
	if _, err := Hops(g, []graph.NodeID{0}, -1); err == nil {
		t.Error("negative hops accepted")
	}
	if _, err := Hops(g, []graph.NodeID{77}, 1); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestTopicCrawl(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 5000, Domains: 8, Topics: 5, Seed: 12})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	topicOf := func(p graph.NodeID) int { return int(ds.Topic[p]) }
	sub, err := TopicCrawl(ds.Graph, topicOf, 2, 0.3, 3, rng)
	if err != nil {
		t.Fatalf("TopicCrawl: %v", err)
	}
	if len(sub) == 0 {
		t.Fatal("empty topic crawl")
	}
	// The crawl must contain topic-2 seeds and, because of hop expansion,
	// typically other topics as well; it must stay a strict subgraph.
	if len(sub) >= ds.Graph.NumNodes() {
		t.Fatalf("topic crawl swallowed the whole graph: %d pages", len(sub))
	}
	hasTopic := false
	for _, p := range sub {
		if ds.Topic[p] == 2 {
			hasTopic = true
			break
		}
	}
	if !hasTopic {
		t.Fatal("topic crawl contains no pages of its topic")
	}
	// Deterministic for the same rng seed.
	rng2 := rand.New(rand.NewSource(1))
	sub2, err := TopicCrawl(ds.Graph, topicOf, 2, 0.3, 3, rng2)
	if err != nil {
		t.Fatalf("TopicCrawl: %v", err)
	}
	if len(sub) != len(sub2) {
		t.Fatalf("topic crawl not deterministic: %d vs %d", len(sub), len(sub2))
	}
}

func TestTopicCrawlErrors(t *testing.T) {
	g := lineGraph(5)
	rng := rand.New(rand.NewSource(1))
	topicOf := func(p graph.NodeID) int { return 0 }
	if _, err := TopicCrawl(g, topicOf, 0, 0, 2, rng); err == nil {
		t.Error("zero seed fraction accepted")
	}
	if _, err := TopicCrawl(g, topicOf, 5, 1, 2, rng); err == nil {
		t.Error("topic with no pages accepted")
	}
}
