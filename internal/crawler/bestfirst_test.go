package crawler

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

// TestBestFirstBasics: the crawl returns distinct pages, seed first,
// within budget.
func TestBestFirstBasics(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 5000, Domains: 8, Seed: 9})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	order, err := BestFirst(ds.Graph, 10, BestFirstConfig{MaxPages: 300})
	if err != nil {
		t.Fatalf("BestFirst: %v", err)
	}
	if len(order) == 0 || order[0] != 10 {
		t.Fatalf("seed not first: %v", order[:3])
	}
	if len(order) > 300 {
		t.Fatalf("crawl exceeded budget: %d", len(order))
	}
	seen := map[graph.NodeID]bool{}
	for _, p := range order {
		if seen[p] {
			t.Fatalf("page %d crawled twice", p)
		}
		seen[p] = true
	}
}

// TestBestFirstBeatsBFSOnAuthority: with the same budget, the focused
// crawl must collect more total true PageRank mass than breadth-first
// crawling — the premise of the paper's Figure 1 scenario.
func TestBestFirstBeatsBFSOnAuthority(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 20000, Domains: 12, Seed: 33})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := ds.Graph
	truth, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	// Seed: a mid-degree page so neither crawler starts on a hub.
	seed := graph.NodeID(0)
	for p := 0; p < g.NumNodes(); p++ {
		if g.OutDegree(graph.NodeID(p)) == 4 {
			seed = graph.NodeID(p)
			break
		}
	}
	budget := 1000
	bf, err := BestFirst(g, seed, BestFirstConfig{MaxPages: budget})
	if err != nil {
		t.Fatalf("BestFirst: %v", err)
	}
	bfs, err := BFS(g, seed, budget)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	mass := func(pages []graph.NodeID) float64 {
		m := 0.0
		for _, p := range pages {
			m += truth.Scores[p]
		}
		return m
	}
	bfMass, bfsMass := mass(bf), mass(bfs)
	if bfMass <= bfsMass {
		t.Errorf("best-first collected %.5f authority mass, BFS %.5f", bfMass, bfsMass)
	}
}

// TestBestFirstStallsGracefully: a crawl whose frontier dries up returns
// what it reached.
func TestBestFirstStallsGracefully(t *testing.T) {
	// 0→1→2, 3→4 disconnected; crawl from 0 can reach only 3 pages.
	g := graph.MustFromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {3, 4}})
	order, err := BestFirst(g, 0, BestFirstConfig{MaxPages: 4})
	if err != nil {
		t.Fatalf("BestFirst: %v", err)
	}
	if len(order) != 3 {
		t.Fatalf("reached %d pages, want 3: %v", len(order), order)
	}
}

// TestBestFirstRescore: a tiny RescoreEvery exercises the re-ranking path
// and must still produce a valid crawl.
func TestBestFirstRescore(t *testing.T) {
	ds, err := gen.Generate(gen.Config{Pages: 3000, Domains: 6, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	order, err := BestFirst(ds.Graph, 1, BestFirstConfig{MaxPages: 200, RescoreEvery: 25})
	if err != nil {
		t.Fatalf("BestFirst: %v", err)
	}
	if len(order) != 200 {
		t.Fatalf("crawl returned %d pages, want 200", len(order))
	}
}

func TestBestFirstValidation(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if _, err := BestFirst(nil, 0, BestFirstConfig{MaxPages: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := BestFirst(g, 9, BestFirstConfig{MaxPages: 2}); err == nil {
		t.Error("out-of-range seed accepted")
	}
	if _, err := BestFirst(g, 0, BestFirstConfig{}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := BestFirst(g, 0, BestFirstConfig{MaxPages: 4}); err == nil {
		t.Error("whole-graph budget accepted")
	}
	if _, err := BestFirst(g, 0, BestFirstConfig{MaxPages: 2, RescoreEvery: -1}); err == nil {
		t.Error("negative RescoreEvery accepted")
	}
}
