// Package crawler builds the subgraph types the paper evaluates on:
// breadth-first-search crawls from a seed page (BFS subgraphs) and
// dmoz-style topic crawls (category seed set expanded a bounded number of
// hops — TS subgraphs). DS subgraphs need no crawler: they are domain
// blocks read directly off the dataset.
package crawler

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// BFS crawls g breadth-first along out-links from seed and returns the
// first maxPages distinct pages reached (including the seed), in crawl
// order. Like a real crawler it may stall before maxPages if the reachable
// set is smaller; callers should check the returned length.
func BFS(g *graph.Graph, seed graph.NodeID, maxPages int) ([]graph.NodeID, error) {
	if int(seed) >= g.NumNodes() {
		return nil, fmt.Errorf("crawler: seed %d outside graph (N=%d)", seed, g.NumNodes())
	}
	if maxPages < 1 {
		return nil, fmt.Errorf("crawler: maxPages %d < 1", maxPages)
	}
	visited := graph.NewNodeSet(g.NumNodes())
	visited.Add(seed)
	order := []graph.NodeID{seed}
	for head := 0; head < len(order) && len(order) < maxPages; head++ {
		for _, v := range g.OutNeighbors(order[head]) {
			if visited.Contains(v) {
				continue
			}
			visited.Add(v)
			order = append(order, v)
			if len(order) == maxPages {
				break
			}
		}
	}
	return order, nil
}

// Hops returns all pages within the given number of out-link hops of the
// seed set (hop 0 = the seeds themselves), in BFS order.
func Hops(g *graph.Graph, seeds []graph.NodeID, hops int) ([]graph.NodeID, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: empty seed set")
	}
	if hops < 0 {
		return nil, fmt.Errorf("crawler: negative hop count %d", hops)
	}
	visited := graph.NewNodeSet(g.NumNodes())
	var order []graph.NodeID
	for _, s := range seeds {
		if int(s) >= g.NumNodes() {
			return nil, fmt.Errorf("crawler: seed %d outside graph (N=%d)", s, g.NumNodes())
		}
		if !visited.Contains(s) {
			visited.Add(s)
			order = append(order, s)
		}
	}
	level := append([]graph.NodeID(nil), order...)
	for h := 0; h < hops; h++ {
		var next []graph.NodeID
		for _, u := range level {
			for _, v := range g.OutNeighbors(u) {
				if visited.Contains(v) {
					continue
				}
				visited.Add(v)
				order = append(order, v)
				next = append(next, v)
			}
		}
		if len(next) == 0 {
			break
		}
		level = next
	}
	return order, nil
}

// TopicCrawl mimics the paper's TS subgraph construction: the "category
// listing" is a random seedFraction sample of the pages labelled with the
// topic (identified by the topicOf function), and the subgraph is the seed
// set plus every page within hops out-link hops of it (the paper crawls
// "to all pages within three links" of the dmoz category pages).
func TopicCrawl(g *graph.Graph, topicOf func(graph.NodeID) int, topic int,
	seedFraction float64, hops int, rng *rand.Rand) ([]graph.NodeID, error) {
	if seedFraction <= 0 || seedFraction > 1 {
		return nil, fmt.Errorf("crawler: seed fraction %v outside (0,1]", seedFraction)
	}
	var seeds []graph.NodeID
	for p := 0; p < g.NumNodes(); p++ {
		if topicOf(graph.NodeID(p)) == topic && rng.Float64() < seedFraction {
			seeds = append(seeds, graph.NodeID(p))
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: no seed pages found for topic %d", topic)
	}
	return Hops(g, seeds, hops)
}
