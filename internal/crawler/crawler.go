// Package crawler builds the subgraph types the paper evaluates on:
// breadth-first-search crawls from a seed page (BFS subgraphs) and
// dmoz-style topic crawls (category seed set expanded a bounded number of
// hops — TS subgraphs). DS subgraphs need no crawler: they are domain
// blocks read directly off the dataset.
//
// Every crawl has a context-aware variant (BFSCtx, HopsCtx,
// TopicCrawlCtx, BestFirstCtx). Cancellation is checked periodically as
// pages are expanded; a cancelled crawl returns the frontier gathered so
// far TOGETHER WITH a non-nil error wrapping ctx.Err(), so callers that
// can use a truncated crawl (a best-effort subgraph is still a subgraph)
// may, while callers that need the full frontier see the failure.
package crawler

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ctxCheckEvery is how many page expansions run between cancellation
// checks in the crawl loops.
const ctxCheckEvery = 256

// BFS crawls g breadth-first along out-links from seed and returns the
// first maxPages distinct pages reached (including the seed), in crawl
// order. Like a real crawler it may stall before maxPages if the reachable
// set is smaller; callers should check the returned length. It is BFSCtx
// with context.Background().
func BFS(g *graph.Graph, seed graph.NodeID, maxPages int) ([]graph.NodeID, error) {
	return BFSCtx(context.Background(), g, seed, maxPages)
}

// BFSCtx is BFS under a context. On cancellation it returns the pages
// crawled so far plus a non-nil error wrapping ctx.Err().
func BFSCtx(ctx context.Context, g *graph.Graph, seed graph.NodeID, maxPages int) ([]graph.NodeID, error) {
	if int(seed) >= g.NumNodes() {
		return nil, fmt.Errorf("crawler: seed %d outside graph (N=%d)", seed, g.NumNodes())
	}
	if maxPages < 1 {
		return nil, fmt.Errorf("crawler: maxPages %d < 1", maxPages)
	}
	visited := graph.NewNodeSet(g.NumNodes())
	visited.Add(seed)
	order := []graph.NodeID{seed}
	for head := 0; head < len(order) && len(order) < maxPages; head++ {
		if head%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return order, fmt.Errorf("crawler: bfs cancelled after %d pages: %w", len(order), err)
			}
		}
		for _, v := range g.OutNeighbors(order[head]) {
			if visited.Contains(v) {
				continue
			}
			visited.Add(v)
			order = append(order, v)
			if len(order) == maxPages {
				break
			}
		}
	}
	return order, nil
}

// Hops returns all pages within the given number of out-link hops of the
// seed set (hop 0 = the seeds themselves), in BFS order. It is HopsCtx
// with context.Background().
func Hops(g *graph.Graph, seeds []graph.NodeID, hops int) ([]graph.NodeID, error) {
	return HopsCtx(context.Background(), g, seeds, hops)
}

// HopsCtx is Hops under a context. On cancellation it returns the pages
// gathered so far plus a non-nil error wrapping ctx.Err().
func HopsCtx(ctx context.Context, g *graph.Graph, seeds []graph.NodeID, hops int) ([]graph.NodeID, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: empty seed set")
	}
	if hops < 0 {
		return nil, fmt.Errorf("crawler: negative hop count %d", hops)
	}
	visited := graph.NewNodeSet(g.NumNodes())
	var order []graph.NodeID
	for _, s := range seeds {
		if int(s) >= g.NumNodes() {
			return nil, fmt.Errorf("crawler: seed %d outside graph (N=%d)", s, g.NumNodes())
		}
		if !visited.Contains(s) {
			visited.Add(s)
			order = append(order, s)
		}
	}
	level := append([]graph.NodeID(nil), order...)
	for h := 0; h < hops; h++ {
		var next []graph.NodeID
		for hi, u := range level {
			if hi%ctxCheckEvery == 0 {
				if err := ctx.Err(); err != nil {
					return order, fmt.Errorf("crawler: hop crawl cancelled at hop %d after %d pages: %w", h, len(order), err)
				}
			}
			for _, v := range g.OutNeighbors(u) {
				if visited.Contains(v) {
					continue
				}
				visited.Add(v)
				order = append(order, v)
				next = append(next, v)
			}
		}
		if len(next) == 0 {
			break
		}
		level = next
	}
	return order, nil
}

// TopicCrawl mimics the paper's TS subgraph construction: the "category
// listing" is a random seedFraction sample of the pages labelled with the
// topic (identified by the topicOf function), and the subgraph is the seed
// set plus every page within hops out-link hops of it (the paper crawls
// "to all pages within three links" of the dmoz category pages). It is
// TopicCrawlCtx with context.Background().
func TopicCrawl(g *graph.Graph, topicOf func(graph.NodeID) int, topic int,
	seedFraction float64, hops int, rng *rand.Rand) ([]graph.NodeID, error) {
	return TopicCrawlCtx(context.Background(), g, topicOf, topic, seedFraction, hops, rng)
}

// TopicCrawlCtx is TopicCrawl under a context. Cancellation is checked
// during the seed scan and throughout the hop expansion; a cancelled
// crawl returns the frontier gathered so far plus a non-nil error
// wrapping ctx.Err().
func TopicCrawlCtx(ctx context.Context, g *graph.Graph, topicOf func(graph.NodeID) int, topic int,
	seedFraction float64, hops int, rng *rand.Rand) ([]graph.NodeID, error) {
	if seedFraction <= 0 || seedFraction > 1 {
		return nil, fmt.Errorf("crawler: seed fraction %v outside (0,1]", seedFraction)
	}
	var seeds []graph.NodeID
	for p := 0; p < g.NumNodes(); p++ {
		if p%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("crawler: topic crawl cancelled while sampling seeds: %w", err)
			}
		}
		if topicOf(graph.NodeID(p)) == topic && rng.Float64() < seedFraction {
			seeds = append(seeds, graph.NodeID(p))
		}
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("crawler: no seed pages found for topic %d", topic)
	}
	return HopsCtx(ctx, g, seeds, hops)
}
