package crawler

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
)

// countdownContext flips Err to context.Canceled after n calls. The crawl
// loops poll ctx.Err() (every ctxCheckEvery expansions, or per fetch for
// the best-first crawler), so this lands cancellations at exact points in
// the crawl with no timing dependence.
type countdownContext struct {
	context.Context
	left int
}

func (c *countdownContext) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func newCountdown(calls int) *countdownContext {
	return &countdownContext{Context: context.Background(), left: calls}
}

func TestBFSCtxCancelledMidCrawl(t *testing.T) {
	// A 1000-page line forces the crawl past the second periodic check
	// (head 256): one check passes, the next cancels with 257 pages held.
	g := lineGraph(1000)
	order, err := BFSCtx(newCountdown(1), g, 0, 1000)
	if err == nil {
		t.Fatal("cancelled crawl finished")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(order) != ctxCheckEvery+1 {
		t.Errorf("partial frontier holds %d pages, want %d", len(order), ctxCheckEvery+1)
	}
	// The partial result is a genuine crawl prefix, not garbage.
	for i, p := range order {
		if int(p) != i {
			t.Fatalf("order[%d] = %d, want %d", i, p, i)
		}
	}
	if !strings.Contains(err.Error(), "after 257 pages") {
		t.Errorf("error %q does not report the pages gathered", err)
	}
}

func TestHopsCtxCancelledMidCrawl(t *testing.T) {
	// On a line each hop level holds one page, so the per-level check
	// fires once per hop: one check passes (hop 0), hop 1 cancels. The
	// partial frontier is the seed plus its hop-0 expansion.
	g := lineGraph(10)
	order, err := HopsCtx(newCountdown(1), g, []graph.NodeID{0}, 9)
	if err == nil {
		t.Fatal("cancelled crawl finished")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Errorf("partial frontier = %v, want [0 1]", order)
	}
	if !strings.Contains(err.Error(), "hop 1") {
		t.Errorf("error %q does not report the hop reached", err)
	}
}

func TestTopicCrawlCtxTimedOut(t *testing.T) {
	g := lineGraph(100)
	topicOf := func(p graph.NodeID) int {
		if p < 5 {
			return 1
		}
		return 0
	}

	// An already-expired deadline: the crawl must fail cleanly during seed
	// sampling — nil frontier, wrapped DeadlineExceeded.
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	order, err := TopicCrawlCtx(ctx, g, topicOf, 1, 1.0, 3, rand.New(rand.NewSource(1)))
	if order != nil {
		t.Errorf("timed-out seed scan returned frontier %v", order)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}

	// Cancellation landing after the seed scan (100 pages = one check)
	// returns the partial frontier gathered so far.
	order, err = TopicCrawlCtx(newCountdown(2), g, topicOf, 1, 1.0, 9, rand.New(rand.NewSource(1)))
	if err == nil {
		t.Fatal("cancelled crawl finished")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(order) == 0 {
		t.Error("cancelled hop expansion returned no partial frontier")
	}
}

func TestTopicCrawlCtxBackgroundMatchesPlain(t *testing.T) {
	g := lineGraph(60)
	topicOf := func(p graph.NodeID) int { return int(p) % 4 }
	plain, err := TopicCrawl(g, topicOf, 2, 0.5, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("TopicCrawl: %v", err)
	}
	withCtx, err := TopicCrawlCtx(context.Background(), g, topicOf, 2, 0.5, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("TopicCrawlCtx: %v", err)
	}
	if len(plain) != len(withCtx) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(plain), len(withCtx))
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("frontier[%d] differs: %d vs %d", i, plain[i], withCtx[i])
		}
	}
}

func TestBestFirstCtxCancelled(t *testing.T) {
	g := lineGraph(50)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The per-fetch check fires before the first pop, so only the seed is
	// returned.
	order, err := BestFirstCtx(ctx, g, 0, BestFirstConfig{MaxPages: 20})
	if err == nil {
		t.Fatal("cancelled crawl finished")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(order) != 1 || order[0] != 0 {
		t.Errorf("partial order = %v, want just the seed", order)
	}

	// Mid-crawl: five fetch checks pass, the sixth cancels with the seed
	// plus five fetched pages in hand.
	order, err = BestFirstCtx(newCountdown(5), g, 0, BestFirstConfig{MaxPages: 20})
	if err == nil {
		t.Fatal("cancelled crawl finished")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if len(order) != 6 {
		t.Errorf("partial order holds %d pages, want 6", len(order))
	}
}
