package crawler

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// BestFirstConfig parameterizes the focused crawl.
type BestFirstConfig struct {
	// MaxPages is the crawl budget. Required.
	MaxPages int
	// RescoreEvery controls how often the crawler re-ranks what it has:
	// every that many fetches it runs ApproxRank on the crawled subgraph
	// and rebuilds the frontier priorities from the fresh scores. Default
	// max(64, MaxPages/16).
	RescoreEvery int
	// Walk carries the ApproxRank parameters for the re-ranking runs.
	Walk core.Config
}

// BestFirst implements the focused crawler of the paper's introduction
// (Figure 1): starting from a seed, it repeatedly fetches the most
// promising frontier page, where promise is the authority flowing into
// the page from the already-crawled subgraph under its current
// ApproxRank scores — "it selects links based on their scores". Between
// periodic re-rankings, newly fetched pages propagate their own priority
// to their out-links, so the crawl chases authority rather than hop
// distance (contrast BFS).
//
// The returned pages are in fetch order, seed first. BestFirst is
// BestFirstCtx with context.Background().
func BestFirst(g *graph.Graph, seed graph.NodeID, cfg BestFirstConfig) ([]graph.NodeID, error) {
	return BestFirstCtx(context.Background(), g, seed, cfg)
}

// BestFirstCtx is BestFirst under a context. Cancellation is checked
// before every fetch and propagates into the periodic ApproxRank
// re-rankings; a cancelled crawl returns the pages fetched so far plus a
// non-nil error wrapping ctx.Err().
func BestFirstCtx(ctx context.Context, g *graph.Graph, seed graph.NodeID, cfg BestFirstConfig) ([]graph.NodeID, error) {
	if g == nil {
		return nil, fmt.Errorf("crawler: nil graph")
	}
	if int(seed) >= g.NumNodes() {
		return nil, fmt.Errorf("crawler: seed %d outside graph (N=%d)", seed, g.NumNodes())
	}
	if cfg.MaxPages < 1 {
		return nil, fmt.Errorf("crawler: MaxPages %d < 1", cfg.MaxPages)
	}
	if cfg.MaxPages >= g.NumNodes() {
		return nil, fmt.Errorf("crawler: MaxPages %d must be below the graph size %d (the whole graph needs no crawl)",
			cfg.MaxPages, g.NumNodes())
	}
	if cfg.RescoreEvery == 0 {
		cfg.RescoreEvery = cfg.MaxPages / 16
		if cfg.RescoreEvery < 64 {
			cfg.RescoreEvery = 64
		}
	}
	if cfg.RescoreEvery < 1 {
		return nil, fmt.Errorf("crawler: RescoreEvery %d < 1", cfg.RescoreEvery)
	}

	crawled := graph.NewNodeSet(g.NumNodes())
	crawled.Add(seed)
	order := []graph.NodeID{seed}
	// score[p] is the current authority estimate of a crawled page;
	// priority[f] accumulates the authority flowing into frontier page f.
	score := map[graph.NodeID]float64{seed: 1}
	priority := map[graph.NodeID]float64{}
	pq := &frontierQueue{}
	heap.Init(pq)

	push := func(u graph.NodeID) {
		su := score[u]
		if g.Dangling(u) || su == 0 {
			return
		}
		wout := g.WeightOut(u)
		adj := g.OutNeighbors(u)
		ws := g.OutWeights(u)
		for k, v := range adj {
			if crawled.Contains(v) {
				continue
			}
			p := 1.0 / wout
			if ws != nil {
				p = ws[k] / wout
			}
			priority[v] += su * p
			heap.Push(pq, frontierItem{v, priority[v]})
		}
	}
	push(seed)

	sinceRescore := 0
	for len(order) < cfg.MaxPages && pq.Len() > 0 {
		// A fetch is the unit of work a real focused crawler would pay
		// network latency for, so cancellation is checked per fetch.
		if err := ctx.Err(); err != nil {
			return order, fmt.Errorf("crawler: best-first crawl cancelled after %d pages: %w", len(order), err)
		}
		item := heap.Pop(pq).(frontierItem)
		// The popped snapshot is compared bit-for-bit against the live
		// priority it was copied from; any re-accumulation since the push
		// makes it stale. Exactness is the point — no arithmetic happens
		// between the copy and the compare.
		//arlint:allow floatcmp stale-snapshot check compares a copied value
		if crawled.Contains(item.page) || item.prio != priority[item.page] {
			continue // stale queue entry
		}
		crawled.Add(item.page)
		order = append(order, item.page)
		delete(priority, item.page)
		// Until the next re-ranking, the fetched page's own priority
		// serves as its authority estimate.
		score[item.page] = item.prio
		push(item.page)

		sinceRescore++
		if sinceRescore >= cfg.RescoreEvery && len(order) < cfg.MaxPages {
			sinceRescore = 0
			if err := rescore(ctx, g, cfg.Walk, order, score); err != nil {
				return order, err
			}
			// Rebuild frontier priorities from the fresh scores.
			for f := range priority {
				delete(priority, f)
			}
			*pq = (*pq)[:0]
			for _, u := range order {
				push(u)
			}
		}
	}
	return order, nil
}

// rescore runs ApproxRank on the crawled subgraph and refreshes the
// crawled pages' authority estimates. The walk runs under ctx so a
// cancellation landing mid-re-ranking aborts promptly.
func rescore(ctx context.Context, g *graph.Graph, walk core.Config, order []graph.NodeID, score map[graph.NodeID]float64) error {
	sub, err := graph.NewSubgraph(g, order)
	if err != nil {
		return fmt.Errorf("crawler: rescore: %w", err)
	}
	chain, err := core.NewApproxChain(sub)
	if err != nil {
		return fmt.Errorf("crawler: rescore: %w", err)
	}
	res, err := chain.RunCtx(ctx, walk)
	if err != nil {
		return fmt.Errorf("crawler: rescore: %w", err)
	}
	// Scale so the crawled pages' estimates stay O(1) regardless of how
	// much mass Λ holds (only relative priorities matter).
	scale := 1.0
	if res.Lambda < 1 {
		scale = 1 / (1 - res.Lambda)
	}
	for li, gid := range sub.Local {
		score[gid] = res.Scores[li] * scale
	}
	return nil
}

// frontierItem is a (page, priority) snapshot; stale snapshots are
// skipped at pop time by comparing against the live priority map.
type frontierItem struct {
	page graph.NodeID
	prio float64
}

type frontierQueue []frontierItem

func (q frontierQueue) Len() int { return len(q) }
func (q frontierQueue) Less(a, b int) bool {
	if q[a].prio > q[b].prio {
		return true
	}
	if q[a].prio < q[b].prio {
		return false
	}
	return q[a].page < q[b].page
}
func (q frontierQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *frontierQueue) Push(x any)   { *q = append(*q, x.(frontierItem)) }
func (q *frontierQueue) Pop() any {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}
