package pagerank

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func randomTestGraph(rng *rand.Rand, n int, danglingFrac float64) *graph.Graph {
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		if rng.Float64() < danglingFrac {
			continue
		}
		d := 1 + rng.Intn(6)
		for e := 0; e < d; e++ {
			v := rng.Intn(n)
			if v != u {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestGaussSeidelAgreement: Gauss–Seidel converges to the same stationary
// vector as power iteration, on unweighted and weighted graphs with
// dangling pages.
func TestGaussSeidelAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 12; trial++ {
		g := randomTestGraph(rng, 40+rng.Intn(60), 0.1)
		plain := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000})
		gs := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000, Method: MethodGaussSeidel})
		if d := L1(plain.Scores, gs.Scores); d > 1e-8 {
			t.Fatalf("trial %d: Gauss–Seidel differs by L1=%g", trial, d)
		}
		if !gs.Converged {
			t.Fatalf("trial %d: Gauss–Seidel did not converge", trial)
		}
	}
}

// TestGaussSeidelFasterConvergence: on a web-like graph (communities with
// mostly internal links, i.e. a slowly mixing chain) Gauss–Seidel needs
// fewer sweeps than power iteration for the same tolerance. On fast-mixing
// expander-like random graphs the displacement norm of plain power
// iteration can decay faster than Gauss–Seidel's, so the blocky structure
// here is essential — it is also the structure of the paper's workloads.
func TestGaussSeidelFasterConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const (
		blocks    = 20
		blockSize = 50
	)
	n := blocks * blockSize
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		blk := u / blockSize
		d := 1 + rng.Intn(5)
		for e := 0; e < d; e++ {
			var v int
			if rng.Float64() < 0.92 { // intra-community link
				v = blk*blockSize + rng.Intn(blockSize)
			} else {
				v = rng.Intn(n)
			}
			if v != u {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	plain := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000})
	gs := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000, Method: MethodGaussSeidel})
	if gs.Iterations >= plain.Iterations {
		t.Errorf("Gauss–Seidel took %d sweeps, power iteration %d", gs.Iterations, plain.Iterations)
	}
}

// TestGaussSeidelWeighted: agreement on weighted graphs.
func TestGaussSeidelWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(60)
	for u := 0; u < 60; u++ {
		d := 1 + rng.Intn(5)
		for e := 0; e < d; e++ {
			v := rng.Intn(60)
			if v != u {
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), 0.2+rng.Float64())
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	plain := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000})
	gs := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000, Method: MethodGaussSeidel})
	if d := L1(plain.Scores, gs.Scores); d > 1e-8 {
		t.Fatalf("weighted Gauss–Seidel differs by L1=%g", d)
	}
}

// TestAdaptiveAgreement: adaptive freezing perturbs the result by at most
// ~N·threshold, and actually freezes pages.
func TestAdaptiveAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 8; trial++ {
		g := randomTestGraph(rng, 200, 0.1)
		plain := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000})
		ad := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000, AdaptiveFreeze: 1e-4})
		if d := L1(plain.Scores, ad.Scores); d > 1e-2 {
			t.Fatalf("trial %d: adaptive differs by L1=%g", trial, d)
		}
		if ad.FrozenPages == 0 {
			t.Errorf("trial %d: adaptive froze no pages", trial)
		}
	}
}

// TestAdaptiveTinyThresholdExact: with a freeze threshold far below the
// tolerance, adaptive matches plain iteration almost exactly.
func TestAdaptiveTinyThresholdExact(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	g := randomTestGraph(rng, 150, 0.05)
	plain := computeOrDie(t, g, Options{Tolerance: 1e-9, MaxIterations: 5000})
	ad := computeOrDie(t, g, Options{Tolerance: 1e-9, MaxIterations: 5000, AdaptiveFreeze: 1e-9})
	if d := L1(plain.Scores, ad.Scores); d > 1e-5 {
		t.Fatalf("adaptive(tiny) differs by L1=%g", d)
	}
}

// TestAdaptivePreservesRanking: the freeze error must not disturb the
// top of the ranking.
func TestAdaptivePreservesRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := randomTestGraph(rng, 400, 0.08)
	plain := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000})
	ad := computeOrDie(t, g, Options{Tolerance: 1e-10, MaxIterations: 5000, AdaptiveFreeze: 1e-5})
	top := func(s []float64) int {
		best := 0
		for i, x := range s {
			if x > s[best] {
				best = i
			}
		}
		return best
	}
	if top(plain.Scores) != top(ad.Scores) {
		t.Errorf("adaptive changed the top page: %d vs %d", top(plain.Scores), top(ad.Scores))
	}
}

// TestMethodValidation: invalid method combinations are rejected.
func TestMethodValidation(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	bad := []Options{
		{Method: Method(9)},
		{AdaptiveFreeze: -1},
		{Method: MethodGaussSeidel, ExtrapolateEvery: 5},
		{Method: MethodGaussSeidel, AdaptiveFreeze: 1e-4},
		{AdaptiveFreeze: 1e-4, ExtrapolateEvery: 5},
	}
	for i, o := range bad {
		if _, err := Compute(g, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
}
