package pagerank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func computeOrDie(t testing.TB, g *graph.Graph, opts Options) *Result {
	t.Helper()
	res, err := Compute(g, opts)
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	return res
}

// TestCycleUniform: on a directed cycle every page has the same score 1/n.
func TestCycleUniform(t *testing.T) {
	n := 7
	edges := make([][2]graph.NodeID, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]graph.NodeID{graph.NodeID(i), graph.NodeID((i + 1) % n)}
	}
	g := graph.MustFromEdges(n, edges)
	res := computeOrDie(t, g, Options{Tolerance: 1e-12})
	for i, s := range res.Scores {
		if math.Abs(s-1.0/float64(n)) > 1e-9 {
			t.Fatalf("score[%d] = %v, want %v", i, s, 1.0/float64(n))
		}
	}
	if !res.Converged {
		t.Fatal("cycle did not converge")
	}
}

// TestTwoNodeAnalytic checks the closed form for the two-page graph
// 0⇄1: by symmetry both scores are 1/2.
func TestTwoNodeAnalytic(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.NodeID{{0, 1}, {1, 0}})
	res := computeOrDie(t, g, Options{Tolerance: 1e-13})
	if math.Abs(res.Scores[0]-0.5) > 1e-10 || math.Abs(res.Scores[1]-0.5) > 1e-10 {
		t.Fatalf("scores = %v, want [0.5 0.5]", res.Scores)
	}
}

// TestStarAnalytic checks a hub-and-spoke closed form: k leaves all link to
// a hub, the hub links back to every leaf. With damping ε:
//
//	hub = (1−ε)/n + ε·(leaves sum) ; each leaf = (1−ε)/n + ε·hub/k.
func TestStarAnalytic(t *testing.T) {
	k := 5
	n := k + 1
	var edges [][2]graph.NodeID
	for i := 1; i <= k; i++ {
		edges = append(edges, [2]graph.NodeID{graph.NodeID(i), 0})
		edges = append(edges, [2]graph.NodeID{0, graph.NodeID(i)})
	}
	g := graph.MustFromEdges(n, edges)
	res := computeOrDie(t, g, Options{Tolerance: 1e-14, MaxIterations: 5000})
	eps := 0.85
	// Solve the 2-unknown linear system for hub h and leaf l:
	// h = (1−ε)/n + ε·k·l ;  l = (1−ε)/n + ε·h/k
	base := (1 - eps) / float64(n)
	h := (base + eps*float64(k)*base) / (1 - eps*eps)
	l := base + eps*h/float64(k)
	if math.Abs(res.Scores[0]-h) > 1e-9 {
		t.Fatalf("hub = %v, want %v", res.Scores[0], h)
	}
	for i := 1; i <= k; i++ {
		if math.Abs(res.Scores[i]-l) > 1e-9 {
			t.Fatalf("leaf %d = %v, want %v", i, res.Scores[i], l)
		}
	}
}

// TestScoresSumToOne property: on random graphs (with dangling pages) the
// result is a probability distribution.
func TestScoresSumToOne(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.2 {
				continue // dangling
			}
			d := 1 + rng.Intn(5)
			for e := 0; e < d; e++ {
				b.AddEdge(graph.NodeID(u), graph.NodeID(rng.Intn(n)))
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		res, err := Compute(g, Options{})
		if err != nil {
			return false
		}
		sum := 0.0
		for _, s := range res.Scores {
			if s < 0 {
				return false
			}
			sum += s
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestDanglingConservation: a graph that is entirely dangling yields the
// personalization vector as its stationary distribution.
func TestDanglingConservation(t *testing.T) {
	b := graph.NewBuilder(4)
	b.EnsureNode(3)
	b.AddEdge(0, 1) // node 0 links once; 1,2,3 dangling
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res := computeOrDie(t, g, Options{Tolerance: 1e-13, MaxIterations: 5000})
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %v", sum)
	}
	// Node 1 receives node 0's full endorsement and must outrank the
	// symmetric dangling nodes 2,3.
	if !(res.Scores[1] > res.Scores[2]) {
		t.Fatalf("scores = %v: node 1 should outrank node 2", res.Scores)
	}
	if math.Abs(res.Scores[2]-res.Scores[3]) > 1e-12 {
		t.Fatalf("symmetric nodes differ: %v vs %v", res.Scores[2], res.Scores[3])
	}
}

// TestPersonalizationBias: personalization mass concentrated on one page
// raises its score relative to the uniform run.
func TestPersonalizationBias(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	uni := computeOrDie(t, g, Options{Tolerance: 1e-12})
	p := []float64{0.7, 0.1, 0.1, 0.1}
	biased := computeOrDie(t, g, Options{Tolerance: 1e-12, Personalization: p})
	if !(biased.Scores[0] > uni.Scores[0]) {
		t.Fatalf("personalization did not bias node 0: %v vs %v", biased.Scores[0], uni.Scores[0])
	}
}

// TestCustomDanglingDist: dangling mass routed entirely to one page.
func TestCustomDanglingDist(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}}) // 1 and 2 dangling
	d := []float64{0, 0, 1}
	res := computeOrDie(t, g, Options{Tolerance: 1e-13, DanglingDist: d, MaxIterations: 5000})
	// All dangling mass flows to node 2; it must dominate node 1's single
	// endorsement path.
	if !(res.Scores[2] > res.Scores[1]) {
		t.Fatalf("scores = %v: node 2 should dominate", res.Scores)
	}
}

// TestWeightedTransitions: a 2:1 weighted split sends twice the authority
// along the heavy edge.
func TestWeightedTransitions(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(1, 0, 1)
	b.AddWeightedEdge(2, 0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res := computeOrDie(t, g, Options{Tolerance: 1e-13})
	if !(res.Scores[1] > res.Scores[2]) {
		t.Fatalf("scores = %v: heavier edge target should win", res.Scores)
	}
	// Exact relation: s1−s2 = ε·s0·(2/3 − 1/3).
	eps := 0.85
	want := eps * res.Scores[0] / 3
	if math.Abs((res.Scores[1]-res.Scores[2])-want) > 1e-9 {
		t.Fatalf("score gap %v, want %v", res.Scores[1]-res.Scores[2], want)
	}
}

// TestExtrapolationAgreement: extrapolated runs converge to the same
// stationary vector as plain power iteration.
func TestExtrapolationAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(50)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			d := 1 + rng.Intn(6)
			for e := 0; e < d; e++ {
				b.AddEdge(graph.NodeID(u), graph.NodeID(rng.Intn(n)))
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		plain := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000})
		extra := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000, ExtrapolateEvery: 10})
		if d := L1(plain.Scores, extra.Scores); d > 1e-8 {
			t.Fatalf("trial %d: extrapolated vector differs by L1=%g", trial, d)
		}
	}
}

// TestStartVector: iteration started from the converged vector terminates
// immediately.
func TestStartVector(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	first := computeOrDie(t, g, Options{Tolerance: 1e-12, MaxIterations: 5000})
	again := computeOrDie(t, g, Options{Tolerance: 1e-6, Start: first.Scores})
	if again.Iterations > 2 {
		t.Fatalf("warm start took %d iterations", again.Iterations)
	}
}

// TestOptionValidation exercises the error paths.
func TestOptionValidation(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	bad := []Options{
		{Epsilon: 1.2},
		{Epsilon: -0.5},
		{Tolerance: -1},
		{MaxIterations: -1},
		{Personalization: []float64{0.5, 0.5}},      // wrong length
		{Personalization: []float64{0.5, 0.6, 0.5}}, // sum != 1
		{Personalization: []float64{1.5, -0.5, 0}},  // negative
		{DanglingDist: []float64{0.2, 0.2, 0.2}},    // sum != 1
		{Start: []float64{math.NaN(), 0.5, 0.5}},    // NaN
	}
	for i, o := range bad {
		if _, err := Compute(g, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if _, err := Compute(g, Options{}); err != nil {
		t.Errorf("default options rejected: %v", err)
	}
}

// TestDeltasMonotoneTail: the recorded per-iteration deltas end below the
// tolerance when converged.
func TestDeltasMonotoneTail(t *testing.T) {
	g := graph.MustFromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}, {5, 0},
	})
	res := computeOrDie(t, g, Options{Tolerance: 1e-8, MaxIterations: 5000})
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if got := res.Deltas[len(res.Deltas)-1]; got >= 1e-8 {
		t.Fatalf("final delta %v not below tolerance", got)
	}
	if len(res.Deltas) != res.Iterations {
		t.Fatalf("len(Deltas)=%d, Iterations=%d", len(res.Deltas), res.Iterations)
	}
}

// TestUniformHelper checks the Uniform convenience constructor.
func TestUniformHelper(t *testing.T) {
	p := Uniform(4)
	for _, x := range p {
		if x != 0.25 {
			t.Fatalf("Uniform(4) = %v", p)
		}
	}
}
