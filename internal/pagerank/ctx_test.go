package pagerank

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// countdownContext flips Err to context.Canceled after n calls. All four
// iteration schemes poll ctx.Err(), so this drives their mid-run
// cancellation paths deterministically, with no sleeps or goroutine
// races. The mutex matters for the parallel scheme, whose workers also
// poll the context.
type countdownContext struct {
	context.Context
	mu   sync.Mutex
	left int
}

func newCountdown(calls int) *countdownContext {
	return &countdownContext{Context: context.Background(), left: calls}
}

func (c *countdownContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

// ctxTestGraph is irregular (varying out-degrees, one dangling page) so
// the uniform start vector is nowhere near the fixed point and no scheme
// converges before cancellation at the unreachable tolerance used below.
func ctxTestGraph() *graph.Graph {
	const n = 50
	edges := make([][2]graph.NodeID, 0, 2*n)
	for i := 0; i < n-1; i++ { // n-1 dangles
		edges = append(edges, [2]graph.NodeID{graph.NodeID(i), graph.NodeID((i + 1) % n)})
		if i%3 == 0 {
			edges = append(edges, [2]graph.NodeID{graph.NodeID(i), graph.NodeID((i*i + 7) % n)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

func TestComputeCtxCancellation(t *testing.T) {
	g := ctxTestGraph()
	schemes := []struct {
		name string
		opts Options
	}{
		{"power", Options{}},
		{"gauss-seidel", Options{Method: MethodGaussSeidel}},
		{"adaptive", Options{AdaptiveFreeze: 1e-9}},
		{"parallel", Options{Parallelism: 4}},
	}
	for _, s := range schemes {
		t.Run(s.name+"/pre-cancelled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := ComputeCtx(ctx, g, s.opts)
			if err == nil || res != nil {
				t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not wrap context.Canceled", err)
			}
			if !strings.Contains(err.Error(), "cancelled at iteration") {
				t.Errorf("error %q does not report the iteration reached", err)
			}
		})
		t.Run(s.name+"/mid-run", func(t *testing.T) {
			opts := s.opts
			opts.Tolerance = 1e-300
			opts.MaxIterations = 50 * ctxCheckInterval
			// One check passes, the second cancels: iteration 17 for the
			// sequential schemes, earlier for the parallel one (its workers
			// also poll before each chunk). Either way the run is abandoned
			// long before gauss-seidel can bottom out at an exact-zero delta.
			res, err := ComputeCtx(newCountdown(1), g, opts)
			if err == nil || res != nil {
				t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not wrap context.Canceled", err)
			}
		})
		t.Run(s.name+"/background matches plain", func(t *testing.T) {
			plain, err := Compute(g, s.opts)
			if err != nil {
				t.Fatalf("Compute: %v", err)
			}
			withCtx, err := ComputeCtx(context.Background(), g, s.opts)
			if err != nil {
				t.Fatalf("ComputeCtx: %v", err)
			}
			if plain.Iterations != withCtx.Iterations {
				t.Errorf("iterations differ: %d vs %d", plain.Iterations, withCtx.Iterations)
			}
			if d := L1(plain.Scores, withCtx.Scores); d != 0 {
				t.Errorf("scores differ by L1 %v", d)
			}
		})
	}
}
