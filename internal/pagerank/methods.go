package pagerank

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/kernel"
)

// computeGaussSeidel runs the pull-based Gauss–Seidel sweep on the flat
// kernel snapshot: pages are updated in id order and each update reads
// the freshest available values of its in-neighbours (already-updated
// pages contribute this sweep's value, later pages last sweep's). The
// aggregate dangling mass is also kept fresh: it is adjusted in place
// the moment a dangling page's score changes, so the dangling component
// converges at the Gauss–Seidel rate rather than lagging a full sweep
// behind. The snapshot materializes the in-adjacency with precomputed
// transition probabilities, so the scheme no longer requires the graph
// to implement InEdgeGraph and the inner loop performs no interface
// calls or divisions.
func computeGaussSeidel(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	start := time.Now()
	csr := kernel.Snapshot(g)
	defer csr.Release()
	p, d, pooled := jumpVectors(n, &opts)
	defer kernel.PutVec(pooled)

	x := kernel.GetVec(n)
	deltas := kernel.GetVec(opts.MaxIterations)
	defer kernel.PutVec(x)
	defer kernel.PutVec(deltas)
	initStart(x, p, &opts)

	// Dense dangling membership for the in-place mass update (the sweep
	// needs an O(1) "is v dangling?" answer mid-row).
	isDangling := make([]bool, n)
	for _, u := range csr.DanglingIdx {
		isDangling[u] = true
	}

	eps := opts.Epsilon
	res := &Result{}
	danglingMass := csr.DanglingMass(x)
	off, srcs, prob := csr.InOff, csr.InSrc, csr.InProb
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if iter%ctxCheckInterval == 1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
			}
		}
		delta := 0.0
		for v := 0; v < n; v++ {
			s := 0.0
			end := off[v+1]
			for k := off[v]; k < end; k++ {
				s += x[srcs[k]] * prob[k]
			}
			acc := (1-eps)*p[v] + eps*danglingMass*d[v] + eps*s
			delta += math.Abs(acc - x[v])
			if isDangling[v] {
				danglingMass += acc - x[v]
			}
			x[v] = acc
		}
		deltas[res.Iterations] = delta
		res.Iterations = iter
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	finishResult(res, x, deltas[:res.Iterations], start)
	return res, nil
}

// computeAdaptive runs the power iteration with adaptive freezing (Kamvar
// et al., 2003): a page whose score moved by less than
// AdaptiveFreeze·(1/N) in two consecutive iterations is frozen. A frozen
// page's score no longer changes, so its outgoing contribution — and, for
// dangling pages, its share of the dangling mass — is folded once into a
// fixed base vector and the page drops out of the per-iteration work. On
// web-like graphs most pages freeze early, cutting per-iteration cost
// while perturbing the fixpoint by at most ~N·AdaptiveFreeze in L1.
func computeAdaptive(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	start := time.Now()
	uniform := 1.0 / float64(n)
	pAt := func(i int) float64 {
		if opts.Personalization == nil {
			return uniform
		}
		return opts.Personalization[i]
	}
	dAt := func(i int) float64 {
		if opts.DanglingDist == nil {
			return pAt(i)
		}
		return opts.DanglingDist[i]
	}

	cur := make([]float64, n)
	if opts.Start != nil {
		copy(cur, opts.Start)
	} else {
		for i := range cur {
			cur[i] = pAt(i)
		}
	}
	next := make([]float64, n)
	frozen := make([]bool, n)
	small := make([]uint8, n) // consecutive small-delta count
	// frozenBase[v] accumulates ε·x_u·A[u][v] over frozen u (link part);
	// frozenDangling accumulates the scores of frozen dangling pages.
	frozenBase := make([]float64, n)
	frozenDangling := 0.0
	nFrozen := 0

	threshold := opts.AdaptiveFreeze / float64(n)
	eps := opts.Epsilon
	res := &Result{}
	res.Deltas = make([]float64, 0, opts.MaxIterations)

	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if iter%ctxCheckInterval == 1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
			}
		}
		activeDangling := 0.0
		for u := 0; u < n; u++ {
			if !frozen[u] && g.Dangling(uint32(u)) {
				activeDangling += cur[u]
			}
		}
		danglingMass := activeDangling + frozenDangling
		for v := 0; v < n; v++ {
			if frozen[v] {
				continue
			}
			next[v] = (1-eps)*pAt(v) + eps*danglingMass*dAt(v) + frozenBase[v]
		}
		for u := 0; u < n; u++ {
			if frozen[u] || cur[u] == 0 {
				continue
			}
			adj := g.OutNeighbors(uint32(u))
			if len(adj) == 0 {
				continue
			}
			ws := g.OutWeights(uint32(u))
			if ws == nil {
				share := eps * cur[u] / float64(len(adj))
				for _, v := range adj {
					if !frozen[v] {
						next[v] += share
					}
				}
			} else {
				wout := g.WeightOut(uint32(u))
				if wout == 0 {
					continue
				}
				scale := eps * cur[u] / wout
				for k, v := range adj {
					if !frozen[v] {
						next[v] += scale * ws[k]
					}
				}
			}
		}

		delta := 0.0
		for v := 0; v < n; v++ {
			if frozen[v] {
				continue
			}
			d := math.Abs(next[v] - cur[v])
			delta += d
			cur[v] = next[v]
			if d < threshold {
				small[v]++
			} else {
				small[v] = 0
			}
		}
		res.Deltas = append(res.Deltas, delta)
		res.Iterations = iter

		// Freeze pages that have been stable twice in a row, folding their
		// now-constant contributions into the base.
		for u := 0; u < n; u++ {
			if frozen[u] || small[u] < 2 {
				continue
			}
			frozen[u] = true
			nFrozen++
			if g.Dangling(uint32(u)) {
				frozenDangling += cur[u]
				continue
			}
			adj := g.OutNeighbors(uint32(u))
			ws := g.OutWeights(uint32(u))
			if ws == nil {
				share := eps * cur[u] / float64(len(adj))
				for _, v := range adj {
					frozenBase[v] += share
				}
			} else {
				wout := g.WeightOut(uint32(u))
				if wout > 0 {
					scale := eps * cur[u] / wout
					for k, v := range adj {
						frozenBase[v] += scale * ws[k]
					}
				}
			}
		}

		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	normalize(cur)
	res.Scores = cur
	res.FrozenPages = nFrozen
	res.Elapsed = time.Since(start)
	return res, nil
}
