package pagerank

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchWeb builds a deterministic random web for the global engine
// benchmarks.
func benchWeb(b *testing.B, n, outDeg int) *graph.Graph {
	b.Helper()
	rng := rand.New(rand.NewSource(2009))
	edges := make([][2]graph.NodeID, 0, n*outDeg)
	for u := 0; u < n; u++ {
		for k := 0; k < outDeg; k++ {
			v := rng.Intn(n - 1)
			if v >= u {
				v++
			}
			edges = append(edges, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// BenchmarkComputeSequential measures the plain power iteration.
func BenchmarkComputeSequential(b *testing.B) {
	g := benchWeb(b, 50000, 8)
	opts := Options{Tolerance: 1e-8}
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Compute(g, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Iterations), "iterations")
}

// BenchmarkComputeParallel measures the worker-pool power iteration of
// parallel.go at a fixed worker count, so runs are comparable across
// machines.
func BenchmarkComputeParallel(b *testing.B) {
	g := benchWeb(b, 50000, 8)
	opts := Options{Tolerance: 1e-8, Parallelism: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}
