package pagerank

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestParallelAgreement: parallel runs converge to the same vector as
// sequential ones, on unweighted and weighted graphs with dangling pages.
func TestParallelAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		g := randomTestGraph(rng, 500, 0.1)
		seq := computeOrDie(t, g, Options{Tolerance: 1e-11, MaxIterations: 5000})
		for _, workers := range []int{2, 3, 8} {
			par := computeOrDie(t, g, Options{Tolerance: 1e-11, MaxIterations: 5000, Parallelism: workers})
			if d := L1(seq.Scores, par.Scores); d > 1e-9 {
				t.Fatalf("trial %d workers %d: parallel differs by L1=%g", trial, workers, d)
			}
			if !par.Converged {
				t.Fatalf("trial %d workers %d: did not converge", trial, workers)
			}
		}
	}
}

// TestParallelWeighted: weighted graphs too.
func TestParallelWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	b := graph.NewBuilder(300)
	for u := 0; u < 300; u++ {
		d := 1 + rng.Intn(5)
		for e := 0; e < d; e++ {
			v := rng.Intn(300)
			if v != u {
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), 0.3+rng.Float64())
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	seq := computeOrDie(t, g, Options{Tolerance: 1e-11, MaxIterations: 5000})
	par := computeOrDie(t, g, Options{Tolerance: 1e-11, MaxIterations: 5000, Parallelism: 4})
	if d := L1(seq.Scores, par.Scores); d > 1e-9 {
		t.Fatalf("weighted parallel differs by L1=%g", d)
	}
}

// TestParallelDeterministic: two runs with the same worker count are
// bit-identical.
func TestParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := randomTestGraph(rng, 400, 0.05)
	a := computeOrDie(t, g, Options{Parallelism: 4})
	b := computeOrDie(t, g, Options{Parallelism: 4})
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("parallel runs differ at %d", i)
		}
	}
}

// TestParallelNegativeSelectsCPUs: Parallelism < 0 must not error.
func TestParallelNegativeSelectsCPUs(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	g := randomTestGraph(rng, 100, 0.05)
	res := computeOrDie(t, g, Options{Parallelism: -1})
	if !res.Converged {
		t.Fatal("did not converge")
	}
}

// TestParallelMoreWorkersThanNodes: worker count is clamped.
func TestParallelMoreWorkersThanNodes(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	res := computeOrDie(t, g, Options{Parallelism: 16, Tolerance: 1e-10})
	for _, s := range res.Scores {
		if s <= 0.3 || s >= 0.4 {
			t.Fatalf("cycle scores wrong: %v", res.Scores)
		}
	}
}

// TestParallelInvalidCombos: parallelism cannot combine with the other
// schemes.
func TestParallelInvalidCombos(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	bad := []Options{
		{Parallelism: 4, Method: MethodGaussSeidel},
		{Parallelism: 4, ExtrapolateEvery: 5},
		{Parallelism: 4, AdaptiveFreeze: 1e-4},
	}
	for i, o := range bad {
		if _, err := Compute(g, o); err == nil {
			t.Errorf("case %d: invalid combination accepted", i)
		}
	}
}
