package pagerank

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/kernel"
)

// computeParallel runs the power iteration with a persistent worker
// pool on the flat pull kernel. The graph is snapshot once into frozen
// CSR slices and a kernel.SweepPool is spawned once for the whole run;
// each round every worker owns a disjoint, edge-count-balanced range of
// TARGET nodes and pulls contributions along the materialized
// in-adjacency — reading the immutable cur, writing only its own slice
// of next. Spawning the team once instead of once per iteration (the
// arlint spawnloop finding this replaced) removes one goroutine
// creation + WaitGroup churn per worker per round; the per-worker
// partial deltas live in cache-line-padded pool slots (the falseshare
// finding), not adjacent elements of a shared array.
//
// The requested Parallelism is capped at runtime.GOMAXPROCS(0): parts
// beyond the schedulable CPUs cannot run concurrently and only add
// barrier traffic. When the cap leaves a single effective worker —
// notably on a single-CPU machine — the partitioned pull sweep cannot
// beat the sequential PUSH kernel (same arithmetic, faster memory
// behavior), so the computation delegates to computeFlat outright.
//
// Determinism: every next[v] is accumulated over v's whole in-row in
// CSR order no matter how targets are partitioned, so the per-iteration
// ITERATE is bit-identical across worker counts; only the L1 delta
// (summed per range, then in range order) reassociates, which can move
// the convergence test by at most the float error of one sum. For a
// fixed effective worker count the whole run is bit-deterministic.
//
// Cancellation is checked after each iteration's barrier (the rounds
// are bounded, so there is nothing long-lived to interrupt mid-sweep);
// each worker also early-outs when ctx is already done so a cancelled
// batch drains without scanning its range.
func computeParallel(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	parts := opts.Parallelism
	if maxProcs := runtime.GOMAXPROCS(0); parts > maxProcs {
		parts = maxProcs
	}
	if parts <= 1 {
		return computeFlat(ctx, g, opts)
	}

	n := g.NumNodes()
	start := time.Now()
	csr := kernel.Snapshot(g)
	defer csr.Release()
	p, d, pooled := jumpVectors(n, &opts)
	defer kernel.PutVec(pooled)

	// Buffers evaluated at the defer site: the cur/next swap only moves
	// names, both backing arrays return to the pool either way.
	cur := kernel.GetVec(n)
	next := kernel.GetVec(n)
	deltas := kernel.GetVec(opts.MaxIterations)
	defer kernel.PutVec(cur)
	defer kernel.PutVec(next)
	defer kernel.PutVec(deltas)
	initStart(cur, p, &opts)

	// PartitionByEdges clamps parts on tiny graphs; size the pool to the
	// partition it actually produced. The pool outlives the whole
	// convergence loop — its workers are spawned here, once.
	bounds := kernel.PartitionByEdges(csr.InOff, parts)
	pool := kernel.NewSweepPool(len(bounds) - 1)
	defer pool.Close()

	// Uniform snapshots take the scaled sweep (see computeFlat): the
	// pre-scale runs once on the coordinating goroutine, the workers then
	// share the read-only scaled vector.
	var scaled []float64
	if csr.Uniform() {
		scaled = kernel.GetVec(n)
		defer kernel.PutVec(scaled)
	}

	eps := opts.Epsilon
	res := &Result{}
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		var delta float64
		if scaled != nil {
			csr.ScaleInto(scaled, cur)
			delta = pool.SweepScaled(ctx, csr, next, scaled, cur, p, d, eps, csr.DanglingMass(cur), bounds)
		} else {
			delta = pool.Sweep(ctx, csr, next, cur, p, d, eps, csr.DanglingMass(cur), bounds)
		}

		// A cancellation that landed mid-iteration left next (and the
		// partial deltas) stale; this check runs before either is
		// trusted, so a cancelled iteration can never "converge".
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
		}

		deltas[res.Iterations] = delta
		res.Iterations = iter
		cur, next = next, cur
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	finishResult(res, cur, deltas[:res.Iterations], start)
	return res, nil
}

// DefaultParallelism returns the worker count used by Parallelism < 0:
// the machine's CPU count.
func DefaultParallelism() int { return runtime.NumCPU() }
