package pagerank

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// computeParallel runs the power iteration with Parallelism workers. Each
// worker pushes the contributions of a fixed contiguous range of source
// nodes into a private accumulator; accumulators are then reduced in
// worker order. For a fixed Parallelism the result is bit-deterministic
// (the reduction order is fixed); across different Parallelism values
// results agree to floating-point reassociation error, far below any
// practical tolerance.
//
// Cancellation is checked between iterations (the workers of one
// iteration are barrier-synchronized and bounded, so there is nothing
// long-lived to interrupt mid-iteration); each worker also early-outs
// when ctx is already done so a cancelled batch drains without scanning
// its range.
func computeParallel(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	start := time.Now()
	workers := opts.Parallelism
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	uniform := 1.0 / float64(n)
	pAt := func(i int) float64 {
		if opts.Personalization == nil {
			return uniform
		}
		return opts.Personalization[i]
	}
	dAt := func(i int) float64 {
		if opts.DanglingDist == nil {
			return pAt(i)
		}
		return opts.DanglingDist[i]
	}

	cur := make([]float64, n)
	if opts.Start != nil {
		copy(cur, opts.Start)
	} else {
		for i := range cur {
			cur[i] = pAt(i)
		}
	}
	next := make([]float64, n)

	// Precompute the dangling node list once; scanning it is cheaper than
	// an interface call per node per iteration.
	var danglingNodes []uint32
	for u := 0; u < n; u++ {
		if g.Dangling(uint32(u)) {
			danglingNodes = append(danglingNodes, uint32(u))
		}
	}

	// Source ranges and private accumulators.
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	acc := make([][]float64, workers)
	for w := range acc {
		acc[w] = make([]float64, n)
	}

	eps := opts.Epsilon
	res := &Result{}
	res.Deltas = make([]float64, 0, opts.MaxIterations)
	deltas := make([]float64, workers)
	var wg sync.WaitGroup
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		danglingMass := 0.0
		for _, u := range danglingNodes {
			danglingMass += cur[u]
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if ctx.Err() != nil {
					return // cancelled: skip the scan, the barrier below still holds
				}
				a := acc[w]
				for i := range a {
					a[i] = 0
				}
				for u := bounds[w]; u < bounds[w+1]; u++ {
					if cur[u] == 0 {
						continue
					}
					adj := g.OutNeighbors(uint32(u))
					if len(adj) == 0 {
						continue
					}
					ws := g.OutWeights(uint32(u))
					if ws == nil {
						share := eps * cur[u] / float64(len(adj))
						for _, v := range adj {
							a[v] += share
						}
					} else {
						wout := g.WeightOut(uint32(u))
						if wout == 0 {
							continue
						}
						scale := eps * cur[u] / wout
						for k, v := range adj {
							a[v] += scale * ws[k]
						}
					}
				}
			}(w)
		}
		wg.Wait()

		// Reduce in fixed worker order (deterministic), fusing the base
		// term and the delta computation; the reduction itself is also
		// parallel over target ranges.
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				if ctx.Err() != nil {
					return // cancelled: the post-barrier check below discards this iteration
				}
				d := 0.0
				for v := bounds[w]; v < bounds[w+1]; v++ {
					x := (1-eps)*pAt(v) + eps*danglingMass*dAt(v)
					for _, a := range acc {
						x += a[v]
					}
					next[v] = x
					d += math.Abs(x - cur[v])
				}
				deltas[w] = d
			}(w)
		}
		wg.Wait()

		// A cancellation that landed mid-iteration left accumulators (and
		// therefore next/deltas) stale; this check runs before either is
		// trusted, so a cancelled iteration can never "converge".
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
		}

		delta := 0.0
		for _, d := range deltas {
			delta += d
		}
		res.Deltas = append(res.Deltas, delta)
		res.Iterations = iter
		cur, next = next, cur
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	normalize(cur)
	res.Scores = cur
	res.Elapsed = time.Since(start)
	return res, nil
}

// DefaultParallelism returns the worker count used by Parallelism < 0:
// the machine's CPU count.
func DefaultParallelism() int { return runtime.NumCPU() }
