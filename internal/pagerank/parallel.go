package pagerank

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/kernel"
)

// computeParallel runs the power iteration with Parallelism workers on
// the flat pull kernel. The graph is snapshot once into frozen CSR
// slices; each worker then owns a disjoint, edge-count-balanced range
// of TARGET nodes and pulls contributions along the materialized
// in-adjacency — reading the immutable cur, writing only its own slice
// of next. Compared to the previous push scheme with per-worker private
// accumulators this removes the O(workers·n) reduction pass, the
// length-n accumulator allocation per worker, and one barrier per
// iteration.
//
// Determinism: every next[v] is accumulated over v's whole in-row in
// CSR order no matter how targets are partitioned, so the per-iteration
// ITERATE is bit-identical across worker counts; only the L1 delta
// (summed per range, then in range order) reassociates, which can move
// the convergence test by at most the float error of one sum. For a
// fixed Parallelism the whole run is bit-deterministic.
//
// Cancellation is checked after each iteration's barrier (the workers
// are bounded, so there is nothing long-lived to interrupt mid-sweep);
// each worker also early-outs when ctx is already done so a cancelled
// batch drains without scanning its range.
func computeParallel(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	start := time.Now()
	csr := kernel.Snapshot(g)
	defer csr.Release()
	p, d, pooled := jumpVectors(n, &opts)
	defer kernel.PutVec(pooled)

	// Buffers evaluated at the defer site: the cur/next swap only moves
	// names, both backing arrays return to the pool either way.
	cur := kernel.GetVec(n)
	next := kernel.GetVec(n)
	deltas := kernel.GetVec(opts.MaxIterations)
	defer kernel.PutVec(cur)
	defer kernel.PutVec(next)
	defer kernel.PutVec(deltas)
	initStart(cur, p, &opts)

	bounds := kernel.PartitionByEdges(csr.InOff, opts.Parallelism)
	partDeltas := make([]float64, len(bounds)-1)

	// Uniform snapshots take the scaled sweep (see computeFlat): the
	// pre-scale runs once on the coordinating goroutine, the workers then
	// share the read-only scaled vector.
	var scaled []float64
	if csr.Uniform() {
		scaled = kernel.GetVec(n)
		defer kernel.PutVec(scaled)
	}

	eps := opts.Epsilon
	res := &Result{}
	var wg sync.WaitGroup
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		var delta float64
		if scaled != nil {
			csr.ScaleInto(scaled, cur)
			delta = csr.ParallelSweepScaled(ctx, &wg, next, scaled, cur, p, d, eps, csr.DanglingMass(cur), bounds, partDeltas)
		} else {
			delta = csr.ParallelSweep(ctx, &wg, next, cur, p, d, eps, csr.DanglingMass(cur), bounds, partDeltas)
		}

		// A cancellation that landed mid-iteration left next (and the
		// partial deltas) stale; this check runs before either is
		// trusted, so a cancelled iteration can never "converge".
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
		}

		deltas[res.Iterations] = delta
		res.Iterations = iter
		cur, next = next, cur
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	finishResult(res, cur, deltas[:res.Iterations], start)
	return res, nil
}

// DefaultParallelism returns the worker count used by Parallelism < 0:
// the machine's CPU count.
func DefaultParallelism() int { return runtime.NumCPU() }
