// Package pagerank implements the PageRank power iteration used both as
// the ground-truth global computation and as the inner engine of the
// local-PageRank, LPR2 and stochastic-complementation baselines.
//
// The iteration follows the paper's formulation
//
//	R = ε·Aᵀ·R + (1−ε)·P
//
// with damping ε (default 0.85), personalization vector P (default
// uniform), and dangling pages complemented with jumps: a page without
// out-links behaves as if it linked to every page according to the
// dangling distribution (default: the personalization vector). Convergence
// is declared when the L1 norm of the change drops below the tolerance
// (the paper uses 1e-5).
package pagerank

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/numeric"
)

// ctxCheckInterval is how many iterations run between cancellation
// checks in every iteration scheme. One iteration touches every edge,
// so checking every few iterations bounds post-cancellation work to a
// handful of sweeps without per-edge overhead on the hot path.
const ctxCheckInterval = 16

// DirectedGraph is the view of a graph the engine needs. *graph.Graph
// satisfies it; the Λ-extended chains in internal/core run their own
// specialized iteration instead.
type DirectedGraph interface {
	NumNodes() int
	OutNeighbors(u uint32) []uint32
	OutWeights(u uint32) []float64 // nil for unweighted graphs
	WeightOut(u uint32) float64
	Dangling(u uint32) bool
}

// InEdgeGraph is the additional view the Gauss–Seidel method needs: it
// pulls scores along in-edges so freshly updated values can be used
// within the same sweep. *graph.Graph satisfies it.
type InEdgeGraph interface {
	DirectedGraph
	InNeighbors(u uint32) []uint32
	InWeights(u uint32) []float64 // nil for unweighted graphs
}

// Method selects the iteration scheme.
type Method int

const (
	// MethodPower is the standard Jacobi-style power iteration (the
	// paper's formulation). Default.
	MethodPower Method = iota
	// MethodGaussSeidel updates scores in place, pulling along in-edges
	// so each page sees the current sweep's values for already-updated
	// pages. Typically converges in fewer sweeps than MethodPower for the
	// same tolerance. Requires a graph with in-adjacency (InEdgeGraph).
	MethodGaussSeidel
)

// Options configures a PageRank computation. The zero value selects the
// paper's settings.
type Options struct {
	// Epsilon is the damping factor (probability of following links).
	// Default 0.85.
	Epsilon float64
	// Tolerance is the L1 convergence threshold. Default 1e-5.
	Tolerance float64
	// MaxIterations bounds the power iteration. Default 1000.
	MaxIterations int
	// Personalization is the random-jump distribution P. nil selects the
	// uniform vector. Must have length NumNodes and sum to 1 (±1e-9).
	Personalization []float64
	// DanglingDist is the distribution dangling pages jump to. nil selects
	// the personalization vector.
	DanglingDist []float64
	// Start is the initial vector. nil selects the personalization vector.
	// It is not modified.
	Start []float64
	// ExtrapolateEvery, when positive, applies Aitken quadratic
	// extrapolation every that many iterations (Kamvar et al., WWW 2003),
	// an acceleration that suppresses the second eigenvector term. Only
	// valid with MethodPower and without AdaptiveFreeze.
	ExtrapolateEvery int
	// Method selects the iteration scheme (default MethodPower).
	Method Method
	// Parallelism selects the number of workers for the power iteration:
	// 0 or 1 runs sequentially, k > 1 uses k workers, and a negative
	// value selects the CPU count. Results are bit-deterministic for a
	// fixed Parallelism; across values they agree up to floating-point
	// reassociation (≪ any practical tolerance). Only MethodPower without
	// extrapolation or adaptive freezing parallelizes.
	Parallelism int
	// AdaptiveFreeze, when positive, enables adaptive PageRank (Kamvar et
	// al., "Adaptive methods for the computation of PageRank", 2003):
	// once a page's score changes by less than AdaptiveFreeze·(1/N) for
	// two consecutive iterations it is frozen — its outgoing contribution
	// is folded into a fixed base vector and it is no longer recomputed.
	// Only valid with MethodPower; the final vector agrees with the plain
	// iteration up to roughly N·AdaptiveFreeze in L1.
	AdaptiveFreeze float64
	// Deadline, when positive, bounds the computation's wall-clock time:
	// ComputeCtx derives its context with context.WithTimeout(ctx,
	// Deadline) and an unconverged run returns context.DeadlineExceeded
	// instead of burning the full MaxIterations budget. Zero means no
	// deadline.
	Deadline time.Duration
}

func (o *Options) fill(n int) error {
	if o.Epsilon == 0 {
		o.Epsilon = numeric.DefaultDamping
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("pagerank: damping factor %v outside (0,1)", o.Epsilon)
	}
	if o.Tolerance == 0 {
		o.Tolerance = numeric.DefaultTolerance
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("pagerank: negative tolerance %v", o.Tolerance)
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.MaxIterations < 1 {
		return fmt.Errorf("pagerank: MaxIterations %d < 1", o.MaxIterations)
	}
	for name, v := range map[string][]float64{
		"Personalization": o.Personalization,
		"DanglingDist":    o.DanglingDist,
		"Start":           o.Start,
	} {
		if v == nil {
			continue
		}
		if len(v) != n {
			return fmt.Errorf("pagerank: %s has length %d, want %d", name, len(v), n)
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				return fmt.Errorf("pagerank: %s has invalid entry %v", name, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > numeric.SumTolerance {
			return fmt.Errorf("pagerank: %s sums to %v, want 1", name, sum)
		}
	}
	if o.Method != MethodPower && o.Method != MethodGaussSeidel {
		return fmt.Errorf("pagerank: unknown method %d", o.Method)
	}
	if o.AdaptiveFreeze < 0 {
		return fmt.Errorf("pagerank: negative AdaptiveFreeze %v", o.AdaptiveFreeze)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("pagerank: negative Deadline %v", o.Deadline)
	}
	if o.Method == MethodGaussSeidel && (o.ExtrapolateEvery > 0 || o.AdaptiveFreeze > 0) {
		return fmt.Errorf("pagerank: Gauss–Seidel cannot combine with extrapolation or adaptive freezing")
	}
	if o.AdaptiveFreeze > 0 && o.ExtrapolateEvery > 0 {
		return fmt.Errorf("pagerank: adaptive freezing cannot combine with extrapolation")
	}
	if o.Parallelism < 0 {
		o.Parallelism = DefaultParallelism()
	}
	if o.Parallelism > 1 && (o.Method != MethodPower || o.ExtrapolateEvery > 0 || o.AdaptiveFreeze > 0) {
		return fmt.Errorf("pagerank: parallelism requires plain power iteration")
	}
	return nil
}

// Result carries the output of a ranking computation. All rankers in this
// repository return this shape.
type Result struct {
	// Scores is the stationary distribution (sums to 1).
	Scores []float64
	// Iterations is the number of power-iteration steps performed.
	Iterations int
	// Converged reports whether the tolerance was reached before
	// MaxIterations.
	Converged bool
	// Elapsed is the wall-clock duration of the iteration.
	Elapsed time.Duration
	// Deltas[i] is the L1 change after iteration i+1 (for convergence
	// plots and the adaptive experiments).
	Deltas []float64
	// FrozenPages is the number of pages frozen by the adaptive method at
	// termination (0 unless AdaptiveFreeze was set).
	FrozenPages int
}

// Compute runs the PageRank power iteration on g. It is ComputeCtx with
// context.Background() — uncancellable; long-running callers should
// prefer ComputeCtx.
func Compute(g DirectedGraph, opts Options) (*Result, error) {
	return ComputeCtx(context.Background(), g, opts)
}

// ComputeCtx is Compute under a context: every iteration scheme checks
// ctx every ctxCheckInterval iterations and, when cancelled (or when
// opts.Deadline expires), returns nil and ctx's error wrapped with the
// iteration reached.
func ComputeCtx(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("pagerank: empty graph")
	}
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	if opts.Method == MethodGaussSeidel {
		ig, ok := g.(InEdgeGraph)
		if !ok {
			return nil, fmt.Errorf("pagerank: Gauss–Seidel needs a graph with in-adjacency")
		}
		return computeGaussSeidel(ctx, ig, opts)
	}
	if opts.AdaptiveFreeze > 0 {
		return computeAdaptive(ctx, g, opts)
	}
	if opts.Parallelism > 1 {
		return computeParallel(ctx, g, opts)
	}
	start := time.Now()

	uniform := 1.0 / float64(n)
	pAt := func(i int) float64 {
		if opts.Personalization == nil {
			return uniform
		}
		return opts.Personalization[i]
	}
	dAt := func(i int) float64 {
		if opts.DanglingDist == nil {
			return pAt(i)
		}
		return opts.DanglingDist[i]
	}

	cur := make([]float64, n)
	if opts.Start != nil {
		copy(cur, opts.Start)
	} else {
		for i := range cur {
			cur[i] = pAt(i)
		}
	}
	next := make([]float64, n)
	res := &Result{}
	res.Deltas = make([]float64, 0, opts.MaxIterations)
	var prev1, prev2 []float64
	if opts.ExtrapolateEvery > 0 {
		prev1 = make([]float64, n)
		prev2 = make([]float64, n)
	}

	eps := opts.Epsilon
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if iter%ctxCheckInterval == 1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
			}
		}
		danglingMass := 0.0
		for u := 0; u < n; u++ {
			if g.Dangling(uint32(u)) {
				danglingMass += cur[u]
			}
		}
		for v := 0; v < n; v++ {
			next[v] = (1-eps)*pAt(v) + eps*danglingMass*dAt(v)
		}
		for u := 0; u < n; u++ {
			if cur[u] == 0 {
				continue
			}
			adj := g.OutNeighbors(uint32(u))
			if len(adj) == 0 {
				continue
			}
			ws := g.OutWeights(uint32(u))
			if ws == nil {
				share := eps * cur[u] / float64(len(adj))
				for _, v := range adj {
					next[v] += share
				}
			} else {
				wout := g.WeightOut(uint32(u))
				if wout == 0 {
					continue
				}
				scale := eps * cur[u] / wout
				for k, v := range adj {
					next[v] += scale * ws[k]
				}
			}
		}

		delta := 0.0
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - cur[i])
		}
		res.Deltas = append(res.Deltas, delta)
		res.Iterations = iter

		if opts.ExtrapolateEvery > 0 {
			if iter > 2 && iter%opts.ExtrapolateEvery == 0 {
				extrapolate(next, prev1, prev2)
			}
			copy(prev2, prev1)
			copy(prev1, next)
		}

		cur, next = next, cur
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	normalize(cur)
	res.Scores = cur
	res.Elapsed = time.Since(start)
	return res, nil
}

// extrapolate applies componentwise Aitken Δ² extrapolation in place:
// x* = xₖ − (Δxₖ)²/(Δ²xₖ) with xₖ₋₁ = prev1 and xₖ₋₂ = prev2, then
// renormalizes. Components with a vanishing second difference are left
// unchanged, and any negative extrapolated value is clamped to the
// un-extrapolated one (the iterate must stay a distribution).
func extrapolate(x, prev1, prev2 []float64) {
	for i := range x {
		d1 := prev1[i] - prev2[i]
		d2 := x[i] - 2*prev1[i] + prev2[i]
		if math.Abs(d2) < numeric.DenominatorGuard {
			continue
		}
		e := x[i] - d1*d1/d2
		if e > 0 && !math.IsNaN(e) && !math.IsInf(e, 0) {
			x[i] = e
		}
	}
	normalize(x)
}

// normalize rescales v to sum to 1 (no-op on a zero vector).
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return
	}
	inv := 1.0 / sum
	for i := range v {
		v[i] *= inv
	}
}

// Uniform returns the uniform distribution of length n.
func Uniform(n int) []float64 {
	p := make([]float64, n)
	u := 1.0 / float64(n)
	for i := range p {
		p[i] = u
	}
	return p
}

// L1 returns the L1 distance Σ|a[i]−b[i]|. Vectors of different lengths
// are incomparable and have distance +Inf — loud under any tolerance
// check, without panicking inside a serving process.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
