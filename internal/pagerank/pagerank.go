// Package pagerank implements the PageRank power iteration used both as
// the ground-truth global computation and as the inner engine of the
// local-PageRank, LPR2 and stochastic-complementation baselines.
//
// The iteration follows the paper's formulation
//
//	R = ε·Aᵀ·R + (1−ε)·P
//
// with damping ε (default 0.85), personalization vector P (default
// uniform), and dangling pages complemented with jumps: a page without
// out-links behaves as if it linked to every page according to the
// dangling distribution (default: the personalization vector). Convergence
// is declared when the L1 norm of the change drops below the tolerance
// (the paper uses 1e-5).
package pagerank

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/kernel"
	"repro/internal/numeric"
)

// ctxCheckInterval is how many iterations run between cancellation
// checks in every iteration scheme. One iteration touches every edge,
// so checking every few iterations bounds post-cancellation work to a
// handful of sweeps without per-edge overhead on the hot path.
const ctxCheckInterval = 16

// DirectedGraph is the view of a graph the engine needs. *graph.Graph
// satisfies it; the Λ-extended chains in internal/core run their own
// specialized iteration instead.
type DirectedGraph interface {
	NumNodes() int
	OutNeighbors(u uint32) []uint32
	OutWeights(u uint32) []float64 // nil for unweighted graphs
	WeightOut(u uint32) float64
	Dangling(u uint32) bool
}

// InEdgeGraph is the optional in-adjacency view. The iteration engines
// no longer require it — the kernel snapshot materializes the
// in-adjacency from the out-edges — but the interface remains for
// callers that pull along in-edges themselves. *graph.Graph satisfies
// it.
type InEdgeGraph interface {
	DirectedGraph
	InNeighbors(u uint32) []uint32
	InWeights(u uint32) []float64 // nil for unweighted graphs
}

// Method selects the iteration scheme.
type Method int

const (
	// MethodPower is the standard Jacobi-style power iteration (the
	// paper's formulation). Default.
	MethodPower Method = iota
	// MethodGaussSeidel updates scores in place, pulling along in-edges
	// so each page sees the current sweep's values for already-updated
	// pages. Typically converges in fewer sweeps than MethodPower for the
	// same tolerance. The kernel snapshot materializes the in-adjacency,
	// so any DirectedGraph works.
	MethodGaussSeidel
)

// Options configures a PageRank computation. The zero value selects the
// paper's settings.
type Options struct {
	// Epsilon is the damping factor (probability of following links).
	// Default 0.85.
	Epsilon float64
	// Tolerance is the L1 convergence threshold. Default 1e-5.
	Tolerance float64
	// MaxIterations bounds the power iteration. Default 1000.
	MaxIterations int
	// Personalization is the random-jump distribution P. nil selects the
	// uniform vector. Must have length NumNodes and sum to 1 (±1e-9).
	Personalization []float64
	// DanglingDist is the distribution dangling pages jump to. nil selects
	// the personalization vector.
	DanglingDist []float64
	// Start is the initial vector. nil selects the personalization vector.
	// It is not modified.
	Start []float64
	// ExtrapolateEvery, when positive, applies Aitken quadratic
	// extrapolation every that many iterations (Kamvar et al., WWW 2003),
	// an acceleration that suppresses the second eigenvector term. Only
	// valid with MethodPower and without AdaptiveFreeze.
	ExtrapolateEvery int
	// Method selects the iteration scheme (default MethodPower).
	Method Method
	// Parallelism selects the number of workers for the power iteration:
	// 0 or 1 runs sequentially, k > 1 uses k workers, and a negative
	// value selects the CPU count. The parallel scheme is a pull sweep
	// over edge-balanced target ranges: the per-iteration iterate is
	// bit-identical across worker counts and runs are bit-deterministic
	// for a fixed Parallelism; only the convergence test's delta sum
	// reassociates across values (≪ any practical tolerance). Only
	// MethodPower without extrapolation or adaptive freezing
	// parallelizes.
	Parallelism int
	// AdaptiveFreeze, when positive, enables adaptive PageRank (Kamvar et
	// al., "Adaptive methods for the computation of PageRank", 2003):
	// once a page's score changes by less than AdaptiveFreeze·(1/N) for
	// two consecutive iterations it is frozen — its outgoing contribution
	// is folded into a fixed base vector and it is no longer recomputed.
	// Only valid with MethodPower; the final vector agrees with the plain
	// iteration up to roughly N·AdaptiveFreeze in L1.
	AdaptiveFreeze float64
	// Deadline, when positive, bounds the computation's wall-clock time:
	// ComputeCtx derives its context with context.WithTimeout(ctx,
	// Deadline) and an unconverged run returns context.DeadlineExceeded
	// instead of burning the full MaxIterations budget. Zero means no
	// deadline.
	Deadline time.Duration
}

func (o *Options) fill(n int) error {
	if o.Epsilon == 0 {
		o.Epsilon = numeric.DefaultDamping
	}
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return fmt.Errorf("pagerank: damping factor %v outside (0,1)", o.Epsilon)
	}
	if o.Tolerance == 0 {
		o.Tolerance = numeric.DefaultTolerance
	}
	if o.Tolerance < 0 {
		return fmt.Errorf("pagerank: negative tolerance %v", o.Tolerance)
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 1000
	}
	if o.MaxIterations < 1 {
		return fmt.Errorf("pagerank: MaxIterations %d < 1", o.MaxIterations)
	}
	for name, v := range map[string][]float64{
		"Personalization": o.Personalization,
		"DanglingDist":    o.DanglingDist,
		"Start":           o.Start,
	} {
		if v == nil {
			continue
		}
		if len(v) != n {
			return fmt.Errorf("pagerank: %s has length %d, want %d", name, len(v), n)
		}
		sum := 0.0
		for _, x := range v {
			if x < 0 || math.IsNaN(x) {
				return fmt.Errorf("pagerank: %s has invalid entry %v", name, x)
			}
			sum += x
		}
		if math.Abs(sum-1) > numeric.SumTolerance {
			return fmt.Errorf("pagerank: %s sums to %v, want 1", name, sum)
		}
	}
	if o.Method != MethodPower && o.Method != MethodGaussSeidel {
		return fmt.Errorf("pagerank: unknown method %d", o.Method)
	}
	if o.AdaptiveFreeze < 0 {
		return fmt.Errorf("pagerank: negative AdaptiveFreeze %v", o.AdaptiveFreeze)
	}
	if o.Deadline < 0 {
		return fmt.Errorf("pagerank: negative Deadline %v", o.Deadline)
	}
	if o.Method == MethodGaussSeidel && (o.ExtrapolateEvery > 0 || o.AdaptiveFreeze > 0) {
		return fmt.Errorf("pagerank: Gauss–Seidel cannot combine with extrapolation or adaptive freezing")
	}
	if o.AdaptiveFreeze > 0 && o.ExtrapolateEvery > 0 {
		return fmt.Errorf("pagerank: adaptive freezing cannot combine with extrapolation")
	}
	if o.Parallelism < 0 {
		o.Parallelism = DefaultParallelism()
	}
	if o.Parallelism > 1 && (o.Method != MethodPower || o.ExtrapolateEvery > 0 || o.AdaptiveFreeze > 0) {
		return fmt.Errorf("pagerank: parallelism requires plain power iteration")
	}
	return nil
}

// Result carries the output of a ranking computation. All rankers in this
// repository return this shape.
type Result struct {
	// Scores is the stationary distribution (sums to 1).
	Scores []float64
	// Iterations is the number of power-iteration steps performed.
	Iterations int
	// Converged reports whether the tolerance was reached before
	// MaxIterations.
	Converged bool
	// Elapsed is the wall-clock duration of the iteration.
	Elapsed time.Duration
	// Deltas[i] is the L1 change after iteration i+1 (for convergence
	// plots and the adaptive experiments).
	Deltas []float64
	// FrozenPages is the number of pages frozen by the adaptive method at
	// termination (0 unless AdaptiveFreeze was set).
	FrozenPages int
}

// Compute runs the PageRank power iteration on g. It is ComputeCtx with
// context.Background() — uncancellable; long-running callers should
// prefer ComputeCtx.
func Compute(g DirectedGraph, opts Options) (*Result, error) {
	return ComputeCtx(context.Background(), g, opts)
}

// ComputeCtx is Compute under a context: every iteration scheme checks
// ctx every ctxCheckInterval iterations and, when cancelled (or when
// opts.Deadline expires), returns nil and ctx's error wrapped with the
// iteration reached.
func ComputeCtx(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, fmt.Errorf("pagerank: empty graph")
	}
	if err := opts.fill(n); err != nil {
		return nil, err
	}
	if opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Deadline)
		defer cancel()
	}
	if opts.Method == MethodGaussSeidel {
		return computeGaussSeidel(ctx, g, opts)
	}
	if opts.AdaptiveFreeze > 0 {
		return computeAdaptive(ctx, g, opts)
	}
	if opts.Parallelism > 1 {
		return computeParallel(ctx, g, opts)
	}
	return computeFlat(ctx, g, opts)
}

// jumpVectors materializes the personalization and dangling
// distributions as plain slices for the flat kernels: p is the caller's
// Personalization or a pooled uniform vector, d is DanglingDist or p.
// pooled is the buffer to hand back with kernel.PutVec when done (nil —
// a no-op Put — when the caller supplied its own Personalization);
// callers defer the Put directly rather than through a closure, which
// would cost a heap allocation per call.
func jumpVectors(n int, opts *Options) (p, d, pooled []float64) {
	p = opts.Personalization
	if p == nil {
		pooled = kernel.GetVec(n)
		u := 1.0 / float64(n)
		for i := range pooled {
			pooled[i] = u
		}
		p = pooled
	}
	d = opts.DanglingDist
	if d == nil {
		d = p
	}
	return p, d, pooled
}

// initStart fills cur with the start vector: opts.Start if set, else p.
func initStart(cur, p []float64, opts *Options) {
	if opts.Start != nil {
		copy(cur, opts.Start)
	} else {
		copy(cur, p)
	}
}

// finishResult copies the converged iterate and the recorded deltas out
// of the pooled working buffers into exact-size result slices.
func finishResult(res *Result, cur, deltas []float64, start time.Time) {
	normalize(cur)
	res.Scores = make([]float64, len(cur))
	copy(res.Scores, cur)
	res.Deltas = make([]float64, len(deltas))
	copy(res.Deltas, deltas)
	res.Elapsed = time.Since(start)
}

// computeFlat is the sequential power iteration on the flat PUSH
// kernel: the graph is snapshot once into frozen out-CSR slices
// (aliased straight from *graph.Graph storage when unweighted), and
// every iteration is pure slice arithmetic — zero interface calls and
// zero divisions on the per-edge path. The sequential path pushes
// rather than pulls because its random accesses then ride the store
// buffer instead of stalling the accumulation chain (see
// kernel.PushCSR); the parallel path in parallel.go pulls, which is
// what makes disjoint output ranges possible. Scratch buffers come
// from the kernel pools and are recycled on every exit path.
func computeFlat(ctx context.Context, g DirectedGraph, opts Options) (*Result, error) {
	n := g.NumNodes()
	start := time.Now()
	csr := kernel.PushSnapshot(g)
	defer csr.Release()
	p, d, pooled := jumpVectors(n, &opts)
	defer kernel.PutVec(pooled)

	// Direct defers with the buffer evaluated at the defer site: cur and
	// next swap names each iteration, but both backing arrays go back to
	// the pool regardless of which name they end under — and no closure
	// is allocated to capture them.
	cur := kernel.GetVec(n)
	next := kernel.GetVec(n)
	deltas := kernel.GetVec(opts.MaxIterations)
	defer kernel.PutVec(cur)
	defer kernel.PutVec(next)
	defer kernel.PutVec(deltas)
	initStart(cur, p, &opts)

	var prev1, prev2 []float64
	if opts.ExtrapolateEvery > 0 {
		prev1 = kernel.GetVec(n)
		prev2 = kernel.GetVec(n)
		defer kernel.PutVec(prev1)
		defer kernel.PutVec(prev2)
	}

	eps := opts.Epsilon
	res := &Result{}
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if iter%ctxCheckInterval == 1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("pagerank: cancelled at iteration %d: %w", iter-1, err)
			}
		}
		delta := csr.Sweep(next, cur, p, d, eps, csr.DanglingMass(cur))
		deltas[res.Iterations] = delta
		res.Iterations = iter

		if opts.ExtrapolateEvery > 0 {
			if iter > 2 && iter%opts.ExtrapolateEvery == 0 {
				extrapolate(next, prev1, prev2)
			}
			copy(prev2, prev1)
			copy(prev1, next)
		}

		cur, next = next, cur
		if delta < opts.Tolerance {
			res.Converged = true
			break
		}
	}

	finishResult(res, cur, deltas[:res.Iterations], start)
	return res, nil
}

// extrapolate applies componentwise Aitken Δ² extrapolation in place:
// x* = xₖ − (Δxₖ)²/(Δ²xₖ) with xₖ₋₁ = prev1 and xₖ₋₂ = prev2, then
// renormalizes. Components with a vanishing second difference are left
// unchanged, and any negative extrapolated value is clamped to the
// un-extrapolated one (the iterate must stay a distribution).
//arlint:hot
func extrapolate(x, prev1, prev2 []float64) {
	for i := range x {
		d1 := prev1[i] - prev2[i]
		d2 := x[i] - 2*prev1[i] + prev2[i]
		if math.Abs(d2) < numeric.DenominatorGuard {
			continue
		}
		e := x[i] - d1*d1/d2
		if e > 0 && !math.IsNaN(e) && !math.IsInf(e, 0) {
			x[i] = e
		}
	}
	normalize(x)
}

// normalize rescales v to sum to 1 (no-op on a zero vector).
//arlint:hot
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return
	}
	inv := 1.0 / sum
	for i := range v {
		v[i] *= inv
	}
}

// Uniform returns the uniform distribution of length n.
func Uniform(n int) []float64 {
	p := make([]float64, n)
	u := 1.0 / float64(n)
	for i := range p {
		p[i] = u
	}
	return p
}

// L1 returns the L1 distance Σ|a[i]−b[i]|. Vectors of different lengths
// are incomparable and have distance +Inf — loud under any tolerance
// check, without panicking inside a serving process.
//arlint:hot
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
