// Package iad implements iterative aggregation/disaggregation (IAD)
// updating of PageRank (Langville & Meyer, SIAM J. Matrix Anal. Appl.
// 2006) — reference [15] of the paper, discussed in its related work
// §II-E. When the Web changes only inside a known region G, IAD updates
// the stationary vector by alternating (a) an exact solve of a small
// aggregated chain — the region's pages kept as states, everything else
// censored into one super-state weighted by the current estimate — with
// (b) a single global power-iteration sweep. Changes confined to G make
// the aggregated solve absorb most of the movement, so only a handful of
// global sweeps are needed instead of a full recomputation.
//
// The aggregated chain of step (a) is built with the paper's own
// machinery (core.NewChainWithExternalScores): IAD's censored super-state
// is exactly an IdealRank Λ whose weights are the current estimate. This
// is the formal link the paper draws between its framework and the
// aggregation literature.
package iad

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// Config parameterizes the update. The zero value selects ε = 0.85,
// global L1 residual 1e-8, and at most 100 outer iterations.
type Config struct {
	// Epsilon is the damping factor of the chain being updated.
	Epsilon float64
	// Tolerance is the global L1 residual at which the update stops.
	Tolerance float64
	// MaxOuter bounds the outer aggregation/sweep iterations.
	MaxOuter int
	// InnerTolerance is the aggregated chain's convergence threshold.
	// Default Tolerance/10.
	InnerTolerance float64
}

func (c *Config) fill() error {
	if c.Epsilon == 0 {
		c.Epsilon = numeric.DefaultDamping
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("iad: damping factor %v outside (0,1)", c.Epsilon)
	}
	if c.Tolerance == 0 {
		c.Tolerance = numeric.TightTolerance
	}
	if c.Tolerance <= 0 {
		return fmt.Errorf("iad: non-positive tolerance %v", c.Tolerance)
	}
	if c.MaxOuter == 0 {
		c.MaxOuter = 100
	}
	if c.MaxOuter < 1 {
		return fmt.Errorf("iad: MaxOuter %d < 1", c.MaxOuter)
	}
	if c.InnerTolerance == 0 {
		c.InnerTolerance = c.Tolerance / 10
	}
	if c.InnerTolerance <= 0 {
		return fmt.Errorf("iad: non-positive inner tolerance %v", c.InnerTolerance)
	}
	return nil
}

// Result carries the updated vector and the work done.
type Result struct {
	// Scores is the updated stationary distribution of the (new) graph.
	Scores []float64
	// OuterIterations counts aggregation+sweep rounds; GlobalSweeps
	// counts full-graph power sweeps (one per outer round) — the quantity
	// to compare against a from-scratch recomputation's iteration count.
	OuterIterations int
	GlobalSweeps    int
	// InnerIterations sums the aggregated-chain iterations (each over
	// only n+1 states).
	InnerIterations int
	Converged       bool
	Elapsed         time.Duration
}

// Update recomputes the stationary distribution of g, assuming prior was
// the stationary distribution before a change confined to the changed
// pages. prior must have length g.NumNodes() and a positive sum (it is
// renormalized internally; the paper's scenario passes yesterday's
// PageRank against today's graph).
func Update(g *graph.Graph, changed []graph.NodeID, prior []float64, cfg Config) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("iad: nil graph")
	}
	if len(prior) != g.NumNodes() {
		return nil, fmt.Errorf("iad: prior has length %d, want %d", len(prior), g.NumNodes())
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	sub, err := graph.NewSubgraph(g, changed)
	if err != nil {
		return nil, fmt.Errorf("iad: changed set: %w", err)
	}
	start := time.Now()

	// Current estimate φ, normalized.
	phi := make([]float64, len(prior))
	sum := 0.0
	for i, p := range prior {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("iad: invalid prior entry %v at %d", p, i)
		}
		phi[i] = p
		sum += p
	}
	if sum <= 0 {
		return nil, fmt.Errorf("iad: prior sums to zero")
	}
	for i := range phi {
		phi[i] /= sum
	}

	res := &Result{}
	innerCfg := core.Config{Epsilon: cfg.Epsilon, Tolerance: cfg.InnerTolerance, MaxIterations: 1000}
	for outer := 1; outer <= cfg.MaxOuter; outer++ {
		// (a) Aggregate: censor the exterior into Λ weighted by φ and
		// solve the (n+1)-state chain exactly.
		ext := make([]float64, len(phi))
		extMass := 0.0
		for gid := range phi {
			if _, local := sub.LocalID(graph.NodeID(gid)); !local {
				ext[gid] = phi[gid]
				extMass += phi[gid]
			}
		}
		if extMass <= 0 {
			return nil, fmt.Errorf("iad: estimate has no exterior mass")
		}
		chain, err := core.NewChainWithExternalScores(sub, ext)
		if err != nil {
			return nil, fmt.Errorf("iad: aggregation: %w", err)
		}
		agg, err := chain.Run(innerCfg)
		if err != nil {
			return nil, fmt.Errorf("iad: aggregated solve: %w", err)
		}
		res.InnerIterations += agg.Iterations

		// Disaggregate: keep the solved scores inside G; scale the
		// exterior's old relative distribution to the new Λ mass.
		x := make([]float64, len(phi))
		for li, gid := range sub.Local {
			x[gid] = agg.Scores[li]
		}
		scale := agg.Lambda / extMass
		for gid := range phi {
			if _, local := sub.LocalID(graph.NodeID(gid)); !local {
				x[gid] = phi[gid] * scale
			}
		}
		normalize(x)

		// (b) One global power sweep from x; its L1 displacement is the
		// global residual.
		sweep, err := pagerank.Compute(g, pagerank.Options{
			Epsilon:       cfg.Epsilon,
			Tolerance:     numeric.ToleranceDisabled, // never stop on tolerance; we want exactly one sweep
			MaxIterations: 1,
			Start:         x,
		})
		if err != nil {
			return nil, fmt.Errorf("iad: global sweep: %w", err)
		}
		res.GlobalSweeps++
		res.OuterIterations = outer
		phi = sweep.Scores
		if sweep.Deltas[0] < cfg.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = phi
	res.Elapsed = time.Since(start)
	return res, nil
}

func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}
