package iad

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

// rewiredWorld generates a web, computes its PageRank, then rewires a
// fraction of the links inside one domain — the paper's "updates confined
// to a subgraph" scenario.
func rewiredWorld(t testing.TB, pages int, frac float64) (old, new_ *graph.Graph, region []graph.NodeID, oldPR []float64) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Pages: pages, Domains: 10, Seed: 41})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	old = ds.Graph
	pr, err := pagerank.Compute(old, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	oldPR = pr.Scores
	region = ds.DomainPages(4)
	member := map[graph.NodeID]bool{}
	for _, p := range region {
		member[p] = true
	}
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilder(old.NumNodes())
	for u := 0; u < old.NumNodes(); u++ {
		uid := graph.NodeID(u)
		for _, v := range old.OutNeighbors(uid) {
			if member[uid] && member[v] && rng.Float64() < frac {
				w := region[rng.Intn(len(region))]
				if w != uid {
					b.AddEdge(uid, w)
					continue
				}
			}
			b.AddEdge(uid, v)
		}
	}
	ng, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return old, ng, region, oldPR
}

// TestUpdateMatchesRecompute: IAD converges to the same stationary vector
// as a from-scratch PageRank on the changed graph.
func TestUpdateMatchesRecompute(t *testing.T) {
	_, ng, region, oldPR := rewiredWorld(t, 6000, 0.4)
	res, err := Update(ng, region, oldPR, Config{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d outer iterations", res.OuterIterations)
	}
	fresh, err := pagerank.Compute(ng, pagerank.Options{Tolerance: 1e-12, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	d := 0.0
	for i := range fresh.Scores {
		d += math.Abs(fresh.Scores[i] - res.Scores[i])
	}
	if d > 1e-7 {
		t.Fatalf("IAD deviates from recomputation by L1=%g", d)
	}
}

// TestFewerGlobalSweeps: for a localized change, IAD must need fewer
// full-graph sweeps than BOTH a cold recomputation and plain power
// iteration warm-started from the stale scores — i.e. the aggregated
// solve contributes beyond merely reusing the prior. (The asymptotic
// sweep rate is still bounded by the chain's mixing, so the savings are
// a solid factor, not orders of magnitude, at tight tolerances; measured
// here: IAD ≈ 30, warm ≈ 36, cold ≈ 55.)
func TestFewerGlobalSweeps(t *testing.T) {
	_, ng, region, oldPR := rewiredWorld(t, 10000, 0.4)
	res, err := Update(ng, region, oldPR, Config{Tolerance: 1e-8})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	warm, err := pagerank.Compute(ng, pagerank.Options{Tolerance: 1e-8, Start: oldPR})
	if err != nil {
		t.Fatalf("warm pagerank: %v", err)
	}
	cold, err := pagerank.Compute(ng, pagerank.Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatalf("cold pagerank: %v", err)
	}
	if res.GlobalSweeps >= warm.Iterations {
		t.Errorf("IAD used %d global sweeps, warm-start power %d", res.GlobalSweeps, warm.Iterations)
	}
	if float64(res.GlobalSweeps) >= 0.7*float64(cold.Iterations) {
		t.Errorf("IAD used %d global sweeps, cold recompute %d — savings too small",
			res.GlobalSweeps, cold.Iterations)
	}
}

// TestNoChangeConvergesImmediately: with the true stationary vector as
// the prior on an unchanged graph, one sweep suffices.
func TestNoChangeConvergesImmediately(t *testing.T) {
	old, _, region, oldPR := rewiredWorld(t, 4000, 0.4)
	res, err := Update(old, region, oldPR, Config{Tolerance: 1e-6})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if res.OuterIterations > 2 {
		t.Errorf("stationary prior took %d outer iterations", res.OuterIterations)
	}
}

// TestUnnormalizedPrior: the prior may arrive unnormalized.
func TestUnnormalizedPrior(t *testing.T) {
	_, ng, region, oldPR := rewiredWorld(t, 4000, 0.4)
	scaled := make([]float64, len(oldPR))
	for i, p := range oldPR {
		scaled[i] = 42 * p
	}
	a, err := Update(ng, region, oldPR, Config{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	b, err := Update(ng, region, scaled, Config{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	for i := range a.Scores {
		if math.Abs(a.Scores[i]-b.Scores[i]) > 1e-12 {
			t.Fatalf("scaling the prior changed the result at %d", i)
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	prior := []float64{0.25, 0.25, 0.25, 0.25}
	if _, err := Update(nil, []graph.NodeID{0}, prior, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, prior[:2], Config{}); err == nil {
		t.Error("short prior accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, []float64{0, 0, 0, 0}, Config{}); err == nil {
		t.Error("zero prior accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, []float64{-1, 1, 1, 1}, Config{}); err == nil {
		t.Error("negative prior accepted")
	}
	if _, err := Update(g, nil, prior, Config{}); err == nil {
		t.Error("empty changed set accepted")
	}
	if _, err := Update(g, []graph.NodeID{0, 1, 2, 3}, prior, Config{}); err == nil {
		t.Error("changed set equal to whole graph accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, prior, Config{Epsilon: 2}); err == nil {
		t.Error("bad epsilon accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, prior, Config{Tolerance: -1}); err == nil {
		t.Error("bad tolerance accepted")
	}
	if _, err := Update(g, []graph.NodeID{0}, prior, Config{MaxOuter: -1}); err == nil {
		t.Error("bad MaxOuter accepted")
	}
}
