// Package numeric is the single source of truth for the numeric
// conventions the ApproxRank reproduction depends on: the damping
// factor, convergence tolerances, and the guard values used when
// validating probability distributions or protecting divisions.
//
// Every tolerance or epsilon literal in library code must reference one
// of these constants; the arlint `tolerances` checker
// (internal/analysis) enforces this mechanically, so the conventions
// cannot drift between components. Add a new constant here (with a
// comment saying which invariant it encodes) rather than scattering a
// fresh literal.
package numeric

const (
	// DefaultDamping is the PageRank damping factor ε — the probability
	// of following a link rather than jumping — used by every ranker in
	// the repository (the paper's setting).
	DefaultDamping = 0.85

	// DefaultTolerance is the L1 convergence threshold for the power
	// iteration (the paper uses 1e-5).
	DefaultTolerance = 1e-5

	// TightTolerance is the stricter threshold used where a ranking
	// feeds a downstream computation and residual error would compound:
	// HITS, the IAD incremental update, PointRank, and the experiment
	// suites.
	TightTolerance = 1e-8

	// ReferenceTolerance is the near-machine-precision threshold used
	// when computing a ground-truth reference ranking that other results
	// are measured against (acceleration and update experiments).
	ReferenceTolerance = 1e-12

	// DefaultAdaptiveFreeze is the adaptive-PageRank freeze threshold,
	// expressed as a multiple of the uniform score 1/N (Kamvar et al.
	// 2003), used by the acceleration experiments.
	DefaultAdaptiveFreeze = 1e-4

	// SumTolerance is the slack allowed when validating that a
	// user-supplied probability vector (personalization, dangling
	// distribution, start vector) sums to 1.
	SumTolerance = 1e-6

	// DenominatorGuard is the magnitude below which a computed
	// denominator is treated as vanishing (e.g. the second difference in
	// Aitken Δ² extrapolation), skipping the division instead of
	// amplifying rounding noise.
	DenominatorGuard = 1e-12

	// ToleranceDisabled is a sentinel convergence threshold that can
	// never be reached by an L1 residual, forcing an iteration to run
	// for exactly MaxIterations sweeps. Used where the caller drives
	// convergence itself (the IAD outer loop).
	ToleranceDisabled = 1e-300
)
