package numeric

import "testing"

// The constants encode an ordering the rest of the repository relies on:
// the guard values must sit strictly below every convergence threshold,
// and the disabled sentinel below everything a residual can reach.
func TestConstantOrdering(t *testing.T) {
	if !(DefaultDamping > 0 && DefaultDamping < 1) {
		t.Errorf("DefaultDamping %v outside (0,1)", DefaultDamping)
	}
	if !(DefaultTolerance > TightTolerance) {
		t.Errorf("DefaultTolerance %v not looser than TightTolerance %v", DefaultTolerance, TightTolerance)
	}
	if !(TightTolerance > DenominatorGuard) {
		t.Errorf("TightTolerance %v not looser than DenominatorGuard %v", TightTolerance, DenominatorGuard)
	}
	if !(DenominatorGuard > ToleranceDisabled) {
		t.Errorf("DenominatorGuard %v not above ToleranceDisabled %v", DenominatorGuard, ToleranceDisabled)
	}
	if !(ToleranceDisabled > 0) {
		t.Errorf("ToleranceDisabled %v not positive", ToleranceDisabled)
	}
	if !(SumTolerance > 0 && SumTolerance < 1e-2) {
		t.Errorf("SumTolerance %v outside (0, 1e-2)", SumTolerance)
	}
}
