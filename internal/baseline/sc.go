package baseline

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// SCConfig configures the stochastic-complementation supergraph expansion
// (Davis & Dhillon, KDD 2006) as described in the ApproxRank paper's
// related work and evaluation: starting from the local graph of size n,
// the frontier reached by outgoing links is scored by an influence
// estimate, the k most influential external pages join the supergraph, the
// PageRank of the expanded graph is recomputed, and the process repeats
// for a fixed number of expansions. The paper's setting selects another n
// external pages over 25 expansions (k = n/25).
type SCConfig struct {
	Config
	// Expansions is the number of expansion rounds. Default 25.
	Expansions int
	// K is the number of external pages added per round. Default
	// n/Expansions (at least 1), the paper's setting.
	K int
	// MaxFrontier caps the number of frontier candidates scored per round
	// (0 = unlimited). The paper notes SC "becomes very expensive to
	// estimate the influence scores for all external pages" on heavily
	// coupled subgraphs; the cap keeps worst cases bounded without
	// changing the algorithm on the paper's workloads.
	MaxFrontier int
}

// SCResult extends the ranking result with the expansion telemetry that
// the paper's runtime tables report.
type SCResult struct {
	pagerank.Result
	// K is the per-round expansion width actually used.
	K int
	// FrontierSizes[t] is the number of external candidate pages examined
	// in round t (the paper's "#ext nodes in the t-th expansion").
	FrontierSizes []int
	// SupergraphSize is the node count of the final supergraph.
	SupergraphSize int
	// PageRankRuns counts the full PageRank computations performed.
	PageRankRuns int
}

// SC runs the stochastic-complementation approach on sub and returns raw
// scores for the n local pages (the supergraph PageRank restricted to the
// original subgraph).
//
// Influence of a frontier candidate j is estimated with a first-order
// stochastic complement: the authority j would capture from the current
// supergraph, inflow(j) = Σ_{u∈S, u→j} p(u)/D_u, weighted by the fraction
// of j's out-links that return the authority to the supergraph. This is
// the O(deg j) surrogate for "estimate the PageRank scores on the subgraph
// when added the candidate page" that makes the per-round frontier sweep
// feasible while preserving SC's selection behaviour and cost profile.
//
// SC is SCCtx with context.Background().
func SC(sub *graph.Subgraph, cfg SCConfig) (*SCResult, error) {
	return SCCtx(context.Background(), sub, cfg)
}

// SCCtx is SC under a context. Cancellation is checked before each
// expansion round and inside every supergraph PageRank run — SC is the
// paper's most expensive competitor, so it is the ranker most worth
// being able to abandon; a cancelled run returns only the error.
func SCCtx(ctx context.Context, sub *graph.Subgraph, cfg SCConfig) (*SCResult, error) {
	if sub == nil {
		return nil, fmt.Errorf("baseline: nil subgraph")
	}
	if cfg.Expansions == 0 {
		cfg.Expansions = 25
	}
	if cfg.Expansions < 0 {
		return nil, fmt.Errorf("baseline: negative expansion count %d", cfg.Expansions)
	}
	n := sub.N()
	if cfg.K == 0 {
		cfg.K = n / cfg.Expansions
		if cfg.K < 1 {
			cfg.K = 1
		}
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("baseline: negative expansion width %d", cfg.K)
	}
	start := time.Now()
	g := sub.Global

	res := &SCResult{K: cfg.K}

	// The supergraph S starts as the local page set.
	super := make([]graph.NodeID, len(sub.Local))
	copy(super, sub.Local)
	member := sub.Member.Clone()

	// Current PageRank estimate on the supergraph, indexed by position in
	// super.
	pr, runs, err := supergraphPageRank(ctx, g, super, cfg.Config)
	if err != nil {
		return nil, err
	}
	res.PageRankRuns += runs
	scores := pr.Scores
	res.Iterations += pr.Iterations

	eps := cfg.Epsilon
	if eps == 0 {
		eps = numeric.DefaultDamping
	}

	for round := 0; round < cfg.Expansions; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("baseline: sc cancelled before expansion %d: %w", round, err)
		}
		// Score the frontier: external pages reachable by one outgoing
		// link from the supergraph.
		influence := make(map[graph.NodeID]float64)
		for si, gid := range super {
			if g.Dangling(gid) {
				continue
			}
			wout := g.WeightOut(gid)
			adj := g.OutNeighbors(gid)
			ws := g.OutWeights(gid)
			for k, v := range adj {
				if member.Contains(v) {
					continue
				}
				p := 1.0 / wout
				if ws != nil {
					p = ws[k] / wout
				}
				influence[v] += scores[si] * p
			}
		}
		res.FrontierSizes = append(res.FrontierSizes, len(influence))
		if len(influence) == 0 {
			break
		}

		type cand struct {
			id   graph.NodeID
			infl float64
		}
		cands := make([]cand, 0, len(influence))
		for id, inflow := range influence {
			// Weight captured authority by the fraction returned to the
			// supergraph (plus a small epsilon so pure sinks that capture a
			// lot of local authority still rank above noise).
			back := 0.0
			d := g.WeightOut(id)
			if d > 0 {
				adj := g.OutNeighbors(id)
				ws := g.OutWeights(id)
				for k, v := range adj {
					if member.Contains(v) {
						if ws != nil {
							back += ws[k] / d
						} else {
							back += 1.0 / d
						}
					}
				}
			}
			cands = append(cands, cand{id, inflow * (eps*back + (1 - eps))})
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].infl > cands[b].infl {
				return true
			}
			if cands[a].infl < cands[b].infl {
				return false
			}
			return cands[a].id < cands[b].id
		})
		if cfg.MaxFrontier > 0 && len(cands) > cfg.MaxFrontier {
			cands = cands[:cfg.MaxFrontier]
		}
		take := cfg.K
		if take > len(cands) {
			take = len(cands)
		}
		for _, c := range cands[:take] {
			member.Add(c.id)
			super = append(super, c.id)
		}

		// Recompute PageRank on the expanded supergraph (the per-round
		// full computation is what dominates SC's runtime).
		pr, runs, err = supergraphPageRank(ctx, g, super, cfg.Config)
		if err != nil {
			return nil, err
		}
		res.PageRankRuns += runs
		scores = pr.Scores
		res.Iterations += pr.Iterations
	}

	// Restrict the final supergraph scores to the original local pages.
	// super keeps the local pages in positions 0..n−1 in subgraph order.
	res.Scores = append([]float64(nil), scores[:n]...)
	res.Converged = pr.Converged
	res.SupergraphSize = len(super)
	res.Elapsed = time.Since(start)
	return res, nil
}

// supergraphPageRank runs standard PageRank on the subgraph of g induced
// by the given node list, preserving the list's order in the score vector.
func supergraphPageRank(ctx context.Context, g *graph.Graph, nodes []graph.NodeID, cfg Config) (*pagerank.Result, int, error) {
	b := graph.NewBuilder(len(nodes))
	member := graph.NewNodeSet(g.NumNodes())
	pos := make(map[graph.NodeID]uint32, len(nodes))
	for i, id := range nodes {
		member.Add(id)
		pos[id] = uint32(i)
	}
	for i, id := range nodes {
		adj := g.OutNeighbors(id)
		ws := g.OutWeights(id)
		for k, v := range adj {
			if !member.Contains(v) {
				continue
			}
			if ws != nil {
				b.AddWeightedEdge(uint32(i), pos[v], ws[k])
			} else {
				b.AddEdge(uint32(i), pos[v])
			}
		}
	}
	ig, err := b.Build()
	if err != nil {
		return nil, 0, err
	}
	res, err := pagerank.ComputeCtx(ctx, ig, cfg.options())
	if err != nil {
		return nil, 0, err
	}
	return res, 1, nil
}
