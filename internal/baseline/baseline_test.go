package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

// fig4 builds the paper's Figure 4 example: locals A,B,C,D (0–3),
// externals X,Y,Z (4–6).
func fig4(t testing.TB) (*graph.Graph, *graph.Subgraph) {
	t.Helper()
	g := graph.MustFromEdges(7, [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {0, 6},
		{1, 3},
		{2, 1}, {2, 3},
		{3, 0},
		{4, 2}, {4, 5}, {4, 6},
		{5, 2}, {5, 4},
		{6, 2}, {6, 3},
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{0, 1, 2, 3})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

func randomSubgraph(t testing.TB, rng *rand.Rand, n, deg int) (*graph.Graph, *graph.Subgraph) {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		if rng.Float64() < 0.05 {
			continue
		}
		d := 1 + rng.Intn(2*deg)
		for e := 0; e < d; e++ {
			v := rng.Intn(n)
			if v != u {
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	perm := rng.Perm(n)
	local := make([]graph.NodeID, n/4+2)
	for i := range local {
		local[i] = graph.NodeID(perm[i])
	}
	sub, err := graph.NewSubgraph(g, local)
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

// TestLocalPageRankMatchesDirect: LocalPageRank equals PageRank computed
// directly on the induced graph.
func TestLocalPageRankMatchesDirect(t *testing.T) {
	_, sub := fig4(t)
	res, err := LocalPageRank(sub, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("LocalPageRank: %v", err)
	}
	induced, err := sub.Induce()
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	direct, err := pagerank.Compute(induced, pagerank.Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for i := range res.Scores {
		if res.Scores[i] != direct.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, res.Scores[i], direct.Scores[i])
		}
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("local scores sum to %v", sum)
	}
}

// TestLPR2Structure: on the Figure 4 graph, only A links out-of-domain, so
// only A gains the ξ out-edge; C and D receive external in-links, so ξ
// links to C and D once each regardless of multiplicity.
func TestLPR2Structure(t *testing.T) {
	_, sub := fig4(t)
	res, err := LPR2(sub, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("LPR2: %v", err)
	}
	if len(res.Scores) != 4 {
		t.Fatalf("LPR2 returned %d scores, want 4", len(res.Scores))
	}
	sum := 0.0
	for _, s := range res.Scores {
		sum += s
	}
	// ξ keeps some mass, so the local scores must sum to strictly less
	// than 1 but most of it.
	if sum >= 1 || sum < 0.5 {
		t.Fatalf("LPR2 local scores sum to %v", sum)
	}
	// C receives ξ's endorsement spread over {C, D}: C must outrank B=1?
	// B receives from A (1/3 of A) and C; sanity: scores positive.
	for i, s := range res.Scores {
		if s <= 0 {
			t.Fatalf("score %d = %v", i, s)
		}
	}
}

// TestLPR2IgnoresMultiplicity is the paper's critique of LPR2: doubling
// the number of external in-links to a page must not change LPR2 scores
// (while ApproxRank does react). We add a second external page linking to
// D and verify LPR2's relative scores of C and D are unchanged.
func TestLPR2IgnoresMultiplicity(t *testing.T) {
	base := [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {1, 3}, {2, 1}, {2, 3}, {3, 0},
		{4, 2}, {5, 2}, {6, 2}, // three external pages endorse C
	}
	g1 := graph.MustFromEdges(7, base)
	// Same graph, but the three external endorsements all hit D instead of
	// one page each — multiplicity redistributed.
	alt := [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {1, 3}, {2, 1}, {2, 3}, {3, 0},
		{4, 2}, {5, 3}, {6, 3},
	}
	g2 := graph.MustFromEdges(7, alt)
	sub1, _ := graph.NewSubgraph(g1, []graph.NodeID{0, 1, 2, 3})
	sub2, _ := graph.NewSubgraph(g2, []graph.NodeID{0, 1, 2, 3})
	r1, err := LPR2(sub1, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("LPR2: %v", err)
	}
	r2, err := LPR2(sub2, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("LPR2: %v", err)
	}
	// In g1, ξ→{C}; in g2, ξ→{C,D}. The structures differ, but within g2
	// C (one external endorsement) and D (two) get the SAME ξ edge —
	// that's the insensitivity the paper criticizes. Verify directly that
	// LPR2 on g2 does not distinguish C's and D's external in-link counts:
	// swap C and D's external in-link multiplicity and scores must be
	// identical.
	alt2 := [][2]graph.NodeID{
		{0, 1}, {0, 2}, {0, 4}, {1, 3}, {2, 1}, {2, 3}, {3, 0},
		{4, 3}, {5, 2}, {6, 2}, // multiplicities swapped between C and D
	}
	g3 := graph.MustFromEdges(7, alt2)
	sub3, _ := graph.NewSubgraph(g3, []graph.NodeID{0, 1, 2, 3})
	r3, err := LPR2(sub3, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("LPR2: %v", err)
	}
	for i := range r2.Scores {
		if math.Abs(r2.Scores[i]-r3.Scores[i]) > 1e-12 {
			t.Fatalf("LPR2 distinguished multiplicity at %d: %v vs %v", i, r2.Scores[i], r3.Scores[i])
		}
	}
	_ = r1
}

// TestSCBasics: SC runs, expands the supergraph, and returns positive
// local scores in local order.
func TestSCBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	_, sub := randomSubgraph(t, rng, 120, 4)
	res, err := SC(sub, SCConfig{Expansions: 5})
	if err != nil {
		t.Fatalf("SC: %v", err)
	}
	if len(res.Scores) != sub.N() {
		t.Fatalf("SC returned %d scores, want %d", len(res.Scores), sub.N())
	}
	if res.SupergraphSize <= sub.N() {
		t.Fatalf("supergraph did not grow: %d", res.SupergraphSize)
	}
	if res.SupergraphSize > sub.N()+5*res.K {
		t.Fatalf("supergraph grew too much: %d > %d", res.SupergraphSize, sub.N()+5*res.K)
	}
	if len(res.FrontierSizes) == 0 || res.FrontierSizes[0] == 0 {
		t.Fatalf("frontier sizes: %v", res.FrontierSizes)
	}
	if res.PageRankRuns != 6 { // initial + one per expansion
		t.Fatalf("PageRankRuns = %d, want 6", res.PageRankRuns)
	}
	for i, s := range res.Scores {
		if s < 0 {
			t.Fatalf("score %d = %v", i, s)
		}
	}
}

// TestSCDefaultK: the paper's setting k = n/25.
func TestSCDefaultK(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	_, sub := randomSubgraph(t, rng, 200, 4)
	res, err := SC(sub, SCConfig{Expansions: 2})
	if err != nil {
		t.Fatalf("SC: %v", err)
	}
	want := sub.N() / 2
	if res.K != want {
		t.Fatalf("K = %d, want n/Expansions = %d", res.K, want)
	}
}

// TestSCStopsWhenNoFrontier: a subgraph with no outgoing links cannot
// expand; SC must terminate gracefully.
func TestSCStopsWhenNoFrontier(t *testing.T) {
	g := graph.MustFromEdges(5, [][2]graph.NodeID{
		{0, 1}, {1, 0}, // closed local component
		{3, 4}, {4, 3}, {3, 0}, // externals link in, never out
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	res, err := SC(sub, SCConfig{Expansions: 10})
	if err != nil {
		t.Fatalf("SC: %v", err)
	}
	if res.SupergraphSize != 2 {
		t.Fatalf("supergraph size %d, want 2 (no frontier)", res.SupergraphSize)
	}
	if len(res.FrontierSizes) != 1 || res.FrontierSizes[0] != 0 {
		t.Fatalf("frontier sizes %v, want [0]", res.FrontierSizes)
	}
}

// TestSCImprovesOnLocalPR: on a graph where externals concentrate
// endorsement on one local page, SC must track the global ranking better
// than local PageRank (that is its reason to exist).
func TestSCImprovesOnLocalPR(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, sub := randomSubgraph(t, rng, 150, 5)
	gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("global: %v", err)
	}
	truth := make([]float64, sub.N())
	for li, gid := range sub.Local {
		truth[li] = gr.Scores[gid]
	}
	normalizeVec(truth)
	sc, err := SC(sub, SCConfig{})
	if err != nil {
		t.Fatalf("SC: %v", err)
	}
	lp, err := LocalPageRank(sub, Config{})
	if err != nil {
		t.Fatalf("LocalPageRank: %v", err)
	}
	scScores := append([]float64(nil), sc.Scores...)
	lpScores := append([]float64(nil), lp.Scores...)
	normalizeVec(scScores)
	normalizeVec(lpScores)
	scErr := l1(scScores, truth)
	lpErr := l1(lpScores, truth)
	if scErr > lpErr*1.25 {
		t.Fatalf("SC L1 %v much worse than local PR %v", scErr, lpErr)
	}
}

// TestConfigErrors covers invalid configurations and inputs.
func TestConfigErrors(t *testing.T) {
	_, sub := fig4(t)
	if _, err := LocalPageRank(nil, Config{}); err == nil {
		t.Error("nil subgraph accepted by LocalPageRank")
	}
	if _, err := LPR2(nil, Config{}); err == nil {
		t.Error("nil subgraph accepted by LPR2")
	}
	if _, err := SC(nil, SCConfig{}); err == nil {
		t.Error("nil subgraph accepted by SC")
	}
	if _, err := SC(sub, SCConfig{Expansions: -1}); err == nil {
		t.Error("negative expansions accepted")
	}
	if _, err := SC(sub, SCConfig{K: -2}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := LocalPageRank(sub, Config{Epsilon: 2}); err == nil {
		t.Error("bad epsilon accepted")
	}
}

func normalizeVec(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s > 0 {
		for i := range v {
			v[i] /= s
		}
	}
}

func l1(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d
}
