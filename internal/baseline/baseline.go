// Package baseline implements the comparison algorithms from the paper's
// evaluation:
//
//   - LocalPageRank (■): standard PageRank on the induced local graph,
//     ignoring external pages entirely.
//   - LPR2 (●): the ServerRank component of Wang & DeWitt (VLDB 2004) —
//     PageRank on the local graph extended with a single artificial
//     external page ξ connected by unweighted edges, i.e. the naïve
//     Λ construction of the paper's Figure 5 that does not adjust
//     transition probabilities for multiplicity.
//   - SC (◆): the stochastic-complementation supergraph expansion of
//     Davis & Dhillon (KDD 2006), the paper's best competitor.
//
// All rankers return raw stationary scores for the n local pages in
// subgraph-local id order; callers compare rankings after normalizing both
// vectors to probability distributions (the convention the paper's L1
// numbers imply).
package baseline

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

// Config carries PageRank parameters shared by the baselines. The zero
// value selects the paper's settings.
type Config struct {
	Epsilon       float64 // damping factor, default 0.85
	Tolerance     float64 // L1 convergence threshold, default 1e-5
	MaxIterations int     // default 1000
}

func (c Config) options() pagerank.Options {
	return pagerank.Options{
		Epsilon:       c.Epsilon,
		Tolerance:     c.Tolerance,
		MaxIterations: c.MaxIterations,
	}
}

// LocalPageRank runs standard PageRank on the induced local graph. Edges
// to and from external pages are discarded; out-degrees are local. This is
// the paper's first baseline (■). It is LocalPageRankCtx with
// context.Background().
func LocalPageRank(sub *graph.Subgraph, cfg Config) (*pagerank.Result, error) {
	return LocalPageRankCtx(context.Background(), sub, cfg)
}

// LocalPageRankCtx is LocalPageRank under a context; cancelling ctx aborts
// the walk.
func LocalPageRankCtx(ctx context.Context, sub *graph.Subgraph, cfg Config) (*pagerank.Result, error) {
	if sub == nil {
		return nil, fmt.Errorf("baseline: nil subgraph")
	}
	local, err := sub.Induce()
	if err != nil {
		return nil, err
	}
	return pagerank.ComputeCtx(ctx, local, cfg.options())
}

// LPR2 runs the second baseline (●): an artificial page ξ is appended to
// the local graph; a single unweighted edge i→ξ is added for every local
// page with at least one out-of-subgraph link, and a single unweighted
// edge ξ→i for every local page with at least one in-link from outside.
// Standard PageRank runs on the constructed n+1 graph; the returned scores
// are the entries of the n local pages (the ξ entry is dropped, so the
// vector sums to less than one). It is LPR2Ctx with context.Background().
func LPR2(sub *graph.Subgraph, cfg Config) (*pagerank.Result, error) {
	return LPR2Ctx(context.Background(), sub, cfg)
}

// LPR2Ctx is LPR2 under a context; cancelling ctx aborts the walk.
func LPR2Ctx(ctx context.Context, sub *graph.Subgraph, cfg Config) (*pagerank.Result, error) {
	if sub == nil {
		return nil, fmt.Errorf("baseline: nil subgraph")
	}
	n := sub.N()
	xi := uint32(n)
	b := graph.NewBuilder(n + 1)
	g := sub.Global
	for li, gid := range sub.Local {
		toXi := false
		for _, v := range g.OutNeighbors(gid) {
			if lv, local := sub.LocalID(v); local {
				b.AddEdge(uint32(li), lv)
			} else {
				toXi = true
			}
		}
		if toXi {
			b.AddEdge(uint32(li), xi)
		}
		for _, u := range g.InNeighbors(gid) {
			if _, local := sub.LocalID(u); !local {
				b.AddEdge(xi, uint32(li))
				break
			}
		}
	}
	ext, err := b.Build()
	if err != nil {
		return nil, err
	}
	res, err := pagerank.ComputeCtx(ctx, ext, cfg.options())
	if err != nil {
		return nil, err
	}
	res.Scores = res.Scores[:n]
	return res, nil
}
