package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/kernel"
)

// pullCSR returns the chain's pull-form CSR, building it on first use.
// The build is O(local states + local edges) and happens at most once
// per chain, so only runs that actually go parallel pay for it.
func (c *ExtendedChain) pullCSR() *kernel.CSR {
	c.pullOnce.Do(func() { c.pull = c.buildPull() })
	return c.pull
}

// buildPull assembles the in-adjacency (pull) form of the collapsed
// transition matrix over the chain's n+1 states. The edge set is exactly
// what the sequential push sweep visits: local row i contributes i→adj
// entries and an i→Λ entry when toLambda[i] > 0, the Λ row contributes
// n→k entries plus the self-loop. The dangling states generalize to
// fractional weights: locally-dangling pages redistribute their whole
// score along the personalization vector (weight 1) while Λ forwards
// only the extDanglingMass fraction on behalf of dangling external
// pages — so kernel.DanglingMass reproduces the push sweep's jump term
// exactly.
func (c *ExtendedChain) buildPull() *kernel.CSR {
	n := c.n
	states := n + 1
	off := make([]int64, states+1)
	for i := 0; i < n; i++ {
		for k := c.locOff[i]; k < c.locOff[i+1]; k++ {
			off[c.locAdj[k]+1]++
		}
		if c.toLambda[i] > 0 {
			off[states]++
		}
	}
	for _, li := range c.lamAdj {
		off[li+1]++
	}
	if c.lamSelf > 0 {
		off[states]++
	}
	for v := 0; v < states; v++ {
		off[v+1] += off[v]
	}
	m := off[states]
	srcs := make([]uint32, m)
	prob := make([]float64, m)
	cursor := make([]int64, states)
	copy(cursor, off[:states])
	put := func(tgt int, src uint32, p float64) {
		slot := cursor[tgt]
		srcs[slot] = src
		prob[slot] = p
		cursor[tgt] = slot + 1
	}
	for i := 0; i < n; i++ {
		for k := c.locOff[i]; k < c.locOff[i+1]; k++ {
			put(int(c.locAdj[k]), uint32(i), c.locProb[k])
		}
		if c.toLambda[i] > 0 {
			put(n, uint32(i), c.toLambda[i])
		}
	}
	for k, li := range c.lamAdj {
		put(int(li), uint32(n), c.lamProb[k])
	}
	if c.lamSelf > 0 {
		put(n, uint32(n), c.lamSelf)
	}

	nd := len(c.locDang)
	if c.extDanglingMass > 0 {
		nd++
	}
	dIdx := make([]uint32, 0, nd)
	dW := make([]float64, 0, nd)
	for _, i := range c.locDang {
		dIdx = append(dIdx, i)
		dW = append(dW, 1)
	}
	if c.extDanglingMass > 0 {
		dIdx = append(dIdx, uint32(n))
		dW = append(dW, c.extDanglingMass)
	}
	return &kernel.CSR{N: states, InOff: off, InSrc: srcs, InProb: prob, DanglingIdx: dIdx, DanglingW: dW}
}

// runParallel is the Parallelism > 1 branch of RunCtx: a pull-based
// power iteration over the chain's cached pull CSR, with a persistent
// kernel.SweepPool of workers each owning a disjoint
// edge-count-balanced range of target states. The team is spawned once
// before the convergence loop and reused every round (per-round
// spawn/join was the arlint spawnloop finding), with its partial
// deltas in cache-line-padded pool slots rather than adjacent elements
// of a shared array (the falseshare finding). Workers read the
// immutable cur and write only their own slice of next, so there is no
// reduction pass and the iterate is bit-identical across worker
// counts; it differs from the sequential push sweep only by
// floating-point reassociation of each state's in-row. pvec doubles as
// the dangling redistribution vector — the collapsed chain
// redistributes dangling mass along the personalization vector by
// construction.
//
// The requested Parallelism is capped at runtime.GOMAXPROCS(0); unlike
// pagerank.computeParallel this branch keeps its pull iteration even
// at one effective worker, because its contract (ctx polled at every
// iteration's barrier, not every ctxCheckInterval) is part of RunCtx's
// documented cancellation behavior.
func (c *ExtendedChain) runParallel(ctx context.Context, cfg Config, pvec []float64, start time.Time) (*Result, error) {
	csr := c.pullCSR()
	n := c.n
	cur := kernel.GetVec(n + 1)
	next := kernel.GetVec(n + 1)
	deltas := kernel.GetVec(cfg.MaxIterations)
	defer kernel.PutVec(cur)
	defer kernel.PutVec(next)
	defer kernel.PutVec(deltas)
	copy(cur, pvec)

	parts := cfg.Parallelism
	if maxProcs := runtime.GOMAXPROCS(0); parts > maxProcs {
		parts = maxProcs
	}
	bounds := kernel.PartitionByEdges(csr.InOff, parts)
	pool := kernel.NewSweepPool(len(bounds) - 1)
	defer pool.Close()
	eps := cfg.Epsilon
	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		delta := pool.Sweep(ctx, csr, next, cur, pvec, pvec, eps, csr.DanglingMass(cur), bounds)
		// A cancellation that landed mid-iteration left next (and the
		// partial deltas) stale; this check runs before either is trusted,
		// so a cancelled iteration can never "converge".
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: power iteration cancelled at iteration %d: %w", iter-1, err)
		}
		deltas[res.Iterations] = delta
		res.Iterations = iter
		cur, next = next, cur
		if delta < cfg.Tolerance {
			res.Converged = true
			break
		}
	}

	finishChainResult(res, cur, deltas[:res.Iterations], n, start)
	return res, nil
}

// finishChainResult copies the pooled iterate and delta history into
// exact-size result slices and splits off the Λ score.
func finishChainResult(res *Result, cur, deltas []float64, n int, start time.Time) {
	res.Scores = make([]float64, n)
	copy(res.Scores, cur[:n])
	res.Lambda = cur[n]
	res.Deltas = make([]float64, len(deltas))
	copy(res.Deltas, deltas)
	res.Elapsed = time.Since(start)
}
