package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// countdownContext is a deterministic cancellation source: its Err flips
// to context.Canceled after the n-th call. The power iteration polls
// ctx.Err() (rather than selecting on Done), so this drives the
// mid-iteration cancellation path without any timing dependence.
type countdownContext struct {
	context.Context
	mu   sync.Mutex
	left int
}

func newCountdown(calls int) *countdownContext {
	return &countdownContext{Context: context.Background(), left: calls}
}

func (c *countdownContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRunCtxPreCancelled(t *testing.T) {
	_, sub := figureGraph(t)
	chain, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := chain.RunCtx(ctx, Config{})
	if err == nil {
		t.Fatal("pre-cancelled context produced a result")
	}
	if res != nil {
		t.Errorf("got partial result %+v alongside error", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

func TestRunCtxCancelledMidIteration(t *testing.T) {
	_, sub := figureGraph(t)
	chain, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	// Allow exactly one periodic check to pass, so the cancellation lands
	// at the second check: iteration ctxCheckInterval+1. The tolerance is
	// unreachably small so the run cannot converge first.
	res, err := chain.RunCtx(newCountdown(1), Config{Tolerance: 1e-300, MaxIterations: 10 * ctxCheckInterval})
	if err == nil {
		t.Fatal("cancelled run converged")
	}
	if res != nil {
		t.Errorf("got partial result alongside error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	want := fmt.Sprintf("iteration %d", ctxCheckInterval)
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not report %s", err, want)
	}
}

func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	_, sub := figureGraph(t)
	chain, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	plain, err := chain.Run(Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	withCtx, err := chain.RunCtx(context.Background(), Config{})
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for i := range plain.Scores {
		if plain.Scores[i] != withCtx.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, plain.Scores[i], withCtx.Scores[i])
		}
	}
}

func TestConfigDeadline(t *testing.T) {
	_, sub := figureGraph(t)
	chain, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	// A deadline that has effectively already passed: the first periodic
	// check (iteration 1) must see it.
	_, err = chain.Run(Config{Deadline: time.Nanosecond, Tolerance: 0, MaxIterations: 1000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	// Negative deadlines are a config error, not an instant timeout.
	if _, err := chain.Run(Config{Deadline: -time.Second}); err == nil ||
		errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("negative deadline: got %v, want a validation error", err)
	}
	// A generous deadline changes nothing.
	res, err := chain.Run(Config{Deadline: time.Hour})
	if err != nil || !res.Converged {
		t.Errorf("generous deadline: err=%v converged=%v", err, res != nil && res.Converged)
	}
}

// TestRankManyFailFast is the regression test for the documented
// fail-fast contract: a poisoned subgraph mid-batch must abort the rest —
// chains after the failing index never run.
func TestRankManyFailFast(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, _ := randomSubgraph(t, rng, 100, 4)
	gctx := NewContext(g)

	// A subgraph of a DIFFERENT global graph: construction inside the
	// worker fails (checkCtx), which is the cheapest deterministic poison.
	otherG, _ := randomSubgraph(t, rng, 20, 3)
	poisoned, err := graph.NewSubgraph(otherG, []graph.NodeID{0, 1, 2})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}

	mkSub := func(seed int) *graph.Subgraph {
		perm := rand.New(rand.NewSource(int64(seed))).Perm(100)
		local := make([]graph.NodeID, 10)
		for j := range local {
			local[j] = graph.NodeID(perm[j])
		}
		sub, err := graph.NewSubgraph(g, local)
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
		return sub
	}

	const poisonAt = 3
	subs := make([]*graph.Subgraph, 7)
	for i := range subs {
		if i == poisonAt {
			subs[i] = poisoned
		} else {
			subs[i] = mkSub(i)
		}
	}

	// parallelism 1 makes dispatch order deterministic: chains 0..2
	// complete, chain 3 fails, chains 4..6 must never start.
	results := make([]*Result, len(subs))
	err = rankManyInto(context.Background(), gctx, subs, Config{}, 1, results)
	if err == nil {
		t.Fatal("poisoned batch succeeded")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("subgraph %d", poisonAt)) {
		t.Errorf("error %q does not identify subgraph %d", err, poisonAt)
	}
	for i := 0; i < poisonAt; i++ {
		if results[i] == nil {
			t.Errorf("chain %d (before the failure) did not complete", i)
		}
	}
	for i := poisonAt; i < len(subs); i++ {
		if results[i] != nil {
			t.Errorf("chain %d ran despite the batch failing at %d", i, poisonAt)
		}
	}

	// The public wrapper exposes the same partial results: the chains
	// that completed before the poison survive the batch error, so a
	// serving tier can answer for them.
	res, err := RankMany(gctx, subs, Config{}, 1)
	if err == nil {
		t.Fatal("RankMany on poisoned batch succeeded")
	}
	if len(res) != len(subs) {
		t.Fatalf("RankMany partial results: len=%d, want %d", len(res), len(subs))
	}
	for i := 0; i < poisonAt; i++ {
		if res[i] == nil {
			t.Errorf("RankMany discarded completed chain %d on batch failure", i)
		} else if len(res[i].Scores) != subs[i].N() {
			t.Errorf("RankMany survivor %d truncated: %d scores for %d pages", i, len(res[i].Scores), subs[i].N())
		}
	}
	for i := poisonAt; i < len(subs); i++ {
		if res[i] != nil {
			t.Errorf("RankMany reported a result for chain %d at/after the poison", i)
		}
	}
}

// TestRankManyFailFastParallel exercises the same contract with real
// concurrency (meaningful under -race): whatever the interleaving, the
// batch must fail, the error must name a genuinely poisoned subgraph, and
// every recorded result must be complete.
func TestRankManyFailFastParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, _ := randomSubgraph(t, rng, 80, 4)
	gctx := NewContext(g)
	otherG, _ := randomSubgraph(t, rng, 20, 3)
	poisoned, err := graph.NewSubgraph(otherG, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	subs := make([]*graph.Subgraph, 16)
	for i := range subs {
		if i%5 == 4 {
			subs[i] = poisoned
			continue
		}
		perm := rand.New(rand.NewSource(int64(i))).Perm(80)
		local := make([]graph.NodeID, 8)
		for j := range local {
			local[j] = graph.NodeID(perm[j])
		}
		subs[i], err = graph.NewSubgraph(g, local)
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
	}
	results := make([]*Result, len(subs))
	err = rankManyInto(context.Background(), gctx, subs, Config{}, 4, results)
	if err == nil {
		t.Fatal("poisoned batch succeeded")
	}
	var idx int
	if _, scanErr := fmt.Sscanf(err.Error(), "core: subgraph %d:", &idx); scanErr != nil {
		t.Fatalf("error %q does not identify a subgraph", err)
	}
	if idx%5 != 4 {
		t.Errorf("error blames subgraph %d, which was not poisoned", idx)
	}
	for i, r := range results {
		if r != nil && len(r.Scores) != subs[i].N() {
			t.Errorf("chain %d recorded a truncated result", i)
		}
	}
}

func TestRankManyCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, sub := randomSubgraph(t, rng, 60, 4)
	gctx := NewContext(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RankManyCtx(ctx, gctx, []*graph.Subgraph{sub, sub}, Config{}, 2)
	if err == nil {
		t.Fatalf("cancelled batch succeeded: res=%v", res)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// A pre-cancelled context means no chain ever ran: the partial slice
	// is positionally complete but empty.
	for i, r := range res {
		if r != nil {
			t.Errorf("pre-cancelled batch recorded a result for chain %d", i)
		}
	}
}
