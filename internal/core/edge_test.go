package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

// TestSingleLocalPage: the smallest possible subgraph (n = 1) must still
// satisfy Theorem 1.
func TestSingleLocalPage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		g, _ := randomSubgraph(t, rng, 50, 4)
		sub, err := graph.NewSubgraph(g, []graph.NodeID{graph.NodeID(rng.Intn(50))})
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("pagerank: %v", err)
		}
		ir, err := IdealRank(sub, gr.Scores, Config{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		gid := sub.Local[0]
		if math.Abs(ir.Scores[0]-gr.Scores[gid]) > 1e-8 {
			t.Fatalf("trial %d: single-page IdealRank %v, truth %v", trial, ir.Scores[0], gr.Scores[gid])
		}
		ap, err := ApproxRank(sub, Config{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		if ap.Scores[0] <= 0 || ap.Scores[0] >= 1 {
			t.Fatalf("trial %d: single-page ApproxRank score %v", trial, ap.Scores[0])
		}
	}
}

// TestAlmostWholeGraph: n = N−1 (Λ represents a single external page).
// IdealRank is exact; ApproxRank is also exact here because with one
// external page E = E_approx.
func TestAlmostWholeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	g, _ := randomSubgraph(t, rng, 40, 4)
	local := make([]graph.NodeID, 0, 39)
	for p := 1; p < 40; p++ {
		local = append(local, graph.NodeID(p))
	}
	sub, err := graph.NewSubgraph(g, local)
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	ap, err := ApproxRank(sub, Config{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	for li, gid := range sub.Local {
		if math.Abs(ap.Scores[li]-gr.Scores[gid]) > 1e-8 {
			t.Fatalf("page %d: ApproxRank %v, truth %v (should be exact with one external page)",
				gid, ap.Scores[li], gr.Scores[gid])
		}
	}
	if math.Abs(ap.Lambda-gr.Scores[0]) > 1e-8 {
		t.Fatalf("Λ %v, want the single external page's score %v", ap.Lambda, gr.Scores[0])
	}
}

// TestIsolatedSubgraph: a subgraph with no boundary at all (no links in
// or out). Λ never exchanges mass with the locals except through jumps.
func TestIsolatedSubgraph(t *testing.T) {
	// Locals 0–2 form a cycle; externals 3–5 form a separate cycle.
	g := graph.MustFromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{0, 1, 2})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	ir, err := IdealRank(sub, gr.Scores, Config{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("IdealRank: %v", err)
	}
	// By symmetry every page has score 1/6; Λ holds 1/2.
	for i, s := range ir.Scores {
		if math.Abs(s-1.0/6.0) > 1e-9 {
			t.Fatalf("score %d = %v, want 1/6", i, s)
		}
	}
	if math.Abs(ir.Lambda-0.5) > 1e-9 {
		t.Fatalf("Λ = %v, want 1/2", ir.Lambda)
	}
	// ApproxRank agrees exactly here: E and E_approx are both uniform
	// over the three symmetric external pages.
	ap, err := ApproxRank(sub, Config{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	for i := range ap.Scores {
		if math.Abs(ap.Scores[i]-ir.Scores[i]) > 1e-9 {
			t.Fatalf("ApproxRank deviates on isolated subgraph at %d", i)
		}
	}
}

// TestAllLocalDangling: every local page is dangling; all local mass
// flows through the jump mechanism.
func TestAllLocalDangling(t *testing.T) {
	// Locals 0,1 have no out-links; externals 2,3 link to them and to
	// each other.
	g := graph.MustFromEdges(4, [][2]graph.NodeID{
		{2, 0}, {2, 3}, {3, 1}, {3, 2},
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{0, 1})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	ir, err := IdealRank(sub, gr.Scores, Config{Tolerance: 1e-13, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("IdealRank: %v", err)
	}
	for li, gid := range sub.Local {
		if math.Abs(ir.Scores[li]-gr.Scores[gid]) > 1e-8 {
			t.Fatalf("dangling local %d: IdealRank %v, truth %v", gid, ir.Scores[li], gr.Scores[gid])
		}
	}
}

// TestDeterminism: two identical runs produce bit-identical scores.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	_, sub := randomSubgraph(t, rng, 100, 4)
	a, err := ApproxRank(sub, Config{})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	b, err := ApproxRank(sub, Config{})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("run-to-run difference at %d", i)
		}
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", a.Iterations, b.Iterations)
	}
}

// TestHeavyMultiplicityBeatLPR2Setup reproduces the paper's §III-A
// motivating example at the chain level: the Λ→C entry must scale with
// the NUMBER of external endorsements, which the naive construction
// (Figure 5 / LPR2) cannot express.
func TestHeavyMultiplicityChain(t *testing.T) {
	// Externals 3,4,5 all point to local 2; external 5 also points to 1.
	g := graph.MustFromEdges(6, [][2]graph.NodeID{
		{0, 1}, {1, 2}, {2, 0}, // local cycle
		{3, 2}, {4, 2}, {5, 2}, {5, 1},
		{0, 3}, // keep externals reachable
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{0, 1, 2})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	c, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	// Λ→2 = (1 + 1 + 1/2)/3 = 5/6 of the uniform external mass flow;
	// Λ→1 = (1/2)/3 = 1/6.
	if math.Abs(c.LambdaTo(2)-5.0/6.0) > 1e-12 {
		t.Errorf("Λ→C = %v, want 5/6", c.LambdaTo(2))
	}
	if math.Abs(c.LambdaTo(1)-1.0/6.0) > 1e-12 {
		t.Errorf("Λ→B = %v, want 1/6", c.LambdaTo(1))
	}
	if c.LambdaTo(2) <= 4*c.LambdaTo(1) {
		t.Error("multiplicity not reflected in Λ row")
	}
}

// TestPersonalizedIdealRankExact: Theorem 1 extends to arbitrary
// personalization vectors when they are collapsed consistently — the
// proof only left-multiplies the fixpoint equation by Q2ᵀ.
func TestPersonalizedIdealRankExact(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		g, sub := randomSubgraph(t, rng, 60, 4)
		n := g.NumNodes()
		p := make([]float64, n)
		sum := 0.0
		for i := range p {
			p[i] = 0.1 + rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		gr, err := pagerank.Compute(g, pagerank.Options{
			Tolerance: 1e-13, MaxIterations: 5000, Personalization: p,
		})
		if err != nil {
			t.Fatalf("personalized global PageRank: %v", err)
		}
		ir, err := IdealRank(sub, gr.Scores, Config{
			Tolerance: 1e-13, MaxIterations: 5000, Personalization: p,
		})
		if err != nil {
			t.Fatalf("personalized IdealRank: %v", err)
		}
		for li, gid := range sub.Local {
			if math.Abs(ir.Scores[li]-gr.Scores[gid]) > 1e-8 {
				t.Fatalf("trial %d: personalized IdealRank deviates at %d: %v vs %v",
					trial, gid, ir.Scores[li], gr.Scores[gid])
			}
		}
	}
}

// TestPersonalizationValidation: bad personalization vectors are
// rejected at Run time.
func TestPersonalizationValidation(t *testing.T) {
	_, sub := figureGraph(t)
	if _, err := ApproxRank(sub, Config{Personalization: []float64{0.5, 0.5}}); err == nil {
		t.Error("short personalization accepted")
	}
	bad := make([]float64, 7)
	bad[0] = -1
	bad[1] = 2
	if _, err := ApproxRank(sub, Config{Personalization: bad}); err == nil {
		t.Error("negative personalization accepted")
	}
	nosum := make([]float64, 7)
	nosum[0] = 0.5
	if _, err := ApproxRank(sub, Config{Personalization: nosum}); err == nil {
		t.Error("non-normalized personalization accepted")
	}
}

// TestPersonalizationBiasesSubgraph: concentrating jump mass on one local
// page raises its ApproxRank score.
func TestPersonalizationBiasesSubgraph(t *testing.T) {
	_, sub := figureGraph(t)
	uniform, err := ApproxRank(sub, Config{Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	p := make([]float64, 7)
	p[1] = 0.7 // page B
	for i := 2; i < 7; i++ {
		p[i] = 0.05
	}
	p[0] = 0.05
	biased, err := ApproxRank(sub, Config{Tolerance: 1e-12, Personalization: p})
	if err != nil {
		t.Fatalf("personalized ApproxRank: %v", err)
	}
	if !(biased.Scores[1] > uniform.Scores[1]) {
		t.Errorf("personalization did not bias page B: %v vs %v", biased.Scores[1], uniform.Scores[1])
	}
}

// TestErrorBoundCertificate: the computable Theorem 2 certificate
// dominates the measured IdealRank↔ApproxRank gap, and EDistance is zero
// exactly when the scores are uniform over the externals.
func TestErrorBoundCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 10; trial++ {
		g, sub := randomSubgraph(t, rng, 70, 4)
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-12, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("pagerank: %v", err)
		}
		bound, err := ErrorBound(sub, gr.Scores, 0.85)
		if err != nil {
			t.Fatalf("ErrorBound: %v", err)
		}
		cfg := Config{Tolerance: 1e-12, MaxIterations: 5000}
		ideal, err := IdealRank(sub, gr.Scores, cfg)
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		ap, err := ApproxRank(sub, cfg)
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		gap := 0.0
		for i := range ideal.Scores {
			gap += math.Abs(ideal.Scores[i] - ap.Scores[i])
		}
		if gap > bound+1e-9 {
			t.Fatalf("trial %d: gap %v exceeds certificate %v", trial, gap, bound)
		}
	}
	// Uniform external scores → zero distance and zero bound.
	g, sub := randomSubgraph(t, rand.New(rand.NewSource(92)), 40, 3)
	uniform := make([]float64, g.NumNodes())
	for i := range uniform {
		uniform[i] = 1
	}
	d, err := EDistance(sub, uniform)
	if err != nil || d > 1e-12 {
		t.Fatalf("uniform EDistance = %v, %v", d, err)
	}
	// Validation.
	if _, err := EDistance(nil, uniform); err == nil {
		t.Error("nil subgraph accepted")
	}
	if _, err := EDistance(sub, uniform[:3]); err == nil {
		t.Error("short vector accepted")
	}
	if _, err := ErrorBound(sub, uniform, 2); err == nil {
		t.Error("bad epsilon accepted")
	}
	zero := make([]float64, g.NumNodes())
	if _, err := EDistance(sub, zero); err == nil {
		t.Error("zero external mass accepted")
	}
}

// TestRankMany: batch ranking matches individual runs and validates its
// inputs.
func TestRankMany(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g, _ := randomSubgraph(t, rng, 120, 4)
	ctx := NewContext(g)
	var subs []*graph.Subgraph
	for i := 0; i < 5; i++ {
		perm := rng.Perm(120)
		local := make([]graph.NodeID, 10+rng.Intn(20))
		for j := range local {
			local[j] = graph.NodeID(perm[j])
		}
		sub, err := graph.NewSubgraph(g, local)
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
		subs = append(subs, sub)
	}
	batch, err := RankMany(ctx, subs, Config{}, 3)
	if err != nil {
		t.Fatalf("RankMany: %v", err)
	}
	if len(batch) != len(subs) {
		t.Fatalf("got %d results", len(batch))
	}
	for i, sub := range subs {
		single, err := ApproxRankCtx(ctx, sub, Config{})
		if err != nil {
			t.Fatalf("ApproxRankCtx: %v", err)
		}
		for j := range single.Scores {
			if batch[i].Scores[j] != single.Scores[j] {
				t.Fatalf("subgraph %d: batch differs from single run at %d", i, j)
			}
		}
	}
	// Default parallelism path.
	if _, err := RankMany(ctx, subs, Config{}, 0); err != nil {
		t.Fatalf("RankMany default parallelism: %v", err)
	}
	// Validation.
	if _, err := RankMany(nil, subs, Config{}, 1); err == nil {
		t.Error("nil context accepted")
	}
	if _, err := RankMany(ctx, nil, Config{}, 1); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := RankMany(ctx, []*graph.Subgraph{nil}, Config{}, 1); err == nil {
		t.Error("nil subgraph accepted")
	}
	other, _ := randomSubgraph(t, rng, 30, 3)
	otherSub, _ := graph.NewSubgraph(other, []graph.NodeID{0, 1})
	if _, err := RankMany(ctx, []*graph.Subgraph{otherSub}, Config{}, 1); err == nil {
		t.Error("cross-graph subgraph accepted")
	}
	// Errors inside workers surface (bad config).
	if _, err := RankMany(ctx, subs, Config{Epsilon: 5}, 2); err == nil {
		t.Error("bad config accepted")
	}
}
