// Package core implements the paper's contribution: the IdealRank and
// ApproxRank algorithms for estimating PageRank-style scores on a subgraph
// of a global graph (Wu & Raschid, "ApproxRank: Estimating Rank for a
// Subgraph", ICDE 2009).
//
// Both algorithms collapse the N−n external pages into a single external
// super-node Λ and run a random walk on the resulting extended local graph
// G_e with n+1 states. The transition matrix of the walk is derived from
// the global PageRank transition matrix A (A[i][j] = 1/D_i for edge i→j
// with D_i the global out-degree) as A_e = Q1·A·Q2, where Q2 aggregates
// authority flowing from local pages into the external block and Q1
// redistributes authority leaving the external block according to a weight
// vector E over the external pages:
//
//   - IdealRank sets E to the (known) true PageRank scores of the external
//     pages, normalized by their sum. Theorem 1: the stationary scores of
//     the local states then equal the true global PageRank scores exactly,
//     and the Λ score equals the total external score.
//   - ApproxRank sets E uniform (1/(N−n) each), requiring no knowledge of
//     external scores. Theorem 2: the L1 gap from IdealRank is bounded by
//     ε/(1−ε)·‖E − E_approx‖₁.
//
// The package never materializes the N×N matrix: the extended chain is
// assembled from the adjacency of the local pages only (plus per-global-
// graph aggregates, see Context), so ranking a subgraph costs O(boundary +
// local edges) per iteration.
package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/kernel"
	"repro/internal/numeric"
	"repro/internal/pagerank"
)

// ctxCheckInterval is how many power-iteration steps run between
// cancellation checks. An iteration touches every local edge, so a check
// every few iterations bounds the post-cancellation work to a small
// multiple of one sweep while keeping the common (never-cancelled) path
// free of per-edge overhead.
const ctxCheckInterval = 16

// Config carries the random-walk parameters. The zero value selects the
// paper's settings (ε = 0.85, L1 tolerance 1e-5, at most 1000 iterations,
// uniform personalization).
type Config struct {
	// Epsilon is the damping factor. Default 0.85.
	Epsilon float64
	// Tolerance is the L1 convergence threshold. Default 1e-5.
	Tolerance float64
	// MaxIterations bounds the power iteration. Default 1000.
	MaxIterations int
	// Personalization optionally replaces the paper's uniform jump
	// distribution with an arbitrary one over the GLOBAL graph (length N,
	// non-negative, summing to 1). It is collapsed consistently: local
	// pages keep their entries and Λ receives the external pages' total —
	// the generalization of the paper's P_ideal, under which Theorem 1
	// still holds exactly (the proof only needs R = εAᵀR + (1−ε)P and
	// left-multiplication by Q2ᵀ). nil selects the uniform vector.
	Personalization []float64
	// Deadline, when positive, bounds each run's wall-clock time: the
	// run's context is derived with context.WithTimeout(ctx, Deadline),
	// so a walk that has not converged by then returns a
	// context.DeadlineExceeded error instead of burning the full
	// MaxIterations budget. Zero means no per-run deadline (callers can
	// still cancel through the context they pass to RunCtx).
	Deadline time.Duration
	// Parallelism selects the number of workers for the power iteration
	// over the extended chain: 0 or 1 run the sequential flat sweep,
	// k > 1 runs the pull-based parallel sweep over k edge-balanced
	// target ranges of the chain's in-adjacency, and a negative value
	// selects the CPU count. The parallel iterate is bit-identical
	// across worker counts (each state's in-row is accumulated whole, in
	// CSR order); runs are bit-deterministic for a fixed Parallelism,
	// and agree with the sequential sweep to floating-point
	// reassociation, far below any practical tolerance.
	Parallelism int
}

func (c *Config) fill() error {
	if c.Epsilon == 0 {
		c.Epsilon = numeric.DefaultDamping
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("core: damping factor %v outside (0,1)", c.Epsilon)
	}
	if c.Tolerance == 0 {
		c.Tolerance = numeric.DefaultTolerance
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("core: negative tolerance %v", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("core: MaxIterations %d < 1", c.MaxIterations)
	}
	if c.Deadline < 0 {
		return fmt.Errorf("core: negative Deadline %v", c.Deadline)
	}
	if c.Parallelism < 0 {
		c.Parallelism = pagerank.DefaultParallelism()
	}
	return nil
}

// Normalize resolves the Config's zero values to their concrete
// defaults and validates the rest — the same normalization every run
// applies internally. Callers that key caches on configurations (the
// serving daemon) use it so a zero value and its explicit default can
// never alias distinct cache keys.
func (c *Config) Normalize() error { return c.fill() }

// Result is the outcome of running an extended chain. Scores holds the
// stationary probabilities of the n local pages in subgraph-local id order;
// these are directly comparable to the global PageRank vector restricted to
// the subgraph (they are NOT renormalized — Scores plus Lambda sums to 1).
type Result struct {
	pagerank.Result
	// Lambda is the stationary score of the external super-node Λ. Under
	// IdealRank it converges to the sum of the true scores of all external
	// pages (Theorem 1).
	Lambda float64
}

// Context caches the per-global-graph aggregates that Λ-row construction
// needs: the global page count and the set of dangling pages. Building a
// Context scans the global graph once; afterwards chains for any number of
// subgraphs of that graph are assembled from local information only. This
// realizes the paper's precomputation argument for multi-subgraph
// workloads ("we can preprocess the global graph for one time, and decide
// A_approx for each subgraph with only local cost").
type Context struct {
	g        *graph.Graph
	dangling []graph.NodeID
}

// NewContext precomputes the global aggregates for g.
func NewContext(g *graph.Graph) *Context {
	return &Context{g: g, dangling: g.DanglingNodes()}
}

// Graph returns the global graph the context was built for.
func (ctx *Context) Graph() *graph.Graph { return ctx.g }

// DanglingCount returns the number of dangling pages in the global graph.
func (ctx *Context) DanglingCount() int { return len(ctx.dangling) }

// ExtendedChain is the n+1-state Markov chain of the extended local graph
// G_e: states 0..n−1 are the local pages (in subgraph-local id order) and
// state n is the external super-node Λ. The local block and the column into
// Λ are shared between IdealRank and ApproxRank; the Λ row is what
// distinguishes them.
type ExtendedChain struct {
	sub  *graph.Subgraph
	n    int // local pages
	bigN int // global pages

	// Local block, CSR over local ids: row i transitions to locAdj[k] with
	// probability locProb[k] for k in [locOff[i], locOff[i+1]), plus
	// toLambda[i] into Λ. Rows of globally-dangling local pages are empty
	// and flagged in danglingLocal instead.
	locOff        []int64
	locAdj        []uint32
	locProb       []float64
	toLambda      []float64
	danglingLocal []bool
	// locDang lists the locally-dangling states in ascending id order, so
	// the per-iteration dangling-mass sum costs O(#dangling) not O(n).
	locDang []uint32

	// Λ row, sparse over local ids, plus the self-loop residual and the
	// aggregate weight of dangling external pages (whose collapsed rows
	// are the personalization vector).
	lamAdj          []uint32
	lamProb         []float64
	lamSelf         float64
	extDanglingMass float64

	// pull caches the in-adjacency (pull) form of the collapsed matrix
	// over all n+1 states, built lazily by the first Parallelism > 1 run
	// and reused for the chain's lifetime; sequential runs never pay for
	// it.
	pullOnce sync.Once
	pull     *kernel.CSR
}

// Subgraph returns the subgraph the chain ranks.
func (c *ExtendedChain) Subgraph() *graph.Subgraph { return c.sub }

// NumLocal returns n, the number of local pages.
func (c *ExtendedChain) NumLocal() int { return c.n }

// LocalTransitions returns the local targets and probabilities of local
// page i's row (excluding the Λ column). The slices alias internal storage.
func (c *ExtendedChain) LocalTransitions(i int) ([]uint32, []float64) {
	return c.locAdj[c.locOff[i]:c.locOff[i+1]], c.locProb[c.locOff[i]:c.locOff[i+1]]
}

// ToLambda returns the probability that local page i transitions to Λ.
func (c *ExtendedChain) ToLambda(i int) float64 { return c.toLambda[i] }

// LambdaRow returns the sparse Λ→local transition probabilities. The
// slices alias internal storage.
func (c *ExtendedChain) LambdaRow() ([]uint32, []float64) { return c.lamAdj, c.lamProb }

// LambdaSelf returns the Λ→Λ transition probability contributed by
// non-dangling external pages. The full self-loop probability of the
// collapsed matrix additionally includes the dangling external pages'
// uniform-jump mass: see LambdaSelfLoop.
func (c *ExtendedChain) LambdaSelf() float64 { return c.lamSelf }

// ExtDanglingMass returns the total E-weight of dangling external pages.
func (c *ExtendedChain) ExtDanglingMass() float64 { return c.extDanglingMass }

// LambdaTo returns the effective Λ→(local k) entry of the collapsed
// transition matrix, including the dangling external pages' uniform mass.
// It is O(#nonzero Λ entries); intended for tests and inspection.
func (c *ExtendedChain) LambdaTo(k int) float64 {
	p := c.extDanglingMass / float64(c.bigN)
	for idx, lk := range c.lamAdj {
		if int(lk) == k {
			p += c.lamProb[idx]
		}
	}
	return p
}

// LambdaSelfLoop returns the effective Λ→Λ entry of the collapsed
// transition matrix, including the dangling external pages' uniform mass.
func (c *ExtendedChain) LambdaSelfLoop() float64 {
	return c.lamSelf + c.extDanglingMass*float64(c.bigN-c.n)/float64(c.bigN)
}

// NewApproxChain builds the ApproxRank chain for sub: external pages are
// assumed equally important (E_approx uniform). The global graph is
// scanned once for its dangling set; use NewApproxChainCtx with a shared
// Context to amortize that scan across many subgraphs.
func NewApproxChain(sub *graph.Subgraph) (*ExtendedChain, error) {
	if sub == nil {
		return nil, fmt.Errorf("core: nil subgraph")
	}
	return NewApproxChainCtx(NewContext(sub.Global), sub)
}

// NewApproxChainCtx builds the ApproxRank chain for sub using the
// precomputed global Context. ctx must have been built from sub.Global.
func NewApproxChainCtx(ctx *Context, sub *graph.Subgraph) (*ExtendedChain, error) {
	if err := checkCtx(ctx, sub); err != nil {
		return nil, err
	}
	c := newChainShell(sub)
	w := 1.0 / float64(sub.External())
	c.buildLambdaRow(func(graph.NodeID) float64 { return w })
	// Locally-dangling pages are a subset of the global dangling set, so
	// the external dangling count is a subtraction — O(1) given the
	// shell, replacing the former O(global-dangling) membership scan that
	// made chain construction scale with the GLOBAL graph.
	extDangling := ctx.DanglingCount() - len(c.locDang)
	c.extDanglingMass = float64(extDangling) * w
	c.finishLambdaRow()
	return c, nil
}

// NewIdealChain builds the IdealRank chain for sub from the full global
// score vector (length N, e.g. a converged global PageRank). Only the
// entries of external pages are read; they must be non-negative with a
// positive sum.
func NewIdealChain(sub *graph.Subgraph, globalScores []float64) (*ExtendedChain, error) {
	return NewChainWithExternalScores(sub, globalScores)
}

// NewChainWithExternalScores builds an extended chain whose Λ row weights
// external pages by extScores (length N; entries of local pages are
// ignored). extScores need not be normalized. With the true global
// PageRank vector this is IdealRank; with any other estimate it realizes
// the paper's future-work direction of improving ApproxRank through
// partial knowledge of external importance (see MixExternalScores).
func NewChainWithExternalScores(sub *graph.Subgraph, extScores []float64) (*ExtendedChain, error) {
	if sub == nil {
		return nil, fmt.Errorf("core: nil subgraph")
	}
	if len(extScores) != sub.Global.NumNodes() {
		return nil, fmt.Errorf("core: external score vector has length %d, want N=%d",
			len(extScores), sub.Global.NumNodes())
	}
	extSum := 0.0
	for gid := range extScores {
		s := extScores[gid]
		if s < 0 || math.IsNaN(s) {
			return nil, fmt.Errorf("core: invalid external score %v for page %d", s, gid)
		}
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			extSum += s
		}
	}
	if extSum <= 0 {
		return nil, fmt.Errorf("core: external scores sum to zero")
	}
	c := newChainShell(sub)
	c.buildLambdaRow(func(j graph.NodeID) float64 { return extScores[j] / extSum })
	extDanglingMass := 0.0
	for gid := range extScores {
		id := graph.NodeID(gid)
		if _, local := sub.LocalID(id); local {
			continue
		}
		if sub.Global.Dangling(id) {
			extDanglingMass += extScores[gid] / extSum
		}
	}
	c.extDanglingMass = extDanglingMass
	c.finishLambdaRow()
	return c, nil
}

// checkCtx validates that ctx and sub refer to the same global graph.
func checkCtx(ctx *Context, sub *graph.Subgraph) error {
	if ctx == nil || sub == nil {
		return fmt.Errorf("core: nil context or subgraph")
	}
	if ctx.g != sub.Global {
		return fmt.Errorf("core: context built for a different global graph")
	}
	return nil
}

// newChainShell builds the parts shared by every chain flavour: the local
// block with global out-degree denominators and the column into Λ.
func newChainShell(sub *graph.Subgraph) *ExtendedChain {
	g := sub.Global
	n := sub.N()
	c := &ExtendedChain{
		sub:           sub,
		n:             n,
		bigN:          g.NumNodes(),
		locOff:        make([]int64, n+1),
		toLambda:      make([]float64, n),
		danglingLocal: make([]bool, n),
	}
	// First pass: count local→local edges for the CSR.
	for li, gid := range sub.Local {
		if g.Dangling(gid) {
			c.danglingLocal[li] = true
			continue
		}
		cnt := 0
		for _, v := range g.OutNeighbors(gid) {
			if _, local := sub.LocalID(v); local {
				cnt++
			}
		}
		c.locOff[li+1] = int64(cnt)
	}
	nd := 0
	for _, d := range c.danglingLocal {
		if d {
			nd++
		}
	}
	if nd > 0 {
		c.locDang = make([]uint32, 0, nd)
		for i, d := range c.danglingLocal {
			if d {
				c.locDang = append(c.locDang, uint32(i))
			}
		}
	}
	for i := 0; i < n; i++ {
		c.locOff[i+1] += c.locOff[i]
	}
	c.locAdj = make([]uint32, c.locOff[n])
	c.locProb = make([]float64, c.locOff[n])
	// Second pass: fill probabilities using the GLOBAL out-degree (or
	// total out-weight) as denominator — the paper's A entries.
	cursor := make([]int64, n)
	copy(cursor, c.locOff[:n])
	for li, gid := range sub.Local {
		if c.danglingLocal[li] {
			continue
		}
		wout := g.WeightOut(gid)
		adj := g.OutNeighbors(gid)
		ws := g.OutWeights(gid)
		extProb := 0.0
		for k, v := range adj {
			p := 1.0 / wout
			if ws != nil {
				p = ws[k] / wout
			}
			if lv, local := sub.LocalID(v); local {
				slot := cursor[li]
				c.locAdj[slot] = lv
				c.locProb[slot] = p
				cursor[li]++
			} else {
				extProb += p
			}
		}
		c.toLambda[li] = extProb
	}
	return c
}

// buildLambdaRow fills the sparse Λ→local entries: for each local page k,
// the sum over its external in-neighbours j of weight(j)·A[j][k]. weight
// must return the normalized E entry for an external page.
func (c *ExtendedChain) buildLambdaRow(weight func(graph.NodeID) float64) {
	g := c.sub.Global
	// Presize for the dense worst case (every local page has an external
	// in-neighbour) so the appends never reallocate — the doubling growth
	// here used to dominate chain-construction allocations — then compact
	// when the row turns out sparse so long-lived chains don't pin 2n of
	// capacity.
	adj := make([]uint32, 0, c.n)
	prob := make([]float64, 0, c.n)
	for li, gid := range c.sub.Local {
		ins := g.InNeighbors(gid)
		ws := g.InWeights(gid)
		p := 0.0
		for k, j := range ins {
			if _, local := c.sub.LocalID(j); local {
				continue
			}
			aj := 1.0 / g.WeightOut(j)
			if ws != nil {
				aj = ws[k] / g.WeightOut(j)
			}
			p += weight(j) * aj
		}
		if p > 0 {
			adj = append(adj, uint32(li))
			prob = append(prob, p)
		}
	}
	if len(adj)*2 < c.n {
		adj = append(make([]uint32, 0, len(adj)), adj...)
		prob = append(make([]float64, 0, len(prob)), prob...)
	}
	c.lamAdj, c.lamProb = adj, prob
}

// finishLambdaRow sets the Λ self-loop to the stochastic residual of the
// Λ row: the unit E mass minus the dangling mass minus the sparse entries.
// Tiny negative residuals from float accumulation are clamped to zero.
func (c *ExtendedChain) finishLambdaRow() {
	s := 1.0 - c.extDanglingMass
	for _, p := range c.lamProb {
		s -= p
	}
	if s < 0 {
		s = 0
	}
	c.lamSelf = s
}

// Run performs the power iteration R = ε·A_eᵀ·R + (1−ε)·P_ideal on the
// extended chain and returns local scores plus the Λ score. It is
// RunCtx with context.Background() — uncancellable; long-running
// callers should prefer RunCtx.
func (c *ExtendedChain) Run(cfg Config) (*Result, error) {
	return c.RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: the iteration checks ctx every
// ctxCheckInterval steps (every iteration's barrier when Parallelism >
// 1) and, when cancelled (or when cfg.Deadline expires), returns nil
// and ctx's error wrapped with the iteration reached. No partial scores
// are returned — an unconverged iterate is not a distribution anyone
// should serve.
//
// All iteration buffers are drawn from the shared kernel pools and
// recycled on return, so steady-state runs — e.g. a RankManyCtx batch —
// allocate only the exact-size Scores/Deltas slices of each Result.
func (c *ExtendedChain) RunCtx(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	start := time.Now()
	n := c.n
	// Collapsed personalization packed as one n+1 vector (local entries,
	// then Λ): the paper's P_ideal (uniform case) or the caller's global
	// vector with the external mass routed to Λ. The buffer is pooled;
	// every entry is written before any read.
	pvec := kernel.GetVec(n + 1)
	defer kernel.PutVec(pvec)
	if cfg.Personalization == nil {
		u := 1.0 / float64(c.bigN)
		for i := 0; i < n; i++ {
			pvec[i] = u
		}
		pvec[n] = float64(c.bigN-n) / float64(c.bigN)
	} else {
		if len(cfg.Personalization) != c.bigN {
			return nil, fmt.Errorf("core: personalization has length %d, want N=%d",
				len(cfg.Personalization), c.bigN)
		}
		sum := 0.0
		pvec[n] = 0
		for gid, p := range cfg.Personalization {
			if p < 0 || math.IsNaN(p) {
				return nil, fmt.Errorf("core: invalid personalization entry %v at %d", p, gid)
			}
			sum += p
			if li, local := c.sub.LocalID(graph.NodeID(gid)); local {
				pvec[li] = p
			} else {
				pvec[n] += p
			}
		}
		if math.Abs(sum-1) > numeric.SumTolerance {
			return nil, fmt.Errorf("core: personalization sums to %v, want 1", sum)
		}
	}

	if cfg.Parallelism > 1 {
		return c.runParallel(ctx, cfg, pvec, start)
	}

	eps := cfg.Epsilon
	// cur and next swap names each iteration, but the defer arguments are
	// evaluated here, so both backing arrays return to the pool whichever
	// name they end under — and no closure is allocated to capture them.
	cur := kernel.GetVec(n + 1)
	next := kernel.GetVec(n + 1)
	deltas := kernel.GetVec(cfg.MaxIterations)
	defer kernel.PutVec(cur)
	defer kernel.PutVec(next)
	defer kernel.PutVec(deltas)
	copy(cur, pvec)

	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		if iter%ctxCheckInterval == 1 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: power iteration cancelled at iteration %d: %w", iter-1, err)
			}
		}
		// Mass that redistributes along the personalization vector: the
		// random-jump mass, the mass on dangling local pages, and the mass
		// Λ forwards on behalf of dangling external pages.
		danglingMass := 0.0
		for _, i := range c.locDang {
			danglingMass += cur[i]
		}
		jump := (1 - eps) + eps*danglingMass + eps*cur[n]*c.extDanglingMass
		for i := 0; i <= n; i++ {
			next[i] = jump * pvec[i]
		}

		// Local rows.
		for i := 0; i < n; i++ {
			if c.danglingLocal[i] || cur[i] == 0 {
				continue
			}
			xi := eps * cur[i]
			for k := c.locOff[i]; k < c.locOff[i+1]; k++ {
				next[c.locAdj[k]] += xi * c.locProb[k]
			}
			next[n] += xi * c.toLambda[i]
		}

		// Λ row (non-dangling part; the dangling part went into jump).
		xl := eps * cur[n]
		for k, li := range c.lamAdj {
			next[li] += xl * c.lamProb[k]
		}
		next[n] += xl * c.lamSelf

		delta := 0.0
		for i := 0; i <= n; i++ {
			delta += math.Abs(next[i] - cur[i])
		}
		deltas[res.Iterations] = delta
		res.Iterations = iter
		cur, next = next, cur
		if delta < cfg.Tolerance {
			res.Converged = true
			break
		}
	}

	finishChainResult(res, cur, deltas[:res.Iterations], n, start)
	return res, nil
}

// ApproxRank ranks sub with uniform external weights. It is the
// convenience form of NewApproxChain followed by Run.
func ApproxRank(sub *graph.Subgraph, cfg Config) (*Result, error) {
	c, err := NewApproxChain(sub)
	if err != nil {
		return nil, err
	}
	return c.Run(cfg)
}

// ApproxRankCtx is ApproxRank with a shared precomputed Context (the
// multi-subgraph workflow).
func ApproxRankCtx(ctx *Context, sub *graph.Subgraph, cfg Config) (*Result, error) {
	c, err := NewApproxChainCtx(ctx, sub)
	if err != nil {
		return nil, err
	}
	return c.Run(cfg)
}

// IdealRank ranks sub using the known global score vector for the external
// pages. By Theorem 1 the returned local scores equal the global PageRank
// scores of the local pages (when globalScores is the converged global
// PageRank with the same ε).
func IdealRank(sub *graph.Subgraph, globalScores []float64, cfg Config) (*Result, error) {
	c, err := NewIdealChain(sub, globalScores)
	if err != nil {
		return nil, err
	}
	return c.Run(cfg)
}

// MixExternalScores blends true external scores with the uniform
// assumption: out[j] = alpha·scores[j]/extSum + (1−alpha)/(N−n). alpha = 0
// reproduces ApproxRank's E_approx, alpha = 1 IdealRank's E. It feeds the
// Theorem 2 ablation: the ranking error shrinks with ‖E − E_approx‖₁ as
// alpha grows.
func MixExternalScores(sub *graph.Subgraph, scores []float64, alpha float64) ([]float64, error) {
	if len(scores) != sub.Global.NumNodes() {
		return nil, fmt.Errorf("core: score vector has length %d, want N=%d", len(scores), sub.Global.NumNodes())
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: mixing coefficient %v outside [0,1]", alpha)
	}
	extSum := 0.0
	extCount := 0
	for gid := range scores {
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			extSum += scores[gid]
			extCount++
		}
	}
	if extSum <= 0 {
		return nil, fmt.Errorf("core: external scores sum to zero")
	}
	uni := 1.0 / float64(extCount)
	out := make([]float64, len(scores))
	for gid := range scores {
		if _, local := sub.LocalID(graph.NodeID(gid)); local {
			continue
		}
		out[gid] = alpha*scores[gid]/extSum + (1-alpha)*uni
	}
	// The mixture of two external distributions sums to 1 by
	// construction; renormalize anyway so rounding drift cannot
	// accumulate when the result is mixed or fed back in.
	normalize(out)
	return out, nil
}

// normalize rescales v in place to sum to 1 (no-op on a zero vector).
func normalize(v []float64) {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= 0 {
		return
	}
	inv := 1.0 / sum
	for i := range v {
		v[i] *= inv
	}
}
