package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// EDistance returns ‖E − E_approx‖₁: the L1 distance between the
// normalized external weights induced by extScores (length N; entries of
// local pages ignored) and ApproxRank's uniform assumption. This is the
// quantity Theorem 2's bound is proportional to.
func EDistance(sub *graph.Subgraph, extScores []float64) (float64, error) {
	if sub == nil {
		return 0, fmt.Errorf("core: nil subgraph")
	}
	if len(extScores) != sub.Global.NumNodes() {
		return 0, fmt.Errorf("core: score vector has length %d, want N=%d",
			len(extScores), sub.Global.NumNodes())
	}
	extSum := 0.0
	for gid, s := range extScores {
		if s < 0 || math.IsNaN(s) {
			return 0, fmt.Errorf("core: invalid external score %v at %d", s, gid)
		}
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			extSum += s
		}
	}
	if extSum <= 0 {
		return 0, fmt.Errorf("core: external scores sum to zero")
	}
	uni := 1.0 / float64(sub.External())
	d := 0.0
	for gid, s := range extScores {
		if _, local := sub.LocalID(graph.NodeID(gid)); !local {
			d += math.Abs(s/extSum - uni)
		}
	}
	return d, nil
}

// ErrorBound returns Theorem 2's converged error certificate
//
//	‖R_ideal − R_approx‖₁ ≤ ε/(1−ε) · ‖E − E_approx‖₁
//
// for the given subgraph, external score estimates and damping factor
// (0 selects the default 0.85). When a caller holds stale or estimated
// external scores, this bounds how far the cheap uniform-E ApproxRank
// can be from the chain that uses those scores — a computable accuracy
// certificate that needs no ranking run at all.
func ErrorBound(sub *graph.Subgraph, extScores []float64, epsilon float64) (float64, error) {
	if epsilon == 0 {
		epsilon = numeric.DefaultDamping
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("core: damping factor %v outside (0,1)", epsilon)
	}
	d, err := EDistance(sub, extScores)
	if err != nil {
		return 0, err
	}
	return epsilon / (1 - epsilon) * d, nil
}
