package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// benchWeb builds a deterministic random web of n pages with outDeg
// links each, and a subgraph over the first quarter — large enough for
// the chain construction and the power iteration to dominate, small
// enough for a -bench run. It takes testing.TB so the parallel-path
// tests can reuse the same topology.
func benchWeb(b testing.TB, n, outDeg int) (*graph.Graph, *graph.Subgraph) {
	b.Helper()
	rng := rand.New(rand.NewSource(2009))
	edges := make([][2]graph.NodeID, 0, n*outDeg)
	for u := 0; u < n; u++ {
		for k := 0; k < outDeg; k++ {
			v := rng.Intn(n - 1)
			if v >= u {
				v++ // no self-loops: keep every page's mass moving
			}
			edges = append(edges, [2]graph.NodeID{graph.NodeID(u), graph.NodeID(v)})
		}
	}
	g := graph.MustFromEdges(n, edges)
	local := make([]graph.NodeID, n/4)
	for i := range local {
		local[i] = graph.NodeID(i)
	}
	sub, err := graph.NewSubgraph(g, local)
	if err != nil {
		b.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

// BenchmarkNewApproxChain measures building the extended local chain —
// the Λ-row aggregation over every external page.
func BenchmarkNewApproxChain(b *testing.B) {
	_, sub := benchWeb(b, 20000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewApproxChain(sub); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApproxRank measures the full ApproxRank pipeline: chain
// construction plus the power iteration to convergence.
func BenchmarkApproxRank(b *testing.B) {
	_, sub := benchWeb(b, 20000, 8)
	cfg := Config{Tolerance: 1e-8}
	b.ResetTimer()
	var res *Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = ApproxRank(sub, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Iterations), "iterations")
}

// BenchmarkRankMany measures the fan-out path of many.go: ranking
// several subgraphs of one web against a shared Context.
func BenchmarkRankMany(b *testing.B) {
	g, _ := benchWeb(b, 20000, 8)
	ctx := NewContext(g)
	const parts = 8
	subs := make([]*graph.Subgraph, parts)
	per := g.NumNodes() / (2 * parts)
	for p := 0; p < parts; p++ {
		local := make([]graph.NodeID, per)
		for i := range local {
			local[i] = graph.NodeID(p*per + i)
		}
		sub, err := graph.NewSubgraph(g, local)
		if err != nil {
			b.Fatalf("NewSubgraph: %v", err)
		}
		subs[p] = sub
	}
	cfg := Config{Tolerance: 1e-8}
	for _, workers := range []int{1, 4} {
		name := "workers=1"
		if workers == 4 {
			name = "workers=4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RankMany(ctx, subs, cfg, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
