package core

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// RankMany runs ApproxRank over many subgraphs of one global graph,
// sharing a single Context and dispatching the independent chains across
// workers. This is the paper's multi-subgraph scenario ("preprocess the
// global graph for one time, and decide A_approx for each subgraph with
// only local cost") — localized search engines serving many domains, or
// a personalization service ranking many user-defined regions.
//
// parallelism ≤ 0 selects one worker per subgraph (capped at 16).
// Results are positionally aligned with subs. The first error aborts the
// batch.
func RankMany(ctx *Context, subs []*graph.Subgraph, cfg Config, parallelism int) ([]*Result, error) {
	if ctx == nil {
		return nil, fmt.Errorf("core: nil context")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: no subgraphs")
	}
	for i, sub := range subs {
		if sub == nil {
			return nil, fmt.Errorf("core: nil subgraph at %d", i)
		}
		if sub.Global != ctx.g {
			return nil, fmt.Errorf("core: subgraph %d belongs to a different global graph", i)
		}
	}
	if parallelism <= 0 {
		parallelism = len(subs)
		if parallelism > 16 {
			parallelism = 16
		}
	}
	if parallelism > len(subs) {
		parallelism = len(subs)
	}

	results := make([]*Result, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				chain, err := NewApproxChainCtx(ctx, subs[i])
				if err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = chain.Run(cfg)
			}
		}()
	}
	for i := range subs {
		work <- i
	}
	close(work)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: subgraph %d: %w", i, err)
		}
	}
	return results, nil
}
