package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// RankMany runs ApproxRank over many subgraphs of one global graph,
// sharing a single Context and dispatching the independent chains across
// workers. This is the paper's multi-subgraph scenario ("preprocess the
// global graph for one time, and decide A_approx for each subgraph with
// only local cost") — localized search engines serving many domains, or
// a personalization service ranking many user-defined regions.
//
// parallelism ≤ 0 selects one worker per subgraph, capped at
// runtime.GOMAXPROCS(0) (the chains are CPU-bound, so more workers than
// schedulable threads only adds contention). Results are positionally
// aligned with subs. The first error aborts the batch: no further
// chains are dispatched, in-flight chains are cancelled, and the
// returned error identifies the failing subgraph.
//
// On error the results slice is still returned alongside it: entries for
// chains that completed before the batch was cancelled hold their full
// Result, every other entry is nil. A caller that wants all-or-nothing
// semantics discards the slice when err != nil; a serving tier can
// instead answer for the survivors of a poisoned batch and fail only the
// poisoned entries.
//
// Each chain's iteration buffers come from the shared kernel pools, so
// a worker recycles one set of scratch vectors across every subgraph it
// processes: the steady-state batch allocates only each Result's
// exact-size Scores/Deltas plus the per-chain topology.
//
// RankMany is RankManyCtx with context.Background(); use RankManyCtx to
// bound the batch with a caller deadline or OS signal.
func RankMany(gctx *Context, subs []*graph.Subgraph, cfg Config, parallelism int) ([]*Result, error) {
	return RankManyCtx(context.Background(), gctx, subs, cfg, parallelism)
}

// RankManyCtx is RankMany under a context. Cancelling ctx stops the
// dispatch loop and propagates into every in-flight chain's power
// iteration; the first per-subgraph error does the same via an internal
// batch context, so one poisoned subgraph cannot keep the rest of the
// batch burning CPU. Like RankMany it returns the partial results slice
// alongside any error.
func RankManyCtx(ctx context.Context, gctx *Context, subs []*graph.Subgraph, cfg Config, parallelism int) ([]*Result, error) {
	if gctx == nil {
		return nil, fmt.Errorf("core: nil context")
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("core: no subgraphs")
	}
	results := make([]*Result, len(subs))
	err := rankManyInto(ctx, gctx, subs, cfg, parallelism, results)
	return results, err
}

// rankManyInto runs the batch into a caller-provided result slice. It is
// the testable core of RankManyCtx: on error the slice shows exactly
// which chains completed before the batch was cancelled (entries for
// never-dispatched subgraphs stay nil), which the fail-fast regression
// test asserts on.
func rankManyInto(ctx context.Context, gctx *Context, subs []*graph.Subgraph, cfg Config, parallelism int, results []*Result) error {
	if parallelism <= 0 {
		parallelism = len(subs)
		if limit := runtime.GOMAXPROCS(0); parallelism > limit {
			parallelism = limit
		}
	}
	if parallelism > len(subs) {
		parallelism = len(subs)
	}

	// batchCtx cancels every in-flight chain as soon as one fails (or the
	// caller's ctx is done) — the documented fail-fast contract.
	batchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	// fail records the batch's first failure and cancels everything else.
	// Workers can only observe a context error after some failure already
	// called cancel (or the caller's ctx fired), so the first recorded
	// error is the root cause, never a secondary cancellation.
	fail := func(i int, err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				// Per-subgraph validation (nil entries, wrong global graph)
				// surfaces here so a bad entry mid-batch aborts the rest
				// instead of being scanned for upfront at O(len(subs)).
				chain, err := NewApproxChainCtx(gctx, subs[i])
				if err != nil {
					fail(i, err)
					return
				}
				res, err := chain.RunCtx(batchCtx, cfg)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = res
			}
		}()
	}
dispatch:
	for i := range subs {
		select {
		case work <- i:
		case <-batchCtx.Done():
			break dispatch
		}
	}
	close(work)
	wg.Wait()

	if firstErr != nil {
		return fmt.Errorf("core: subgraph %d: %w", firstIdx, firstErr)
	}
	// The caller's ctx fired between dispatches, before any worker
	// tripped on it.
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: rank many: %w", err)
	}
	return nil
}
