package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

// figureGraph builds the paper's worked example (Figures 4–6): local pages
// A,B,C,D (ids 0–3) and external pages X,Y,Z (ids 4–6).
func figureGraph(t testing.TB) (*graph.Graph, *graph.Subgraph) {
	t.Helper()
	const (
		A = 0
		B = 1
		C = 2
		D = 3
		X = 4
		Y = 5
		Z = 6
	)
	g := graph.MustFromEdges(7, [][2]graph.NodeID{
		{A, B}, {A, C}, {A, X}, {A, Z},
		{B, D},
		{C, B}, {C, D},
		{D, A},
		{X, C}, {X, Y}, {X, Z},
		{Y, C}, {Y, X},
		{Z, C}, {Z, D},
	})
	sub, err := graph.NewSubgraph(g, []graph.NodeID{A, B, C, D})
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

// TestFigure456Example checks the exact transition probabilities the paper
// derives for the ApproxRank extended local graph of Figure 6:
// A→Λ = 1/2, Λ→C = 4/9, Λ→D = 1/6, Λ→Λ = 7/18.
func TestFigure456Example(t *testing.T) {
	_, sub := figureGraph(t)
	c, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	approx := func(got, want float64, what string) {
		t.Helper()
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s = %v, want %v", what, got, want)
		}
	}
	// Local rows use GLOBAL out-degrees: A has out-degree 4.
	adj, prob := c.LocalTransitions(0)
	if len(adj) != 2 {
		t.Fatalf("A has %d local targets, want 2", len(adj))
	}
	approx(prob[0], 0.25, "A→B")
	approx(prob[1], 0.25, "A→C")
	approx(c.ToLambda(0), 0.5, "A→Λ")

	approx(c.ToLambda(1), 0, "B→Λ")
	approx(c.ToLambda(2), 0, "C→Λ")
	approx(c.ToLambda(3), 0, "D→Λ")

	approx(c.LambdaTo(0), 0, "Λ→A")
	approx(c.LambdaTo(1), 0, "Λ→B")
	approx(c.LambdaTo(2), 4.0/9.0, "Λ→C")
	approx(c.LambdaTo(3), 1.0/6.0, "Λ→D")
	approx(c.LambdaSelfLoop(), 7.0/18.0, "Λ→Λ")
}

// TestChainRowsStochastic verifies that every row of the collapsed
// transition matrix sums to 1 for both ApproxRank and IdealRank chains on
// random graphs.
func TestChainRowsStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g, sub := randomSubgraph(t, rng, 60, 4)
		chains := map[string]*ExtendedChain{}
		ac, err := NewApproxChain(sub)
		if err != nil {
			t.Fatalf("NewApproxChain: %v", err)
		}
		chains["approx"] = ac
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-10})
		if err != nil {
			t.Fatalf("global PageRank: %v", err)
		}
		ic, err := NewIdealChain(sub, gr.Scores)
		if err != nil {
			t.Fatalf("NewIdealChain: %v", err)
		}
		chains["ideal"] = ic
		for name, c := range chains {
			for i := 0; i < c.NumLocal(); i++ {
				if c.danglingLocal[i] {
					continue // row handled by the dangling mechanism
				}
				_, prob := c.LocalTransitions(i)
				sum := c.ToLambda(i)
				for _, p := range prob {
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("trial %d %s: local row %d sums to %v", trial, name, i, sum)
				}
			}
			lamSum := c.LambdaSelfLoop()
			for k := 0; k < c.NumLocal(); k++ {
				lamSum += c.LambdaTo(k)
			}
			// The Λ row's dangling mass also reaches local pages and Λ via
			// LambdaTo/LambdaSelfLoop, so the full row must sum to 1.
			if math.Abs(lamSum-1) > 1e-9 {
				t.Fatalf("trial %d %s: Λ row sums to %v", trial, name, lamSum)
			}
		}
	}
}

// randomSubgraph generates a random directed graph with n nodes and
// average degree deg, plus a random subgraph of 20–60% of its pages.
func randomSubgraph(t testing.TB, rng *rand.Rand, n int, deg int) (*graph.Graph, *graph.Subgraph) {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		if rng.Float64() < 0.08 {
			continue // dangling page
		}
		d := 1 + rng.Intn(2*deg)
		for e := 0; e < d; e++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build random graph: %v", err)
	}
	size := 2 + rng.Intn(n/2)
	perm := rng.Perm(n)
	local := make([]graph.NodeID, size)
	for i := 0; i < size; i++ {
		local[i] = graph.NodeID(perm[i])
	}
	sub, err := graph.NewSubgraph(g, local)
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	return g, sub
}

// TestIdealRankExact reproduces Theorem 1: IdealRank scores equal the true
// global PageRank scores of the local pages, and the Λ score equals the
// total external score.
func TestIdealRankExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g, sub := randomSubgraph(t, rng, 80, 4)
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("global PageRank: %v", err)
		}
		ir, err := IdealRank(sub, gr.Scores, Config{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		wantLambda := 0.0
		gapL1 := 0.0
		for gid, s := range gr.Scores {
			if li, local := sub.LocalID(graph.NodeID(gid)); local {
				gapL1 += math.Abs(ir.Scores[li] - s)
			} else {
				wantLambda += s
			}
		}
		if gapL1 > 1e-8 {
			t.Fatalf("trial %d: IdealRank deviates from global PageRank, L1=%g", trial, gapL1)
		}
		if math.Abs(ir.Lambda-wantLambda) > 1e-8 {
			t.Fatalf("trial %d: Λ score %v, want sum of external scores %v", trial, ir.Lambda, wantLambda)
		}
	}
}

// TestIdealRankExactWeighted extends Theorem 1 to weighted
// (ObjectRank-style authority transfer) graphs.
func TestIdealRankExactWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 50
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			if rng.Float64() < 0.05 {
				continue
			}
			d := 1 + rng.Intn(6)
			for e := 0; e < d; e++ {
				v := rng.Intn(n)
				if v == u {
					continue
				}
				b.AddWeightedEdge(graph.NodeID(u), graph.NodeID(v), 0.1+rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		perm := rng.Perm(n)
		local := make([]graph.NodeID, 10+rng.Intn(20))
		for i := range local {
			local[i] = graph.NodeID(perm[i])
		}
		sub, err := graph.NewSubgraph(g, local)
		if err != nil {
			t.Fatalf("NewSubgraph: %v", err)
		}
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("global PageRank: %v", err)
		}
		ir, err := IdealRank(sub, gr.Scores, Config{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		for li, gid := range sub.Local {
			if math.Abs(ir.Scores[li]-gr.Scores[gid]) > 1e-8 {
				t.Fatalf("trial %d: local %d score %v, want %v", trial, li, ir.Scores[li], gr.Scores[gid])
			}
		}
	}
}

// TestErrorBound reproduces Theorem 2: the L1 distance between converged
// IdealRank and ApproxRank local scores is at most ε/(1−ε)·‖E−E_approx‖₁.
func TestErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		g, sub := randomSubgraph(t, rng, 70, 4)
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-12, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("global PageRank: %v", err)
		}
		cfg := Config{Tolerance: 1e-12, MaxIterations: 5000}
		ideal, err := IdealRank(sub, gr.Scores, cfg)
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		ap, err := ApproxRank(sub, cfg)
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		gap := 0.0
		for i := range ideal.Scores {
			gap += math.Abs(ideal.Scores[i] - ap.Scores[i])
		}
		// ‖E − E_approx‖₁ over external pages.
		extSum := 0.0
		for gid, s := range gr.Scores {
			if _, local := sub.LocalID(graph.NodeID(gid)); !local {
				extSum += s
			}
		}
		uni := 1.0 / float64(sub.External())
		eDist := 0.0
		for gid, s := range gr.Scores {
			if _, local := sub.LocalID(graph.NodeID(gid)); !local {
				eDist += math.Abs(s/extSum - uni)
			}
		}
		eps := 0.85
		bound := eps / (1 - eps) * eDist
		if gap > bound+1e-9 {
			t.Fatalf("trial %d: gap %v exceeds Theorem 2 bound %v (‖E−E_approx‖₁=%v)",
				trial, gap, bound, eDist)
		}
	}
}

// TestScoresSumToOne: local scores plus Λ form a probability distribution.
func TestScoresSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		_, sub := randomSubgraph(t, rng, 50, 3)
		res, err := ApproxRank(sub, Config{})
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		sum := res.Lambda
		for _, s := range res.Scores {
			sum += s
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("trial %d: scores+Λ sum to %v", trial, sum)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge in %d iterations", trial, res.Iterations)
		}
	}
}

// TestContextMatchesDirect: the context-based constructor must produce the
// same chain as the direct one.
func TestContextMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, sub := randomSubgraph(t, rng, 90, 4)
	ctx := NewContext(g)
	direct, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	viaCtx, err := NewApproxChainCtx(ctx, sub)
	if err != nil {
		t.Fatalf("NewApproxChainCtx: %v", err)
	}
	r1, err := direct.Run(Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := viaCtx.Run(Config{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range r1.Scores {
		if r1.Scores[i] != r2.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, r1.Scores[i], r2.Scores[i])
		}
	}
}

// TestMixExternalScores: alpha=1 must reproduce IdealRank, alpha=0
// ApproxRank, and the ranking error must not grow as alpha increases.
func TestMixExternalScores(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g, sub := randomSubgraph(t, rng, 100, 4)
	gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-12, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("global PageRank: %v", err)
	}
	cfg := Config{Tolerance: 1e-12, MaxIterations: 5000}
	ideal, err := IdealRank(sub, gr.Scores, cfg)
	if err != nil {
		t.Fatalf("IdealRank: %v", err)
	}
	gapAt := func(alpha float64) float64 {
		t.Helper()
		mixed, err := MixExternalScores(sub, gr.Scores, alpha)
		if err != nil {
			t.Fatalf("MixExternalScores(%v): %v", alpha, err)
		}
		c, err := NewChainWithExternalScores(sub, mixed)
		if err != nil {
			t.Fatalf("NewChainWithExternalScores: %v", err)
		}
		res, err := c.Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		gap := 0.0
		for i := range res.Scores {
			gap += math.Abs(res.Scores[i] - ideal.Scores[i])
		}
		return gap
	}
	g0 := gapAt(0)
	g1 := gapAt(1)
	if g1 > 1e-8 {
		t.Errorf("alpha=1 gap %v, want ~0 (IdealRank)", g1)
	}
	ap, err := ApproxRank(sub, cfg)
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	apGap := 0.0
	for i := range ap.Scores {
		apGap += math.Abs(ap.Scores[i] - ideal.Scores[i])
	}
	if math.Abs(g0-apGap) > 1e-8 {
		t.Errorf("alpha=0 gap %v differs from ApproxRank gap %v", g0, apGap)
	}
	ghalf := gapAt(0.5)
	if ghalf > g0+1e-9 {
		t.Errorf("alpha=0.5 gap %v exceeds alpha=0 gap %v", ghalf, g0)
	}
}

// TestConfigValidation exercises the error paths of Config and the
// constructors.
func TestConfigValidation(t *testing.T) {
	_, sub := figureGraph(t)
	if _, err := ApproxRank(sub, Config{Epsilon: 1.5}); err == nil {
		t.Error("Epsilon=1.5 accepted")
	}
	if _, err := ApproxRank(sub, Config{Epsilon: -0.1}); err == nil {
		t.Error("negative epsilon accepted")
	}
	if _, err := ApproxRank(sub, Config{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := ApproxRank(sub, Config{MaxIterations: -2}); err == nil {
		t.Error("negative MaxIterations accepted")
	}
	if _, err := ApproxRank(nil, Config{}); err == nil {
		t.Error("nil subgraph accepted")
	}
	if _, err := IdealRank(sub, []float64{1, 2}, Config{}); err == nil {
		t.Error("short score vector accepted")
	}
	bad := make([]float64, 7)
	bad[4] = -1
	if _, err := IdealRank(sub, bad, Config{}); err == nil {
		t.Error("negative external score accepted")
	}
	zero := make([]float64, 7)
	zero[0] = 1 // local page only; external mass is zero
	if _, err := IdealRank(sub, zero, Config{}); err == nil {
		t.Error("zero external mass accepted")
	}
	if _, err := MixExternalScores(sub, make([]float64, 3), 0.5); err == nil {
		t.Error("short mix vector accepted")
	}
	ok := make([]float64, 7)
	for i := range ok {
		ok[i] = 1
	}
	if _, err := MixExternalScores(sub, ok, 1.5); err == nil {
		t.Error("alpha=1.5 accepted")
	}
}

// TestTheorem2PerIteration checks the per-iteration form of Theorem 2 via
// testing/quick: for random graphs and random iteration counts m, the L1
// distance after m iterations is bounded by (ε+…+ε^m)·‖E−E_approx‖₁.
func TestTheorem2PerIteration(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	check := func(seed int64, mRaw uint8) bool {
		m := int(mRaw%20) + 1
		local := rand.New(rand.NewSource(seed))
		g, sub := randomSubgraph(t, local, 40+local.Intn(40), 3)
		gr, err := pagerank.Compute(g, pagerank.Options{Tolerance: 1e-13, MaxIterations: 5000})
		if err != nil {
			t.Fatalf("global PageRank: %v", err)
		}
		cfg := Config{Tolerance: 1e-30, MaxIterations: m} // exactly m iterations
		ideal, err := IdealRank(sub, gr.Scores, cfg)
		if err != nil {
			t.Fatalf("IdealRank: %v", err)
		}
		ap, err := ApproxRank(sub, cfg)
		if err != nil {
			t.Fatalf("ApproxRank: %v", err)
		}
		// A chain may hit an exact floating-point fixpoint before m
		// iterations; further iterations would not change it, so the
		// per-iteration bound at m still applies.
		if ideal.Iterations > m || ap.Iterations > m {
			t.Fatalf("expected at most %d iterations, got %d/%d", m, ideal.Iterations, ap.Iterations)
		}
		gap := 0.0
		for i := range ideal.Scores {
			gap += math.Abs(ideal.Scores[i] - ap.Scores[i])
		}
		extSum := 0.0
		for gid, s := range gr.Scores {
			if _, isLocal := sub.LocalID(graph.NodeID(gid)); !isLocal {
				extSum += s
			}
		}
		uni := 1.0 / float64(sub.External())
		eDist := 0.0
		for gid, s := range gr.Scores {
			if _, isLocal := sub.LocalID(graph.NodeID(gid)); !isLocal {
				eDist += math.Abs(s/extSum - uni)
			}
		}
		eps, geo := 0.85, 0.0
		pw := 1.0
		for i := 0; i < m; i++ {
			pw *= eps
			geo += pw
		}
		return gap <= geo*eDist+1e-9
	}
	cfg := &quick.Config{
		MaxCount: 25,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(rng.Int63())
			vals[1] = reflect.ValueOf(uint8(r.Uint32()))
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
