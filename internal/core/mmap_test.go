package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// TestApproxRankOverMmapGraph: a Context over a memory-mapped graph
// produces bit-identical ApproxRank scores to the same graph on the
// heap — the whole chain (dangling scan, Λ-row construction, kernel
// snapshot, power iteration) runs against aliased mapped slices.
func TestApproxRankOverMmapGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n := 400
	b := graph.NewBuilder(n)
	for i := 0; i < 2500; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.v2")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := graph.MmapFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := m.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()

	local := make([]graph.NodeID, 0, 40)
	for i := 0; i < 40; i++ {
		local = append(local, graph.NodeID(rng.Intn(n)))
	}
	run := func(gg *graph.Graph) *Result {
		t.Helper()
		sub, err := graph.NewSubgraph(gg, local)
		if err != nil {
			t.Fatal(err)
		}
		chain, err := NewApproxChainCtx(NewContext(gg), sub)
		if err != nil {
			t.Fatal(err)
		}
		res, err := chain.Run(Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	heapRes := run(g)
	mappedRes := run(m)
	if len(heapRes.Scores) != len(mappedRes.Scores) {
		t.Fatalf("score lengths differ: %d vs %d", len(heapRes.Scores), len(mappedRes.Scores))
	}
	for i := range heapRes.Scores {
		if heapRes.Scores[i] != mappedRes.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, heapRes.Scores[i], mappedRes.Scores[i])
		}
	}
	if heapRes.Lambda != mappedRes.Lambda || heapRes.Iterations != mappedRes.Iterations {
		t.Fatalf("lambda/iterations differ: %v/%d vs %v/%d",
			heapRes.Lambda, heapRes.Iterations, mappedRes.Lambda, mappedRes.Iterations)
	}
}
