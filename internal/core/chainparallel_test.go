package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
)

// testWeb is benchWeb under a test name: a deterministic random web
// with a subgraph over the first quarter.
func testWeb(t *testing.T, n, outDeg int) (*graph.Graph, *graph.Subgraph) {
	t.Helper()
	return benchWeb(t, n, outDeg)
}

func mustChain(t *testing.T, sub *graph.Subgraph) *ExtendedChain {
	t.Helper()
	chain, err := NewApproxChain(sub)
	if err != nil {
		t.Fatalf("NewApproxChain: %v", err)
	}
	return chain
}

// TestChainParallelDeterministic: for a FIXED worker count, two runs of
// the parallel pull path produce bit-identical scores — the determinism
// contract the kernel's disjoint-output-range design guarantees.
func TestChainParallelDeterministic(t *testing.T) {
	_, sub := testWeb(t, 2000, 6)
	chain := mustChain(t, sub)
	cfg := Config{Tolerance: 1e-10, Parallelism: 4}
	a, err := chain.RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chain.RunCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Lambda != b.Lambda || a.Iterations != b.Iterations {
		t.Fatalf("runs differ: lambda %v vs %v, iters %d vs %d", a.Lambda, b.Lambda, a.Iterations, b.Iterations)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("scores[%d] not bit-identical: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
}

// TestChainParallelAgreement: the sequential push sweep and the
// parallel pull sweep at workers 2/4/8 agree within tight tolerance
// (they differ only by floating-point reassociation of per-state
// in-rows), and every run converges to a proper distribution.
func TestChainParallelAgreement(t *testing.T) {
	_, sub := testWeb(t, 2000, 6)
	chain := mustChain(t, sub)
	base, err := chain.RunCtx(context.Background(), Config{Tolerance: 1e-10, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		res, err := chain.RunCtx(context.Background(), Config{Tolerance: 1e-10, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Converged {
			t.Fatalf("workers=%d did not converge", workers)
		}
		l1 := math.Abs(res.Lambda - base.Lambda)
		for i := range res.Scores {
			l1 += math.Abs(res.Scores[i] - base.Scores[i])
		}
		if l1 > 1e-9 {
			t.Errorf("workers=%d: L1 distance to sequential %g > 1e-9", workers, l1)
		}
		sum := res.Lambda
		for _, s := range res.Scores {
			sum += s
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("workers=%d: scores+lambda sum to %v, want 1", workers, sum)
		}
	}
}

// TestChainParallelNegativeSelectsCPUs: Parallelism < 0 resolves to the
// CPU count and runs the parallel path successfully.
func TestChainParallelNegativeSelectsCPUs(t *testing.T) {
	_, sub := figureGraph(t)
	chain := mustChain(t, sub)
	res, err := chain.RunCtx(context.Background(), Config{Parallelism: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("run did not converge")
	}
}

// TestChainParallelPreCancelled: a context that is already done yields
// no result on the parallel path, wrapping the context's error.
func TestChainParallelPreCancelled(t *testing.T) {
	_, sub := figureGraph(t)
	chain := mustChain(t, sub)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := chain.RunCtx(ctx, Config{Parallelism: 4})
	if err == nil {
		t.Fatal("pre-cancelled context produced a result")
	}
	if res != nil {
		t.Errorf("got partial result alongside error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestChainParallelCancelledMidRun reuses the countdown context to land
// a cancellation mid-run: the parallel path polls ctx at worker start
// and after every iteration's barrier, so the run must abort with the
// context error and no partial scores. The exact iteration depends on
// scheduling (several workers poll per iteration), so unlike the
// sequential test only the loose contract is asserted.
func TestChainParallelCancelledMidRun(t *testing.T) {
	_, sub := testWeb(t, 2000, 6)
	chain := mustChain(t, sub)
	res, err := chain.RunCtx(newCountdown(10), Config{Tolerance: 1e-300, MaxIterations: 50, Parallelism: 4})
	if err == nil {
		t.Fatal("cancelled run converged")
	}
	if res != nil {
		t.Errorf("got partial result alongside error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestRankManyAllocBudget pins the pooling win down: once the kernel
// pools are warm, a RankMany batch must stay within a small per-chain
// allocation budget (topology + exact-size result slices — no
// per-iteration buffers). The budget has ~40% headroom over the
// measured steady state but sits far below the ~36 allocs/chain the
// unpooled implementation burned.
func TestRankManyAllocBudget(t *testing.T) {
	g, _ := testWeb(t, 4000, 6)
	gctx := NewContext(g)
	parts := make([]*graph.Subgraph, 4)
	per := 1000
	for p := range parts {
		local := make([]graph.NodeID, per)
		for i := range local {
			local[i] = graph.NodeID(p*per + i)
		}
		sub, err := graph.NewSubgraph(g, local)
		if err != nil {
			t.Fatal(err)
		}
		parts[p] = sub
	}
	cfg := Config{Tolerance: 1e-8}
	const perChainBudget = 25
	avg := testing.AllocsPerRun(5, func() {
		if _, err := RankMany(gctx, parts, cfg, 1); err != nil {
			t.Fatal(err)
		}
	})
	if budget := float64(perChainBudget * len(parts)); avg > budget {
		t.Errorf("RankMany allocated %.1f times per batch, budget %.0f (%d chains × %d)",
			avg, budget, len(parts), perChainBudget)
	}
}
