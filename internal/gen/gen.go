// Package gen generates synthetic web graphs that stand in for the
// paper's crawled datasets (the "politics" dmoz crawl and the "AU"
// Australian-university crawl), which are not publicly available.
//
// The generator produces a global graph with the structural properties the
// paper's experiments depend on:
//
//   - pages grouped into domains whose sizes follow a power law (the AU
//     dataset's 38 domains span 0.35 %–10.4 % of the graph);
//   - a configurable intra-domain link fraction (the paper, citing Kamvar
//     et al., notes a majority of web links are intra-domain) — this is
//     the knob that separates well-bounded DS subgraphs from heavily
//     coupled BFS subgraphs;
//   - heavy-tailed out-degrees around a small mean (Table IV reports
//     average out-degrees of 3.8–8.7) and preferentially attached
//     in-degrees;
//   - a topic label per page with topical locality (linked pages agree on
//     topic more often than chance), supporting dmoz-style topic-specific
//     subgraphs;
//   - a fraction of dangling pages, as a crawl frontier produces.
//
// Generation is deterministic for a fixed Config, including the Seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Config parameterizes a synthetic global graph.
type Config struct {
	// Pages is the number of pages N. Required.
	Pages int
	// Domains is the number of web domains. Default 38 (the AU dataset).
	Domains int
	// DomainSkew is the power-law exponent of domain sizes: domain d gets
	// weight (d+1)^(−DomainSkew). Default 0.85, which spreads 38 domains
	// over roughly 0.4 %–15 % of the graph.
	DomainSkew float64
	// IntraFraction is the page-weighted average probability that a link
	// stays inside its source page's domain. Default 0.85.
	IntraFraction float64
	// SizeLeakExponent makes smaller domains leak relatively more links
	// out of their domain: domain d's leak rate is proportional to
	// (medianSize/size_d)^SizeLeakExponent, rescaled so the page-weighted
	// average leak equals 1−IntraFraction. Real web domains behave this
	// way (small sites link out proportionally more than large, insular
	// ones), and it is what makes ranking accuracy improve with domain
	// size (the trend down the rows of the paper's Table IV). Default
	// 0.5; set to a negative value for size-independent leakage.
	SizeLeakExponent float64
	// MeanOutDegree is the mean out-degree of non-dangling pages.
	// Default 5.5.
	MeanOutDegree float64
	// MaxOutDegree truncates the out-degree distribution. Default 100.
	MaxOutDegree int
	// DegreeExponent is the power-law exponent of the out-degree
	// distribution. Default 2.3.
	DegreeExponent float64
	// DanglingFraction is the fraction of pages with no out-links.
	// Default 0.04.
	DanglingFraction float64
	// Topics is the number of topic labels. Default 12.
	Topics int
	// TopicAffinity is the probability that a link targets a page of the
	// source's topic (within the chosen domain scope). Default 0.6.
	TopicAffinity float64
	// PrefAttach is the probability that a link target is chosen by
	// in-degree-biased tournament selection instead of uniformly, which
	// produces heavy-tailed in-degrees. Default 0.6.
	PrefAttach float64
	// Seed drives all randomness. The same Config always yields the same
	// dataset.
	Seed int64
}

func (c *Config) fill() error {
	if c.Pages <= 1 {
		return fmt.Errorf("gen: need at least 2 pages, got %d", c.Pages)
	}
	if c.Domains == 0 {
		c.Domains = 38
	}
	if c.Domains < 1 || c.Domains > c.Pages {
		return fmt.Errorf("gen: domain count %d outside [1,%d]", c.Domains, c.Pages)
	}
	if c.DomainSkew == 0 {
		c.DomainSkew = 0.85
	}
	if c.IntraFraction == 0 {
		c.IntraFraction = 0.85
	}
	if c.IntraFraction < 0 || c.IntraFraction > 1 {
		return fmt.Errorf("gen: intra-domain fraction %v outside [0,1]", c.IntraFraction)
	}
	if c.SizeLeakExponent == 0 {
		c.SizeLeakExponent = 0.5
	}
	if c.SizeLeakExponent < 0 {
		c.SizeLeakExponent = 0 // explicit opt-out: uniform leakage
	}
	if c.SizeLeakExponent > 2 {
		return fmt.Errorf("gen: size-leak exponent %v > 2", c.SizeLeakExponent)
	}
	if c.MeanOutDegree == 0 {
		c.MeanOutDegree = 5.5
	}
	if c.MeanOutDegree < 1 {
		return fmt.Errorf("gen: mean out-degree %v < 1", c.MeanOutDegree)
	}
	if c.MaxOutDegree == 0 {
		c.MaxOutDegree = 100
	}
	if c.DegreeExponent == 0 {
		c.DegreeExponent = 2.3
	}
	if c.DegreeExponent <= 1 {
		return fmt.Errorf("gen: degree exponent %v must exceed 1", c.DegreeExponent)
	}
	if c.DanglingFraction == 0 {
		c.DanglingFraction = 0.04
	}
	if c.DanglingFraction < 0 || c.DanglingFraction > 0.5 {
		return fmt.Errorf("gen: dangling fraction %v outside [0,0.5]", c.DanglingFraction)
	}
	if c.Topics == 0 {
		c.Topics = 12
	}
	if c.Topics < 1 {
		return fmt.Errorf("gen: topic count %d < 1", c.Topics)
	}
	if c.TopicAffinity == 0 {
		c.TopicAffinity = 0.6
	}
	if c.TopicAffinity < 0 || c.TopicAffinity > 1 {
		return fmt.Errorf("gen: topic affinity %v outside [0,1]", c.TopicAffinity)
	}
	if c.PrefAttach == 0 {
		c.PrefAttach = 0.6
	}
	if c.PrefAttach < 0 || c.PrefAttach > 1 {
		return fmt.Errorf("gen: preferential-attachment probability %v outside [0,1]", c.PrefAttach)
	}
	return nil
}

// Dataset is a generated global graph with its domain and topic labels.
type Dataset struct {
	Graph *graph.Graph
	// Domain[p] is the domain id (0..Domains−1) of page p. Pages of a
	// domain occupy a contiguous id range.
	Domain []uint16
	// Topic[p] is the topic id (0..Topics−1) of page p.
	Topic []uint16
	// DomainNames[d] is a synthetic host name for domain d, ordered by
	// descending domain size.
	DomainNames []string

	domainStart []int // len Domains+1; pages of domain d are [start[d], start[d+1])
}

// NumDomains returns the number of domains.
func (ds *Dataset) NumDomains() int { return len(ds.DomainNames) }

// DomainPages returns the global ids of the pages in domain d.
func (ds *Dataset) DomainPages(d int) []graph.NodeID {
	out := make([]graph.NodeID, 0, ds.domainStart[d+1]-ds.domainStart[d])
	for p := ds.domainStart[d]; p < ds.domainStart[d+1]; p++ {
		out = append(out, graph.NodeID(p))
	}
	return out
}

// DomainSize returns the number of pages in domain d.
func (ds *Dataset) DomainSize(d int) int { return ds.domainStart[d+1] - ds.domainStart[d] }

// TopicPages returns the global ids of the pages labelled with topic t.
func (ds *Dataset) TopicPages(t int) []graph.NodeID {
	var out []graph.NodeID
	for p, tp := range ds.Topic {
		if int(tp) == t {
			out = append(out, graph.NodeID(p))
		}
	}
	return out
}

// Generate builds a Dataset from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ds := &Dataset{}
	ds.domainStart = domainPartition(cfg, rng)
	n := cfg.Pages

	ds.Domain = make([]uint16, n)
	for d := 0; d < cfg.Domains; d++ {
		for p := ds.domainStart[d]; p < ds.domainStart[d+1]; p++ {
			ds.Domain[p] = uint16(d)
		}
	}
	ds.DomainNames = make([]string, cfg.Domains)
	for d := range ds.DomainNames {
		ds.DomainNames[d] = fmt.Sprintf("u%02d.edu.syn", d)
	}

	assignTopics(cfg, rng, ds)

	// Index pages by (domain, topic) and by topic for scope-restricted
	// target sampling.
	byDomain := make([][]graph.NodeID, cfg.Domains)
	byDomainTopic := make([][][]graph.NodeID, cfg.Domains)
	byTopic := make([][]graph.NodeID, cfg.Topics)
	for d := 0; d < cfg.Domains; d++ {
		byDomainTopic[d] = make([][]graph.NodeID, cfg.Topics)
	}
	for p := 0; p < n; p++ {
		d, t := int(ds.Domain[p]), int(ds.Topic[p])
		byDomain[d] = append(byDomain[d], graph.NodeID(p))
		byDomainTopic[d][t] = append(byDomainTopic[d][t], graph.NodeID(p))
		byTopic[t] = append(byTopic[t], graph.NodeID(p))
	}
	allPages := make([]graph.NodeID, n)
	for p := range allPages {
		allPages[p] = graph.NodeID(p)
	}

	// Pages are visited in ascending id order and each page's out-row is
	// complete before the next begins, so the edges stream straight into
	// a RowBuilder: CSR-resident accumulation (~4 bytes/edge) instead of
	// the Builder's buffered triples + global sort — the difference
	// between fitting a crawl-scale generation in memory and not.
	// Per-row sort+dedup produces the same graph the Builder's global
	// sort+dedup did.
	b := graph.NewRowBuilder(n)
	inDeg := make([]int32, n)
	zipf := newBoundedZipf(cfg.DegreeExponent, 1, cfg.MaxOutDegree, cfg.MeanOutDegree)
	intraProb := domainIntraProbs(cfg, ds)

	row := make([]graph.NodeID, 0, cfg.MaxOutDegree)
	for p := 0; p < n; p++ {
		if rng.Float64() < cfg.DanglingFraction {
			continue // dangling page
		}
		deg := zipf.sample(rng)
		d, t := int(ds.Domain[p]), int(ds.Topic[p])
		row = row[:0]
		for e := 0; e < deg; e++ {
			scope := pickScope(cfg, rng, byDomain, byDomainTopic, byTopic, allPages, d, t, intraProb[d])
			v := pickTarget(cfg, rng, scope, inDeg, graph.NodeID(p))
			if v == graph.NodeID(p) {
				continue // skip self-loop candidates
			}
			row = append(row, v)
			inDeg[v]++
		}
		if len(row) > 0 {
			if err := b.AddRow(graph.NodeID(p), row); err != nil {
				return nil, err
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ds.Graph = g
	return ds, nil
}

// domainPartition splits the page range into Domains contiguous blocks
// with power-law sizes. Every domain receives at least one page.
func domainPartition(cfg Config, rng *rand.Rand) []int {
	d := cfg.Domains
	weights := make([]float64, d)
	total := 0.0
	for i := range weights {
		// Power-law base with ±20 % jitter so sizes are not perfectly
		// monotone (real domain sizes are noisy).
		w := math.Pow(float64(i+1), -cfg.DomainSkew) * (0.8 + 0.4*rng.Float64())
		weights[i] = w
		total += w
	}
	start := make([]int, d+1)
	assigned := 0
	for i := 0; i < d; i++ {
		start[i] = assigned
		size := int(math.Round(weights[i] / total * float64(cfg.Pages-d)))
		assigned += size + 1 // +1 guarantees non-empty domains
	}
	start[d] = cfg.Pages
	// Rounding can overshoot; clamp monotonically from the back.
	for i := d - 1; i >= 0; i-- {
		if start[i] > start[i+1]-1 {
			start[i] = start[i+1] - 1
		}
	}
	return start
}

// assignTopics gives each domain a dominant topic mixture and samples page
// topics from it, creating domain-topic correlation (universities have
// departments; dmoz categories cluster by site).
func assignTopics(cfg Config, rng *rand.Rand, ds *Dataset) {
	ds.Topic = make([]uint16, cfg.Pages)
	for d := 0; d < cfg.Domains; d++ {
		// Each domain prefers 3 topics with weights 0.5/0.3/0.2 and leaks
		// 25 % of pages to uniform topics.
		pref := [3]int{rng.Intn(cfg.Topics), rng.Intn(cfg.Topics), rng.Intn(cfg.Topics)}
		for p := ds.domainStart[d]; p < ds.domainStart[d+1]; p++ {
			if rng.Float64() < 0.25 {
				ds.Topic[p] = uint16(rng.Intn(cfg.Topics))
				continue
			}
			r := rng.Float64()
			switch {
			case r < 0.5:
				ds.Topic[p] = uint16(pref[0])
			case r < 0.8:
				ds.Topic[p] = uint16(pref[1])
			default:
				ds.Topic[p] = uint16(pref[2])
			}
		}
	}
}

// domainIntraProbs computes each domain's intra-domain link probability:
// leak rates scale as (medianSize/size)^SizeLeakExponent, rescaled so the
// page-weighted average leak equals 1−IntraFraction, then clamped to keep
// every domain connected to the outside.
func domainIntraProbs(cfg Config, ds *Dataset) []float64 {
	d := cfg.Domains
	sizes := make([]int, d)
	sorted := make([]int, d)
	for i := 0; i < d; i++ {
		sizes[i] = ds.DomainSize(i)
		sorted[i] = sizes[i]
	}
	sort.Ints(sorted)
	med := float64(sorted[d/2])
	leakBase := 1 - cfg.IntraFraction
	raw := make([]float64, d)
	weighted := 0.0
	for i := 0; i < d; i++ {
		raw[i] = math.Pow(med/float64(sizes[i]), cfg.SizeLeakExponent)
		weighted += float64(sizes[i]) * raw[i]
	}
	scale := 1.0
	if weighted > 0 {
		scale = leakBase * float64(cfg.Pages) / weighted
	}
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		leak := scale * raw[i]
		if leak < 0.02 {
			leak = 0.02
		}
		if leak > 0.6 {
			leak = 0.6
		}
		out[i] = 1 - leak
	}
	return out
}

// pickScope selects the candidate pool for a link target according to the
// intra-domain and topic-affinity coin flips, falling back to broader
// pools when a narrow one is empty.
func pickScope(cfg Config, rng *rand.Rand,
	byDomain [][]graph.NodeID, byDomainTopic [][][]graph.NodeID, byTopic [][]graph.NodeID,
	all []graph.NodeID, d, t int, intraProb float64) []graph.NodeID {
	intra := rng.Float64() < intraProb
	topical := rng.Float64() < cfg.TopicAffinity
	if intra && topical && len(byDomainTopic[d][t]) > 1 {
		return byDomainTopic[d][t]
	}
	if intra && len(byDomain[d]) > 1 {
		return byDomain[d]
	}
	if topical && len(byTopic[t]) > 1 {
		return byTopic[t]
	}
	return all
}

// pickTarget draws a target from scope, using in-degree-biased
// tournament-of-3 selection with probability PrefAttach (heavy-tailed
// in-degrees) and uniform selection otherwise.
func pickTarget(cfg Config, rng *rand.Rand, scope []graph.NodeID, inDeg []int32, self graph.NodeID) graph.NodeID {
	if rng.Float64() >= cfg.PrefAttach {
		return scope[rng.Intn(len(scope))]
	}
	best := scope[rng.Intn(len(scope))]
	for i := 0; i < 2; i++ {
		c := scope[rng.Intn(len(scope))]
		if inDeg[c] > inDeg[best] || (inDeg[c] == inDeg[best] && c < best) {
			best = c
		}
	}
	return best
}

// boundedZipf samples integers in [min, max] with P(k) ∝ k^(−s), then
// shifts the distribution so its mean matches the requested mean by mixing
// with a second draw.
type boundedZipf struct {
	cdf []float64
	min int
}

func newBoundedZipf(s float64, min, max int, targetMean float64) *boundedZipf {
	z := &boundedZipf{min: min}
	weights := make([]float64, max-min+1)
	total := 0.0
	for k := min; k <= max; k++ {
		w := math.Pow(float64(k), -s)
		weights[k-min] = w
		total += w
	}
	mean := 0.0
	for k := min; k <= max; k++ {
		mean += float64(k) * weights[k-min] / total
	}
	// Raise the raw zipf mean toward the target by shifting probability
	// mass: blend with a uniform distribution over [min, ceil(2·target)]
	// until the mean matches. Solve the blend coefficient analytically.
	hi := int(math.Ceil(2 * targetMean))
	if hi > max {
		hi = max
	}
	uniMean := float64(min+hi) / 2
	alpha := 0.0
	if uniMean > mean {
		alpha = (targetMean - mean) / (uniMean - mean)
	}
	if alpha < 0 {
		alpha = 0
	}
	if alpha > 1 {
		alpha = 1
	}
	z.cdf = make([]float64, max-min+1)
	acc := 0.0
	for k := min; k <= max; k++ {
		p := (1 - alpha) * weights[k-min] / total
		if k <= hi {
			p += alpha / float64(hi-min+1)
		}
		acc += p
		z.cdf[k-min] = acc
	}
	return z
}

func (z *boundedZipf) sample(rng *rand.Rand) int {
	r := rng.Float64() * z.cdf[len(z.cdf)-1]
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return z.min + lo
}
