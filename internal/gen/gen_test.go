package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func smallConfig(seed int64) Config {
	return Config{Pages: 5000, Domains: 10, Seed: seed}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed produced different sizes: %d/%d vs %d/%d",
			a.Graph.NumNodes(), a.Graph.NumEdges(), b.Graph.NumNodes(), b.Graph.NumEdges())
	}
	for u := 0; u < a.Graph.NumNodes(); u++ {
		oa := a.Graph.OutNeighbors(graph.NodeID(u))
		ob := b.Graph.OutNeighbors(graph.NodeID(u))
		if len(oa) != len(ob) {
			t.Fatalf("node %d degree differs", u)
		}
		for k := range oa {
			if oa[k] != ob[k] {
				t.Fatalf("node %d adjacency differs", u)
			}
		}
	}
	c, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if c.Graph.NumEdges() == a.Graph.NumEdges() {
		t.Log("different seeds produced identical edge counts (possible but unlikely)")
	}
}

func TestDomainPartition(t *testing.T) {
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ds.NumDomains() != 10 {
		t.Fatalf("NumDomains = %d, want 10", ds.NumDomains())
	}
	total := 0
	for d := 0; d < ds.NumDomains(); d++ {
		size := ds.DomainSize(d)
		if size < 1 {
			t.Fatalf("domain %d empty", d)
		}
		total += size
		pages := ds.DomainPages(d)
		if len(pages) != size {
			t.Fatalf("domain %d: %d pages, size %d", d, len(pages), size)
		}
		for _, p := range pages {
			if int(ds.Domain[p]) != d {
				t.Fatalf("page %d labelled domain %d, listed under %d", p, ds.Domain[p], d)
			}
		}
	}
	if total != 5000 {
		t.Fatalf("domain sizes sum to %d, want 5000", total)
	}
	// Power-law head: the largest domain should dominate the smallest.
	if ds.DomainSize(0) < 3*ds.DomainSize(9) {
		t.Errorf("domain size skew too flat: first %d, last %d", ds.DomainSize(0), ds.DomainSize(9))
	}
}

func TestDegreeAndDanglingTargets(t *testing.T) {
	cfg := Config{Pages: 20000, Domains: 20, Seed: 4}
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	st := graph.ComputeStats(ds.Graph)
	// Mean out-degree should land in the paper's 3.8–8.7 band (dedup and
	// self-loop skipping shave a little off the target 5.5).
	if st.AvgOutDegree < 3.5 || st.AvgOutDegree > 8 {
		t.Errorf("AvgOutDegree = %v, want ≈5.5", st.AvgOutDegree)
	}
	// Dangling fraction ≈ 4 %.
	frac := float64(st.Dangling) / float64(st.Nodes)
	if frac < 0.02 || frac > 0.07 {
		t.Errorf("dangling fraction = %v, want ≈0.04", frac)
	}
	// Heavy-tailed in-degrees: the max should far exceed the mean.
	if st.MaxInDegree < 5*int(st.AvgOutDegree) {
		t.Errorf("MaxInDegree = %d: in-degree distribution too flat", st.MaxInDegree)
	}
}

func TestIntraDomainFraction(t *testing.T) {
	ds, err := Generate(Config{Pages: 20000, Domains: 10, IntraFraction: 0.85, Seed: 5})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	intra, total := 0, 0
	g := ds.Graph
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			total++
			if ds.Domain[u] == ds.Domain[v] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	// Scope fallbacks (tiny domain-topic pools) leak a few percent.
	if frac < 0.75 || frac > 0.95 {
		t.Errorf("intra-domain fraction = %v, want ≈0.85", frac)
	}
}

func TestTopicLabels(t *testing.T) {
	ds, err := Generate(Config{Pages: 8000, Domains: 8, Topics: 6, Seed: 6})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	counts := make([]int, 6)
	for _, tp := range ds.Topic {
		if int(tp) >= 6 {
			t.Fatalf("topic label %d out of range", tp)
		}
		counts[tp]++
	}
	for tp, c := range counts {
		if c == 0 {
			t.Errorf("topic %d has no pages", tp)
		}
		if got := len(ds.TopicPages(tp)); got != c {
			t.Errorf("TopicPages(%d) = %d pages, count %d", tp, got, c)
		}
	}
}

// TestTopicalLocality: linked pages share a topic more often than two
// random pages would.
func TestTopicalLocality(t *testing.T) {
	ds, err := Generate(Config{Pages: 20000, Domains: 10, Topics: 8, TopicAffinity: 0.6, Seed: 7})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := ds.Graph
	same, total := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.OutNeighbors(graph.NodeID(u)) {
			total++
			if ds.Topic[u] == ds.Topic[v] {
				same++
			}
		}
	}
	frac := float64(same) / float64(total)
	// Baseline for 8 random topics would be ≈ 0.125 plus domain-topic
	// correlation; affinity must push it well past that.
	if frac < 0.3 {
		t.Errorf("topical locality %v too weak", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Pages: 0},
		{Pages: 10, Domains: 20},
		{Pages: 100, IntraFraction: -0.5},
		{Pages: 100, MeanOutDegree: 0.2},
		{Pages: 100, DegreeExponent: 0.5},
		{Pages: 100, DanglingFraction: 0.9},
		{Pages: 100, Topics: -1},
		{Pages: 100, TopicAffinity: 2},
		{Pages: 100, PrefAttach: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestBoundedZipfMean(t *testing.T) {
	z := newBoundedZipf(2.3, 1, 100, 5.5)
	rng := newTestRand()
	sum := 0.0
	const draws = 200000
	for i := 0; i < draws; i++ {
		d := z.sample(rng)
		if d < 1 || d > 100 {
			t.Fatalf("sample %d outside [1,100]", d)
		}
		sum += float64(d)
	}
	mean := sum / draws
	if math.Abs(mean-5.5) > 0.5 {
		t.Errorf("zipf mean = %v, want ≈5.5", mean)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
