package gen

import (
	"fmt"
	"math/rand"
)

// TermConfig parameterizes synthetic page content: every page receives a
// bag of term ids drawn from a zipf-ish vocabulary with topical locality
// (pages of one topic share a vocabulary region), so keyword queries hit
// topically coherent page sets — what a localized search engine indexes.
type TermConfig struct {
	// VocabSize is the number of distinct terms. Default 5000.
	VocabSize int
	// MeanTerms is the mean number of terms per page. Default 8.
	MeanTerms int
	// TopicVocabFraction is the probability that a term is drawn from the
	// page's topic-specific vocabulary region rather than the global
	// vocabulary. Default 0.7.
	TopicVocabFraction float64
	// Seed drives the term sampling; it is independent of the graph seed,
	// so assigning terms never changes the generated graph.
	Seed int64
}

func (c *TermConfig) fill() error {
	if c.VocabSize == 0 {
		c.VocabSize = 5000
	}
	if c.VocabSize < 1 {
		return fmt.Errorf("gen: vocabulary size %d < 1", c.VocabSize)
	}
	if c.MeanTerms == 0 {
		c.MeanTerms = 8
	}
	if c.MeanTerms < 1 {
		return fmt.Errorf("gen: mean terms %d < 1", c.MeanTerms)
	}
	if c.TopicVocabFraction == 0 {
		c.TopicVocabFraction = 0.7
	}
	if c.TopicVocabFraction < 0 || c.TopicVocabFraction > 1 {
		return fmt.Errorf("gen: topic vocabulary fraction %v outside [0,1]", c.TopicVocabFraction)
	}
	return nil
}

// AssignTerms samples a term bag for every page of ds. The same
// (Dataset, TermConfig) pair always yields the same assignment. Returned
// as terms[page] = sorted distinct term ids.
func AssignTerms(ds *Dataset, cfg TermConfig) ([][]uint32, error) {
	if ds == nil || ds.Graph == nil {
		return nil, fmt.Errorf("gen: nil dataset")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	topics := 0
	for _, t := range ds.Topic {
		if int(t)+1 > topics {
			topics = int(t) + 1
		}
	}
	if topics == 0 {
		return nil, fmt.Errorf("gen: dataset has no topic labels")
	}
	// Each topic owns a contiguous vocabulary region.
	regionSize := cfg.VocabSize / topics
	if regionSize < 1 {
		regionSize = 1
	}
	// Zipf sampler over a region (favours low offsets → shared "head"
	// terms within a topic).
	zipf := newBoundedZipf(1.3, 1, regionSize, float64(regionSize)/4)
	globalZipf := newBoundedZipf(1.3, 1, cfg.VocabSize, float64(cfg.VocabSize)/4)

	n := ds.Graph.NumNodes()
	terms := make([][]uint32, n)
	for p := 0; p < n; p++ {
		k := 1 + rng.Intn(2*cfg.MeanTerms-1) // mean ≈ MeanTerms
		seen := make(map[uint32]struct{}, k)
		bag := make([]uint32, 0, k)
		topic := int(ds.Topic[p])
		for d := 0; d < k; d++ {
			var term uint32
			if rng.Float64() < cfg.TopicVocabFraction {
				off := zipf.sample(rng) - 1
				term = uint32((topic*regionSize + off) % cfg.VocabSize)
			} else {
				term = uint32(globalZipf.sample(rng) - 1)
			}
			if _, dup := seen[term]; dup {
				continue
			}
			seen[term] = struct{}{}
			bag = append(bag, term)
		}
		sortUint32(bag)
		terms[p] = bag
	}
	return terms, nil
}

func sortUint32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
