// Package kernel is the flat power-iteration substrate shared by the
// ranking engines: a one-time snapshot of any directed graph into frozen
// CSR slices, plus the pull-based sweep primitives the pagerank and core
// packages build their convergence loops on.
//
// The snapshot freezes three things the per-iteration hot loops would
// otherwise recompute through an interface seam:
//
//   - the in-adjacency (who contributes to each target), so an iteration
//     can PULL new scores instead of pushing into shared accumulators;
//   - the transition probability of every edge (weight over total
//     out-weight), so the inner loop performs zero divisions;
//   - the dangling set with per-node dangling weights, so the dangling
//     mass is a short dot product instead of a full interface scan.
//
// The pull formulation is what makes the parallel path cheap: each
// worker owns a disjoint output range of next, reads the immutable cur,
// and never touches another worker's slots — no private per-worker
// accumulators, no O(workers·n) reduction, no false sharing beyond the
// range boundaries. Because every next[v] is accumulated over v's full
// in-row in CSR order regardless of how targets are partitioned, the
// per-iteration iterate is bit-identical across worker counts; only the
// L1 delta (summed per part, then in part order) reassociates, which can
// shift the convergence test by at most the float error of the sum.
//
// Partitioning is by EDGE count, not node count: under power-law degree
// distributions node-balanced ranges degenerate (one worker owns all the
// hubs), while PartitionByEdges bounds every worker's per-iteration work
// by edges + nodes in its range.
package kernel

// Source is the view of a directed graph a snapshot is built from.
// pagerank.DirectedGraph satisfies it structurally; *graph.Graph
// satisfies both.
type Source interface {
	NumNodes() int
	OutNeighbors(u uint32) []uint32
	OutWeights(u uint32) []float64 // nil for unweighted graphs
	WeightOut(u uint32) float64
	Dangling(u uint32) bool
}

// FlatInSource is an optional Source extension for graphs that already
// materialize an exact in-adjacency CSR (*graph.Graph does). When
// InCSR reports ok, Snapshot aliases the returned slices instead of
// rebuilding the in-adjacency with two scatter passes — only the
// per-edge transition probabilities are computed, in one streaming
// pass. The source must only report ok for exact UNWEIGHTED rows:
// every edge carries probability 1/outdegree(src), no listed edge
// leaves a dangling state, and sources within a row appear in
// ascending order — so the aliased snapshot sweeps bit-identically to
// a rebuilt one. Weighted graphs (where a zero-total-weight state may
// still list edges) must report ok=false and take the generic path.
type FlatInSource interface {
	Source
	InCSR() (off []int64, src []uint32, ok bool)
}

// CSR is a frozen pull-oriented snapshot of a transition matrix: for
// each target v, the sources that contribute to it and the transition
// probability of each contributing edge. Immutable after Snapshot (or
// hand-assembly by the core package); safe for concurrent readers.
type CSR struct {
	// N is the number of states.
	N int
	// InOff[v]..InOff[v+1] indexes v's in-edges in InSrc/InProb.
	InOff []int64
	// InSrc[k] is the source of the k-th in-edge.
	InSrc []uint32
	// InProb[k] is the transition probability of the k-th in-edge:
	// weight(src→v) / WeightOut(src). Precomputed so sweeps never divide.
	InProb []float64
	// DanglingIdx lists the states whose mass redistributes along the
	// personalization vector each step. DanglingW carries each state's
	// dangling weight; nil means every listed state has weight 1 (the
	// plain-graph case). Fractional weights model states that are only
	// partially dangling, like the Λ super-node's collapsed external
	// dangling mass.
	DanglingIdx []uint32
	DanglingW   []float64

	// InvOut, when non-nil, marks a UNIFORM snapshot: every in-edge of
	// the CSR carries probability 1/outdegree(src) and InvOut[u] is that
	// reciprocal (0 for dangling u). Uniform snapshots support the
	// scaled sweep path — pre-multiply cur by InvOut once per iteration
	// and the per-edge work collapses to a bare gather-add, with no
	// per-edge probability load at all. InProb stays populated, so the
	// generic sweeps and the Gauss–Seidel loop work on either kind.
	InvOut []float64

	// Per-field pool provenance: an aliased snapshot borrows InOff/InSrc
	// from the source graph but pools the rest, so Release must return
	// exactly the fields that came from the package pools.
	poolOff, poolSrc, poolProb, poolDang, poolInv bool
}

// Snapshot freezes src into a pull CSR. When the source exposes an
// exact materialized in-adjacency (FlatInSource), the offsets and
// sources are aliased and only the per-edge transition probabilities
// are computed — one streaming pass instead of the generic two scatter
// passes. Otherwise it costs two passes over the out-adjacency
// (O(n+m)). Either way this is the only place the engines touch the
// graph through an interface; every subsequent sweep is pure slice
// arithmetic. The returned snapshot draws its scratch from the package
// pools — call Release when done to recycle it.
func Snapshot(src Source) *CSR {
	if f, ok := src.(FlatInSource); ok {
		if off, srcs, exact := f.InCSR(); exact {
			return snapshotAliased(f, off, srcs)
		}
	}
	n := src.NumNodes()
	off := GetOff(n + 1)
	for i := range off {
		off[i] = 0
	}
	dang := GetIDs(n)
	nd := 0
	// First pass: in-degree counts. Dangling nodes contribute no edges
	// (a weighted node with zero total out-weight may still list
	// neighbors; its rows are all-zero and handled as dangling mass).
	for u := 0; u < n; u++ {
		if src.Dangling(uint32(u)) {
			dang[nd] = uint32(u)
			nd++
			continue
		}
		for _, v := range src.OutNeighbors(uint32(u)) {
			off[v+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	m := off[n]
	srcs := GetIDs(int(m))
	prob := GetVec(int(m))
	cursor := GetOff(n)
	copy(cursor, off[:n])
	// Second pass: fill, with the per-source reciprocal computed once.
	for u := 0; u < n; u++ {
		if src.Dangling(uint32(u)) {
			continue
		}
		adj := src.OutNeighbors(uint32(u))
		ws := src.OutWeights(uint32(u))
		if ws == nil {
			p := 1.0 / float64(len(adj))
			for _, v := range adj {
				slot := cursor[v]
				srcs[slot] = uint32(u)
				prob[slot] = p
				cursor[v]++
			}
		} else {
			inv := 1.0 / src.WeightOut(uint32(u))
			for k, v := range adj {
				slot := cursor[v]
				srcs[slot] = uint32(u)
				prob[slot] = inv * ws[k]
				cursor[v]++
			}
		}
	}
	PutOff(cursor)
	c := &CSR{N: n, InOff: off, InSrc: srcs, InProb: prob,
		poolOff: true, poolSrc: true, poolProb: true}
	if nd > 0 {
		c.DanglingIdx, c.poolDang = dang[:nd], true
	} else {
		PutIDs(dang)
	}
	return c
}

// snapshotAliased builds the CSR around a source-owned in-adjacency:
// InOff and InSrc alias the graph's immutable storage, and a single
// streaming pass gathers each edge's precomputed source reciprocal
// into InProb. This skips the generic path's per-edge scatter work,
// which dominates one-shot Compute calls on large graphs.
func snapshotAliased(src FlatInSource, off []int64, srcs []uint32) *CSR {
	n := src.NumNodes()
	inv := GetVec(n)
	dang := GetIDs(n)
	nd := 0
	for u := 0; u < n; u++ {
		if src.Dangling(uint32(u)) {
			inv[u] = 0
			dang[nd] = uint32(u)
			nd++
		} else {
			inv[u] = 1.0 / src.WeightOut(uint32(u))
		}
	}
	prob := GetVec(len(srcs))
	for k, u := range srcs {
		prob[k] = inv[u]
	}
	c := &CSR{N: n, InOff: off, InSrc: srcs, InProb: prob, InvOut: inv,
		poolProb: true, poolInv: true}
	if nd > 0 {
		c.DanglingIdx, c.poolDang = dang[:nd], true
	} else {
		PutIDs(dang)
	}
	return c
}

// Release returns a pooled snapshot's slices to the package pools. The
// snapshot must not be used afterwards. No-op for hand-assembled CSRs.
func (c *CSR) Release() {
	if !c.poolOff && !c.poolSrc && !c.poolProb && !c.poolDang && !c.poolInv {
		return
	}
	if c.poolOff {
		PutOff(c.InOff)
	}
	if c.poolSrc {
		PutIDs(c.InSrc)
	}
	if c.poolProb {
		PutVec(c.InProb)
	}
	if c.poolDang {
		PutIDs(c.DanglingIdx)
	}
	if c.poolInv {
		PutVec(c.InvOut)
	}
	c.InOff, c.InSrc, c.InProb, c.InvOut = nil, nil, nil, nil
	c.DanglingIdx, c.DanglingW = nil, nil
	c.poolOff, c.poolSrc, c.poolProb, c.poolDang, c.poolInv = false, false, false, false, false
}

// DanglingMass returns the weighted score mass sitting on the dangling
// states of cur: Σ w_i·cur[i] over DanglingIdx.
//arlint:hot
func (c *CSR) DanglingMass(cur []float64) float64 {
	s := 0.0
	if c.DanglingW == nil {
		for _, u := range c.DanglingIdx {
			s += cur[u]
		}
	} else {
		for k, u := range c.DanglingIdx {
			s += c.DanglingW[k] * cur[u]
		}
	}
	return s
}

// SweepRange computes one pull iteration for targets [lo, hi):
//
//	next[v] = (1−eps)·p[v] + eps·danglingMass·d[v] + eps·Σ cur[src]·prob
//
// and returns the partial L1 delta Σ|next[v]−cur[v]| over the range.
// It reads only cur and writes only next[lo:hi], so disjoint ranges can
// run concurrently. The inner loop is pure slice arithmetic: no
// interface calls, no divisions, no bounds beyond the CSR row. Each
// row's dot product runs over four independent accumulators: a single
// running sum serializes on floating-point add latency (every += waits
// for the previous), which on gather-bound rows costs more than the
// memory traffic itself. The row split is fixed (positions mod 4), so
// the result does not depend on lo/hi and worker counts stay
// bit-identical.
//arlint:hot
func (c *CSR) SweepRange(next, cur, p, d []float64, lo, hi int, eps, danglingMass float64) float64 {
	base := 1 - eps
	jump := eps * danglingMass
	off := c.InOff
	delta := 0.0
	for v := lo; v < hi; v++ {
		row := c.InSrc[off[v]:off[v+1]]
		rp := c.InProb[off[v]:off[v+1]]
		rp = rp[:len(row)]
		var s0, s1, s2, s3 float64
		k := 0
		for ; k+4 <= len(row); k += 4 {
			s0 += cur[row[k]] * rp[k]
			s1 += cur[row[k+1]] * rp[k+1]
			s2 += cur[row[k+2]] * rp[k+2]
			s3 += cur[row[k+3]] * rp[k+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; k < len(row); k++ {
			s += cur[row[k]] * rp[k]
		}
		x := base*p[v] + jump*d[v] + eps*s
		next[v] = x
		d1 := x - cur[v]
		if d1 < 0 {
			d1 = -d1
		}
		delta += d1
	}
	return delta
}

// Sweep is SweepRange over all N targets.
//arlint:hot
func (c *CSR) Sweep(next, cur, p, d []float64, eps, danglingMass float64) float64 {
	return c.SweepRange(next, cur, p, d, 0, c.N, eps, danglingMass)
}

// Uniform reports whether every in-edge carries probability
// 1/outdegree(src), enabling the scaled sweep path.
func (c *CSR) Uniform() bool { return c.InvOut != nil }

// ScaleInto fills scaled[u] = cur[u]·InvOut[u] — the per-source factor
// of a uniform snapshot's pull sum, hoisted out of the per-edge loop.
// Each product is computed once here instead of once per out-edge, and
// the same double multiplies the same double, so a scaled sweep is
// bit-identical to the probability-carrying one. Only valid on Uniform
// snapshots.
//arlint:hot
func (c *CSR) ScaleInto(scaled, cur []float64) {
	inv := c.InvOut
	_ = scaled[len(inv)-1]
	for u, x := range inv {
		scaled[u] = cur[u] * x
	}
}

// SweepRangeScaled is SweepRange for a uniform snapshot with cur
// pre-scaled by ScaleInto: the per-edge work is a bare gather-add —
// no probability load, no multiply. cur is still needed for the L1
// delta. The four-accumulator split matches SweepRange's, so both
// paths produce bit-identical iterates.
//arlint:hot
func (c *CSR) SweepRangeScaled(next, scaled, cur, p, d []float64, lo, hi int, eps, danglingMass float64) float64 {
	base := 1 - eps
	jump := eps * danglingMass
	off, srcs := c.InOff, c.InSrc
	delta := 0.0
	k := off[lo]
	for v := lo; v < hi; v++ {
		end := off[v+1]
		var s0, s1, s2, s3 float64
		for ; k+4 <= end; k += 4 {
			s0 += scaled[srcs[k]]
			s1 += scaled[srcs[k+1]]
			s2 += scaled[srcs[k+2]]
			s3 += scaled[srcs[k+3]]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; k < end; k++ {
			s += scaled[srcs[k]]
		}
		x := base*p[v] + jump*d[v] + eps*s
		next[v] = x
		d1 := x - cur[v]
		if d1 < 0 {
			d1 = -d1
		}
		delta += d1
	}
	return delta
}

// SweepScaled is SweepRangeScaled over all N targets.
//arlint:hot
func (c *CSR) SweepScaled(next, scaled, cur, p, d []float64, eps, danglingMass float64) float64 {
	return c.SweepRangeScaled(next, scaled, cur, p, d, 0, c.N, eps, danglingMass)
}

// PartitionByEdges splits targets [0, n) into parts contiguous ranges of
// roughly equal sweep cost, costing each target its in-degree plus one
// (the constant per-node work). Node-count-balanced ranges degenerate
// under power-law in-degrees — one range inherits every hub — while the
// cumulative-cost walk here bounds each part near total/parts. Returns
// parts+1 ascending bounds; some trailing parts may be empty when
// parts > n.
func PartitionByEdges(off []int64, parts int) []int {
	n := len(off) - 1
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, parts+1)
	total := off[n] + int64(n)
	v := 0
	for w := 1; w < parts; w++ {
		target := total * int64(w) / int64(parts)
		for v < n && off[v]+int64(v) < target {
			v++
		}
		bounds[w] = v
	}
	bounds[parts] = n
	return bounds
}
