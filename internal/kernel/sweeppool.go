package kernel

import (
	"context"
	"sync"
)

// deltaPad is the stride, in float64 slots, between the per-worker
// delta accumulators of a SweepPool: 8 doubles = 64 bytes, one full
// cache line per worker. With a dense layout ([]float64 indexed by
// worker id) every worker's end-of-range store lands in the same line
// and the line ping-pongs between cores once per part per round —
// false sharing on exactly the slots that exist to keep workers
// independent. The padded layout gives each worker sole ownership of
// its line; only the coordinator reads across lines, once per round,
// after the barrier.
const deltaPad = 8

// sweepJob is one round's worth of work, broadcast to every pool
// worker: the frozen snapshot, the iteration vectors, and the shared
// partition bounds. scaled selects the kernel: nil runs the
// probability-carrying SweepRange, non-nil the gather-add
// SweepRangeScaled of a uniform snapshot.
type sweepJob struct {
	ctx               context.Context
	c                 *CSR
	next, scaled, cur []float64
	p, d              []float64
	bounds            []int
	eps, danglingMass float64
}

// sweepPart runs the job's range for worker w, or nothing when the
// round's context is already cancelled (the early-out half of the
// ParallelSweep contract the pool inherits).
func (job *sweepJob) sweepPart(w int) float64 {
	if job.ctx.Err() != nil {
		return 0 // cancelled: skip the range scan, the barrier still holds
	}
	lo, hi := job.bounds[w], job.bounds[w+1]
	if job.scaled != nil {
		return job.c.SweepRangeScaled(job.next, job.scaled, job.cur, job.p, job.d, lo, hi, job.eps, job.danglingMass)
	}
	return job.c.SweepRange(job.next, job.cur, job.p, job.d, lo, hi, job.eps, job.danglingMass)
}

// SweepPool is a persistent, round-barriered team of sweep workers. A
// convergence loop spawns it once, calls Sweep or SweepScaled once per
// iteration, and Closes it when done — amortizing goroutine creation
// across the whole run instead of paying one spawn+join per worker per
// round (the spawnloop pattern arlint flags). The calling goroutine
// participates as worker 0, so a pool of P parts keeps exactly P
// runnable goroutines and a single-part pool runs the sweep inline
// with no synchronization at all.
//
// Each round is a broadcast/join barrier: the coordinator hands the
// same job to every worker over its private buffered channel, sweeps
// part 0 itself, and waits for the team. Workers write their partial
// L1 deltas into cache-line-padded slots (deltaPad) of a pooled
// scratch vector; the coordinator sums the slots in part order after
// the barrier, so for a fixed partition the result is bit-identical
// to the sequential sweep's part-ordered reduction.
//
// Cancellation follows the same contract as the one-shot sweeps had:
// a cancelled context makes workers skip their range scan, leaving
// next stale — callers MUST check ctx.Err() after the round before
// trusting next or the returned delta.
//
// A SweepPool is NOT safe for concurrent rounds: one Sweep at a time.
type SweepPool struct {
	parts  int
	deltas []float64       // parts*deltaPad slots; worker w owns [w*deltaPad]
	jobs   []chan sweepJob // workers 1..parts-1, one buffered channel each
	wg     sync.WaitGroup
}

// NewSweepPool spawns a pool of parts sweep workers (parts-1
// goroutines plus the caller). Sweep and SweepScaled must then be
// called with bounds of exactly parts+1 entries — normally the value
// PartitionByEdges returned, whose part count the caller passes here.
func NewSweepPool(parts int) *SweepPool {
	if parts < 1 {
		parts = 1
	}
	sp := &SweepPool{parts: parts, deltas: GetVec(parts * deltaPad)}
	if parts > 1 {
		sp.jobs = make([]chan sweepJob, parts-1)
		for w := 1; w < parts; w++ {
			ch := make(chan sweepJob, 1)
			sp.jobs[w-1] = ch
			go sp.worker(w, ch)
		}
	}
	return sp
}

// Parts returns the pool's worker count (including the caller).
func (sp *SweepPool) Parts() int { return sp.parts }

// worker is the body of one persistent pool goroutine: sweep the
// round's part, publish the partial delta into the worker's padded
// slot, hit the barrier, sleep until the next round. The loop ends
// when Close closes the job channel.
func (sp *SweepPool) worker(w int, jobs <-chan sweepJob) {
	for job := range jobs {
		sp.deltas[w*deltaPad] = job.sweepPart(w)
		sp.wg.Done()
	}
}

// Sweep runs one pull iteration of c over the partition bounds (len
// parts+1, as produced by PartitionByEdges for the pool's part count)
// and returns the L1 delta summed in part order — bit-deterministic
// for a fixed partition. See the type comment for the cancellation
// contract.
func (sp *SweepPool) Sweep(ctx context.Context, c *CSR, next, cur, p, d []float64, eps, danglingMass float64, bounds []int) float64 {
	return sp.round(sweepJob{ctx: ctx, c: c, next: next, cur: cur, p: p, d: d,
		bounds: bounds, eps: eps, danglingMass: danglingMass})
}

// SweepScaled is Sweep on the scaled path of a uniform snapshot: the
// caller runs ScaleInto first; scaled is read-only during the round.
func (sp *SweepPool) SweepScaled(ctx context.Context, c *CSR, next, scaled, cur, p, d []float64, eps, danglingMass float64, bounds []int) float64 {
	return sp.round(sweepJob{ctx: ctx, c: c, next: next, scaled: scaled, cur: cur, p: p, d: d,
		bounds: bounds, eps: eps, danglingMass: danglingMass})
}

// round broadcasts job to the resident workers, sweeps part 0 on the
// calling goroutine, joins the barrier and reduces the padded delta
// slots in part order.
func (sp *SweepPool) round(job sweepJob) float64 {
	sp.wg.Add(len(sp.jobs))
	for _, ch := range sp.jobs {
		ch <- job
	}
	sp.deltas[0] = job.sweepPart(0)
	sp.wg.Wait()
	delta := 0.0
	for w := 0; w < sp.parts; w++ {
		delta += sp.deltas[w*deltaPad]
	}
	return delta
}

// Close stops the resident workers and recycles the pool's scratch.
// The pool must not be used afterwards. Close must not run
// concurrently with a round (the engines call it after the
// convergence loop exits).
func (sp *SweepPool) Close() {
	for _, ch := range sp.jobs {
		close(ch)
	}
	sp.jobs = nil
	PutVec(sp.deltas)
	sp.deltas = nil
}
