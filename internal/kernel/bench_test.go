package kernel

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"
)

// respawnSweep is the pre-SweepPool parallel sweep, kept here as the
// benchmark reference: one goroutine spawned and joined per part per
// round, partial deltas in adjacent slots of one array. The pooled
// sweep must beat this on per-round overhead; the benchjson CI gate
// holds the pair's ratio against the cached baseline. (Test files are
// not analyzed by arlint, so the pattern can live here without a
// suppression; the same shape is pinned as a finding by the spawnloop
// and falseshare golden fixtures.)
func respawnSweep(ctx context.Context, c *CSR, next, cur, p, d []float64, eps, danglingMass float64, bounds []int, partDeltas []float64) float64 {
	parts := len(bounds) - 1
	var wg sync.WaitGroup
	for w := 0; w < parts; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			partDeltas[w] = c.SweepRange(next, cur, p, d, bounds[w], bounds[w+1], eps, danglingMass)
		}(w)
	}
	wg.Wait()
	delta := 0.0
	for _, pd := range partDeltas[:parts] {
		delta += pd
	}
	return delta
}

// benchSweepSetup freezes a random graph and sizes the iteration
// vectors and partition for the given part count.
func benchSweepSetup(b *testing.B, n, parts int) (*CSR, []float64, []float64, []float64, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(b, rng, n, false)
	c := Snapshot(g)
	cur := make([]float64, c.N)
	for i := range cur {
		cur[i] = rng.Float64()
	}
	next := make([]float64, c.N)
	p := uniformVec(c.N)
	bounds := PartitionByEdges(c.InOff, parts)
	return c, next, cur, p, bounds
}

// BenchmarkSweepPooled measures one round of the persistent pool:
// resident workers, a broadcast/join barrier, padded delta slots. The
// pool is spawned once outside the timer, as the engines do.
func BenchmarkSweepPooled(b *testing.B) {
	for _, parts := range []int{1, 4} {
		b.Run(partsLabel(parts), func(b *testing.B) {
			c, next, cur, p, bounds := benchSweepSetup(b, 4000, parts)
			pool := NewSweepPool(len(bounds) - 1)
			defer pool.Close()
			ctx := context.Background()
			dm := c.DanglingMass(cur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Sweep(ctx, c, next, cur, p, p, 0.85, dm, bounds)
			}
		})
	}
}

// BenchmarkSweepRespawn measures the same round paying the old
// per-round costs: parts goroutine spawns, WaitGroup churn, adjacent
// delta slots.
func BenchmarkSweepRespawn(b *testing.B) {
	for _, parts := range []int{1, 4} {
		b.Run(partsLabel(parts), func(b *testing.B) {
			c, next, cur, p, bounds := benchSweepSetup(b, 4000, parts)
			partDeltas := make([]float64, len(bounds)-1)
			ctx := context.Background()
			dm := c.DanglingMass(cur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				respawnSweep(ctx, c, next, cur, p, p, 0.85, dm, bounds, partDeltas)
			}
		})
	}
}

func partsLabel(parts int) string {
	return "parts=" + strconv.Itoa(parts)
}
