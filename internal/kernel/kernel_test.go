package kernel

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// pushReference runs one push-based iteration (the formulation the
// engines used before this package existed) as an independent oracle.
func pushReference(g *graph.Graph, cur, p, d []float64, eps float64) []float64 {
	n := g.NumNodes()
	next := make([]float64, n)
	danglingMass := 0.0
	for u := 0; u < n; u++ {
		if g.Dangling(uint32(u)) {
			danglingMass += cur[u]
		}
	}
	for v := 0; v < n; v++ {
		next[v] = (1-eps)*p[v] + eps*danglingMass*d[v]
	}
	for u := 0; u < n; u++ {
		adj := g.OutNeighbors(uint32(u))
		if len(adj) == 0 || g.Dangling(uint32(u)) {
			continue
		}
		ws := g.OutWeights(uint32(u))
		if ws == nil {
			share := eps * cur[u] / float64(len(adj))
			for _, v := range adj {
				next[v] += share
			}
		} else {
			scale := eps * cur[u] / g.WeightOut(uint32(u))
			for k, v := range adj {
				next[v] += scale * ws[k]
			}
		}
	}
	return next
}

func randomGraph(t testing.TB, rng *rand.Rand, n int, weighted bool) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		if rng.Intn(10) == 0 {
			continue // dangling
		}
		deg := 1 + rng.Intn(6)
		for e := 0; e < deg; e++ {
			v := rng.Intn(n)
			if v == u {
				continue
			}
			if weighted {
				b.AddWeightedEdge(uint32(u), uint32(v), 0.2+rng.Float64())
			} else {
				b.AddEdge(uint32(u), uint32(v))
			}
		}
	}
	b.EnsureNode(uint32(n - 1))
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func uniformVec(n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 1.0 / float64(n)
	}
	return p
}

// TestSnapshotSweepMatchesPush: a pull sweep over the snapshot computes
// the same next vector as the push oracle (up to float reassociation),
// on unweighted and weighted graphs with dangling nodes.
func TestSnapshotSweepMatchesPush(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(t, rng, 60+trial*17, trial%2 == 1)
		n := g.NumNodes()
		c := Snapshot(g)
		cur := make([]float64, n)
		for i := range cur {
			cur[i] = rng.Float64()
		}
		p := uniformVec(n)
		want := pushReference(g, cur, p, p, 0.85)
		next := make([]float64, n)
		c.Sweep(next, cur, p, p, 0.85, c.DanglingMass(cur))
		for v := 0; v < n; v++ {
			if math.Abs(next[v]-want[v]) > 1e-12 {
				t.Fatalf("trial %d: next[%d] = %v, push reference %v", trial, v, next[v], want[v])
			}
		}
		c.Release()
	}
}

// TestSweepDelta: the returned partial delta is the L1 change over the
// swept range.
func TestSweepDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(t, rng, 80, false)
	n := g.NumNodes()
	c := Snapshot(g)
	defer c.Release()
	cur := uniformVec(n)
	next := make([]float64, n)
	delta := c.Sweep(next, cur, cur, cur, 0.85, c.DanglingMass(cur))
	want := 0.0
	for i := range next {
		want += math.Abs(next[i] - cur[i])
	}
	if math.Abs(delta-want) > 1e-12 {
		t.Fatalf("delta %v, recomputed %v", delta, want)
	}
}

// TestSweepPoolBitIdentical: the iterate produced by a SweepPool round
// is bit-identical to the sequential Sweep for every worker count —
// each target's in-row is accumulated whole, in CSR order, no matter
// how targets are partitioned.
func TestSweepPoolBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(t, rng, 300, true)
	n := g.NumNodes()
	c := Snapshot(g)
	defer c.Release()
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = rng.Float64()
	}
	p := uniformVec(n)
	dm := c.DanglingMass(cur)
	ref := make([]float64, n)
	refDelta := c.Sweep(ref, cur, p, p, 0.85, dm)
	for _, workers := range []int{1, 2, 3, 8} {
		bounds := PartitionByEdges(c.InOff, workers)
		pool := NewSweepPool(len(bounds) - 1)
		next := make([]float64, n)
		delta := pool.Sweep(context.Background(), c, next, cur, p, p, 0.85, dm, bounds)
		pool.Close()
		for v := range next {
			if next[v] != ref[v] {
				t.Fatalf("workers=%d: next[%d] = %v differs from sequential %v", workers, v, next[v], ref[v])
			}
		}
		if workers == 1 && delta != refDelta {
			t.Fatalf("single-part delta %v differs from sequential %v", delta, refDelta)
		}
	}
}

// TestSweepPoolReusedRounds: the point of the pool is running MANY
// rounds over the same resident workers. Drive a short power iteration
// through a pool and check every iterate against the sequential sweep
// — bit-identical at each round, with the same cur/next swap.
func TestSweepPoolReusedRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomGraph(t, rng, 250, true)
	n := g.NumNodes()
	c := Snapshot(g)
	defer c.Release()
	p := uniformVec(n)
	bounds := PartitionByEdges(c.InOff, 4)
	pool := NewSweepPool(len(bounds) - 1)
	defer pool.Close()
	if pool.Parts() != len(bounds)-1 {
		t.Fatalf("pool has %d parts, want %d", pool.Parts(), len(bounds)-1)
	}
	cur, next := append([]float64(nil), p...), make([]float64, n)
	seqCur, seqNext := append([]float64(nil), p...), make([]float64, n)
	for round := 0; round < 12; round++ {
		dm := c.DanglingMass(cur)
		got := pool.Sweep(context.Background(), c, next, cur, p, p, 0.85, dm, bounds)
		want := c.Sweep(seqNext, seqCur, p, p, 0.85, c.DanglingMass(seqCur))
		for v := range next {
			if next[v] != seqNext[v] {
				t.Fatalf("round %d: next[%d] = %v differs from sequential %v", round, v, next[v], seqNext[v])
			}
		}
		_ = got
		_ = want
		cur, next = next, cur
		seqCur, seqNext = seqNext, seqCur
	}
}

// TestSweepPoolCancelled: a cancelled context leaves the round without
// scanning; the caller-side contract is that next is then untrusted,
// which the engines enforce with a post-barrier ctx check.
func TestSweepPoolCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomGraph(t, rng, 50, false)
	c := Snapshot(g)
	defer c.Release()
	n := g.NumNodes()
	cur := uniformVec(n)
	next := make([]float64, n)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bounds := PartitionByEdges(c.InOff, 4)
	pool := NewSweepPool(len(bounds) - 1)
	defer pool.Close()
	pool.Sweep(ctx, c, next, cur, cur, cur, 0.85, 0, bounds)
	for _, x := range next {
		if x != 0 {
			t.Fatal("cancelled sweep wrote into next")
		}
	}
}

// TestPartitionByEdges: bounds are monotone, cover [0,n], and every
// part's edge+node cost stays near the ideal share even when one hub
// holds most in-edges.
func TestPartitionByEdges(t *testing.T) {
	// A star: node 0 has n-1 in-edges, everyone else ≤ 1.
	n := 1000
	b := graph.NewBuilder(n)
	for u := 1; u < n; u++ {
		b.AddEdge(uint32(u), 0)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	c := Snapshot(g)
	defer c.Release()
	for _, parts := range []int{1, 2, 4, 7, 16} {
		bounds := PartitionByEdges(c.InOff, parts)
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("parts=%d: bounds do not cover [0,%d]: %v", parts, n, bounds)
		}
		total := c.InOff[n] + int64(n)
		ideal := total / int64(len(bounds)-1)
		for w := 0; w+1 < len(bounds); w++ {
			if bounds[w] > bounds[w+1] {
				t.Fatalf("parts=%d: bounds not monotone: %v", parts, bounds)
			}
			cost := c.InOff[bounds[w+1]] - c.InOff[bounds[w]] + int64(bounds[w+1]-bounds[w])
			// The hub's cost is indivisible, so one part may exceed the
			// ideal by the hub's whole in-degree; everything else must
			// stay within ideal + max single-node cost.
			if cost > ideal+int64(n) {
				t.Fatalf("parts=%d part %d: cost %d far above ideal %d", parts, w, cost, ideal)
			}
		}
	}
	// parts > n clamps.
	small := Snapshot(graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}}))
	defer small.Release()
	bounds := PartitionByEdges(small.InOff, 16)
	if len(bounds) != 4 || bounds[3] != 3 {
		t.Fatalf("clamped bounds wrong: %v", bounds)
	}
}

// TestDanglingWeights: fractional dangling weights scale the mass.
func TestDanglingWeights(t *testing.T) {
	c := &CSR{N: 3, InOff: []int64{0, 0, 0, 0}, DanglingIdx: []uint32{0, 2}, DanglingW: []float64{1, 0.25}}
	cur := []float64{0.4, 0.4, 0.2}
	if got, want := c.DanglingMass(cur), 0.4+0.25*0.2; math.Abs(got-want) > 1e-15 {
		t.Fatalf("DanglingMass = %v, want %v", got, want)
	}
}

// bareSource hides a graph's FlatInSource/FlatOutSource methods so the
// snapshots are forced down their generic (non-aliasing) build paths.
type bareSource struct{ Source }

// TestPushSnapshotMatchesOracle: one push-kernel sweep equals the
// push oracle (up to per-edge rounding differences — the kernel
// multiplies by a precomputed reciprocal where the oracle divides) on
// unweighted and weighted graphs, through both the aliased and the
// generic snapshot builds.
func TestPushSnapshotMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(t, rng, 70+trial*13, trial%2 == 1)
		n := g.NumNodes()
		for _, src := range []Source{g, bareSource{g}} {
			c := PushSnapshot(src)
			cur := make([]float64, n)
			for i := range cur {
				cur[i] = rng.Float64()
			}
			p := uniformVec(n)
			want := pushReference(g, cur, p, p, 0.85)
			next := make([]float64, n)
			c.Sweep(next, cur, p, p, 0.85, c.DanglingMass(cur))
			for v := 0; v < n; v++ {
				if math.Abs(next[v]-want[v]) > 1e-12 {
					t.Fatalf("trial %d: next[%d] = %v, oracle %v", trial, v, next[v], want[v])
				}
			}
			c.Release()
		}
	}
}

// TestPushSweepDelta: the push sweep's return value is the L1 change.
func TestPushSweepDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := randomGraph(t, rng, 90, false)
	n := g.NumNodes()
	c := PushSnapshot(g)
	defer c.Release()
	cur := uniformVec(n)
	next := make([]float64, n)
	delta := c.Sweep(next, cur, cur, cur, 0.85, c.DanglingMass(cur))
	want := 0.0
	for i := range next {
		want += math.Abs(next[i] - cur[i])
	}
	if math.Abs(delta-want) > 1e-12 {
		t.Fatalf("delta %v, recomputed %v", delta, want)
	}
}

// TestScaledSweepBitIdentical: on a uniform snapshot the scaled sweep
// (pre-multiplied gather-add) produces the BIT-identical iterate and
// delta of the probability-carrying sweep — the same doubles multiply
// in the same order, only hoisted out of the per-edge loop.
func TestScaledSweepBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := randomGraph(t, rng, 240, false)
	n := g.NumNodes()
	c := Snapshot(g)
	defer c.Release()
	if !c.Uniform() {
		t.Fatal("unweighted graph snapshot is not uniform")
	}
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = rng.Float64()
	}
	p := uniformVec(n)
	dm := c.DanglingMass(cur)
	ref := make([]float64, n)
	refDelta := c.Sweep(ref, cur, p, p, 0.85, dm)
	scaled := make([]float64, n)
	c.ScaleInto(scaled, cur)
	next := make([]float64, n)
	delta := c.SweepScaled(next, scaled, cur, p, p, 0.85, dm)
	if delta != refDelta {
		t.Fatalf("scaled delta %v differs from probability-path delta %v", delta, refDelta)
	}
	for v := 0; v < n; v++ {
		if next[v] != ref[v] {
			t.Fatalf("next[%d] = %v not bit-identical to %v", v, next[v], ref[v])
		}
	}
	// The pooled scaled sweep preserves the same identity.
	bounds := PartitionByEdges(c.InOff, 3)
	pool := NewSweepPool(len(bounds) - 1)
	defer pool.Close()
	par := make([]float64, n)
	pool.SweepScaled(context.Background(), c, par, scaled, cur, p, p, 0.85, dm, bounds)
	for v := 0; v < n; v++ {
		if par[v] != ref[v] {
			t.Fatalf("pooled scaled next[%d] = %v not bit-identical to %v", v, par[v], ref[v])
		}
	}
}

// TestSnapshotAliasMatchesGeneric: the aliased in-snapshot of an
// unweighted graph sweeps bit-identically to the generic rebuild (same
// row order, same probabilities), so engines may take either path.
func TestSnapshotAliasMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := randomGraph(t, rng, 150, false)
	n := g.NumNodes()
	aliased := Snapshot(g)
	defer aliased.Release()
	generic := Snapshot(bareSource{g})
	defer generic.Release()
	cur := make([]float64, n)
	for i := range cur {
		cur[i] = rng.Float64()
	}
	p := uniformVec(n)
	a := make([]float64, n)
	b := make([]float64, n)
	da := aliased.Sweep(a, cur, p, p, 0.85, aliased.DanglingMass(cur))
	db := generic.Sweep(b, cur, p, p, 0.85, generic.DanglingMass(cur))
	if da != db {
		t.Fatalf("aliased delta %v differs from generic %v", da, db)
	}
	for v := 0; v < n; v++ {
		if a[v] != b[v] {
			t.Fatalf("next[%d]: aliased %v, generic %v", v, a[v], b[v])
		}
	}
}

// TestPoolRoundTrip: a recycled buffer is reused when large enough and
// the requested length is honored.
func TestPoolRoundTrip(t *testing.T) {
	v := GetVec(128)
	if len(v) != 128 {
		t.Fatalf("GetVec(128) has length %d", len(v))
	}
	PutVec(v)
	w := GetVec(64)
	if len(w) != 64 {
		t.Fatalf("GetVec(64) has length %d", len(w))
	}
	PutVec(w)
	ids := GetIDs(16)
	if len(ids) != 16 {
		t.Fatalf("GetIDs(16) has length %d", len(ids))
	}
	PutIDs(ids)
	off := GetOff(9)
	if len(off) != 9 {
		t.Fatalf("GetOff(9) has length %d", len(off))
	}
	PutOff(off)
	// Zero-capacity buffers are dropped, not pooled.
	PutVec(nil)
	PutIDs(nil)
	PutOff(nil)
}

// TestSnapshotWeightedZeroOut: a weighted node with zero total
// out-weight is dangling; its listed edges must not leave garbage slots
// in the CSR.
func TestSnapshotWeightedZeroOut(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 0) // zero-weight edge: node 0 is dangling
	b.AddWeightedEdge(1, 2, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !g.Dangling(0) {
		t.Skip("builder normalizes zero-weight edges; nothing to test")
	}
	c := Snapshot(g)
	defer c.Release()
	if c.InOff[3] != 1 {
		t.Fatalf("want 1 in-edge (1→2), got %d", c.InOff[3])
	}
	if len(c.DanglingIdx) != 2 || c.DanglingIdx[0] != 0 || c.DanglingIdx[1] != 2 {
		t.Fatalf("dangling set wrong: %v", c.DanglingIdx)
	}
}
