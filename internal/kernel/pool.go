package kernel

import (
	"math/bits"
	"sync"
)

// Scratch-buffer pools. The power iterations burn three kinds of
// transient slices — float vectors (cur/next/personalization/deltas),
// uint32 id lists and int64 offset arrays — at every Compute/Run call.
// A multi-subgraph serving workload (RankManyCtx) repeats those
// allocations per chain; drawing them from sync.Pools instead makes the
// steady-state cost of a chain a handful of small allocations. The
// pools are per-P cached by the runtime, so concurrent workers scale
// without a shared lock.
//
// Buffers are segregated by power-of-two size class: class c holds
// buffers with cap in [2^c, 2^(c+1)), and Get(n) draws only from the
// class whose every member can satisfy n. Without the segregation, a
// workload mixing graph sizes (e.g. RankMany over small subgraphs
// followed by a Compute over the global graph) has Get pop a too-small
// buffer, discard it and allocate — a miss per call for as long as the
// small buffers last. Misses allocate with cap rounded up to the class
// boundary so the replacement files back into the class it was drawn
// from (at most 2× the requested memory).
//
// Each class pool stores *[]T headers, and the pool type keeps a side
// pool of empty *[]T boxes: Put takes a spare box, parks the slice
// header in it and hands the pointer to the class pool; Get unwraps the
// header and returns the box. The boxes shuttle between the two pools,
// so a steady-state Get/Put cycle performs zero allocations — without
// the pairing, every Put would heap-allocate a fresh box for the
// escaping &v.
//
// Contract: Get* return a slice of the requested length with UNDEFINED
// contents — callers must fully initialize it. Put* hands the buffer
// back; the caller must not retain any alias. Never Put a slice that is
// (or aliases) a value returned to user code.

// maxClass bounds the pooled size classes; buffers of 2^maxClass
// elements or more bypass the pools entirely (for float64 that is
// 2 GiB — far past any graph this repository handles).
const maxClass = 28

type slicePool[T any] struct {
	classes [maxClass]sync.Pool // class c: *[]T with cap in [2^c, 2^(c+1))
	boxes   sync.Pool           // spare empty *[]T boxes
}

func (p *slicePool[T]) get(n int) []T {
	if n == 0 {
		return nil
	}
	// Smallest c with 2^c >= n: every buffer in class c can hold n.
	c := bits.Len(uint(n - 1))
	if c >= maxClass {
		return make([]T, n)
	}
	if bp, ok := p.classes[c].Get().(*[]T); ok {
		v := *bp
		*bp = nil
		p.boxes.Put(bp)
		return v[:n]
	}
	return make([]T, n, 1<<c)
}

func (p *slicePool[T]) put(v []T) {
	c := cap(v)
	if c == 0 {
		return
	}
	f := bits.Len(uint(c)) - 1 // 2^f <= cap < 2^(f+1)
	if f >= maxClass {
		return
	}
	bp, ok := p.boxes.Get().(*[]T)
	if !ok {
		bp = new([]T)
	}
	*bp = v[:0]
	p.classes[f].Put(bp)
}

var (
	vecs slicePool[float64]
	ids  slicePool[uint32]
	offs slicePool[int64]
)

// GetVec returns a float64 scratch slice of length n, undefined contents.
func GetVec(n int) []float64 { return vecs.get(n) }

// PutVec recycles a slice obtained from GetVec.
func PutVec(v []float64) { vecs.put(v) }

// GetIDs returns a uint32 scratch slice of length n, undefined contents.
func GetIDs(n int) []uint32 { return ids.get(n) }

// PutIDs recycles a slice obtained from GetIDs.
func PutIDs(v []uint32) { ids.put(v) }

// GetOff returns an int64 scratch slice of length n, undefined contents.
func GetOff(n int) []int64 { return offs.get(n) }

// PutOff recycles a slice obtained from GetOff.
func PutOff(v []int64) { offs.put(v) }
