package kernel

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// The aliasing contract over a memory-mapped graph: Snapshot and
// PushSnapshot treat an mmap-backed CSR exactly like a heap CSR — the
// unweighted fast paths alias the mapped slices directly — and every
// sweep over the mapped snapshot is bit-identical to the heap one.

func mappedTwin(t *testing.T, g *graph.Graph) *graph.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.v2")
	if err := graph.SaveFile(path, g); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	m, err := graph.MmapFile(path)
	if err != nil {
		t.Fatalf("MmapFile: %v", err)
	}
	t.Cleanup(func() {
		if err := m.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return m
}

func randomKernelGraph(t *testing.T, seed int64, n, m int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(uint32(rng.Intn(n)), uint32(rng.Intn(n)))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotOverMmapGraph(t *testing.T) {
	g := randomKernelGraph(t, 31, 200, 1200)
	m := mappedTwin(t, g)

	heap := Snapshot(g)
	defer heap.Release()
	mapped := Snapshot(m)
	defer mapped.Release()

	if heap.N != mapped.N || len(heap.InSrc) != len(mapped.InSrc) {
		t.Fatalf("snapshot shapes differ: N %d/%d, edges %d/%d", heap.N, mapped.N, len(heap.InSrc), len(mapped.InSrc))
	}
	for i := range heap.InOff {
		if heap.InOff[i] != mapped.InOff[i] {
			t.Fatalf("InOff[%d] differs", i)
		}
	}
	for k := range heap.InSrc {
		if heap.InSrc[k] != mapped.InSrc[k] {
			t.Fatalf("InSrc[%d] differs", k)
		}
		if heap.InProb[k] != mapped.InProb[k] {
			t.Fatalf("InProb[%d] differs", k)
		}
	}
	if (heap.InvOut == nil) != (mapped.InvOut == nil) {
		t.Fatal("aliasing fast path taken for one snapshot but not the other")
	}

	n := g.NumNodes()
	cur := make([]float64, n)
	p := make([]float64, n)
	for i := range cur {
		cur[i] = float64(i+1) / float64(n)
		p[i] = 1.0 / float64(n)
	}
	next1 := make([]float64, n)
	next2 := make([]float64, n)
	dm := heap.DanglingMass(cur)
	if dm2 := mapped.DanglingMass(cur); dm != dm2 {
		t.Fatalf("dangling mass differs: %v vs %v", dm, dm2)
	}
	heap.Sweep(next1, cur, p, p, 0.85, dm)
	mapped.Sweep(next2, cur, p, p, 0.85, dm)
	for i := range next1 {
		if next1[i] != next2[i] {
			t.Fatalf("sweep result differs at %d: %v vs %v", i, next1[i], next2[i])
		}
	}
}

func TestPushSnapshotOverMmapGraph(t *testing.T) {
	g := randomKernelGraph(t, 37, 150, 900)
	m := mappedTwin(t, g)

	heap := PushSnapshot(g)
	defer heap.Release()
	mapped := PushSnapshot(m)
	defer mapped.Release()

	if heap.N != mapped.N || len(heap.OutDst) != len(mapped.OutDst) {
		t.Fatalf("push snapshot shapes differ")
	}
	for i := range heap.OutOff {
		if heap.OutOff[i] != mapped.OutOff[i] {
			t.Fatalf("OutOff[%d] differs", i)
		}
	}
	for k := range heap.OutDst {
		if heap.OutDst[k] != mapped.OutDst[k] {
			t.Fatalf("OutDst[%d] differs", k)
		}
	}

	n := g.NumNodes()
	cur := make([]float64, n)
	p := make([]float64, n)
	for i := range cur {
		cur[i] = float64(n-i) / float64(n)
		p[i] = 1.0 / float64(n)
	}
	next1 := make([]float64, n)
	next2 := make([]float64, n)
	dm := heap.DanglingMass(cur)
	heap.Sweep(next1, cur, p, p, 0.85, dm)
	mapped.Sweep(next2, cur, p, p, 0.85, dm)
	for i := range next1 {
		if next1[i] != next2[i] {
			t.Fatalf("push sweep differs at %d: %v vs %v", i, next1[i], next2[i])
		}
	}
}
