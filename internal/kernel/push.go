package kernel

// PushCSR is the out-adjacency mirror of CSR, used by the SEQUENTIAL
// power-iteration paths. Push and pull visit the same edges, but their
// random accesses land differently in the pipeline: a pull sweep's
// per-edge gather sits on the accumulation chain's critical path (the
// add cannot retire until the load returns), while a push sweep's
// random access is a read-modify-write to next whose store the store
// buffer absorbs — independent across edges, so the out-of-order core
// overlaps them freely. Measured on web-scale graphs the push sweep is
// about twice as fast per iteration single-threaded. Pull remains the
// only shape that parallelizes without shared accumulators (each worker
// owns a disjoint output range), so the engines pair a PushCSR
// sequential path with a CSR parallel path.
type PushCSR struct {
	// N is the number of states.
	N int
	// OutOff[u]..OutOff[u+1] indexes u's out-edges in OutDst/OutProb.
	OutOff []int64
	// OutDst[k] is the target of the k-th out-edge.
	OutDst []uint32
	// OutProb[k] is the transition probability of the k-th out-edge.
	// nil for uniform snapshots — every edge then carries 1/outdeg(src),
	// folded into InvOut instead of stored per edge.
	OutProb []float64
	// InvOut[u] is 1/outdeg(u) (0 for dangling u) on uniform snapshots,
	// nil when OutProb carries per-edge probabilities.
	InvOut []float64
	// DanglingIdx lists the states whose mass redistributes along the
	// dangling distribution each step (always weight 1 here; fractional
	// dangling weights only occur on the hand-assembled pull chains).
	DanglingIdx []uint32

	poolOff, poolDst, poolProb, poolInv, poolDang bool
}

// FlatOutSource is the optional Source extension mirroring FlatInSource
// for the push side: OutCSR must only report ok for exact UNWEIGHTED
// rows (every edge carries probability 1/outdegree and dangling states
// list no edges), letting PushSnapshot alias the graph's storage.
type FlatOutSource interface {
	Source
	OutCSR() (off []int64, dst []uint32, ok bool)
}

// PushSnapshot freezes src into a push CSR. Sources exposing an exact
// materialized out-adjacency (FlatOutSource) are aliased — only the
// per-source reciprocals and the dangling list are computed. The
// generic fallback copies the rows (one streaming pass, no scatter —
// the out-adjacency is already grouped by source).
func PushSnapshot(src Source) *PushCSR {
	n := src.NumNodes()
	if f, ok := src.(FlatOutSource); ok {
		if off, dst, exact := f.OutCSR(); exact {
			c := &PushCSR{N: n, OutOff: off, OutDst: dst}
			c.fillUniform(src)
			return c
		}
	}
	off := GetOff(n + 1)
	off[0] = 0
	m := 0
	for u := 0; u < n; u++ {
		if !src.Dangling(uint32(u)) {
			m += len(src.OutNeighbors(uint32(u)))
		}
		off[u+1] = int64(m)
	}
	dst := GetIDs(m)
	c := &PushCSR{N: n, OutOff: off, OutDst: dst, poolOff: true, poolDst: true}
	weighted := false
	for u := 0; u < n && !weighted; u++ {
		weighted = src.OutWeights(uint32(u)) != nil
	}
	if weighted {
		prob := GetVec(m)
		for u := 0; u < n; u++ {
			if src.Dangling(uint32(u)) {
				continue
			}
			adj := src.OutNeighbors(uint32(u))
			ws := src.OutWeights(uint32(u))
			inv := 1.0 / src.WeightOut(uint32(u))
			base := off[u]
			for k := range adj {
				dst[base+int64(k)] = adj[k]
				prob[base+int64(k)] = inv * ws[k]
			}
		}
		c.OutProb, c.poolProb = prob, true
		dang := GetIDs(n)
		nd := 0
		for u := 0; u < n; u++ {
			if src.Dangling(uint32(u)) {
				dang[nd] = uint32(u)
				nd++
			}
		}
		if nd > 0 {
			c.DanglingIdx, c.poolDang = dang[:nd], true
		} else {
			PutIDs(dang)
		}
		return c
	}
	for u := 0; u < n; u++ {
		if src.Dangling(uint32(u)) {
			continue
		}
		copy(dst[off[u]:off[u+1]], src.OutNeighbors(uint32(u)))
	}
	c.fillUniform(src)
	return c
}

// fillUniform computes the per-source reciprocals and the dangling list
// for a uniform (unweighted) push snapshot.
func (c *PushCSR) fillUniform(src Source) {
	n := c.N
	inv := GetVec(n)
	dang := GetIDs(n)
	nd := 0
	for u := 0; u < n; u++ {
		if src.Dangling(uint32(u)) {
			inv[u] = 0
			dang[nd] = uint32(u)
			nd++
		} else {
			inv[u] = 1.0 / src.WeightOut(uint32(u))
		}
	}
	c.InvOut, c.poolInv = inv, true
	if nd > 0 {
		c.DanglingIdx, c.poolDang = dang[:nd], true
	} else {
		PutIDs(dang)
	}
}

// Release returns a pooled snapshot's slices to the package pools. The
// snapshot must not be used afterwards.
func (c *PushCSR) Release() {
	if c.poolOff {
		PutOff(c.OutOff)
	}
	if c.poolDst {
		PutIDs(c.OutDst)
	}
	if c.poolProb {
		PutVec(c.OutProb)
	}
	if c.poolInv {
		PutVec(c.InvOut)
	}
	if c.poolDang {
		PutIDs(c.DanglingIdx)
	}
	c.OutOff, c.OutDst, c.OutProb, c.InvOut, c.DanglingIdx = nil, nil, nil, nil, nil
	c.poolOff, c.poolDst, c.poolProb, c.poolInv, c.poolDang = false, false, false, false, false
}

// DanglingMass returns the score mass sitting on the dangling states.
//
//arlint:hot
func (c *PushCSR) DanglingMass(cur []float64) float64 {
	s := 0.0
	for _, u := range c.DanglingIdx {
		s += cur[u]
	}
	return s
}

// Sweep computes one push iteration over all states:
//
//	next[v] = (1−eps)·p[v] + eps·danglingMass·d[v] + eps·Σ cur[src]·prob
//
// in three passes — initialize next from the jump terms (streaming),
// push every source's scaled score along its out-row (the random
// stores), then accumulate the L1 delta (streaming) — and returns the
// delta. Zero interface calls and zero divisions anywhere; sources
// with no mass to move (dangling, or score exactly 0) skip their row.
//
//arlint:hot
func (c *PushCSR) Sweep(next, cur, p, d []float64, eps, danglingMass float64) float64 {
	base := 1 - eps
	jump := eps * danglingMass
	n := c.N
	for v := 0; v < n; v++ {
		next[v] = base*p[v] + jump*d[v]
	}
	off, dst := c.OutOff, c.OutDst
	if c.OutProb == nil {
		inv := c.InvOut
		for u := 0; u < n; u++ {
			su := eps * cur[u] * inv[u]
			if su == 0 {
				continue
			}
			end := off[u+1]
			for k := off[u]; k < end; k++ {
				next[dst[k]] += su
			}
		}
	} else {
		prob := c.OutProb
		for u := 0; u < n; u++ {
			su := eps * cur[u]
			if su == 0 {
				continue
			}
			end := off[u+1]
			for k := off[u]; k < end; k++ {
				next[dst[k]] += su * prob[k]
			}
		}
	}
	delta := 0.0
	for v := 0; v < n; v++ {
		d1 := next[v] - cur[v]
		if d1 < 0 {
			d1 = -d1
		}
		delta += d1
	}
	return delta
}
