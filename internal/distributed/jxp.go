// Package distributed implements the decentralized ranking systems the
// paper positions itself against: JXP (Parreira et al., VLDB 2006), where
// autonomous peers refine global PageRank estimates by meeting and
// exchanging scores, and ServerRank (Wang & DeWitt, VLDB 2004), where
// per-server local rankings are combined with a server-level ranking.
//
// Both are built on the same Λ-collapse machinery as the paper's
// algorithms: a JXP peer's "world node" is exactly an extended-local-graph
// chain whose external weight vector E starts uniform (ApproxRank's
// assumption) and is progressively replaced by the score estimates learned
// in meetings — meeting everyone enough times recovers IdealRank, which is
// the intuition behind JXP's convergence to true PageRank.
package distributed

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
)

// Peer is one autonomous participant in a JXP network. It holds a local
// subgraph of the global graph, knows the global page count and the
// out-degrees along its boundary (JXP's stated assumptions), and maintains
// score estimates for its local pages plus everything it has learned about
// external pages from meetings.
type Peer struct {
	// Name identifies the peer in diagnostics.
	Name string

	sub    *graph.Subgraph
	scores []float64 // current estimates for local pages (global scale)
	world  float64   // current estimate of total external score

	// learned[gid] is the most recent score estimate received for an
	// external page gid during a meeting.
	learned map[graph.NodeID]float64

	cfg core.Config
}

// NewPeer creates a peer owning the given local pages of global. Its
// initial state is the ApproxRank estimate (uniform external weights) —
// what a peer can compute before meeting anyone. NewPeer is NewPeerCtx
// with context.Background().
func NewPeer(name string, global *graph.Graph, local []graph.NodeID, cfg core.Config) (*Peer, error) {
	return NewPeerCtx(context.Background(), name, global, local, cfg)
}

// NewPeerCtx is NewPeer under a context; cancelling ctx aborts the peer's
// initial random walk.
func NewPeerCtx(ctx context.Context, name string, global *graph.Graph, local []graph.NodeID, cfg core.Config) (*Peer, error) {
	sub, err := graph.NewSubgraph(global, local)
	if err != nil {
		return nil, fmt.Errorf("distributed: peer %s: %w", name, err)
	}
	p := &Peer{
		Name:    name,
		sub:     sub,
		learned: make(map[graph.NodeID]float64),
		cfg:     cfg,
	}
	if err := p.recompute(ctx); err != nil {
		return nil, err
	}
	return p, nil
}

// Subgraph returns the peer's local subgraph.
func (p *Peer) Subgraph() *graph.Subgraph { return p.sub }

// Scores returns the peer's current estimates of the global PageRank of
// its local pages, in subgraph-local order. The slice aliases internal
// state and must not be modified.
func (p *Peer) Scores() []float64 { return p.scores }

// WorldScore returns the peer's estimate of the total external score.
func (p *Peer) WorldScore() float64 { return p.world }

// KnownExternal returns how many external pages the peer has learned
// scores for.
func (p *Peer) KnownExternal() int { return len(p.learned) }

// Estimate returns the peer's current estimate for a global page: its own
// computation for local pages, learned values for known external pages,
// and 0 (unknown) otherwise.
func (p *Peer) Estimate(gid graph.NodeID) (float64, bool) {
	if li, ok := p.sub.LocalID(gid); ok {
		return p.scores[li], true
	}
	s, ok := p.learned[gid]
	return s, ok
}

// recompute rebuilds the peer's extended chain from its current knowledge
// and re-runs the random walk under ctx. External pages with learned
// scores keep them; the unknown remainder of the world's mass is spread
// uniformly — with nothing learned this is exactly ApproxRank, and with
// everything learned exactly (true scores) it is IdealRank.
func (p *Peer) recompute(ctx context.Context) error {
	n := p.sub.Global.NumNodes()
	ext := make([]float64, n)
	if p.scores == nil {
		// First computation: nothing learned and no world estimate yet;
		// weight externals uniformly (pure ApproxRank).
		for gid := 0; gid < n; gid++ {
			id := graph.NodeID(gid)
			if _, local := p.sub.LocalID(id); !local {
				ext[gid] = 1
			}
		}
	} else {
		knownMass := 0.0
		for gid, s := range p.learned {
			ext[gid] = s
			knownMass += s
		}
		if unknown := p.sub.External() - len(p.learned); unknown > 0 {
			// The world holds p.world total mass (estimated); what is not
			// attributed to known pages is spread uniformly. Keep a floor
			// so the vector stays positive even if learned mass
			// temporarily exceeds the world estimate.
			remaining := p.world - knownMass
			if remaining < 1e-12 {
				remaining = 1e-12
			}
			share := remaining / float64(unknown)
			for gid := 0; gid < n; gid++ {
				id := graph.NodeID(gid)
				if _, local := p.sub.LocalID(id); local {
					continue
				}
				if _, known := p.learned[id]; known {
					continue
				}
				ext[gid] = share
			}
		}
	}
	chain, err := core.NewChainWithExternalScores(p.sub, ext)
	if err != nil {
		return fmt.Errorf("distributed: peer %s: %w", p.Name, err)
	}
	res, err := chain.RunCtx(ctx, p.cfg)
	if err != nil {
		return fmt.Errorf("distributed: peer %s: %w", p.Name, err)
	}
	p.scores = res.Scores
	p.world = res.Lambda
	return nil
}

// Meet performs a JXP meeting: the two peers exchange their current local
// score estimates, absorb what the other knows about pages they do not
// hold, and recompute their local walks. Meetings are symmetric. Meet is
// MeetCtx with context.Background().
func Meet(a, b *Peer) error {
	return MeetCtx(context.Background(), a, b)
}

// MeetCtx is Meet under a context: cancelling ctx aborts the two
// post-exchange walks. The knowledge exchange itself still happens (it is
// cheap and keeps the meeting symmetric); a cancelled meeting leaves both
// peers with fresher knowledge but possibly stale scores, exactly the
// state an interrupted gossip round leaves a real JXP peer in.
func MeetCtx(ctx context.Context, a, b *Peer) error {
	if a == nil || b == nil {
		return fmt.Errorf("distributed: nil peer in meeting")
	}
	if a.sub.Global != b.sub.Global {
		return fmt.Errorf("distributed: peers %s and %s live in different global graphs", a.Name, b.Name)
	}
	// Snapshot both sides before either absorbs anything, so the exchange
	// is order-independent.
	fromB := exportKnowledge(b)
	fromA := exportKnowledge(a)
	absorb(a, fromB)
	absorb(b, fromA)
	if err := a.recompute(ctx); err != nil {
		return err
	}
	return b.recompute(ctx)
}

// exportKnowledge collects what a peer can tell others: authoritative
// estimates for its own pages, plus gossip it has learned. Own pages are
// marked authoritative so they overwrite stale gossip at the receiver.
type knowledge struct {
	gid           graph.NodeID
	score         float64
	authoritative bool
}

func exportKnowledge(p *Peer) []knowledge {
	out := make([]knowledge, 0, p.sub.N()+len(p.learned))
	for li, gid := range p.sub.Local {
		out = append(out, knowledge{gid, p.scores[li], true})
	}
	for gid, s := range p.learned {
		out = append(out, knowledge{gid, s, false})
	}
	return out
}

func absorb(p *Peer, in []knowledge) {
	for _, k := range in {
		if _, local := p.sub.LocalID(k.gid); local {
			continue // the peer's own computation wins for its pages
		}
		if k.authoritative {
			p.learned[k.gid] = k.score
			continue
		}
		if _, seen := p.learned[k.gid]; !seen {
			p.learned[k.gid] = k.score // gossip only fills gaps
		}
	}
}

// Network is a set of JXP peers over one global graph.
type Network struct {
	Peers []*Peer
	rng   *rand.Rand
}

// NewNetwork partitions assigns to peers (one subgraph each; they may
// overlap) and initializes every peer. It is NewNetworkCtx with
// context.Background().
func NewNetwork(global *graph.Graph, assignments map[string][]graph.NodeID, cfg core.Config, seed int64) (*Network, error) {
	return NewNetworkCtx(context.Background(), global, assignments, cfg, seed)
}

// NewNetworkCtx is NewNetwork under a context; cancellation is checked
// between peer initializations and inside each peer's initial walk.
func NewNetworkCtx(ctx context.Context, global *graph.Graph, assignments map[string][]graph.NodeID, cfg core.Config, seed int64) (*Network, error) {
	if len(assignments) < 2 {
		return nil, fmt.Errorf("distributed: a network needs at least 2 peers")
	}
	names := make([]string, 0, len(assignments))
	for name := range assignments {
		names = append(names, name)
	}
	sortStrings(names)
	nw := &Network{rng: rand.New(rand.NewSource(seed))}
	for _, name := range names {
		p, err := NewPeerCtx(ctx, name, global, assignments[name], cfg)
		if err != nil {
			return nil, err
		}
		nw.Peers = append(nw.Peers, p)
	}
	return nw, nil
}

// Round performs one JXP round: every peer meets one uniformly chosen
// other peer. Returns the number of meetings held. It is RoundCtx with
// context.Background().
func (nw *Network) Round() (int, error) {
	return nw.RoundCtx(context.Background())
}

// RoundCtx is Round under a context. Cancellation is checked before each
// meeting (and inside the meetings' walks); an aborted round reports how
// many meetings completed, and the meetings already held keep their
// effect — JXP peers gossip asynchronously, so a partial round is a valid
// network state.
func (nw *Network) RoundCtx(ctx context.Context) (int, error) {
	meetings := 0
	for i, p := range nw.Peers {
		if err := ctx.Err(); err != nil {
			return meetings, fmt.Errorf("distributed: round aborted after %d meetings: %w", meetings, err)
		}
		j := nw.rng.Intn(len(nw.Peers) - 1)
		if j >= i {
			j++
		}
		if err := MeetCtx(ctx, p, nw.Peers[j]); err != nil {
			return meetings, err
		}
		meetings++
	}
	return meetings, nil
}

// MaxError returns the largest L1 distance between any peer's local
// estimates and the given global truth (restricted to that peer's pages).
// It is the convergence measure of the JXP experiments.
func (nw *Network) MaxError(truth []float64) (float64, error) {
	worst := 0.0
	for _, p := range nw.Peers {
		if len(truth) != p.sub.Global.NumNodes() {
			return 0, fmt.Errorf("distributed: truth vector has length %d, want %d",
				len(truth), p.sub.Global.NumNodes())
		}
		d := 0.0
		for li, gid := range p.sub.Local {
			diff := p.scores[li] - truth[gid]
			if diff < 0 {
				diff = -diff
			}
			d += diff
		}
		if d > worst {
			worst = d
		}
	}
	return worst, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
