package distributed

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/pagerank"
)

// testWorld generates a small domain-structured global graph and its true
// PageRank.
func testWorld(t testing.TB, pages, domains int) (*gen.Dataset, []float64) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Pages: pages, Domains: domains, Seed: 13})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pr, err := pagerank.Compute(ds.Graph, pagerank.Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	return ds, pr.Scores
}

// domainAssignments gives every peer one domain (a disjoint full cover).
func domainAssignments(ds *gen.Dataset) map[string][]graph.NodeID {
	out := make(map[string][]graph.NodeID, ds.NumDomains())
	for d := 0; d < ds.NumDomains(); d++ {
		out[ds.DomainNames[d]] = ds.DomainPages(d)
	}
	return out
}

func TestPeerInitialStateIsApproxRank(t *testing.T) {
	ds, _ := testWorld(t, 4000, 6)
	cfg := core.Config{Tolerance: 1e-10}
	p, err := NewPeer("p0", ds.Graph, ds.DomainPages(0), cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	sub, err := graph.NewSubgraph(ds.Graph, ds.DomainPages(0))
	if err != nil {
		t.Fatalf("NewSubgraph: %v", err)
	}
	ap, err := core.ApproxRank(sub, cfg)
	if err != nil {
		t.Fatalf("ApproxRank: %v", err)
	}
	for i := range ap.Scores {
		if math.Abs(p.Scores()[i]-ap.Scores[i]) > 1e-12 {
			t.Fatalf("initial peer score %d = %v, ApproxRank %v", i, p.Scores()[i], ap.Scores[i])
		}
	}
	if p.KnownExternal() != 0 {
		t.Fatalf("fresh peer knows %d external pages", p.KnownExternal())
	}
}

// TestJXPConvergence: with peers covering the graph disjointly, meeting
// rounds must drive every peer's error toward zero — the JXP convergence
// claim the paper cites.
func TestJXPConvergence(t *testing.T) {
	ds, truth := testWorld(t, 4000, 6)
	cfg := core.Config{Tolerance: 1e-9}
	nw, err := NewNetwork(ds.Graph, domainAssignments(ds), cfg, 99)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	initial, err := nw.MaxError(truth)
	if err != nil {
		t.Fatalf("MaxError: %v", err)
	}
	var final float64
	for round := 0; round < 8; round++ {
		if _, err := nw.Round(); err != nil {
			t.Fatalf("Round %d: %v", round, err)
		}
		final, err = nw.MaxError(truth)
		if err != nil {
			t.Fatalf("MaxError: %v", err)
		}
	}
	if final > initial/5 {
		t.Errorf("JXP error did not shrink enough: initial %v, after 8 rounds %v", initial, final)
	}
	// Every peer should have learned most of the external world (6 peers
	// covering the graph, 8 rounds of gossip).
	for _, p := range nw.Peers {
		if p.KnownExternal() < p.Subgraph().External()/2 {
			t.Errorf("peer %s knows only %d of %d external pages",
				p.Name, p.KnownExternal(), p.Subgraph().External())
		}
	}
}

// TestMeetSymmetric: a meeting teaches both sides and is snapshot-based
// (A's pre-meeting scores are what B learns, not A's post-meeting ones).
func TestMeetSymmetric(t *testing.T) {
	ds, _ := testWorld(t, 3000, 4)
	cfg := core.Config{Tolerance: 1e-9}
	a, err := NewPeer("a", ds.Graph, ds.DomainPages(0), cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	b, err := NewPeer("b", ds.Graph, ds.DomainPages(1), cfg)
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	aScoreBefore := append([]float64(nil), a.Scores()...)
	if err := Meet(a, b); err != nil {
		t.Fatalf("Meet: %v", err)
	}
	if a.KnownExternal() < b.Subgraph().N() {
		t.Errorf("a learned %d pages, want at least %d", a.KnownExternal(), b.Subgraph().N())
	}
	if b.KnownExternal() < a.Subgraph().N() {
		t.Errorf("b learned %d pages, want at least %d", b.KnownExternal(), a.Subgraph().N())
	}
	// b's learned value for a's first page equals a's PRE-meeting score.
	gid := a.Subgraph().Local[0]
	got, ok := b.Estimate(gid)
	if !ok || got != aScoreBefore[0] {
		t.Errorf("b's estimate for %d = %v,%v; want pre-meeting %v", gid, got, ok, aScoreBefore[0])
	}
}

// TestEstimatePriority: a peer's own page estimates win over gossip.
func TestEstimatePriority(t *testing.T) {
	ds, _ := testWorld(t, 3000, 4)
	cfg := core.Config{Tolerance: 1e-9}
	a, _ := NewPeer("a", ds.Graph, ds.DomainPages(0), cfg)
	own := a.Subgraph().Local[0]
	absorb(a, []knowledge{{own, 123.0, true}})
	got, _ := a.Estimate(own)
	if got == 123.0 {
		t.Error("peer accepted external opinion about its own page")
	}
}

func TestNetworkValidation(t *testing.T) {
	ds, _ := testWorld(t, 2000, 4)
	cfg := core.Config{}
	if _, err := NewNetwork(ds.Graph, map[string][]graph.NodeID{"solo": ds.DomainPages(0)}, cfg, 1); err == nil {
		t.Error("single-peer network accepted")
	}
	if err := Meet(nil, nil); err == nil {
		t.Error("nil meeting accepted")
	}
	other, _ := gen.Generate(gen.Config{Pages: 500, Domains: 2, Seed: 5})
	a, _ := NewPeer("a", ds.Graph, ds.DomainPages(0), cfg)
	b, _ := NewPeer("b", other.Graph, other.DomainPages(0), cfg)
	if err := Meet(a, b); err == nil {
		t.Error("cross-graph meeting accepted")
	}
	nw, err := NewNetwork(ds.Graph, domainAssignments(ds), cfg, 1)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	if _, err := nw.MaxError(make([]float64, 3)); err == nil {
		t.Error("short truth vector accepted")
	}
}

// TestServerRankBeatsLocalOrdering: combining local PageRank with server
// importance must track the global ranking better than a flat local
// PageRank glued across servers (ServerRank's reason to exist), measured
// over the whole page population.
func TestServerRankBeatsLocalOrdering(t *testing.T) {
	ds, truth := testWorld(t, 6000, 8)
	serverOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	res, err := ServerRank(ds.Graph, serverOf, ds.NumDomains(), ServerRankConfig{Tolerance: 1e-9})
	if err != nil {
		t.Fatalf("ServerRank: %v", err)
	}
	sum := 0.0
	for _, s := range res.Scores {
		if s < 0 {
			t.Fatal("negative combined score")
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("combined scores sum to %v", sum)
	}

	// Flat baseline: local PageRank per server without server weighting —
	// i.e. the combined vector with uniform server scores.
	flat := make([]float64, len(res.Scores))
	for p := range flat {
		s := serverOf(graph.NodeID(p))
		if res.ServerScores[s] > 0 {
			flat[p] = res.Scores[p] / res.ServerScores[s] / float64(ds.NumDomains())
		}
	}
	srFr, err := metrics.FootruleScores(truth, res.Scores)
	if err != nil {
		t.Fatalf("Footrule: %v", err)
	}
	flatFr, err := metrics.FootruleScores(truth, flat)
	if err != nil {
		t.Fatalf("Footrule: %v", err)
	}
	if srFr >= flatFr {
		t.Errorf("ServerRank footrule %v not better than unweighted local %v", srFr, flatFr)
	}
}

func TestServerRankValidation(t *testing.T) {
	ds, _ := testWorld(t, 2000, 4)
	serverOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }
	if _, err := ServerRank(nil, serverOf, 4, ServerRankConfig{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := ServerRank(ds.Graph, serverOf, 1, ServerRankConfig{}); err == nil {
		t.Error("single server accepted")
	}
	if _, err := ServerRank(ds.Graph, func(graph.NodeID) int { return 7 }, 4, ServerRankConfig{}); err == nil {
		t.Error("out-of-range server accepted")
	}
	if _, err := ServerRank(ds.Graph, func(graph.NodeID) int { return 0 }, 4, ServerRankConfig{}); err == nil {
		t.Error("empty servers accepted")
	}
}

// TestServerRankIsolatedServers: with no inter-server links every server
// gets equal importance.
func TestServerRankIsolatedServers(t *testing.T) {
	b := graph.NewBuilder(6)
	// Two disconnected triangles.
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := ServerRank(g, func(p graph.NodeID) int { return int(p) / 3 }, 2, ServerRankConfig{})
	if err != nil {
		t.Fatalf("ServerRank: %v", err)
	}
	if math.Abs(res.ServerScores[0]-0.5) > 1e-12 || math.Abs(res.ServerScores[1]-0.5) > 1e-12 {
		t.Fatalf("isolated servers scored %v", res.ServerScores)
	}
}
