package distributed

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// countdownContext flips Err to context.Canceled after n calls, landing
// cancellations at exact points in a round without timing dependence (the
// network's loops and the walks underneath all poll ctx.Err()).
type countdownContext struct {
	context.Context
	left int
}

func (c *countdownContext) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func TestRoundCtxPreCancelled(t *testing.T) {
	ds, _ := testWorld(t, 2000, 4)
	nw, err := NewNetwork(ds.Graph, domainAssignments(ds), core.Config{}, 17)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	meetings, err := nw.RoundCtx(ctx)
	if err == nil {
		t.Fatal("cancelled round completed")
	}
	if meetings != 0 {
		t.Errorf("%d meetings happened under a pre-cancelled context", meetings)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "round aborted after 0 meetings") {
		t.Errorf("error %q does not report the meetings completed", err)
	}
}

func TestRoundCtxAbortsBetweenMeetings(t *testing.T) {
	ds, _ := testWorld(t, 2000, 4)
	nw, err := NewNetwork(ds.Graph, domainAssignments(ds), core.Config{}, 17)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	// A full round is len(Peers) meetings, each consuming one pre-meeting
	// check plus the walks' own periodic checks. A budget of one means the
	// first meeting's walk is cancelled; the round must surface that error
	// rather than pressing on to the remaining peers.
	meetings, err := nw.RoundCtx(&countdownContext{Context: context.Background(), left: 1})
	if err == nil {
		t.Fatal("cancelled round completed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if meetings >= len(nw.Peers) {
		t.Errorf("round ran all %d meetings despite cancellation", meetings)
	}
	// The peers still hold servable scores from before the round: a
	// cancelled meeting may refresh knowledge but never corrupts state.
	for _, p := range nw.Peers {
		if len(p.Scores()) != p.Subgraph().N() {
			t.Errorf("peer %s left with %d scores for %d pages", p.Name, len(p.Scores()), p.Subgraph().N())
		}
	}
}

func TestRoundCtxBackgroundMatchesRound(t *testing.T) {
	ds, truth := testWorld(t, 2000, 4)
	mk := func() *Network {
		nw, err := NewNetwork(ds.Graph, domainAssignments(ds), core.Config{}, 23)
		if err != nil {
			t.Fatalf("NewNetwork: %v", err)
		}
		return nw
	}
	plain, withCtx := mk(), mk()
	for r := 0; r < 3; r++ {
		mp, err := plain.Round()
		if err != nil {
			t.Fatalf("Round: %v", err)
		}
		mc, err := withCtx.RoundCtx(context.Background())
		if err != nil {
			t.Fatalf("RoundCtx: %v", err)
		}
		if mp != mc {
			t.Fatalf("round %d: %d vs %d meetings", r, mp, mc)
		}
	}
	ep, err := plain.MaxError(truth)
	if err != nil {
		t.Fatalf("MaxError: %v", err)
	}
	ec, err := withCtx.MaxError(truth)
	if err != nil {
		t.Fatalf("MaxError: %v", err)
	}
	// Knowledge absorption accumulates floats in map order, so even two
	// identical Round() runs differ in the last ulps; the contexts must
	// agree to well within the convergence the peers have reached.
	if diff := ep - ec; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("networks diverged: max error %v vs %v", ep, ec)
	}
}

func TestServerRankCtxCancelled(t *testing.T) {
	ds, _ := testWorld(t, 2000, 4)
	serverOf := func(p graph.NodeID) int { return int(ds.Domain[p]) }

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ServerRankCtx(ctx, ds.Graph, serverOf, ds.NumDomains(), ServerRankConfig{})
	if err == nil || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}

	// Mid-run: the first server's local PageRank consumes the budget, so
	// the cancellation surfaces partway through the per-server stage — and
	// no partial combination leaks out.
	res, err = ServerRankCtx(&countdownContext{Context: context.Background(), left: 2},
		ds.Graph, serverOf, ds.NumDomains(), ServerRankConfig{})
	if err == nil || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and an error", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}
