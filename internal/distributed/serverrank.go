package distributed

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/pagerank"
)

// ServerRankConfig configures the ServerRank combination (Wang & DeWitt,
// VLDB 2004). The zero value selects the customary walk parameters.
type ServerRankConfig struct {
	Epsilon       float64
	Tolerance     float64
	MaxIterations int
}

func (c ServerRankConfig) options() pagerank.Options {
	return pagerank.Options{Epsilon: c.Epsilon, Tolerance: c.Tolerance, MaxIterations: c.MaxIterations}
}

// ServerRankResult carries the combined estimate plus its two layers.
type ServerRankResult struct {
	// Scores[p] estimates the global PageRank of page p: the page's local
	// PageRank within its server, scaled by its server's ServerRank.
	Scores []float64
	// ServerScores[s] is the PageRank of server s in the server-level
	// graph (weighted by inter-server link counts).
	ServerScores []float64
	// LocalIterations sums the local PageRank iterations over servers;
	// ServerIterations counts the server-graph iterations.
	LocalIterations  int
	ServerIterations int
}

// ServerRank implements the distributed ranking of Wang & DeWitt: each
// server computes a local PageRank over its own pages using intra-server
// links only; the inter-server links induce a weighted server-level graph
// whose PageRank measures server importance; a page's global estimate is
// localPR(page) · serverRank(server). serverOf assigns every page to a
// server 0..numServers−1. ServerRank is ServerRankCtx with
// context.Background().
func ServerRank(g *graph.Graph, serverOf func(graph.NodeID) int, numServers int, cfg ServerRankConfig) (*ServerRankResult, error) {
	return ServerRankCtx(context.Background(), g, serverOf, numServers, cfg)
}

// ServerRankCtx is ServerRank under a context. Cancellation is checked
// between per-server local PageRank runs and inside every walk; there are
// no partial results — an aborted combination returns only the error.
func ServerRankCtx(ctx context.Context, g *graph.Graph, serverOf func(graph.NodeID) int, numServers int, cfg ServerRankConfig) (*ServerRankResult, error) {
	if g == nil {
		return nil, fmt.Errorf("distributed: nil graph")
	}
	if numServers < 2 {
		return nil, fmt.Errorf("distributed: need at least 2 servers, got %d", numServers)
	}
	n := g.NumNodes()
	server := make([]int, n)
	pagesOf := make([][]graph.NodeID, numServers)
	for p := 0; p < n; p++ {
		s := serverOf(graph.NodeID(p))
		if s < 0 || s >= numServers {
			return nil, fmt.Errorf("distributed: page %d assigned to server %d outside [0,%d)", p, s, numServers)
		}
		server[p] = s
		pagesOf[s] = append(pagesOf[s], graph.NodeID(p))
	}
	for s, pages := range pagesOf {
		if len(pages) == 0 {
			return nil, fmt.Errorf("distributed: server %d has no pages", s)
		}
	}

	res := &ServerRankResult{Scores: make([]float64, n)}

	// Layer 1: local PageRank per server over intra-server links.
	localScore := make([]float64, n)
	for s, pages := range pagesOf {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("distributed: server rank cancelled before server %d: %w", s, err)
		}
		pos := make(map[graph.NodeID]uint32, len(pages))
		for i, p := range pages {
			pos[p] = uint32(i)
		}
		b := graph.NewBuilder(len(pages))
		for i, p := range pages {
			for _, v := range g.OutNeighbors(p) {
				if server[v] == s {
					b.AddEdge(uint32(i), pos[v])
				}
			}
		}
		lg, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("distributed: server %d local graph: %w", s, err)
		}
		pr, err := pagerank.ComputeCtx(ctx, lg, cfg.options())
		if err != nil {
			return nil, fmt.Errorf("distributed: server %d local PageRank: %w", s, err)
		}
		res.LocalIterations += pr.Iterations
		for i, p := range pages {
			localScore[p] = pr.Scores[i]
		}
	}

	// Layer 2: ServerRank on the server-level graph; each inter-server
	// hyperlink contributes weight 1 to its server pair.
	sb := graph.NewBuilder(numServers)
	interLinks := 0
	for p := 0; p < n; p++ {
		for _, v := range g.OutNeighbors(graph.NodeID(p)) {
			if server[p] != server[v] {
				sb.AddWeightedEdge(uint32(server[p]), uint32(server[v]), 1)
				interLinks++
			}
		}
	}
	if interLinks == 0 {
		// Isolated servers: all equally important.
		res.ServerScores = make([]float64, numServers)
		for s := range res.ServerScores {
			res.ServerScores[s] = 1.0 / float64(numServers)
		}
	} else {
		sg, err := sb.Build()
		if err != nil {
			return nil, fmt.Errorf("distributed: server graph: %w", err)
		}
		spr, err := pagerank.ComputeCtx(ctx, sg, cfg.options())
		if err != nil {
			return nil, fmt.Errorf("distributed: server PageRank: %w", err)
		}
		res.ServerScores = spr.Scores
		res.ServerIterations = spr.Iterations
	}

	// Combine: page estimate = local share · server importance. The
	// result is a probability distribution over all pages.
	for p := 0; p < n; p++ {
		res.Scores[p] = localScore[p] * res.ServerScores[server[p]]
	}
	return res, nil
}
