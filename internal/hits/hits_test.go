package hits

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestBipartiteClosedForm: k hub pages each link to the same m authority
// pages. The fixpoint gives every hub 1/k of the hub mass and every
// authority 1/m of the authority mass.
func TestBipartiteClosedForm(t *testing.T) {
	k, m := 3, 4
	b := graph.NewBuilder(k + m)
	for h := 0; h < k; h++ {
		for a := 0; a < m; a++ {
			b.AddEdge(graph.NodeID(h), graph.NodeID(k+a))
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Compute(g, Config{Tolerance: 1e-14})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for h := 0; h < k; h++ {
		if math.Abs(res.Hubs[h]-1.0/float64(k)) > 1e-10 {
			t.Fatalf("hub %d = %v, want %v", h, res.Hubs[h], 1.0/float64(k))
		}
		if res.Authorities[h] > 1e-12 {
			t.Fatalf("pure hub %d has authority %v", h, res.Authorities[h])
		}
	}
	for a := 0; a < m; a++ {
		if math.Abs(res.Authorities[k+a]-1.0/float64(m)) > 1e-10 {
			t.Fatalf("authority %d = %v, want %v", a, res.Authorities[k+a], 1.0/float64(m))
		}
		if res.Hubs[k+a] > 1e-12 {
			t.Fatalf("pure authority %d has hub score %v", a, res.Hubs[k+a])
		}
	}
}

// TestMoreEndorsedWins: an authority with more hub endorsements outranks
// one with fewer.
func TestMoreEndorsedWins(t *testing.T) {
	// Hubs 0,1,2 all endorse 3; only hub 0 endorses 4.
	g := graph.MustFromEdges(5, [][2]graph.NodeID{
		{0, 3}, {1, 3}, {2, 3}, {0, 4},
	})
	res, err := Compute(g, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !(res.Authorities[3] > res.Authorities[4]) {
		t.Fatalf("authorities = %v: 3 should beat 4", res.Authorities)
	}
	// Hub 0 endorses both the strong and the weak authority; hubs 1,2
	// endorse only the strong one. Kleinberg's fixpoint rewards pointing
	// at high authorities, and hub 0's extra link to a weak authority
	// still adds value: hub(0) ≥ hub(1).
	if !(res.Hubs[0] >= res.Hubs[1]-1e-12) {
		t.Fatalf("hubs = %v: 0 should be at least as good as 1", res.Hubs)
	}
}

// TestDistributionInvariants: both vectors are non-negative and sum to 1
// on random graphs with edges.
func TestDistributionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			d := rng.Intn(5)
			for e := 0; e < d; e++ {
				v := rng.Intn(n)
				if v != u {
					b.AddEdge(graph.NodeID(u), graph.NodeID(v))
				}
			}
		}
		b.AddEdge(0, graph.NodeID(n-1)) // at least one edge
		g, err := b.Build()
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		res, err := Compute(g, Config{})
		if err != nil {
			t.Fatalf("Compute: %v", err)
		}
		sumA, sumH := 0.0, 0.0
		for i := 0; i < n; i++ {
			if res.Authorities[i] < 0 || res.Hubs[i] < 0 {
				t.Fatalf("negative score at %d", i)
			}
			sumA += res.Authorities[i]
			sumH += res.Hubs[i]
		}
		if math.Abs(sumA-1) > 1e-9 || math.Abs(sumH-1) > 1e-9 {
			t.Fatalf("trial %d: sums %v / %v", trial, sumA, sumH)
		}
	}
}

// TestWeightedEndorsement: a heavier edge confers more authority.
func TestWeightedEndorsement(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(0, 2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Compute(g, Config{})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	if !(res.Authorities[1] > res.Authorities[2]) {
		t.Fatalf("authorities = %v: heavier endorsement should win", res.Authorities)
	}
}

// TestEdgelessGraph: HITS on an edgeless graph returns zeros, not NaNs.
func TestEdgelessGraph(t *testing.T) {
	b := graph.NewBuilder(3)
	b.EnsureNode(2)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	res, err := Compute(g, Config{MaxIterations: 5})
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	for i := range res.Authorities {
		if res.Authorities[i] != 0 || res.Hubs[i] != 0 {
			t.Fatalf("edgeless graph produced nonzero scores: %v %v", res.Authorities, res.Hubs)
		}
		if math.IsNaN(res.Authorities[i]) || math.IsNaN(res.Hubs[i]) {
			t.Fatal("NaN scores")
		}
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustFromEdges(2, [][2]graph.NodeID{{0, 1}})
	if _, err := Compute(nil, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Compute(g, Config{Tolerance: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Compute(g, Config{MaxIterations: -1}); err == nil {
		t.Error("negative MaxIterations accepted")
	}
}
