// Package hits implements Kleinberg's HITS algorithm (JACM 1999) — the
// other seminal link-analysis method the paper's introduction discusses.
// HITS separates each page's role into a hub score (the value of its
// outgoing links) and an authority score (the endorsement it receives),
// computed as the mutually recursive fixpoint
//
//	auth(v) = Σ_{u→v} hub(u),   hub(u) = Σ_{u→v} auth(v),
//
// normalized each iteration. Like local PageRank, HITS is typically run
// on a query-focused subgraph; the package therefore works on any
// *graph.Graph, including induced subgraphs.
package hits

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Config parameterizes the HITS iteration. The zero value selects an L1
// convergence threshold of 1e-8 and at most 1000 iterations.
type Config struct {
	// Tolerance is the combined L1 change threshold of the two vectors.
	Tolerance float64
	// MaxIterations bounds the iteration.
	MaxIterations int
}

func (c *Config) fill() error {
	if c.Tolerance == 0 {
		c.Tolerance = numeric.TightTolerance
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("hits: negative tolerance %v", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("hits: MaxIterations %d < 1", c.MaxIterations)
	}
	return nil
}

// Result carries the two HITS score vectors, each normalized to sum 1.
type Result struct {
	Authorities []float64
	Hubs        []float64
	Iterations  int
	Converged   bool
	Elapsed     time.Duration
}

// Compute runs HITS on g. Edge weights, when present, weight the mutual
// reinforcement (a weighted endorsement counts proportionally).
func Compute(g *graph.Graph, cfg Config) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("hits: nil graph")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	start := time.Now()

	auth := make([]float64, n)
	hub := make([]float64, n)
	for i := range auth {
		auth[i] = 1.0 / float64(n)
		hub[i] = 1.0 / float64(n)
	}
	newAuth := make([]float64, n)
	newHub := make([]float64, n)

	res := &Result{}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		authSweep(g, newAuth, hub)
		normalize(newAuth)
		// The hub update uses the fresh authorities — the standard
		// in-order HITS iteration.
		hubSweep(g, newHub, newAuth)
		normalize(newHub)

		delta := 0.0
		for i := 0; i < n; i++ {
			delta += math.Abs(newAuth[i]-auth[i]) + math.Abs(newHub[i]-hub[i])
		}
		auth, newAuth = newAuth, auth
		hub, newHub = newHub, hub
		res.Iterations = iter
		if delta < cfg.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Authorities = auth
	res.Hubs = hub
	res.Elapsed = time.Since(start)
	return res, nil
}

// authSweep computes one authority update, auth ← Aᵀ·hub: each state
// accumulates the (optionally weighted) hub scores of its in-neighbors.
//
//arlint:hot
func authSweep(g *graph.Graph, newAuth, hub []float64) {
	for v := range newAuth {
		acc := 0.0
		ws := g.InWeights(graph.NodeID(v))
		for k, u := range g.InNeighbors(graph.NodeID(v)) {
			if ws != nil {
				acc += hub[u] * ws[k]
			} else {
				acc += hub[u]
			}
		}
		newAuth[v] = acc
	}
}

// hubSweep computes one hub update, hub ← A·auth: each state accumulates
// the (optionally weighted) authority scores of its out-neighbors.
//
//arlint:hot
func hubSweep(g *graph.Graph, newHub, auth []float64) {
	for u := range newHub {
		acc := 0.0
		ws := g.OutWeights(graph.NodeID(u))
		for k, v := range g.OutNeighbors(graph.NodeID(u)) {
			if ws != nil {
				acc += auth[v] * ws[k]
			} else {
				acc += auth[v]
			}
		}
		newHub[u] = acc
	}
}

// normalize rescales to sum 1 (a graph with no edges yields all-zero
// vectors, which are left untouched — HITS is undefined there and the
// caller sees zeros rather than NaNs).
//
//arlint:hot
func normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 {
		return
	}
	for i := range v {
		v[i] /= s
	}
}
