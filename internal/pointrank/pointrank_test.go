package pointrank

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/pagerank"
)

func testWeb(t testing.TB, pages int) (*gen.Dataset, []float64) {
	t.Helper()
	ds, err := gen.Generate(gen.Config{Pages: pages, Domains: 8, Seed: 17})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	pr, err := pagerank.Compute(ds.Graph, pagerank.Options{Tolerance: 1e-12, MaxIterations: 5000})
	if err != nil {
		t.Fatalf("pagerank: %v", err)
	}
	return ds, pr.Scores
}

// pickTarget returns a page with a healthy in-neighbourhood so the
// backward expansion has something to do.
func pickTarget(ds *gen.Dataset) graph.NodeID {
	best := graph.NodeID(0)
	for p := 0; p < ds.Graph.NumNodes(); p++ {
		if ds.Graph.InDegree(graph.NodeID(p)) > ds.Graph.InDegree(best) {
			best = graph.NodeID(p)
		}
	}
	return best
}

// TestFullCoverageExact: when the expansion covers the whole graph the
// estimator solves the exact PageRank equations, so the target's estimate
// matches the global score.
func TestFullCoverageExact(t *testing.T) {
	ds, truth := testWeb(t, 2000)
	target := pickTarget(ds)
	res, err := Estimate(ds.Graph, target, Config{
		Radius:        100, // covers everything reachable backward
		MaxNodes:      ds.Graph.NumNodes(),
		Tolerance:     1e-12,
		MaxIterations: 5000,
	})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if res.InfluenceSize < ds.Graph.NumNodes()/2 {
		t.Logf("influence covered %d of %d pages", res.InfluenceSize, ds.Graph.NumNodes())
	}
	if res.InfluenceSize == ds.Graph.NumNodes() {
		if math.Abs(res.Score-truth[target]) > 1e-8 {
			t.Fatalf("full-coverage estimate %v, truth %v", res.Score, truth[target])
		}
	} else if math.Abs(res.Score-truth[target]) > truth[target]*0.2 {
		// Backward closure smaller than the graph: boundary priors leave
		// a modest residual error.
		t.Fatalf("near-full estimate %v too far from truth %v", res.Score, truth[target])
	}
}

// TestErrorShrinksWithRadius: growing the backward radius improves the
// estimate (Chen et al.'s main experimental finding).
func TestErrorShrinksWithRadius(t *testing.T) {
	ds, truth := testWeb(t, 8000)
	target := pickTarget(ds)
	var errs []float64
	for _, radius := range []int{NoExpansion, 2, 5} {
		res, err := Estimate(ds.Graph, target, Config{Radius: radius, MaxNodes: ds.Graph.NumNodes(), Tolerance: 1e-10})
		if err != nil {
			t.Fatalf("Estimate(r=%d): %v", radius, err)
		}
		errs = append(errs, math.Abs(res.Score-truth[target])/truth[target])
	}
	if !(errs[2] < errs[0]) {
		t.Errorf("relative error did not shrink with radius: %v", errs)
	}
	if errs[2] > 0.25 {
		t.Errorf("radius-5 relative error %v too large", errs[2])
	}
}

// TestRadiusZero: with no expansion the influence set is the target
// alone; the estimate is its direct in-flow under the prior.
func TestRadiusZero(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]graph.NodeID{{1, 0}, {2, 0}, {3, 1}})
	res, err := Estimate(g, 0, Config{Radius: NoExpansion, Tolerance: 1e-12})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if res.InfluenceSize != 1 {
		t.Fatalf("influence size %d, want 1", res.InfluenceSize)
	}
	if res.BoundaryLinks != 2 {
		t.Fatalf("boundary links %d, want 2", res.BoundaryLinks)
	}
	// Boundary parents 1 and 2 each have out-degree 1 and prior 1/4, so
	// the fixed in-flow is ε·(1/4 + 1/4). The target itself is dangling
	// and a member, so its own mass feeds back ε·x/4:
	// x = (1−ε)/4 + ε·(1/4 + 1/4) + ε·x/4.
	eps := 0.85
	want := ((1-eps)/4 + eps*(0.25+0.25)) / (1 - eps/4)
	if math.Abs(res.Score-want) > 1e-10 {
		t.Fatalf("score %v, want %v", res.Score, want)
	}
}

// TestInDegreePriorHelps: on a preferentially attached graph, the
// in-degree prior should not be worse than the uniform prior on average
// over several targets.
func TestInDegreePriorHelps(t *testing.T) {
	ds, truth := testWeb(t, 8000)
	sumUni, sumDeg := 0.0, 0.0
	count := 0
	for p := 0; p < ds.Graph.NumNodes() && count < 15; p += 499 {
		target := graph.NodeID(p)
		if ds.Graph.InDegree(target) == 0 {
			continue
		}
		count++
		uni, err := Estimate(ds.Graph, target, Config{Radius: 2, Tolerance: 1e-10})
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		deg, err := Estimate(ds.Graph, target, Config{Radius: 2, Tolerance: 1e-10, BoundaryPrior: PriorInDegree})
		if err != nil {
			t.Fatalf("Estimate: %v", err)
		}
		sumUni += math.Abs(uni.Score - truth[target])
		sumDeg += math.Abs(deg.Score - truth[target])
	}
	if count == 0 {
		t.Fatal("no targets sampled")
	}
	if sumDeg > sumUni*1.3 {
		t.Errorf("in-degree prior much worse than uniform: %v vs %v", sumDeg, sumUni)
	}
}

// TestMaxNodesCap: the expansion respects the node cap.
func TestMaxNodesCap(t *testing.T) {
	ds, _ := testWeb(t, 5000)
	target := pickTarget(ds)
	res, err := Estimate(ds.Graph, target, Config{Radius: 10, MaxNodes: 100})
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if res.InfluenceSize > 100 {
		t.Fatalf("influence size %d exceeds cap", res.InfluenceSize)
	}
}

func TestValidation(t *testing.T) {
	g := graph.MustFromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}})
	if _, err := Estimate(nil, 0, Config{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Estimate(g, 9, Config{}); err == nil {
		t.Error("out-of-range target accepted")
	}
	bad := []Config{
		{Radius: -2},
		{MaxNodes: -5},
		{BoundaryPrior: Prior(9)},
		{Epsilon: 1.5},
		{Tolerance: -1},
		{MaxIterations: -1},
	}
	for i, cfg := range bad {
		if _, err := Estimate(g, 0, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}
