// Package pointrank implements the local single-page PageRank estimator
// of Chen, Gan & Suel (CIKM 2004) — reference [17] of the paper, the
// third of the subgraph-ranking approaches surveyed in its related work.
// Where ApproxRank ranks all pages of a given subgraph, pointrank answers
// the narrower question "what is the PageRank of THIS page?" by expanding
// backward along in-links from the target, estimating scores for the
// boundary of the expansion, and solving the PageRank equations on the
// expanded set only.
package pointrank

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/numeric"
)

// Prior selects how boundary pages (in-neighbours outside the influence
// set) are scored.
type Prior int

const (
	// PriorUniform assumes every boundary page has the average score 1/N
	// (the "naive" estimator of Chen et al.).
	PriorUniform Prior = iota
	// PriorInDegree scores a boundary page proportionally to its
	// in-degree, normalized so the graph's total is 1 — the cheap
	// structural refinement Chen et al. propose.
	PriorInDegree
)

// NoExpansion requests a radius of zero: the influence set is the target
// alone and every in-neighbour is scored by the prior. (A Radius of 0
// selects the default radius instead.)
const NoExpansion = -1

// Config parameterizes the estimator. The zero value selects radius 3,
// uniform prior, and the customary walk parameters.
type Config struct {
	// Radius is the backward-BFS expansion depth. 0 selects the default
	// of 3; NoExpansion selects a radius of zero.
	Radius int
	// MaxNodes caps the influence set (the expansion stops early when the
	// cap is hit; farther pages become boundary). Default 25000.
	MaxNodes int
	// BoundaryPrior selects the boundary score estimate.
	BoundaryPrior Prior
	// Epsilon, Tolerance, MaxIterations: walk parameters (0.85 / 1e-8 /
	// 1000 by default — the estimator solves for one number, so a tight
	// tolerance is cheap).
	Epsilon       float64
	Tolerance     float64
	MaxIterations int
}

func (c *Config) fill() error {
	switch {
	case c.Radius == 0:
		c.Radius = 3
	case c.Radius == NoExpansion:
		c.Radius = 0
	case c.Radius < 0:
		return fmt.Errorf("pointrank: invalid radius %d", c.Radius)
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 25000
	}
	if c.MaxNodes < 1 {
		return fmt.Errorf("pointrank: MaxNodes %d < 1", c.MaxNodes)
	}
	if c.BoundaryPrior != PriorUniform && c.BoundaryPrior != PriorInDegree {
		return fmt.Errorf("pointrank: unknown boundary prior %d", c.BoundaryPrior)
	}
	if c.Epsilon == 0 {
		c.Epsilon = numeric.DefaultDamping
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return fmt.Errorf("pointrank: damping factor %v outside (0,1)", c.Epsilon)
	}
	if c.Tolerance == 0 {
		c.Tolerance = numeric.TightTolerance
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("pointrank: negative tolerance %v", c.Tolerance)
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 1000
	}
	if c.MaxIterations < 1 {
		return fmt.Errorf("pointrank: MaxIterations %d < 1", c.MaxIterations)
	}
	return nil
}

// Result reports the estimate and the work done.
type Result struct {
	// Score is the estimated global PageRank of the target.
	Score float64
	// InfluenceSize is the number of pages in the backward expansion
	// (including the target).
	InfluenceSize int
	// BoundaryLinks is the number of in-links entering the influence set
	// from outside (the links whose sources needed a prior).
	BoundaryLinks int
	Iterations    int
	Converged     bool
	Elapsed       time.Duration
}

// Estimate computes the PageRank of target by local backward expansion.
func Estimate(g *graph.Graph, target graph.NodeID, cfg Config) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("pointrank: nil graph")
	}
	if int(target) >= g.NumNodes() {
		return nil, fmt.Errorf("pointrank: target %d outside graph (N=%d)", target, g.NumNodes())
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	start := time.Now()
	bigN := float64(g.NumNodes())

	// Backward BFS up to Radius layers (capped at MaxNodes).
	member := graph.NewNodeSet(g.NumNodes())
	member.Add(target)
	set := []graph.NodeID{target}
	level := []graph.NodeID{target}
	for depth := 0; depth < cfg.Radius && len(set) < cfg.MaxNodes; depth++ {
		var next []graph.NodeID
		for _, v := range level {
			for _, u := range g.InNeighbors(v) {
				if member.Contains(u) {
					continue
				}
				member.Add(u)
				set = append(set, u)
				next = append(next, u)
				if len(set) == cfg.MaxNodes {
					break
				}
			}
			if len(set) == cfg.MaxNodes {
				break
			}
		}
		if len(next) == 0 {
			break
		}
		level = next
	}

	// Local index.
	pos := make(map[graph.NodeID]int, len(set))
	for i, v := range set {
		pos[v] = i
	}

	prior := func(u graph.NodeID) float64 {
		switch cfg.BoundaryPrior {
		case PriorInDegree:
			// Normalize so the average page still carries 1/N: a page's
			// share is indeg/(totalEdges) ≈ indeg/(N·avgdeg).
			if g.NumEdges() == 0 {
				return 1 / bigN
			}
			return float64(g.InDegree(u)) / float64(g.NumEdges())
		default:
			return 1 / bigN
		}
	}

	// Fixed inflow from boundary sources, plus the teleport term; both
	// constant across iterations.
	n := len(set)
	base := make([]float64, n)
	boundaryLinks := 0
	for i, v := range set {
		base[i] = (1 - cfg.Epsilon) / bigN
		ws := g.InWeights(v)
		for k, u := range g.InNeighbors(v) {
			if member.Contains(u) {
				continue
			}
			boundaryLinks++
			p := 1.0 / g.WeightOut(u)
			if ws != nil {
				p = ws[k] / g.WeightOut(u)
			}
			base[i] += cfg.Epsilon * prior(u) * p
		}
	}
	// Dangling pages jump uniformly, so every member receives ε/N times
	// the total dangling mass. Mass on dangling pages outside the set is
	// estimated once from the prior; mass on dangling members is tracked
	// dynamically, which keeps the estimator exact when the expansion
	// covers the whole graph.
	staticDanglingMass := 0.0
	var danglingMembers []int
	for u := 0; u < g.NumNodes(); u++ {
		id := graph.NodeID(u)
		if !g.Dangling(id) {
			continue
		}
		if i, in := pos[id]; in {
			danglingMembers = append(danglingMembers, i)
		} else {
			staticDanglingMass += prior(id)
		}
	}

	// Solve x = base + ε·A_Sᵀ·x over the influence set (pull form along
	// in-edges inside the set).
	x := make([]float64, n)
	copy(x, base)
	res := &Result{InfluenceSize: n, BoundaryLinks: boundaryLinks}
	for iter := 1; iter <= cfg.MaxIterations; iter++ {
		dynDangling := 0.0
		for _, i := range danglingMembers {
			dynDangling += x[i]
		}
		danglingTerm := cfg.Epsilon * (staticDanglingMass + dynDangling) / bigN
		delta := 0.0
		for i, v := range set {
			acc := base[i] + danglingTerm
			ws := g.InWeights(v)
			for k, u := range g.InNeighbors(v) {
				j, in := pos[u]
				if !in {
					continue
				}
				p := 1.0 / g.WeightOut(u)
				if ws != nil {
					p = ws[k] / g.WeightOut(u)
				}
				acc += cfg.Epsilon * x[j] * p
			}
			delta += math.Abs(acc - x[i])
			x[i] = acc
		}
		res.Iterations = iter
		if delta < cfg.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Score = x[0] // the target is set[0]
	res.Elapsed = time.Since(start)
	return res, nil
}
