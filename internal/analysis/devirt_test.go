package analysis

import "testing"

func candidatesOf(n *CGNode, callee *CGNode) bool {
	for _, c := range n.Candidates {
		if c == callee {
			return true
		}
	}
	return false
}

// TestDevirtTwoImplementations asserts the core candidate-edge rule: an
// interface-method call site with two concrete implementations in the
// analyzed set gets exactly one candidate edge per implementation.
func TestDevirtTwoImplementations(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"shape/shape.go": `package shape

type Shape interface{ Area() float64 }

type Square struct{ S float64 }

func (q Square) Area() float64 { return q.S * q.S }

type Circle struct{ R float64 }

func (c Circle) Area() float64 { return 3 * c.R * c.R }

func Total(ss []Shape) float64 {
	sum := 0.0
	for _, s := range ss {
		sum += s.Area()
	}
	return sum
}
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["shape"]})

	total := nodeByName(t, cg, "shape.Total")
	square := nodeByName(t, cg, "shape.Square.Area")
	circle := nodeByName(t, cg, "shape.Circle.Area")

	if len(total.Candidates) != 2 {
		t.Fatalf("shape.Total has %d candidate edges, want 2: %v", len(total.Candidates), total.Candidates)
	}
	if !candidatesOf(total, square) || !candidatesOf(total, circle) {
		t.Errorf("candidates %v do not cover both implementations", total.Candidates)
	}
	if callsTo(total, square) || callsTo(total, circle) {
		t.Errorf("candidate edges leaked into the static Calls list")
	}
}

// TestDevirtOutsidePackageSet asserts the soundness boundary: a type
// implementing the interface contributes a candidate edge only when its
// package is part of the analyzed set. The unexported implementation is
// invisible when its package is left out — the call goes back to ⊤ —
// and discovered when it is included.
func TestDevirtOutsidePackageSet(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"iface/iface.go": `package iface

type Ranker interface{ Rank() float64 }

func Score(r Ranker) float64 { return r.Rank() }
`,
		"impl/impl.go": `package impl

import "cgtest/iface"

type hidden struct{}

func (hidden) Rank() float64 { return 1 }

func New() iface.Ranker { return hidden{} }
`,
	})

	partial := BuildCallGraph([]*Package{pkgs["iface"]})
	if score := nodeByName(t, partial, "iface.Score"); len(score.Candidates) != 0 {
		t.Errorf("with impl excluded, iface.Score has %d candidate edges, want 0", len(score.Candidates))
	}

	full := BuildCallGraph([]*Package{pkgs["iface"], pkgs["impl"]})
	score := nodeByName(t, full, "iface.Score")
	rank := nodeByName(t, full, "impl.hidden.Rank")
	if len(score.Candidates) != 1 || !candidatesOf(score, rank) {
		t.Errorf("with impl included, candidates = %v, want exactly [impl.hidden.Rank]", score.Candidates)
	}
}

// TestDevirtSummaryJoin asserts that a dynamic call with known
// candidates joins their summaries instead of going to ⊤: may-facts OR
// (one allocating implementation taints the join), must-facts AND.
func TestDevirtSummaryJoin(t *testing.T) {
	pkgs := writeModule(t, map[string]string{
		"buf/buf.go": `package buf

type Maker interface{ Make(n int) []int }

type Alloc struct{}

func (Alloc) Make(n int) []int { return make([]int, n) }

type Fixed struct{ b []int }

func (f Fixed) Make(n int) []int { return f.b[:n] }

func Build(m Maker, n int) []int { return m.Make(n) }
`,
	})
	cg := BuildCallGraph([]*Package{pkgs["buf"]})
	sums := ComputeSummaries(cg)

	s := sums.Of(nodeByName(t, cg, "buf.Build").Func)
	if s == nil {
		t.Fatal("no summary for buf.Build")
	}
	if !s.Allocates {
		t.Errorf("buf.Build: Allocates=false, want true (Alloc.Make is a candidate)")
	}
}
