package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// This file is the static cost model: every summarized function gets a
// Cost — an abstract, order-of-magnitude account of the work one call
// performs — computed bottom-up over the call graph's SCCs alongside
// the other summary facts. The model is deliberately coarse: it does
// not predict runtimes, it ranks. Its unit is "one straight-line
// statement executed once"; loops multiply, callees are inlined at
// their call-site depth, and everything saturates at small caps so the
// within-SCC fixpoint converges in a handful of passes.
//
// Loop trip classes (classifyLoop):
//
//	tripConst     bound is a small compile-time constant (≤ costSmallTrip):
//	              the four-accumulator unrolls, padding strides. Treated
//	              as straight-line — no depth, no trip factor.
//	tripData      bounded by the size of ranged-over data: one work
//	              dimension per level (per-node, per-edge …).
//	tripUnbounded condition-driven: `for {}`, `for delta > tol`,
//	              three-clause loops with non-constant bounds, channel
//	              ranges. The convergence loops of the ranking engines
//	              land here. Known imprecision: a non-constant bound
//	              like `w < parts` is also classified unbounded — the
//	              model cannot tell a worker count from an iteration
//	              count, and overapproximating keeps spawnloop sound.
//
// Depth is the maximum nesting of tripData/tripUnbounded loops reached
// per call (callees included at their call-site depth), capped at
// costDepthCap. For this repository's graph code the depths read as
// work classes: depth 1 ≈ per-node, depth 2 ≈ per-edge (a node loop
// around an in-row loop), depth 3+ ≈ iteration × edge work.
//
// The three site weights count expensive operations, each charged
// costTripFactor^depth for the loop nesting around the site:
//
//	AllocW  make / new / growing append
//	DynW    dynamic dispatch (interface methods, func values)
//	SpawnW  goroutine creation
//
// Recursion: a call into the node's own SCC charges the callee's
// current weights saturated to costWeightCap — a cycle means the model
// cannot bound the repetition, so any nonzero weight inside one is
// treated as unbounded. Depth still composes normally (the cap bounds
// the climb), so a weight-free recursive helper stays cheap.
//
// Soundness direction: the model only overapproximates within its
// vocabulary (unknown bounds are unbounded, any candidate's cost is
// every candidate's cost) but it does NOT see through out-of-module
// calls — a stdlib call is charged zero. It ranks module code, it does
// not audit the universe.

const (
	// costTripFactor is the abstract iteration count charged to one
	// level of data-bound or unbounded looping. A power of two so the
	// per-depth multiplier is a shift.
	costTripFactor = 16
	// costDepthCap bounds the loop-nesting depth (and with it the trip
	// multiplier at 16^4); deeper nesting adds no further cost.
	costDepthCap = 4
	// costWeightCap saturates the site weights; together with the depth
	// cap it bounds the lattice height, so SCC fixpoints terminate.
	costWeightCap = 1 << 20
	// costSmallTrip is the largest constant loop bound still treated as
	// straight-line code.
	costSmallTrip = 8
)

// Cost is one function's point in the cost lattice. The zero value is
// bottom: a straight-line function doing nothing expensive.
type Cost struct {
	// Depth is the maximum tripData/tripUnbounded loop nesting executed
	// by one call, callees inlined, capped at costDepthCap.
	Depth int
	// HighTrip reports that the call reaches a tripUnbounded loop — the
	// convergence-loop marker spawnloop and the cost report key on.
	HighTrip bool
	// AllocW, DynW and SpawnW weight the allocation, dynamic-dispatch
	// and goroutine-spawn sites by the loop nesting around them,
	// saturating at costWeightCap.
	AllocW int
	DynW   int
	SpawnW int
}

// join is the lattice join: field-wise max/or. Used for devirtualized
// candidates (the call may run any of them) and for the monotone
// ascension of a node's own cost across fixpoint passes.
func (c Cost) join(o Cost) Cost {
	return Cost{
		Depth:    max(c.Depth, o.Depth),
		HighTrip: c.HighTrip || o.HighTrip,
		AllocW:   max(c.AllocW, o.AllocW),
		DynW:     max(c.DynW, o.DynW),
		SpawnW:   max(c.SpawnW, o.SpawnW),
	}
}

// WorkClass names the depth as the repository's work vocabulary.
func (c Cost) WorkClass() string {
	switch c.Depth {
	case 0:
		return "flat"
	case 1:
		return "per-node"
	case 2:
		return "per-edge"
	default:
		return fmt.Sprintf("nested^%d", c.Depth)
	}
}

// Score folds the cost into one ranking key: the loop work term
// dominates (one extra depth level outweighs any site weight), an
// unbounded loop counts as one more level, and the site weights break
// ties with spawns weighted heaviest (a spawn is costlier than an
// allocation, which is costlier than a dispatch).
func (c Cost) Score() int64 {
	d := c.Depth
	if c.HighTrip {
		d++
	}
	work := int64(1) << (4 * min(d, costDepthCap+1)) // costTripFactor^d
	return work*int64(costWeightCap) + int64(c.AllocW)*4 + int64(c.DynW) + int64(c.SpawnW)*16
}

// label renders the cost for the dot node labels: empty for bottom,
// otherwise the work class with "!" marking an unbounded loop, e.g.
// "cost:per-edge!".
func (c Cost) label() string {
	if c == (Cost{}) {
		return ""
	}
	out := "cost:" + c.WorkClass()
	if c.HighTrip {
		out += "!"
	}
	return out
}

// tripClass classifies one loop's trip count; see the file comment.
type tripClass int

const (
	tripConst tripClass = iota
	tripData
	tripUnbounded
)

// classifyLoop assigns loop its trip class.
func classifyLoop(info *types.Info, loop ast.Stmt) tripClass {
	switch l := loop.(type) {
	case *ast.ForStmt:
		if l.Cond == nil {
			return tripUnbounded // for {}
		}
		if bound, ok := constCondBound(info, l.Cond); ok {
			if bound <= costSmallTrip {
				return tripConst
			}
			return tripData // constant but large: bounded work, one dimension
		}
		return tripUnbounded
	case *ast.RangeStmt:
		t := info.TypeOf(l.X)
		if t == nil {
			return tripData
		}
		switch u := t.Underlying().(type) {
		case *types.Chan:
			return tripUnbounded // trips until someone closes
		case *types.Array:
			if u.Len() <= costSmallTrip {
				return tripConst
			}
		case *types.Basic:
			// Go 1.22 integer range: `for range n`.
			if tv, ok := info.Types[l.X]; ok && tv.Value != nil {
				if bound, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok && bound <= costSmallTrip {
					return tripConst
				}
			}
		}
		return tripData
	}
	return tripData
}

// constCondBound extracts the constant bound of a comparison loop
// condition (`i < 4`, `4 > i`, `i <= n` with constant n …), reporting
// ok only when one operand is a compile-time integer constant.
func constCondBound(info *types.Info, cond ast.Expr) (int64, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return 0, false
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return 0, false
	}
	for _, side := range [2]ast.Expr{be.X, be.Y} {
		if tv, ok := info.Types[side]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
				return v, true
			}
		}
	}
	return 0, false
}

// costSatAdd adds saturating at costWeightCap.
func costSatAdd(a, b int) int {
	if s := a + b; s < costWeightCap {
		return s
	}
	return costWeightCap
}

// costAtDepth charges units sites at the given loop depth:
// units × costTripFactor^depth, saturating.
func costAtDepth(units, depth int) int {
	w := int64(units) << (4 * min(depth, costDepthCap))
	if w >= costWeightCap {
		return costWeightCap
	}
	return int(w)
}

// summarizeCost recomputes n's cost from its body and the current
// callee summaries and joins it into s.Cost (join, not assign: the
// within-SCC passes must only ascend).
func summarizeCost(sums *Summaries, n *CGNode, s *Summary) {
	info := n.Pkg.Info
	var c Cost

	// chargeCallee inlines a callee's cost at the call-site depth.
	// sameSCC applies the recursion rule: nonzero weights saturate.
	chargeCallee := func(cs Cost, depth int, sameSCC bool) {
		c.Depth = max(c.Depth, min(depth+cs.Depth, costDepthCap))
		c.HighTrip = c.HighTrip || cs.HighTrip
		charge := func(dst *int, w int) {
			if w == 0 {
				return
			}
			if sameSCC {
				*dst = costWeightCap
				return
			}
			*dst = costSatAdd(*dst, costAtDepth(w, depth))
		}
		charge(&c.AllocW, cs.AllocW)
		charge(&c.DynW, cs.DynW)
		charge(&c.SpawnW, cs.SpawnW)
	}

	var walk func(node ast.Node, depth int)
	walk = func(node ast.Node, depth int) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				d2 := depth
				if classifyLoop(info, m) != tripConst {
					d2 = min(depth+1, costDepthCap)
					c.Depth = max(c.Depth, d2)
					if classifyLoop(info, m) == tripUnbounded {
						c.HighTrip = true
					}
				}
				if m.Init != nil {
					walk(m.Init, depth)
				}
				// Cond and Post run once per iteration.
				walk(m.Cond, d2)
				if m.Post != nil {
					walk(m.Post, d2)
				}
				walk(m.Body, d2)
				return false
			case *ast.RangeStmt:
				d2 := depth
				switch classifyLoop(info, m) {
				case tripData:
					d2 = min(depth+1, costDepthCap)
					c.Depth = max(c.Depth, d2)
				case tripUnbounded:
					d2 = min(depth+1, costDepthCap)
					c.Depth = max(c.Depth, d2)
					c.HighTrip = true
				}
				walk(m.X, depth)
				walk(m.Body, d2)
				return false
			case *ast.FuncLit:
				// A literal's body runs on the declaring function's
				// behalf (worker bodies, sort closures) — charged at the
				// syntactic depth, like the other summary facts.
				walk(m.Body, depth)
				return false
			case *ast.GoStmt:
				c.SpawnW = costSatAdd(c.SpawnW, costAtDepth(1, depth))
				return true // the spawned call's own cost is charged below
			case *ast.CallExpr:
				fun := ast.Unparen(m.Fun)
				if id, ok := fun.(*ast.Ident); ok {
					if _, builtin := info.Uses[id].(*types.Builtin); builtin {
						switch id.Name {
						case "make", "new", "append":
							c.AllocW = costSatAdd(c.AllocW, costAtDepth(1, depth))
						}
						return true
					}
				}
				if tv, ok := info.Types[m.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				if _, isLit := fun.(*ast.FuncLit); isLit {
					return true // immediately-invoked literal: body charged via FuncLit
				}
				if callee := StaticCallee(info, m); callee != nil {
					if target := sums.Graph.NodeOf(callee); target != nil {
						chargeCallee(sums.byFunc[target.Func].Cost, depth, target.SCC == n.SCC)
					}
					return true // out-of-module static call: charged zero
				}
				// Dynamic dispatch: charge the site, then the join of the
				// known implementations (devirtualization).
				c.DynW = costSatAdd(c.DynW, costAtDepth(1, depth))
				for _, cand := range sums.Graph.CandidatesOf(info, m) {
					chargeCallee(sums.byFunc[cand.Func].Cost, depth, cand.SCC == n.SCC)
				}
				return true
			}
			return true
		})
	}
	walk(n.Decl.Body, 0)

	s.Cost = s.Cost.join(c)
}

// costEntry pairs a node with its final cost for the report.
type costEntry struct {
	node *CGNode
	cost Cost
}

// WriteCostReport renders the driver's -report=cost mode: the topN
// most expensive functions by Score, each with its work class, site
// weights, and its heaviest call path — the greedy chain of
// highest-scoring callees (static first, then devirtualized
// candidates), which is where a profile would send you first.
func (cg *CallGraph) WriteCostReport(w io.Writer, sums *Summaries, topN int) error {
	entries := make([]costEntry, 0, len(cg.Nodes))
	for _, n := range cg.Nodes {
		entries = append(entries, costEntry{node: n, cost: sums.byFunc[n.Func].Cost})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		si, sj := entries[i].cost.Score(), entries[j].cost.Score()
		if si != sj {
			return si > sj
		}
		return entries[i].node.String() < entries[j].node.String()
	})
	if topN > len(entries) {
		topN = len(entries)
	}
	if _, err := fmt.Fprintf(w, "cost report: top %d of %d functions by modeled cost\n", topN, len(entries)); err != nil {
		return err
	}
	for i := 0; i < topN; i++ {
		e := entries[i]
		flags := e.cost.WorkClass()
		if e.cost.HighTrip {
			flags += ", unbounded-loop"
		}
		fmt.Fprintf(w, "%3d. %-40s [%s]  alloc=%d dyn=%d spawn=%d\n",
			i+1, e.node.String(), flags, e.cost.AllocW, e.cost.DynW, e.cost.SpawnW)
		if path := cg.heaviestPath(sums, e.node); len(path) > 1 {
			names := make([]string, len(path))
			for j, p := range path {
				names[j] = p.String()
			}
			fmt.Fprintf(w, "     path: %s\n", strings.Join(names, " -> "))
		}
	}
	return nil
}

// heaviestPath follows the highest-Score callee from n until a leaf, a
// cycle, or the depth limit — the call chain carrying the modeled cost.
func (cg *CallGraph) heaviestPath(sums *Summaries, n *CGNode) []*CGNode {
	const limit = 6
	path := []*CGNode{n}
	seen := map[*CGNode]bool{n: true}
	cur := n
	for len(path) < limit {
		var best *CGNode
		var bestScore int64
		for _, edges := range [2][]*CGNode{cur.Calls, cur.Candidates} {
			for _, callee := range edges {
				if seen[callee] {
					continue
				}
				if score := sums.byFunc[callee.Func].Cost.Score(); best == nil || score > bestScore ||
					(score == bestScore && callee.String() < best.String()) {
					best, bestScore = callee, score
				}
			}
		}
		if best == nil || sums.byFunc[best.Func].Cost == (Cost{}) {
			break
		}
		seen[best] = true
		path = append(path, best)
		cur = best
	}
	return path
}
