package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc is the performance lint for the iteration engines: inside a
// power-iteration loop — the per-iteration convergence loop of the
// pagerank, core (ApproxRank's extended chain), hits and blockrank
// packages — every `make` is a fresh allocation per iteration and
// every `append` to a slice without preallocated capacity reallocates
// as it grows. Both belong before the loop: the iteration count is
// bounded by MaxIterations, so buffers can be sized once.
//
// A power-iteration loop is recognized by the repository's convention:
// a `for` statement whose init declares a variable named "iter" or
// whose condition mentions MaxIterations. Function literals inside the
// loop body (the parallel engine's workers) run once per iteration and
// are scanned too.
//
// An append target counts as preallocated when the same expression is
// assigned a three-argument make (explicit capacity) earlier in the
// function. Intentional per-iteration allocations take an
// //arlint:allow hotalloc sentinel.
//
// A flagged `x := make(...)` whose size arguments are loop-invariant —
// every mentioned variable is declared before the loop and never
// assigned inside it — carries a mechanical fix that hoists the
// statement immediately before the loop.
//
// The checker is interprocedural through summaries (summary.go): a
// static call inside the loop to a module function whose summary says
// it allocates — directly or via its own callees — is flagged exactly
// like an inline make. Hiding the allocation in a helper is no longer
// an analysis hole.
var HotAlloc = &Analyzer{
	Name:        "hotalloc",
	Doc:         "no allocations or append growth inside power-iteration loops (pagerank/core/hits/blockrank)",
	LibraryOnly: true,
	CanFix:      true,
	Run:         runHotAlloc,
}

// hotPackages are the iteration engines the checker covers.
var hotPackages = map[string]bool{
	"pagerank": true, "approxrank": true, "hits": true, "blockrank": true, "core": true,
	"kernel": true, // the shared flat-sweep layer every engine runs on
}

func runHotAlloc(pass *Pass) {
	if !hotPackages[pass.Pkg.Name] {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkHotAllocFunc(pass, fn)
		}
	}
}

func checkHotAllocFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || !isPowerLoop(loop) {
			return true
		}
		// Map each single-define `x := <call>` statement in the body to
		// its call, so the make case below can offer a hoist fix for the
		// whole statement rather than the bare expression.
		defines := make(map[*ast.CallExpr]*ast.AssignStmt)
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if as, ok := m.(*ast.AssignStmt); ok && as.Tok == token.DEFINE && len(as.Lhs) == 1 && len(as.Rhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					defines[call] = as
				}
			}
			return true
		})
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			isBuiltin := false
			if ok {
				_, isBuiltin = info.Uses[id].(*types.Builtin)
			}
			if !isBuiltin {
				// Interprocedural: a call to a module function that
				// allocates per call is an allocation per iteration.
				if cs := pass.Summaries.CalleeSummaryDevirt(info, call); cs != nil && cs.Allocates {
					via := ""
					if cs.AllocVia != "" {
						via = " (via " + cs.AllocVia + ")"
					}
					pass.Reportf(call.Pos(),
						"call to %s inside the power-iteration loop of %s allocates every iteration%s; hoist the allocation or restructure the helper",
						callName(call), fn.Name.Name, via)
				}
				return true
			}
			switch id.Name {
			case "make":
				pass.ReportfFix(call.Pos(), hoistMakeFix(pass, loop, call, defines[call]),
					"make inside the power-iteration loop of %s allocates every iteration; hoist it before the loop",
					fn.Name.Name)
			case "append":
				if len(call.Args) == 0 {
					return true
				}
				target := types.ExprString(call.Args[0])
				if preallocatedBefore(fn, target, loop) {
					return true
				}
				pass.Reportf(call.Pos(),
					"append to %q grows inside the power-iteration loop of %s; preallocate it with capacity (make(..., 0, n)) before the loop",
					target, fn.Name.Name)
			}
			return true
		})
		return false // nested loops are part of the same iteration body
	})
}

// hoistMakeFix builds the mechanical hoist for the common shape
//
//	x := make(T, size...)
//
// when the make is the whole right-hand side of a single-variable
// define and every variable mentioned by its arguments is declared
// outside the loop and never assigned inside it — the buffer's size is
// then loop-invariant, so the identical statement placed immediately
// before the loop allocates once and the body reuses the buffer. Any
// other shape (multi-assign, plain assignment, size depending on loop
// state, make nested in a larger expression) gets no fix; the
// diagnostic alone is the answer there. Callers that relied on a
// freshly ZEROED buffer each iteration must clear it after hoisting —
// the same caveat the diagnostic's advice always had.
func hoistMakeFix(pass *Pass, loop *ast.ForStmt, call *ast.CallExpr, as *ast.AssignStmt) *SuggestedFix {
	if as == nil {
		return nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	info := pass.Pkg.Info
	for _, arg := range call.Args {
		invariant := true
		ast.Inspect(arg, func(m ast.Node) bool {
			aid, isIdent := m.(*ast.Ident)
			if !isIdent || !invariant {
				return invariant
			}
			v, isVar := info.Uses[aid].(*types.Var)
			if !isVar {
				return true // types, consts, funcs: nothing to invalidate
			}
			if v.Pos() >= loop.Pos() && v.Pos() < loop.End() {
				invariant = false // declared inside the loop (incl. iter)
			} else if assignedWithin(info, loop, v) {
				invariant = false
			}
			return invariant
		})
		if !invariant {
			return nil
		}
	}
	return &SuggestedFix{
		Message: "hoist the loop-invariant make before the loop",
		Edits: []TextEdit{
			{Pos: loop.Pos(), End: loop.Pos(), NewText: id.Name + " := " + types.ExprString(call) + "\n"},
			{Pos: as.Pos(), End: as.End(), NewText: ""},
		},
	}
}

// assignedWithin reports whether v may be mutated inside node: it is
// the target of an assignment or inc/dec, a range variable, or has its
// address taken (after which any callee could write it).
func assignedWithin(info *types.Info, node ast.Node, v *types.Var) bool {
	isV := func(e ast.Expr) bool {
		eid, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[eid] == v
	}
	found := false
	ast.Inspect(node, func(m ast.Node) bool {
		if found {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				if isV(lhs) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isV(m.X) {
				found = true
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND && isV(m.X) {
				found = true
			}
		case *ast.RangeStmt:
			if (m.Key != nil && isV(m.Key)) || (m.Value != nil && isV(m.Value)) {
				found = true
			}
		}
		return true
	})
	return found
}

// isPowerLoop recognizes the repository's convergence-loop convention:
// `for iter := 1; iter <= cfg.MaxIterations; iter++`.
func isPowerLoop(loop *ast.ForStmt) bool {
	if init, ok := loop.Init.(*ast.AssignStmt); ok {
		for _, lhs := range init.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name == "iter" {
				return true
			}
		}
	}
	if loop.Cond == nil {
		return false
	}
	mentions := false
	ast.Inspect(loop.Cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && strings.Contains(id.Name, "MaxIter") {
			mentions = true
		}
		return true
	})
	return mentions
}

// preallocatedBefore reports whether target (rendered expression, e.g.
// "res.Deltas") is assigned a make with explicit capacity somewhere in
// fn before the loop. A nil loop (the summary layer asking about the
// whole function) accepts a capacity make anywhere in the body.
func preallocatedBefore(fn *ast.FuncDecl, target string, loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if loop != nil && n.Pos() >= loop.Pos() {
			return false // only assignments before the loop qualify
		}
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range s.Lhs {
			if types.ExprString(lhs) != target || i >= len(s.Rhs) {
				continue
			}
			if call, ok := s.Rhs[i].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "make" && len(call.Args) == 3 {
					found = true
				}
			}
		}
		return true
	})
	return found
}
