package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NormReturn flags exported score producers — functions returning a
// []float64 whose declared result name or function name marks it as a
// score/rank vector — that never call a normalization helper. Every
// score vector in this repository is a probability distribution (sums to
// 1); the paper's L1 and footrule comparisons are only meaningful under
// that convention, and a producer that skips renormalization silently
// shifts every downstream accuracy number.
//
// Exemptions: bodies that call any function whose name contains
// "normal(ize)" (normalize, Normalize, renormalize, ...), single-return
// delegation wrappers (the top-level API re-exporting internal/core),
// and //arlint:allow normreturn sentinels for producers whose output is
// normalized by construction.
var NormReturn = &Analyzer{
	Name:        "normreturn",
	Doc:         "exported score producers returning []float64 must normalize",
	LibraryOnly: true,
	Run:         runNormReturn,
}

func runNormReturn(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if !isScoreProducer(pass.Pkg.Info, fn) {
				continue
			}
			if isDelegation(fn.Body) || callsNormalizer(fn.Body) {
				continue
			}
			pass.Reportf(fn.Pos(),
				"exported score producer %s returns []float64 without calling a normalization helper", fn.Name.Name)
		}
	}
}

// rankLikeResultNames are declared result names that mark a []float64
// return as a score vector.
var rankLikeResultNames = map[string]bool{
	"score": true, "scores": true, "r": true, "rank": true, "ranks": true, "pr": true, "pi": true,
}

func isScoreProducer(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	hasScoreSlice := false
	for _, field := range fn.Type.Results.List {
		t := info.TypeOf(field.Type)
		slice, ok := t.(*types.Slice)
		if !ok {
			continue
		}
		b, ok := slice.Elem().Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Float64 {
			continue
		}
		if len(field.Names) == 0 {
			hasScoreSlice = true // unnamed: fall back to the function name
			continue
		}
		for _, name := range field.Names {
			if rankLikeResultNames[strings.ToLower(name.Name)] {
				return true
			}
		}
	}
	if !hasScoreSlice {
		return false
	}
	lower := strings.ToLower(fn.Name.Name)
	return strings.Contains(lower, "rank") || strings.Contains(lower, "score")
}

// isDelegation reports whether the body is a single return statement
// forwarding to another call — the wrapper pattern of the top-level API.
func isDelegation(body *ast.BlockStmt) bool {
	if len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		switch res.(type) {
		case *ast.CallExpr, *ast.Ident, *ast.SelectorExpr:
		default:
			return false
		}
	}
	return len(ret.Results) > 0
}

func callsNormalizer(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if strings.Contains(strings.ToLower(name), "normal") {
			found = true
			return false
		}
		return true
	})
	return found
}
