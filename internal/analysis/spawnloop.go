package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnLoop flags goroutine spawn/join churn inside high-trip loops:
// a loop whose trip count is not a small compile-time constant
// (classifyLoop, cost.go) and whose body both starts goroutines and
// joins them — per iteration. The convergence loops of the ranking
// engines run hundreds of such iterations; paying one goroutine
// creation plus WaitGroup churn per worker per iteration is pure
// overhead against a persistent pool spawned once before the loop and
// driven with a round barrier (kernel.SweepPool is this repository's
// shape for it: resident workers, one broadcast channel each, the
// caller participating as worker 0).
//
// Per-iteration spawn evidence is positional, not just "the callee
// transitively spawns" — otherwise every benchmark repetition loop
// around a complete parallel computation would flag. Inside the loop
// body it counts:
//
//   - a go statement;
//   - a call to a callee whose summary says SpawnChurn: the callee
//     performs an unamortized spawn+join unit per call (the pre-pool
//     ParallelSweep shape), so calling it per iteration repeats the
//     churn here;
//   - a call to a callee that spawns and does NOT join
//     (SpawnsGoroutine && !WaitsOnWG): a pool constructor — building
//     the pool itself per iteration is the same churn one level up.
//
// Join evidence is a direct wg.Wait or a callee with WaitsOnWG. A
// self-contained computation like pagerank.ComputeCtx has WaitsOnWG
// but provides no spawn evidence (its SpawnChurn is false: the spawn
// is amortized over its internal convergence loop), so repeating it
// stays clean.
//
// The pooled pattern is clean by construction: the pool's round has
// WaitsOnWG but not SpawnsGoroutine (the spawn happened in the
// constructor, outside the loop), and a bare spawn loop followed by
// one Wait after the loop joins nothing per iteration.
var SpawnLoop = &Analyzer{
	Name: "spawnloop",
	Doc:  "no goroutine spawn + WaitGroup join per iteration of a high-trip loop; hoist the workers into a persistent pool",
	Run:  runSpawnLoop,
}

func runSpawnLoop(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fb := range functionsOf(file) {
			// Nested literals are their own functionsOf entries; skip
			// them here so each loop is examined exactly once, in the
			// innermost function that executes it.
			ast.Inspect(fb.body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				switch loop := n.(type) {
				case *ast.ForStmt:
					checkSpawnLoop(pass, loop, loop.Body)
				case *ast.RangeStmt:
					checkSpawnLoop(pass, loop, loop.Body)
				}
				return true
			})
		}
	}
}

// checkSpawnLoop reports loop when its body both spawns and joins per
// iteration and the loop is not a small constant unroll.
func checkSpawnLoop(pass *Pass, loop ast.Stmt, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	if classifyLoop(info, loop) == tripConst {
		return
	}
	spawnPos, spawnVia, spawned := spawnEvidenceIn(pass.Summaries, info, body)
	if !spawned {
		return
	}
	joinVia, joined := joinEvidenceIn(pass.Summaries, info, body)
	if !joined {
		return
	}
	pass.Reportf(spawnPos,
		"goroutines are spawned (via %s) and joined (via %s) on every iteration of a high-trip loop; spawn a persistent round-barriered worker pool once before the loop and reuse it each iteration",
		spawnVia, joinVia)
}

// spawnEvidenceIn scans region (skipping nested function literal
// bodies) for per-execution goroutine creation: a direct go statement,
// a call to a SpawnChurn callee, or a call to a spawn-without-join
// callee (a pool constructor). Returns the first site.
func spawnEvidenceIn(sums *Summaries, info *types.Info, region ast.Node) (token.Pos, string, bool) {
	var pos token.Pos
	via := ""
	visitNode(region, func(m ast.Node) bool {
		if via != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.GoStmt:
			pos, via = m.Pos(), "a go statement"
			return false
		case *ast.CallExpr:
			cs := sums.CalleeSummaryDevirt(info, m)
			if cs == nil {
				return true
			}
			if cs.SpawnChurn || (cs.SpawnsGoroutine && !cs.WaitsOnWG) {
				pos, via = m.Pos(), types.ExprString(m.Fun)
				return false
			}
		}
		return true
	})
	return pos, via, via != ""
}

// joinEvidenceIn scans region (skipping nested literal bodies) for a
// WaitGroup join: a direct wg.Wait or a callee with WaitsOnWG.
func joinEvidenceIn(sums *Summaries, info *types.Info, region ast.Node) (string, bool) {
	via := ""
	visitNode(region, func(m ast.Node) bool {
		if via != "" {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWGWaitCall(info, call) {
			via = "wg.Wait"
			return false
		}
		if cs := sums.CalleeSummaryDevirt(info, call); cs != nil && cs.WaitsOnWG {
			via = types.ExprString(call.Fun)
			return false
		}
		return true
	})
	return via, via != ""
}

// computeSpawnChurn fills the SpawnChurn summary fact, bottom-up over
// the SCCs after the main fixpoint (SpawnsGoroutine, WaitsOnWG and
// Cost are final). A function churns when it performs a spawn+join
// unit per call with no amortizing structure:
//
//	(a) a high-trip loop in its own body that joins (directly or via a
//	    WaitsOnWG callee) without spawning — a rounds loop driving
//	    already-spawned workers: the pool shape;
//	(b) a high-trip loop that sends on a channel without spawning — a
//	    job-feeding loop distributing work to a resident pool;
//	(c) no spawn of its own at all: every spawn it inherits comes from
//	    a callee that is itself a non-churny self-contained
//	    computation (SpawnChurn false, WaitsOnWG true) — a dispatcher
//	    like pagerank.ComputeCtx.
//
// The fact has negative dependencies on callee facts, so unlike the
// monotone summary lattice it is computed in one bottom-up pass, not
// a fixpoint; recursion through spawn/join helpers (not a pattern
// this repository has) would read a same-SCC callee's fact as its
// zero value.
func computeSpawnChurn(sums *Summaries) {
	for _, scc := range sums.Graph.SCCs {
		for _, n := range scc {
			s := sums.byFunc[n.Func]
			if s.SpawnsGoroutine && s.WaitsOnWG && !spawnAmortized(sums, n) {
				s.SpawnChurn = true
			}
		}
	}
}

// spawnAmortized reports whether n's spawn+join unit is amortized; see
// computeSpawnChurn.
func spawnAmortized(sums *Summaries, n *CGNode) bool {
	info := n.Pkg.Info

	// (a)/(b): a high-trip rounds or job-feeding loop with no spawn of
	// its own, anywhere in the function (worker literals included — a
	// resident worker's receive loop is amortizing structure too).
	amortizing := false
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if amortizing {
			return false
		}
		var loop ast.Stmt
		var body *ast.BlockStmt
		switch l := m.(type) {
		case *ast.ForStmt:
			loop, body = l, l.Body
		case *ast.RangeStmt:
			loop, body = l, l.Body
		default:
			return true
		}
		if classifyLoop(info, loop) == tripConst {
			return true
		}
		if _, _, spawned := spawnEvidenceIn(sums, info, body); spawned {
			return true
		}
		if _, joined := joinEvidenceIn(sums, info, body); joined || chanSendIn(body) {
			amortizing = true
			return false
		}
		return true
	})
	if amortizing {
		return true
	}

	// (c): a pure dispatcher — no go statement of its own, and every
	// spawn-carrying callee is a joined, non-churny computation.
	dispatches := true
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if !dispatches {
			return false
		}
		switch m := m.(type) {
		case *ast.GoStmt:
			dispatches = false
			return false
		case *ast.CallExpr:
			cs := sums.CalleeSummaryDevirt(info, m)
			if cs != nil && cs.SpawnsGoroutine && (cs.SpawnChurn || !cs.WaitsOnWG) {
				dispatches = false
				return false
			}
		}
		return true
	})
	return dispatches
}

// chanSendIn reports a channel send statement in region (nested
// literal bodies skipped).
func chanSendIn(region ast.Node) bool {
	found := false
	visitNode(region, func(m ast.Node) bool {
		if _, ok := m.(*ast.SendStmt); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}
