package analysis

import (
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition-order graph and
// reports the two shapes that deadlock: a self-edge (a lock class
// acquired while an instance of the same class is already held —
// sync.Mutex is not reentrant) and a cycle between classes (the ABBA
// pattern: one path holds A while taking B, another holds B while
// taking A).
//
// The graph's nodes are lock CLASSES (lockset.go's lockClass): all
// instances of "field mu of type T" share a node, so an ABBA between
// two different instances of the same struct pairing is still a cycle.
// Edges come from the summaries — `held when acquired` is recorded
// intraprocedurally by the lockset flow and propagated through call
// sites (caller's held set × callee's acquired set), so an A→B half
// hidden in a helper still closes the cycle.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the module (no double-lock, no ABBA)",
	Run:  runLockOrder,
}

// lockOrderFinding is one deadlock report, anchored at an acquisition.
type lockOrderFinding struct {
	pos     token.Pos
	message string
}

func runLockOrder(pass *Pass) {
	if pass.Summaries == nil {
		return
	}
	findings := pass.Summaries.lockOrderFindings()
	if len(findings) == 0 {
		return
	}
	// A finding is global; report it once, from the pass whose package
	// owns the file it is anchored in.
	owned := make(map[string]bool, len(pass.Pkg.Files))
	for _, f := range pass.Pkg.Files {
		owned[pass.Pkg.Fset.Position(f.Pos()).Filename] = true
	}
	for _, f := range findings {
		if owned[pass.Pkg.Fset.Position(f.pos).Filename] {
			pass.Reportf(f.pos, "%s", f.message)
		}
	}
}

// lockOrderFindings computes (once per Run) the module's deadlock
// findings from the union of every summary's lock edges.
func (s *Summaries) lockOrderFindings() []lockOrderFinding {
	if s.lockChecked {
		return s.lockFindings
	}
	s.lockChecked = true

	// Merge every summary's edges, keeping the earliest witness per
	// (from, to) pair for stable positions.
	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]LockEdge)
	for _, sum := range s.byFunc {
		for _, e := range sum.LockEdges {
			k := edgeKey{e.FromClass, e.ToClass}
			if old, ok := edges[k]; !ok || e.Pos < old.Pos {
				edges[k] = e
			}
		}
	}
	if len(edges) == 0 {
		return nil
	}

	succ := make(map[string][]string)
	nodes := make(map[string]bool)
	for k, e := range edges {
		nodes[k.from] = true
		nodes[k.to] = true
		if k.from != k.to {
			succ[k.from] = append(succ[k.from], k.to)
		} else {
			// Self-edge: double-lock.
			s.lockFindings = append(s.lockFindings, lockOrderFinding{
				pos: e.Pos,
				message: "lock " + e.ToName + " (class " + e.ToClass + ") acquired while an instance of the same class is already held: sync mutexes are not reentrant, so this self-cycle deadlocks — release first or split the critical section",
			})
		}
	}
	for _, ss := range succ {
		sort.Strings(ss)
	}

	// Tarjan over classes; an SCC with more than one node is a cycle.
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, scc := range classSCCs(names, succ) {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, c := range scc {
			inSCC[c] = true
		}
		// Anchor at the earliest edge inside the cycle.
		var witness LockEdge
		first := true
		for k, e := range edges {
			if k.from == k.to || !inSCC[k.from] || !inSCC[k.to] {
				continue
			}
			if first || e.Pos < witness.Pos {
				witness, first = e, false
			}
		}
		if first {
			continue
		}
		s.lockFindings = append(s.lockFindings, lockOrderFinding{
			pos: witness.Pos,
			message: "lock order cycle between {" + strings.Join(scc, ", ") + "}: here " + witness.FromName + " is held while acquiring " + witness.ToName + ", but another path acquires them in the opposite order (ABBA deadlock) — pick one global acquisition order",
		})
	}
	sort.Slice(s.lockFindings, func(i, j int) bool {
		a, b := s.lockFindings[i], s.lockFindings[j]
		if a.pos != b.pos {
			return a.pos < b.pos
		}
		return a.message < b.message
	})
	return s.lockFindings
}

// classSCCs is Tarjan's algorithm over the class graph, iterative to
// match the callgraph implementation's avoidance of deep recursion.
func classSCCs(names []string, succ map[string][]string) [][]string {
	index := make(map[string]int, len(names))
	low := make(map[string]int, len(names))
	onStack := make(map[string]bool, len(names))
	var stack []string
	var sccs [][]string
	next := 0

	type frame struct {
		node string
		si   int
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{node: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.si < len(succ[f.node]) {
				w := succ[f.node][f.si]
				f.si++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{node: w})
				} else if onStack[w] && index[w] < low[f.node] {
					low[f.node] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := &work[len(work)-1]
				if low[f.node] < low[parent.node] {
					low[parent.node] = low[f.node]
				}
			}
			if low[f.node] == index[f.node] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
