package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance verifies that every mutex acquisition reaches a matching
// release on all control-flow paths out of the function: a `mu.Lock()`
// must be followed by `mu.Unlock()` on every path to return, or by a
// `defer mu.Unlock()`. RWMutex read locks are tracked separately
// (RLock pairs with RUnlock, Lock with Unlock).
//
// An early `return err` between Lock and Unlock is the classic leak in
// concurrent serving code: the next goroutine to touch the structure
// deadlocks, and rank-serving state behind the lock is frozen mid-
// update. The checker is intentionally intra-procedural — a function
// that acquires a lock for its caller to release needs an
// //arlint:allow lockbalance sentinel documenting the handoff.
//
// Simplifications: a defer anywhere in the function counts as running
// at every exit (conditionally registered defers are assumed
// registered), and locks are identified by the source expression of
// their receiver (`s.mu` and `mu` are different locks; aliasing through
// pointers is not tracked).
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "every Lock must reach an Unlock or defer Unlock on all paths (RWMutex aware)",
	Run:  runLockBalance,
}

// lockOp classifies a mutex method call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opUnlock
	opRLock
	opRUnlock
)

// lockFact maps held-lock keys ("w " + expr or "r " + expr) to the
// position of the acquisition. Facts are treated as immutable.
type lockFact map[string]token.Pos

func runLockBalance(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fn := range functionsOf(file) {
			checkLockBalanceFunc(pass, fn)
		}
	}
}

func checkLockBalanceFunc(pass *Pass, fn funcBody) {
	info := pass.Pkg.Info
	g := BuildCFG(fn.body)

	// Deferred releases run at every exit.
	deferred := make(map[string]bool)
	for _, d := range g.Defers {
		if op, key := classifyLockCall(info, d.Call); op == opUnlock {
			deferred["w "+key] = true
		} else if op == opRUnlock {
			deferred["r "+key] = true
		}
	}

	transfer := func(b *Block, in lockFact) lockFact {
		out := in
		cloned := false
		clone := func() {
			if !cloned {
				c := make(lockFact, len(out)+1)
				for k, v := range out {
					c[k] = v
				}
				out = c
				cloned = true
			}
		}
		for _, node := range b.Nodes {
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				continue // applied at exit via the deferred set
			}
			for _, call := range callsIn(node) {
				op, key := classifyLockCall(info, call)
				switch op {
				case opLock:
					clone()
					out["w "+key] = call.Pos()
				case opUnlock:
					clone()
					delete(out, "w "+key)
				case opRLock:
					clone()
					out["r "+key] = call.Pos()
				case opRUnlock:
					clone()
					delete(out, "r "+key)
				}
			}
		}
		return out
	}

	res := Solve(g, FlowProblem[lockFact]{
		Entry:    lockFact{},
		Transfer: transfer,
		Join: func(a, b lockFact) lockFact {
			if len(b) == 0 {
				return a
			}
			if len(a) == 0 {
				return b
			}
			out := make(lockFact, len(a)+len(b))
			for k, v := range a {
				out[k] = v
			}
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b lockFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
	})

	if !res.Reached[g.Exit.Index] {
		return
	}
	for key, pos := range res.In[g.Exit.Index] {
		if deferred[key] {
			continue
		}
		verb := "Unlock"
		if key[0] == 'r' {
			verb = "RUnlock"
		}
		pass.Reportf(pos,
			"%s acquired here may not reach %s on every path out of %s; release it on all paths or defer the release",
			lockName(key), verb, fn.name)
	}
}

// classifyLockCall recognizes calls to the sync package's mutex
// methods (including methods promoted through embedding) and returns
// the operation plus the receiver's source expression as the lock key.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (lockOp, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	var op lockOp
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return opNone, ""
	}
	obj := info.Uses[sel.Sel]
	if selection, ok := info.Selections[sel]; ok {
		obj = selection.Obj()
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return opNone, ""
	}
	return op, types.ExprString(sel.X)
}

// lockName renders a held-lock key for diagnostics.
func lockName(key string) string {
	kind, expr := key[:1], key[2:]
	if kind == "r" {
		return "read lock on " + expr
	}
	return "lock on " + expr
}
