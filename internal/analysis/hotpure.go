package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPure enforces the contract of the `//arlint:hot` directive: a
// function annotated hot — the kernel sweeps and the per-node score
// kernels the convergence loops execute millions of times — must be
//
//   - transitively NOT impure on the purity lattice (purity.go): writes
//     confined to parameter-reachable memory (the output-buffer shape),
//     no globals, no channels, no goroutines, no I/O. This is the
//     reorderability the local-estimation argument needs: per-node
//     evaluations writing disjoint output slots commute, so sweeps can
//     be partitioned, parallelized and rescheduled freely;
//   - allocation-free: no make/growing-append per call, directly or in
//     a callee (the Allocates summary fact);
//   - free of dynamic dispatch in its loops: every call inside a for or
//     range statement of the hot function and its transitive static
//     callees must resolve statically. Interface calls belong in the
//     snapshot phase (kernel.Snapshot), never in a sweep.
//
// The directive goes in the function's doc comment:
//
//	//arlint:hot
//	func (c *CSR) SweepRange(next, cur, p, d []float64, …) float64 { … }
//
// Unlike most checkers there is no sanctioned escape hatch: the
// acceptance contract for hot paths is zero baseline suppressions —
// either the function is provably well-behaved or the annotation (or
// the code) is wrong.
var HotPure = &Analyzer{
	Name: "hotpure",
	Doc:  "//arlint:hot functions must be transitively pure, allocation-free, and free of dynamic calls in loops",
	Run:  runHotPure,
}

// hotSentinel is the directive comment marking a hot function.
const hotSentinel = "arlint:hot"

// isHotAnnotated reports whether fd carries the //arlint:hot directive
// in its doc comment.
func isHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotSentinel || strings.HasPrefix(text, hotSentinel+" ") {
			return true
		}
	}
	return false
}

func runHotPure(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotAnnotated(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	name := fn.Name()
	s := pass.Summaries.Of(fn)
	if s == nil {
		return // no summary support (intraprocedural unit-test pass)
	}

	if s.Purity == PurityImpure {
		pass.Reportf(fd.Name.Pos(), "hot function %s is not transitively pure: %s", name, s.PurityCause)
	}
	if s.Allocates {
		via := ""
		if s.AllocVia != "" {
			via = " (via " + s.AllocVia + ")"
		}
		pass.Reportf(fd.Name.Pos(), "hot function %s allocates per call%s; hoist the buffer to the caller or a pool", name, via)
	}

	// Dynamic dispatch in loops, over the hot region: the annotated
	// function plus every transitively reachable static callee. A
	// violation in the annotated body reports at the call; one inside a
	// callee reports at the annotation, naming where the dispatch
	// hides — the callee may live in another package whose pass cannot
	// carry the finding.
	root := pass.Graph.NodeOf(fn)
	if root == nil {
		return
	}
	visited := map[*CGNode]bool{root: true}
	work := []*CGNode{root}
	for len(work) > 0 {
		node := work[0]
		work = work[1:]
		for _, call := range dynamicCallsInLoops(node) {
			if node == root {
				pass.Reportf(call.Pos(), "hot function %s makes a dynamic call inside a loop: %s resolves at run time; hoist the interface access out of the sweep",
					name, types.ExprString(call.Fun))
			} else {
				p := node.Pkg.Fset.Position(call.Pos())
				pass.Reportf(fd.Name.Pos(), "hot function %s reaches a dynamic call in a loop via %s (%s:%d): %s resolves at run time",
					name, node.String(), p.Filename, p.Line, types.ExprString(call.Fun))
			}
		}
		for _, c := range node.Calls {
			if !visited[c] {
				visited[c] = true
				work = append(work, c)
			}
		}
	}
}

// dynamicCallsInLoops returns the call expressions inside for/range
// bodies of node whose callee does not resolve statically: interface
// method calls and func-value calls. Builtins, conversions and
// immediately-invoked literals are exempt (no dispatch), as are calls
// to whitelisted pure externals (math.Abs compiles to an instruction,
// not a call).
func dynamicCallsInLoops(node *CGNode) []*ast.CallExpr {
	info := node.Pkg.Info
	var out []*ast.CallExpr
	var scanLoop func(body ast.Node)
	scanLoop = func(body ast.Node) {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun := ast.Unparen(call.Fun)
			if _, isLit := fun.(*ast.FuncLit); isLit {
				return true
			}
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := fun.(*ast.Ident); ok {
				if _, builtin := info.Uses[id].(*types.Builtin); builtin {
					return true
				}
			}
			if StaticCallee(info, call) == nil {
				out = append(out, call)
			}
			return true
		})
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			scanLoop(n.Body)
			return false // the scan already covers nested loops
		case *ast.RangeStmt:
			scanLoop(n.Body)
			return false
		}
		return true
	})
	return out
}
