package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicFree forbids bare panic calls in library packages: rankers are
// meant to run inside long-lived serving processes, where a panic on a
// bad input takes down every in-flight request. Library code returns
// errors instead.
//
// Exemptions: commands and examples (package main — the checker is
// LibraryOnly), test files (never analyzed), and functions following the
// Must* convention (MustFromEdges and friends, which exist precisely to
// convert an error into a panic for literal inputs). Anything else needs
// an //arlint:allow panicfree sentinel.
var PanicFree = &Analyzer{
	Name:        "panicfree",
	Doc:         "forbid bare panic in library packages (Must* helpers exempt)",
	LibraryOnly: true,
	Run:         runPanicFree,
}

func runPanicFree(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasPrefix(fn.Name.Name, "Must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
					return true // shadowed: a local function named panic
				}
				pass.Reportf(call.Pos(),
					"panic in library function %s; return an error or wrap in a Must* helper", fn.Name.Name)
				return true
			})
		}
	}
}
