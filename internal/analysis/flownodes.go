package analysis

import (
	"go/ast"
)

// Helpers shared by the CFG-based checkers: walking the functions of a
// package and the expressions of one CFG node.

// funcBody is one analyzable function: a declared function or a
// function literal, with the name used in diagnostics.
type funcBody struct {
	name string
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

// functionsOf yields every function body in the file, including nested
// function literals, each exactly once.
func functionsOf(file *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		out = append(out, funcBody{name: fn.Name.Name, decl: fn, body: fn.Body})
		name := fn.Name.Name
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				out = append(out, funcBody{name: name + " (func literal)", lit: lit, body: lit.Body})
			}
			return true
		})
	}
	return out
}

// visitNode walks the expressions of one CFG node in source order,
// calling f on each descendant. It skips function literal bodies (they
// execute at another time, and are analyzed as functions of their own)
// and the body of a range statement (its statements live in their own
// CFG blocks; only the key, value and ranged expression belong to the
// loop head).
func visitNode(n ast.Node, f func(ast.Node) bool) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			visitNode(rs.Key, f)
		}
		if rs.Value != nil {
			visitNode(rs.Value, f)
		}
		visitNode(rs.X, f)
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// callsIn collects the call expressions of one CFG node in source
// order, excluding calls inside nested function literals and range
// bodies (see visitNode).
func callsIn(n ast.Node) []*ast.CallExpr {
	var calls []*ast.CallExpr
	visitNode(n, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			calls = append(calls, call)
		}
		return true
	})
	return calls
}
