package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the substrate of the concurrency checkers (racecheck,
// lockorder): abstract shared-memory locations, a lockset dataflow over
// the CFG engine, and an access scanner that computes which locations a
// function reads and writes under which locks — per function, bottom-up
// through the call graph so helper-hidden accesses surface at the call
// site.
//
// The model, in one paragraph: an AbsLoc names a storage root (a
// package-level var, a parameter, the receiver, or a local) plus an
// access path of field selections, indexings and derefs; the lockset
// flow computes, per CFG point, the set of locks certainly held (gen at
// Lock/RLock, kill at Unlock/RUnlock, intersection at joins, and a
// `defer mu.Unlock()` never kills — the lock is held to function exit);
// the access scanner tags every read and write of a non-thread-private
// location with the lockset held at that program point. racecheck then
// pairs the accesses of concurrently-live goroutines and reports pairs
// with at least one write, overlapping paths, and disjoint locksets.

// locKind classifies the root of an abstract location.
type locKind uint8

const (
	// locGlobal: a package-level variable — shared by everyone.
	locGlobal locKind = iota
	// locParam: memory reachable from parameter i of the summarized
	// function; rebased onto the argument at each call site.
	locParam
	// locRecv: memory reachable from the method receiver.
	locRecv
	// locLocal: a function-local variable (meaningful only within one
	// frame, where goroutines capture it).
	locLocal
	// locOpaque: an expression the resolver could not root (used for
	// lock identity only, keyed by source text).
	locOpaque
)

// AbsLoc is one abstract shared-memory location: a root plus an access
// path. Paths are rendered root→leaf with ".f" for field selection,
// "[*]" for indexing at an unknown index, "[k]" for indexing at a
// constant literal, and "/*" for an explicit deref.
type AbsLoc struct {
	Kind  locKind
	Obj   types.Object // root var for locGlobal / locLocal
	Param int          // parameter index for locParam
	Path  string
	Name  string // display form for diagnostics
}

// key returns the identity the conflict and lockset maps use. Local
// roots key by declaration position, which is unique across the
// module's shared FileSet.
func (l AbsLoc) key() string {
	switch l.Kind {
	case locGlobal:
		pkg := ""
		if l.Obj != nil && l.Obj.Pkg() != nil {
			pkg = l.Obj.Pkg().Path()
		}
		return "g:" + pkg + "." + objName(l.Obj) + l.Path
	case locParam:
		return "p" + strconv.Itoa(l.Param) + l.Path
	case locRecv:
		return "r" + l.Path
	case locLocal:
		return "l:" + strconv.Itoa(int(objPos(l.Obj))) + ":" + objName(l.Obj) + l.Path
	default:
		return "x:" + l.Name
	}
}

// rootKey is key() with the access path cleared — racecheck groups
// accesses by storage root before running path-overlap conflict
// detection on the pairs within one group.
func (l AbsLoc) rootKey() string {
	l.Path = ""
	return l.key()
}

func objName(o types.Object) string {
	if o == nil {
		return "?"
	}
	return o.Name()
}

func objPos(o types.Object) token.Pos {
	if o == nil {
		return token.NoPos
	}
	return o.Pos()
}

// heldLock is one lock in a lockset: its location identity, its
// lockdep-style class (see lockClass) and a display name.
type heldLock struct {
	Loc   AbsLoc
	Class string
	Name  string
	Pos   token.Pos
}

// lockSet maps AbsLoc keys to the lock held under that key. RLock and
// Lock share a key: for race suppression a read lock held by both sides
// does NOT actually exclude two writers, but write-under-RLock is a
// distinct bug class the checker documents as out of scope.
type lockSet map[string]heldLock

// SharedAccess is one read or write of a shared location, tagged with
// the lockset held at the access. Concurrent marks accesses performed
// by a goroutine the function spawns (unjoined before return), which a
// caller must treat as racing with its own code.
type SharedAccess struct {
	Loc        AbsLoc
	Write      bool
	Concurrent bool
	Locks      []heldLock
	Pos        token.Pos
}

// locksKey renders a lockset's identity (sorted lock keys) for dedup.
func locksKey(locks []heldLock) string {
	keys := make([]string, len(locks))
	for i, l := range locks {
		keys[i] = l.Loc.key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

func (a SharedAccess) dedupKey() string {
	rw := "R"
	if a.Write {
		rw = "W"
	}
	cc := ""
	if a.Concurrent {
		cc = "c"
	}
	return a.Loc.key() + "\x00" + rw + cc + "\x00" + locksKey(a.Locks)
}

// locksOf flattens a lockSet into a sorted slice.
func locksOf(held lockSet) []heldLock {
	if len(held) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(held))
	for _, l := range held {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Loc.key() < out[j].Loc.key() })
	return out
}

// disjointLocks reports whether two lock slices share no lock identity.
func disjointLocks(a, b []heldLock) bool {
	if len(a) == 0 || len(b) == 0 {
		return true
	}
	set := make(map[string]bool, len(a))
	for _, l := range a {
		set[l.Loc.key()] = true
	}
	for _, l := range b {
		if set[l.Loc.key()] {
			return false
		}
	}
	return true
}

// LockSite is one lock acquisition attributed to a function (its own
// body or a summarized callee), identified by class.
type LockSite struct {
	Class string
	Name  string
	Pos   token.Pos
}

// LockEdge records "FromClass was held when ToClass was acquired" — one
// edge of the module-wide lock-order graph lockorder cycles over.
type LockEdge struct {
	FromClass, FromName string
	ToClass, ToName     string
	Pos                 token.Pos
}

// conflict reports whether two accesses to the same root can touch the
// same memory with at least one write. Paths are compared component by
// component:
//
//   - matching field selections / derefs continue the walk; different
//     fields are disjoint storage
//   - two unknown indexings "[*]" at the same depth are assumed
//     DISJOINT — the worker-indexed slot pattern (partDeltas[w] per
//     goroutine) writes provably different elements, and flagging it
//     would bury the checker in false positives; DESIGN.md records the
//     unsoundness
//   - "[*]" against a constant index overlaps; two distinct constants
//     are disjoint (array/slice semantics)
//   - map steps "{}" always collide: Go's runtime forbids concurrent
//     map access no matter which keys are involved
//
// When one path is a proper prefix of the other, the SHALLOW side must
// be the write (writing s.f clobbers s.f.g, but reading the header s
// while a goroutine writes s[w] is the benign parallel-sweep shape).
func conflict(a, b SharedAccess) bool {
	if !a.Write && !b.Write {
		return false
	}
	pa, pb := splitPath(a.Loc.Path), splitPath(b.Loc.Path)
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		ca, cb := pa[i], pb[i]
		switch {
		case ca == cb:
			if ca == "[*]" {
				return false // worker-indexed slots assumed disjoint
			}
		case strings.HasPrefix(ca, "[") && strings.HasPrefix(cb, "["):
			if ca != "[*]" && cb != "[*]" {
				return false // distinct constant indices
			}
		default:
			return false // different fields — disjoint storage
		}
	}
	if len(pa) == len(pb) {
		return true
	}
	if len(pa) < len(pb) {
		return a.Write
	}
	return b.Write
}

// splitPath parses a rendered access path back into its components.
// Components start with '.', '[', '{' or the deref marker "/*".
func splitPath(path string) []string {
	if path == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 1; i < len(path); i++ {
		switch path[i] {
		case '.', '[', '{':
			out = append(out, path[start:i])
			start = i
		case '/':
			if i+1 < len(path) && path[i+1] == '*' {
				out = append(out, path[start:i])
				start = i
			}
		}
	}
	return append(out, path[start:])
}

// resolved is the outcome of rooting one expression.
type resolved struct {
	loc      AbsLoc
	crossed  bool // the path crossed a pointer/slice/map boundary
	viaAlias bool // the root came from the goroutine-param alias map
	ok       bool
}

// locResolver roots expressions into abstract locations. In summary
// mode (building a function's exported access set) parameters and the
// receiver become locParam/locRecv so call sites can rebase them; in
// frame mode (racecheck analyzing one function body) every root stays
// concrete. privLo/privHi bound a goroutine literal: objects declared
// inside it are thread-private. alias rebases a goroutine literal's
// pointer-like value parameters onto the spawn-site arguments.
type locResolver struct {
	info    *types.Info
	summary bool
	paramOf map[types.Object]int
	recvObj types.Object
	privLo  token.Pos
	privHi  token.Pos
	alias   map[types.Object]AbsLoc
}

// pathOfIndex renders one index component: a constant literal keeps its
// value (different constants provably touch different elements only
// when equal constants collide, so equal paths still conflict), any
// other index is "[*]".
func pathOfIndex(e ast.Expr) string {
	if lit, ok := ast.Unparen(e).(*ast.BasicLit); ok {
		return "[" + lit.Value + "]"
	}
	return "[*]"
}

// resolve walks expr down to its root identifier, accumulating the
// access path and whether the walk crossed out of the root's own
// storage (same rules as purity.go's writeRoot).
func (r *locResolver) resolve(expr ast.Expr) resolved {
	var rev []string // path components leaf→root
	crossed := false
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.Ident:
			res, via := r.rootOf(e)
			if !res.ok {
				return resolved{}
			}
			for i := len(rev) - 1; i >= 0; i-- {
				res.loc.Path += rev[i]
				res.loc.Name += rev[i]
			}
			res.crossed = crossed
			res.viaAlias = via
			return res
		case *ast.SelectorExpr:
			// A package-qualified global (pkg.Var) roots at the var.
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := r.info.Uses[id].(*types.PkgName); isPkg {
					expr = e.Sel
					continue
				}
			}
			if sel, ok := r.info.Selections[e]; ok && sel.Kind() != types.FieldVal {
				return resolved{} // method value — not a storage path
			}
			if t := r.info.TypeOf(e.X); t != nil {
				if _, ptr := t.Underlying().(*types.Pointer); ptr {
					crossed = true
				}
			}
			rev = append(rev, "."+e.Sel.Name)
			expr = e.X
		case *ast.IndexExpr:
			comp := pathOfIndex(e.Index)
			if t := r.info.TypeOf(e.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					// Map steps collide on any key (the runtime forbids
					// concurrent access per map, not per entry).
					comp = "{}"
					crossed = true
				case *types.Array:
					// indexing an array value stays in its storage
				default:
					crossed = true
				}
			} else {
				crossed = true
			}
			rev = append(rev, comp)
			expr = e.X
		case *ast.StarExpr:
			crossed = true
			rev = append(rev, "/*")
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				expr = e.X
				continue
			}
			return resolved{}
		default:
			return resolved{}
		}
	}
}

// rootOf maps a root identifier to its AbsLoc.
func (r *locResolver) rootOf(id *ast.Ident) (resolved, bool) {
	obj := r.info.Uses[id]
	if obj == nil {
		obj = r.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return resolved{}, false
	}
	if r.alias != nil {
		if loc, ok := r.alias[v]; ok {
			return resolved{loc: loc, ok: true}, true
		}
	}
	if isPackageLevelVar(v) {
		name := v.Name()
		if v.Pkg() != nil {
			name = v.Pkg().Name() + "." + name
		}
		return resolved{loc: AbsLoc{Kind: locGlobal, Obj: v, Name: name}, ok: true}, false
	}
	if r.summary {
		if i, isP := r.paramOf[v]; isP {
			return resolved{loc: AbsLoc{Kind: locParam, Param: i, Name: v.Name()}, ok: true}, false
		}
		if r.recvObj != nil && v == r.recvObj {
			return resolved{loc: AbsLoc{Kind: locRecv, Name: v.Name()}, ok: true}, false
		}
	}
	return resolved{loc: AbsLoc{Kind: locLocal, Obj: v, Name: v.Name()}, ok: true}, false
}

// privateTo reports whether the resolved root is declared inside the
// resolver's private (goroutine-literal) range — thread-confined
// storage no other goroutine can reach, unless the root arrived
// through a pointer-like alias.
func (r *locResolver) privateTo(res resolved) bool {
	if r.privLo == token.NoPos || res.viaAlias {
		return false
	}
	if res.loc.Kind != locLocal || res.loc.Obj == nil {
		return false
	}
	p := res.loc.Obj.Pos()
	return p >= r.privLo && p <= r.privHi
}

// lockClass computes the lockdep-style class of a lock location: all
// instances of "the mu field of type T" share a class, so an ABBA cycle
// between two instances of the same pairing is still detected. Globals
// class by qualified name; param/recv/typed-path locks by the root's
// named type; a plain local mutex by its declaring function.
func lockClass(info *types.Info, r *locResolver, res resolved, funcName, pkgPath string) (class, name string) {
	loc := res.loc
	name = loc.Name
	switch loc.Kind {
	case locGlobal:
		pkg := pkgPath
		if loc.Obj != nil && loc.Obj.Pkg() != nil {
			pkg = loc.Obj.Pkg().Path()
		}
		return pkg + "." + objName(loc.Obj) + loc.Path, name
	case locParam, locRecv, locLocal:
		var t types.Type
		if loc.Obj != nil {
			t = loc.Obj.Type()
		} else if loc.Kind == locRecv && r != nil && r.recvObj != nil {
			t = r.recvObj.Type()
		}
		if loc.Path != "" && t != nil {
			if tn := namedRootType(t); tn != "" {
				return tn + loc.Path, name
			}
		}
		if loc.Kind == locLocal && loc.Path == "" {
			return pkgPath + "." + funcName + "." + objName(loc.Obj), name
		}
		if t != nil {
			if tn := namedRootType(t); tn != "" {
				return tn + loc.Path, name
			}
		}
	}
	return "expr:" + name, name
}

// namedRootType renders the qualified name of t's named type, looking
// through one pointer.
func namedRootType(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// resolveLock roots a lock receiver expression; unresolvable receivers
// get an opaque location keyed by source text so `m.mu.Lock()` through
// an unrooted chain still has a stable identity.
func resolveLock(info *types.Info, r *locResolver, expr ast.Expr, pkgPath string) resolved {
	if res := r.resolve(expr); res.ok {
		return res
	}
	name := types.ExprString(expr)
	return resolved{loc: AbsLoc{Kind: locOpaque, Name: "x:" + pkgPath + ":" + name}, ok: true}
}

// lockTransferNode applies one CFG node's lock operations to held,
// returning a (possibly fresh) set. DeferStmt nodes are skipped
// entirely: `defer mu.Unlock()` releases at return, so the lock stays
// held for every access after the Lock — the defer-scoped-unlock rule.
func lockTransferNode(info *types.Info, r *locResolver, node ast.Node, held lockSet, funcName, pkgPath string) lockSet {
	if _, isDefer := node.(*ast.DeferStmt); isDefer {
		return held
	}
	out := held
	cloned := false
	clone := func() {
		if !cloned {
			c := make(lockSet, len(out)+1)
			for k, v := range out {
				c[k] = v
			}
			out = c
			cloned = true
		}
	}
	for _, call := range callsIn(node) {
		op, _ := classifyLockCall(info, call)
		if op == opNone {
			continue
		}
		sel := call.Fun.(*ast.SelectorExpr)
		res := resolveLock(info, r, sel.X, pkgPath)
		key := res.loc.key()
		switch op {
		case opLock, opRLock:
			class, name := lockClass(info, r, res, funcName, pkgPath)
			clone()
			out[key] = heldLock{Loc: res.loc, Class: class, Name: name, Pos: call.Pos()}
		case opUnlock, opRUnlock:
			if _, ok := out[key]; ok {
				clone()
				delete(out, key)
			}
		}
	}
	return out
}

// solveLockFlow runs the lockset dataflow over g: gen at Lock/RLock,
// kill at Unlock/RUnlock, intersection at joins (a lock is in the set
// only when held on EVERY incoming path), empty set at entry.
func solveLockFlow(info *types.Info, r *locResolver, g *CFG, funcName, pkgPath string) *FlowResult[lockSet] {
	return Solve(g, FlowProblem[lockSet]{
		Entry: lockSet{},
		Transfer: func(b *Block, in lockSet) lockSet {
			out := in
			for _, node := range b.Nodes {
				out = lockTransferNode(info, r, node, out, funcName, pkgPath)
			}
			return out
		},
		Join: func(a, b lockSet) lockSet {
			if len(a) == 0 || len(b) == 0 {
				return lockSet{}
			}
			out := make(lockSet, len(a))
			for k, v := range a {
				if w, ok := b[k]; ok {
					if w.Pos < v.Pos {
						v = w
					}
					out[k] = v
				}
			}
			return out
		},
		Equal: func(a, b lockSet) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
	})
}
