package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoCapture flags goroutine literals that write to variables declared
// outside the closure. Unsynchronized writes to captured variables are
// the data race internal/pagerank/parallel.go is engineered to avoid:
// its workers only ever write through worker-indexed slots (a[i],
// deltas[w]) so that no two goroutines touch the same element.
//
// Allowed forms inside a `go func(...) {...}`:
//   - writes to variables declared inside the closure (including params)
//   - element writes through an index expression — the worker-indexed
//     slot pattern (the checker trusts the index partitioning)
//   - closures that take a lock: any call to a method named Lock or
//     RLock inside the closure exempts it
//   - an //arlint:allow gocapture sentinel
var GoCapture = &Analyzer{
	Name: "gocapture",
	Doc:  "flag goroutines writing captured variables without sync or worker-indexed slots",
	Run:  runGoCapture,
}

func runGoCapture(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if closureTakesLock(lit) {
				return true
			}
			checkCapturedWrites(pass, lit)
			return true
		})
	}
}

// checkCapturedWrites reports writes inside lit whose target variable is
// declared outside lit.
func checkCapturedWrites(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				checkWriteTarget(pass, lit, lhs)
			}
		case *ast.IncDecStmt:
			checkWriteTarget(pass, lit, stmt.X)
		case *ast.RangeStmt:
			if stmt.Tok == token.ASSIGN {
				checkWriteTarget(pass, lit, stmt.Key)
				checkWriteTarget(pass, lit, stmt.Value)
			}
		}
		return true
	})
}

func checkWriteTarget(pass *Pass, lit *ast.FuncLit, target ast.Expr) {
	switch t := target.(type) {
	case nil:
		return
	case *ast.IndexExpr:
		// Worker-indexed slot: each goroutine owns a disjoint set of
		// elements. The partitioning itself is the caller's contract.
		return
	case *ast.Ident:
		if obj := capturedVar(pass.Pkg.Info, t, lit); obj != nil {
			pass.Reportf(t.Pos(),
				"goroutine writes captured variable %q declared outside the closure; use a sync primitive or a worker-indexed slot", t.Name)
		}
	case *ast.SelectorExpr:
		if root := rootIdent(t); root != nil {
			if obj := capturedVar(pass.Pkg.Info, root, lit); obj != nil {
				pass.Reportf(t.Pos(),
					"goroutine writes field of captured variable %q; use a sync primitive or a worker-indexed slot", root.Name)
			}
		}
	case *ast.ParenExpr:
		checkWriteTarget(pass, lit, t.X)
	}
}

// capturedVar returns the variable object t refers to if it is declared
// outside lit, or nil if the write is closure-local (or not a variable).
func capturedVar(info *types.Info, t *ast.Ident, lit *ast.FuncLit) types.Object {
	if t.Name == "_" {
		return nil
	}
	obj := info.Uses[t]
	if obj == nil {
		obj = info.Defs[t] // := defines the variable inside the closure
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return nil
	}
	return v
}

// rootIdent walks to the leftmost identifier of a selector chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// closureTakesLock reports whether lit calls a Lock/RLock method
// anywhere in its body; such closures are assumed to guard their shared
// writes with the corresponding critical section.
func closureTakesLock(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
