package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// A baseline records the currently-accepted findings of a repository so
// a newly-tightened checker can land without a flag day: existing
// findings are written to the baseline and suppressed, and only new
// findings fail the build. Entries are keyed by (file, checker, message)
// — deliberately not by line, so a baseline survives edits elsewhere in
// the file — and suppression is a multiset match: a baseline with two
// identical entries suppresses at most two identical findings.

// baselineEntry is one accepted finding.
type baselineEntry struct {
	File    string `json:"file"`
	Checker string `json:"checker"`
	Message string `json:"message"`
}

// baselineFile is the on-disk format.
type baselineFile struct {
	Version  int             `json:"version"`
	Findings []baselineEntry `json:"findings"`
}

// Baseline is a loaded multiset of accepted findings.
type Baseline struct {
	counts map[baselineEntry]int
}

// WriteBaseline records diags (with root-relative paths) at path.
func WriteBaseline(path string, diags []Diagnostic, root string) error {
	entries := make([]baselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, baselineEntry{
			File:    relPath(root, d.Pos.Filename),
			Checker: d.Checker,
			Message: d.Message,
		})
	}
	return writeBaselineEntries(path, entries)
}

// writeBaselineEntries sorts entries and writes them in the on-disk
// format, so a baseline round-trips to the same bytes regardless of the
// order its entries were produced in.
func writeBaselineEntries(path string, entries []baselineEntry) error {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(baselineFile{Version: 1, Findings: entries}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// PruneBaseline rewrites the baseline at path with its stale entries —
// those matching none of diags, by the same multiset match Filter uses
// — removed, and returns how many were dropped. diags must be the
// UNfiltered findings (pruning against already-filtered diagnostics
// would drop every entry that did its job). The file is left untouched
// when nothing is stale, so pruning is idempotent: a second run over
// the same findings removes zero entries.
func PruneBaseline(path string, diags []Diagnostic, root string) (removed int, err error) {
	b, err := LoadBaseline(path)
	if err != nil {
		return 0, err
	}
	matched := make(map[baselineEntry]int, len(b.counts))
	for _, d := range diags {
		key := baselineEntry{File: relPath(root, d.Pos.Filename), Checker: d.Checker, Message: d.Message}
		if matched[key] < b.counts[key] {
			matched[key]++
		}
	}
	entries := make([]baselineEntry, 0, len(b.counts))
	for k, n := range b.counts {
		keep := matched[k]
		removed += n - keep
		for ; keep > 0; keep-- {
			entries = append(entries, k)
		}
	}
	if removed == 0 {
		return 0, nil
	}
	return removed, writeBaselineEntries(path, entries)
}

// LoadBaseline reads a baseline written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("analysis: parsing baseline %s: %w", path, err)
	}
	if f.Version != 1 {
		return nil, fmt.Errorf("analysis: baseline %s has unsupported version %d", path, f.Version)
	}
	b := &Baseline{counts: make(map[baselineEntry]int, len(f.Findings))}
	for _, e := range f.Findings {
		b.counts[e]++
	}
	return b, nil
}

// Filter returns the diagnostics not covered by the baseline, plus the
// stale baseline entries — suppressions that matched no finding at all,
// rendered "file: checker: message" and sorted, each repeated entry
// listed once per unmatched copy. Each baseline entry suppresses at
// most one matching finding; stale entries are the prunable residue
// that would otherwise accumulate as the code they suppressed is fixed
// or deleted.
func (b *Baseline) Filter(diags []Diagnostic, root string) (kept []Diagnostic, stale []string) {
	remaining := make(map[baselineEntry]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, d := range diags {
		key := baselineEntry{File: relPath(root, d.Pos.Filename), Checker: d.Checker, Message: d.Message}
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		kept = append(kept, d)
	}
	for k, n := range remaining {
		for ; n > 0; n-- {
			stale = append(stale, fmt.Sprintf("%s: %s: %s", k.File, k.Checker, k.Message))
		}
	}
	sort.Strings(stale)
	return kept, stale
}
