package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FalseShare flags the performance hole in a pattern gocapture
// sanctions as *correct*: sibling goroutines spawned by one loop, each
// writing its own element of a shared backing array (`partDeltas[w] =
// …` from worker w). The writes are disjoint, so there is no race —
// but adjacent scalar slots share a cache line, and every worker's
// store invalidates the line in every other worker's cache: the slots
// that exist to keep the workers independent serialize them through
// the coherence protocol. The fix is either a cache-line-padded
// stride (worker w owns slot w*pad with pad*elemsize ≥ 64 bytes, the
// kernel.SweepPool deltas layout) or accumulating locally and
// publishing once.
//
// The model, and its edges:
//
//   - a "worker slot" write is an element write X[i] inside a
//     goroutine literal spawned in a loop, where i is exactly the
//     per-iteration identity of the sibling: a captured loop variable
//     (Go ≥ 1.22 per-iteration storage, same assumption racecheck
//     makes) or a literal parameter bound to the loop variable at the
//     go statement;
//   - writes indexed by anything else — an interior loop variable
//     walking the worker's own range (`next[v]` for v in [lo, hi)) —
//     are clean: each worker touches many consecutive lines and only
//     the two boundary lines can ever be shared;
//   - a padded index `w*c` or `w<<k` is clean when the stride reaches
//     a full cache line (64 bytes) for the element type, flagged
//     otherwise;
//   - a loop that joins its goroutines in the same iteration that
//     spawned them (wg.Wait in the loop body, directly or via a
//     callee's WaitsOnWG) runs them one at a time — no two siblings
//     are concurrently live, nothing can false-share, skip.
//
// Known unsoundness, deliberate: spawns of named functions or method
// values (`go sp.worker(w, ch)`) are not inspected — the worker index
// flows through a parameter the intraprocedural pattern cannot see;
// goroutines defined in one function literal and spawned in another
// are likewise unseen; element sizes assume a 64-bit platform. The
// checker exists to catch the shape the repository actually writes,
// not to prove absence of false sharing.
var FalseShare = &Analyzer{
	Name: "falseshare",
	Doc:  "sibling goroutines must not write adjacent elements of one array; pad worker slots to a cache line",
	Run:  runFalseShare,
}

// falseShareLine is the cache-line size the padding advice targets.
const falseShareLine = 64

func runFalseShare(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, fb := range functionsOf(file) {
			// Walk the frame tracking the per-iteration loop variables
			// of the enclosing loops and the innermost loop body (for
			// the join-per-iteration test). Nested literals are their
			// own functionsOf entries and start a fresh frame.
			var walk func(n ast.Node, vars map[types.Object]bool, loopBody *ast.BlockStmt)
			walk = func(n ast.Node, vars map[types.Object]bool, loopBody *ast.BlockStmt) {
				if n == nil {
					return
				}
				ast.Inspect(n, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.FuncLit:
						return false
					case *ast.ForStmt:
						nv := cloneVarSet(vars)
						if m.Init != nil {
							addDefinedVars(pass.Pkg.Info, m.Init, nv)
							walk(m.Init, vars, loopBody)
						}
						walk(m.Cond, nv, m.Body)
						if m.Post != nil {
							walk(m.Post, nv, m.Body)
						}
						walk(m.Body, nv, m.Body)
						return false
					case *ast.RangeStmt:
						nv := cloneVarSet(vars)
						addDefinedVars(pass.Pkg.Info, m, nv)
						walk(m.X, vars, loopBody)
						walk(m.Body, nv, m.Body)
						return false
					case *ast.GoStmt:
						if loopBody != nil {
							checkGoFalseShare(pass, m, vars, loopBody)
						}
						return false
					}
					return true
				})
			}
			walk(fb.body, map[types.Object]bool{}, nil)
		}
	}
}

func cloneVarSet(vars map[types.Object]bool) map[types.Object]bool {
	nv := make(map[types.Object]bool, len(vars)+2)
	for k := range vars {
		nv[k] = true
	}
	return nv
}

// addDefinedVars records the objects a loop header defines: the `w` of
// `for w := 0; …` (stmt is the init AssignStmt) or the key/value of a
// range statement.
func addDefinedVars(info *types.Info, stmt ast.Node, vars map[types.Object]bool) {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
	case *ast.RangeStmt:
		for _, e := range [2]ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
	}
}

// checkGoFalseShare examines one loop-spawned goroutine literal for
// worker-slot writes into shared arrays.
func checkGoFalseShare(pass *Pass, g *ast.GoStmt, loopVars map[types.Object]bool, loopBody *ast.BlockStmt) {
	info := pass.Pkg.Info
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // named/method spawn: worker index invisible here
	}
	if loopJoinsPerIteration(pass, loopBody) {
		return // spawn, join, next iteration: siblings never coexist
	}

	// The sibling-identity objects: captured per-iteration loop vars
	// plus literal parameters bound to a loop var at the go statement.
	sib := make(map[types.Object]bool, len(loopVars)+2)
	for obj := range loopVars {
		sib[obj] = true
	}
	for ai, arg := range g.Call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || !loopVars[info.Uses[id]] {
			continue
		}
		if pobj := litParamAt(info, lit, ai); pobj != nil {
			sib[pobj] = true
		}
	}
	if len(sib) == 0 {
		return
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWorkerSlotWrite(pass, lit, lhs, sib)
			}
		case *ast.IncDecStmt:
			checkWorkerSlotWrite(pass, lit, n.X, sib)
		}
		return true
	})
}

// loopJoinsPerIteration reports whether the loop body blocks on a
// WaitGroup each iteration (directly or via a callee).
func loopJoinsPerIteration(pass *Pass, body *ast.BlockStmt) bool {
	info := pass.Pkg.Info
	joins := false
	visitNode(body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWGWaitCall(info, call) {
			joins = true
			return false
		}
		if cs := pass.Summaries.CalleeSummaryDevirt(info, call); cs != nil && cs.WaitsOnWG {
			joins = true
			return false
		}
		return true
	})
	return joins
}

// litParamAt returns the object of the literal's parameter at argument
// position ai, flattening grouped parameter names.
func litParamAt(info *types.Info, lit *ast.FuncLit, ai int) types.Object {
	i := 0
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if i == ai {
				return info.Defs[name]
			}
			i++
		}
	}
	return nil
}

// checkWorkerSlotWrite flags lhs when it is an element write X[i] with
// i a sibling-identity index (optionally scaled by a constant stride)
// into a shared array of basic elements, and the stride does not reach
// a cache line.
func checkWorkerSlotWrite(pass *Pass, lit *ast.FuncLit, lhs ast.Expr, sib map[types.Object]bool) {
	info := pass.Pkg.Info
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return
	}

	// The base must be a slice/array of basic elements — the scalar
	// "one slot per worker" layout — rooted outside the literal (a
	// worker-local buffer cannot be shared with siblings).
	baseT := info.TypeOf(ix.X)
	if baseT == nil {
		return
	}
	var elem types.Type
	switch u := baseT.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return
	}
	if _, basic := elem.Underlying().(*types.Basic); !basic {
		return
	}
	root := rootIdentObj(info, ix.X)
	if root == nil || insideNode(root.Pos(), lit.Body) {
		return
	}

	strideElems, sibIdx := workerStride(info, ix.Index, sib)
	if sibIdx == nil {
		return
	}
	elemSize := int64(8)
	if sizes := types.SizesFor("gc", "amd64"); sizes != nil {
		elemSize = sizes.Sizeof(elem)
	}
	if strideElems*elemSize >= falseShareLine {
		return // padded: each sibling owns its own line
	}
	pad := falseShareLine / elemSize
	if pad < 1 {
		pad = 1
	}
	pass.Reportf(lhs.Pos(),
		"sibling goroutines write adjacent elements of %s (stride %d B, indexed by %s): the per-worker slots share a cache line and every store invalidates the siblings'; pad the stride to a full line (index by %s*%d) or accumulate locally and publish once",
		types.ExprString(ix.X), strideElems*elemSize, sibIdx.Name(), sibIdx.Name(), pad)
}

// workerStride decomposes an index expression into (stride, sibling
// object): `w` is (1, w), `w*c` and `c*w` are (c, w), `w<<k` is
// (2^k, w). Any other shape returns a nil object.
func workerStride(info *types.Info, idx ast.Expr, sib map[types.Object]bool) (int64, types.Object) {
	sibObj := func(e ast.Expr) types.Object {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && sib[obj] {
				return obj
			}
		}
		return nil
	}
	constVal := func(e ast.Expr) (int64, bool) {
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return constant.Int64Val(constant.ToInt(tv.Value))
		}
		return 0, false
	}
	switch e := ast.Unparen(idx).(type) {
	case *ast.Ident:
		if obj := sibObj(e); obj != nil {
			return 1, obj
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			if obj := sibObj(e.X); obj != nil {
				if c, ok := constVal(e.Y); ok && c > 0 {
					return c, obj
				}
			}
			if obj := sibObj(e.Y); obj != nil {
				if c, ok := constVal(e.X); ok && c > 0 {
					return c, obj
				}
			}
		case token.SHL:
			if obj := sibObj(e.X); obj != nil {
				if c, ok := constVal(e.Y); ok && c >= 0 && c < 32 {
					return 1 << c, obj
				}
			}
		}
	}
	return 0, nil
}

// rootIdentObj returns the object of the leftmost identifier of e:
// `buf` for buf, sp.deltas, state.buf[3].
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// insideNode reports whether pos lies within n's source range.
func insideNode(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}
