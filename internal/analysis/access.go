package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The access scanner walks one CFG node and reports every shared-memory
// read and write it performs, tagged with the lockset held at the node.
// It looks through summarized calls: a callee's exported accesses are
// rebased onto the arguments at the call site (locParam i onto the
// expression bound to parameter i, locRecv onto the method receiver),
// so a write hidden two helpers deep still surfaces at the spawn that
// makes it concurrent.

// pointerLikeType reports whether values of t share underlying storage
// when copied — the aliasing question behind rebasing literal
// parameters and call arguments.
func pointerLikeType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// accessSink receives one resolved access. locks is the sorted lockset
// held at the access (already merged with any callee-internal locks for
// translated accesses).
type accessSink func(res resolved, write, concurrent bool, locks []heldLock, pos token.Pos)

// accessScanner scans CFG nodes of one frame.
type accessScanner struct {
	info     *types.Info
	sums     *Summaries
	r        *locResolver
	funcName string
	pkgPath  string
	sink     accessSink
}

// scanNode dispatches on the statement / expression forms a CFG block
// node can take (cfg.go): whole simple statements, the head of a range
// statement (key/value/X only — the body has its own blocks), and bare
// condition expressions. Defer bodies are skipped (their unlock
// semantics are the lock flow's business; their other effects at exit
// are a documented gap), and goroutine bodies are the spawn layer's.
func (s *accessScanner) scanNode(node ast.Node, held lockSet) {
	locks := locksOf(held)
	switch n := node.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			s.scanExpr(rhs, locks)
		}
		for _, lhs := range n.Lhs {
			s.scanWrite(lhs, locks)
		}
	case *ast.IncDecStmt:
		s.scanExpr(n.X, locks)
		s.scanWrite(n.X, locks)
	case *ast.SendStmt:
		s.scanExpr(n.Chan, locks)
		s.scanExpr(n.Value, locks)
	case *ast.RangeStmt:
		s.scanExpr(n.X, locks)
		if n.Key != nil {
			s.scanWrite(n.Key, locks)
		}
		if n.Value != nil {
			s.scanWrite(n.Value, locks)
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.scanExpr(v, locks)
					}
					for _, name := range vs.Names {
						s.scanWrite(name, locks)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			s.scanExpr(e, locks)
		}
	case *ast.DeferStmt:
		// skipped: runs at exit; unlocks handled by the lock flow
	case *ast.GoStmt:
		// The parent evaluates the call's function and arguments; the
		// body's accesses belong to the spawned thread.
		for _, a := range n.Call.Args {
			s.scanExpr(a, locks)
		}
	case *ast.ExprStmt:
		s.scanExpr(n.X, locks)
	case *ast.LabeledStmt:
		s.scanNode(n.Stmt, held)
	case *ast.BranchStmt, *ast.EmptyStmt:
	default:
		if e, ok := node.(ast.Expr); ok {
			s.scanExpr(e, locks)
		}
	}
}

// scanWrite records a write through an lvalue. The blank identifier and
// unresolvable targets record nothing; index expressions inside the
// lvalue are reads.
func (s *accessScanner) scanWrite(lhs ast.Expr, locks []heldLock) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	s.scanInnerReads(lhs, locks)
	if res := s.r.resolve(lhs); res.ok {
		s.sink(res, true, false, locks, lhs.Pos())
	}
}

// scanInnerReads emits the reads embedded in an lvalue: every index
// expression, and the base of a map/slice store is left alone (writing
// s[i] does not conflict with reading the header s).
func (s *accessScanner) scanInnerReads(lhs ast.Expr, locks []heldLock) {
	for {
		lhs = ast.Unparen(lhs)
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.IndexExpr:
			s.scanExpr(e.Index, locks)
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

// scanExpr records the reads of one expression tree.
func (s *accessScanner) scanExpr(e ast.Expr, locks []heldLock) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		if res := s.r.resolve(e); res.ok {
			s.sink(res, false, false, locks, e.Pos())
			s.scanInnerReads(e, locks)
			return
		}
		// Unrooted: fall back to the children.
		switch e := e.(type) {
		case *ast.SelectorExpr:
			s.scanExpr(e.X, locks)
		case *ast.IndexExpr:
			s.scanExpr(e.X, locks)
			s.scanExpr(e.Index, locks)
		case *ast.StarExpr:
			s.scanExpr(e.X, locks)
		}
	case *ast.ParenExpr:
		s.scanExpr(e.X, locks)
	case *ast.UnaryExpr:
		// &x is a read of x for pairing purposes: handing out the
		// address lets someone else write it, which the callee
		// translation covers when a summary exists.
		s.scanExpr(e.X, locks)
	case *ast.BinaryExpr:
		s.scanExpr(e.X, locks)
		s.scanExpr(e.Y, locks)
	case *ast.CallExpr:
		s.scanCall(e, locks)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			s.scanExpr(elt, locks)
		}
	case *ast.KeyValueExpr:
		s.scanExpr(e.Key, locks)
		s.scanExpr(e.Value, locks)
	case *ast.SliceExpr:
		s.scanExpr(e.X, locks)
		s.scanExpr(e.Low, locks)
		s.scanExpr(e.High, locks)
		s.scanExpr(e.Max, locks)
	case *ast.TypeAssertExpr:
		s.scanExpr(e.X, locks)
	case *ast.FuncLit:
		// A closure's body runs at another time; spawns are handled by
		// the goroutine layer, other literals are invisible (documented
		// incompleteness for func values).
	}
}

// scanCall handles one call: builtin write/read semantics, sync
// primitive receivers (lock/WaitGroup traffic is not memory access),
// argument reads, and the rebasing of the callee summary's accesses.
func (s *accessScanner) scanCall(call *ast.CallExpr, locks []heldLock) {
	if tv, ok := s.info.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			s.scanExpr(a, locks)
		}
		return
	}
	fun := ast.Unparen(call.Fun)
	if _, isLit := fun.(*ast.FuncLit); isLit {
		for _, a := range call.Args {
			s.scanExpr(a, locks)
		}
		return // IIFE interior is a documented gap
	}
	if id, ok := fun.(*ast.Ident); ok {
		if _, builtin := s.info.Uses[id].(*types.Builtin); builtin {
			switch id.Name {
			case "append", "delete", "clear":
				if len(call.Args) > 0 {
					s.builtinElemWrite(call.Args[0], locks)
					for _, a := range call.Args[1:] {
						s.scanExpr(a, locks)
					}
				}
			case "copy":
				if len(call.Args) == 2 {
					s.builtinElemWrite(call.Args[0], locks)
					s.builtinElemRead(call.Args[1], locks)
				}
			case "len", "cap":
				// Pure header inspection: no element access, and the
				// header read itself cannot race with element writes.
				return
			default:
				// close/len/cap/panic/…: reads only. close-as-read
				// matters: the parent's close(work) must not pair as a
				// write against a worker's range over work.
				for _, a := range call.Args {
					s.scanExpr(a, locks)
				}
			}
			return
		}
	}
	if op, _ := classifyLockCall(s.info, call); op != opNone {
		return // lock traffic is the lock flow's domain
	}
	if _, _, ok := wgMethodCall(s.info, call, "Add"); ok {
		return
	}
	if _, _, ok := wgMethodCall(s.info, call, "Done"); ok {
		return
	}
	if _, _, ok := wgMethodCall(s.info, call, "Wait"); ok {
		return
	}
	// Receiver and func-value reads.
	switch f := fun.(type) {
	case *ast.Ident:
		if _, isVar := s.info.Uses[f].(*types.Var); isVar {
			s.scanExpr(f, locks) // calling through a func value reads it
		}
	case *ast.SelectorExpr:
		s.scanExpr(f.X, locks)
	}
	for _, a := range call.Args {
		s.scanExpr(a, locks)
	}
	// Callee translation: rebase the summary's exported accesses onto
	// this call's arguments and receiver.
	cs := s.sums.CalleeSummaryDevirt(s.info, call)
	if cs == nil || len(cs.Accesses) == 0 {
		return
	}
	var recvExpr ast.Expr
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		recvExpr = sel.X
	}
	for _, acc := range cs.Accesses {
		for _, res := range s.rebase(cs, acc.Loc, call, recvExpr) {
			merged := s.translateLocks(cs, acc.Locks, call, recvExpr)
			merged = append(merged, locks...)
			s.sink(res, acc.Write, acc.Concurrent, merged, call.Pos())
		}
	}
}

// builtinElemWrite records a write to the elements of the builtin's
// destination argument: the colliding map step "{}" for map targets
// (delete, clear), the unknown slot "[*]" otherwise.
func (s *accessScanner) builtinElemWrite(arg ast.Expr, locks []heldLock) {
	if res := s.r.resolve(arg); res.ok {
		comp := s.elemComponent(arg)
		res.loc.Path += comp
		res.loc.Name += comp
		res.crossed = true
		s.sink(res, true, false, locks, arg.Pos())
		return
	}
	s.scanExpr(arg, locks)
}

func (s *accessScanner) builtinElemRead(arg ast.Expr, locks []heldLock) {
	if res := s.r.resolve(arg); res.ok {
		comp := s.elemComponent(arg)
		res.loc.Path += comp
		res.loc.Name += comp
		res.crossed = true
		s.sink(res, false, false, locks, arg.Pos())
		return
	}
	s.scanExpr(arg, locks)
}

func (s *accessScanner) elemComponent(arg ast.Expr) string {
	if t := s.info.TypeOf(arg); t != nil {
		if _, isMap := t.Underlying().(*types.Map); isMap {
			return "{}"
		}
	}
	return "[*]"
}

// rebase maps one callee-relative location onto the caller's frame at a
// call site. A locParam location maps through every argument bound to
// that parameter (the variadic fold can bind several); locRecv maps
// through the receiver; globals pass through unchanged. Unresolvable
// bindings drop the access (the argument was an expression the caller
// itself cannot name — a fresh composite, a call result).
func (s *accessScanner) rebase(cs *Summary, loc AbsLoc, call *ast.CallExpr, recvExpr ast.Expr) []resolved {
	switch loc.Kind {
	case locGlobal, locOpaque:
		return []resolved{{loc: loc, crossed: true, ok: true}}
	case locRecv:
		if recvExpr == nil {
			return nil
		}
		if res, ok := s.bindArg(recvExpr, loc.Path); ok {
			res.loc.Path += loc.Path
			res.loc.Name += loc.Path
			return []resolved{res}
		}
		return nil
	case locParam:
		var out []resolved
		for ai, arg := range call.Args {
			if cs.ParamIndex(ai) != loc.Param {
				continue
			}
			if res, ok := s.bindArg(arg, loc.Path); ok {
				res.loc.Path += loc.Path
				res.loc.Name += loc.Path
				out = append(out, res)
			}
		}
		return out
	}
	return nil
}

// bindArg resolves one call argument (or method receiver) and computes
// whether the callee's access, rebased through that binding, lands in
// memory beyond the caller root's own inline storage. Three cases:
//
//   - &x, or an addressable value used as a pointer-method receiver:
//     the callee's pointer aims AT the caller's variable, so the access
//     stays inline unless the callee path itself crosses an interior
//     pointer — `cfg.normalize()` writing the copy's fields is private
//     to the frame that owns cfg, and is not exported further up.
//   - a pointer-typed expression: the pointee is already somewhere
//     else — crossed.
//   - a slice/map/chan/interface value: the header is a private copy
//     but any nonempty callee path reaches the shared backing store —
//     crossed.
func (s *accessScanner) bindArg(arg ast.Expr, calleePath string) (resolved, bool) {
	a := ast.Unparen(arg)
	if ue, ok := a.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		res := s.r.resolve(ue.X)
		if !res.ok {
			return resolved{}, false
		}
		res.crossed = res.crossed || pathInterior(calleePath)
		return res, true
	}
	res := s.r.resolve(a)
	if !res.ok {
		return resolved{}, false
	}
	t := s.info.TypeOf(a)
	switch {
	case t == nil:
		res.crossed = true
	case isPointerType(t):
		res.crossed = true
	case pointerLikeType(t) && calleePath != "":
		res.crossed = true
	default:
		res.crossed = res.crossed || pathInterior(calleePath)
	}
	return res, true
}

func isPointerType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// pathInterior reports whether a callee-relative access path crosses a
// pointer boundary beyond the binding itself: any indexing (slice or
// map), or a deref past the leading one. Field selections stay inside
// the bound storage.
func pathInterior(path string) bool {
	p := strings.TrimPrefix(path, "/*")
	return strings.Contains(p, "[") || strings.Contains(p, "{") || strings.Contains(p, "/*")
}

// translateLocks rebases a callee lockset onto the call site. Locks the
// caller cannot name (callee locals, unresolvable param bindings) keep
// their callee-relative identity: they still distinguish "guarded by
// something" from "guarded by nothing", which is what disjointness
// needs.
func (s *accessScanner) translateLocks(cs *Summary, locks []heldLock, call *ast.CallExpr, recvExpr ast.Expr) []heldLock {
	if len(locks) == 0 {
		return nil
	}
	out := make([]heldLock, 0, len(locks))
	for _, l := range locks {
		switch l.Loc.Kind {
		case locParam, locRecv:
			if rs := s.rebase(cs, l.Loc, call, recvExpr); len(rs) > 0 {
				for _, r := range rs {
					out = append(out, heldLock{Loc: r.loc, Class: l.Class, Name: r.loc.Name, Pos: l.Pos})
				}
				continue
			}
			out = append(out, l)
		default:
			out = append(out, l)
		}
	}
	return out
}
