package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file computes the purity lattice point of every summarized
// function. The ranking kernels' correctness argument — a local sweep
// may stand in for the global iteration only when per-node score
// evaluations are freely schedulable — rests on the sweeps being
// reorderable, which the comments used to assert ("pure slice
// arithmetic") and the summaries now prove.
//
// The lattice has three points, ordered Pure ⊏ Output ⊏ Impure:
//
//	Pure    no observable side effect at all: no writes outside the
//	        function's own frame and freshly-allocated memory, no
//	        channel operations, no goroutines, no I/O, only pure
//	        callees. Calling it twice with the same arguments is
//	        indistinguishable from calling it once.
//	Output  side effects confined to memory reachable from the
//	        function's own parameters or receiver — the output-buffer
//	        shape of every kernel sweep (`next[v] = …` through a slice
//	        parameter). Two calls writing DISJOINT ranges commute; this
//	        is exactly the schedulability the parallel sweeps rely on.
//	Impure  anything else: package-level writes, channel operations,
//	        goroutine spawns, locks, panics, I/O, calls to unknown
//	        code.
//
// Purity is a may-analysis computed with the same within-SCC fixpoint
// as the other summary facts: every function starts at the optimistic
// bottom (Pure) and monotonically ascends as its body and the current
// summaries of its callees are examined, so a recursive pair of pure
// helpers converges at Pure instead of poisoning each other. At
// interface call sites the candidate edges (callgraph.go) supply the
// join of every known implementation; a dynamic call with no candidates
// goes straight to Impure.

// Purity is a point on the purity lattice.
type Purity uint8

const (
	// PurityPure: no observable side effects.
	PurityPure Purity = iota
	// PurityOutput: writes confined to parameter-reachable memory.
	PurityOutput
	// PurityImpure: unconstrained effects.
	PurityImpure
)

// String renders the lattice point as it appears in -callgraph=dot.
func (p Purity) String() string {
	switch p {
	case PurityPure:
		return "pure"
	case PurityOutput:
		return "out-writes"
	default:
		return "impure"
	}
}

// purePackages whitelists out-of-module packages whose exported
// functions are side-effect free (value in, value out). Allocation is
// tracked separately by Summary.Allocates, so allocating-but-pure
// helpers still qualify.
var purePackages = map[string]bool{
	"math":      true,
	"math/bits": true,
}

// pureExternal reports whether an out-of-module callee is whitelisted
// as side-effect free.
func pureExternal(fn *types.Func) bool {
	pkg := fn.Pkg()
	return pkg != nil && purePackages[pkg.Path()]
}

// isPackageLevelVar reports whether obj is a package-scoped variable —
// the one kind of storage a write to which is observable by everyone.
func isPackageLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	pkg := v.Pkg()
	return pkg != nil && v.Parent() == pkg.Scope()
}

// writeRoot walks an assignment target down to the identifier whose
// storage (or reachable memory) the write lands in, reporting whether
// the write stays within the base's OWN storage: v.f.g = x writes v's
// own bytes, while v.p.f = x (p a pointer field), v[i] = x (v a slice)
// or *v = x land in memory merely reachable from v. Value-array
// indexing stays in storage; slice and map indexing leave it.
func writeRoot(info *types.Info, expr ast.Expr) (base *ast.Ident, inStorage bool) {
	inStorage = true
	for {
		expr = ast.Unparen(expr)
		switch e := expr.(type) {
		case *ast.Ident:
			return e, inStorage
		case *ast.SelectorExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, ptr := t.Underlying().(*types.Pointer); ptr {
					inStorage = false
				}
			}
			expr = e.X
		case *ast.IndexExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, arr := t.Underlying().(*types.Array); !arr {
					inStorage = false
				}
			}
			expr = e.X
		case *ast.StarExpr:
			inStorage = false
			expr = e.X
		default:
			return nil, false
		}
	}
}

// locallyOwned computes the local variables of fd whose memory the
// function itself created: every value the variable is ever assigned is
// a fresh allocation (make, new, a composite literal, or an append to
// the variable itself), and the variable's address is never taken.
// Writes through such a variable are invisible to the caller and keep
// the function pure — PartitionByEdges filling a bounds slice it just
// made is Pure (and separately Allocates), not Output.
func locallyOwned(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	disqualified := make(map[types.Object]bool)
	lookup := func(id *ast.Ident) types.Object {
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	disqualify := func(obj types.Object) {
		if obj != nil {
			disqualified[obj] = true
			delete(owned, obj)
		}
	}
	// owningRHS reports whether e evaluates to memory fresh at this
	// assignment: nothing the caller can alias.
	owningRHS := func(obj types.Object, e ast.Expr) bool {
		e = ast.Unparen(e)
		switch e := e.(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
				return lit
			}
		case *ast.CallExpr:
			id, ok := e.Fun.(*ast.Ident)
			if !ok {
				return false
			}
			if _, builtin := info.Uses[id].(*types.Builtin); !builtin {
				return false
			}
			switch id.Name {
			case "make", "new":
				return true
			case "append":
				// append(x, …) assigned back to x keeps x owned.
				if len(e.Args) > 0 {
					if aid, ok := ast.Unparen(e.Args[0]).(*ast.Ident); ok {
						return lookup(aid) == obj
					}
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value assignment from one call: provenance
				// unknown, nothing on the left stays owned.
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						disqualify(lookup(id))
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := lookup(id)
				if obj == nil {
					continue
				}
				if owningRHS(obj, n.Rhs[i]) {
					if !disqualified[obj] {
						owned[obj] = true
					}
				} else {
					disqualify(obj)
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				obj := info.Defs[id]
				if obj == nil || id.Name == "_" {
					continue
				}
				if i < len(n.Values) && !owningRHS(obj, n.Values[i]) {
					disqualify(obj)
				} else if i < len(n.Values) && !disqualified[obj] {
					owned[obj] = true
				}
				// A bare `var x []T` owns its (nil) zero value; a later
				// append decides whether it stays owned.
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				// &x hands out a pointer that could later smuggle
				// foreign memory into x; conservative disqualify.
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					disqualify(lookup(id))
				}
			}
		}
		return true
	})
	return owned
}

// summarizePurity classifies n on the purity lattice from its body and
// the current summaries of its callees, ascending s.Purity and the
// per-parameter write sets monotonically (the fixpoint driver in
// ComputeSummaries re-runs it until nothing changes).
func summarizePurity(sums *Summaries, n *CGNode, s *Summary) {
	if s.Purity == PurityImpure {
		return // already at top
	}
	info := n.Pkg.Info
	sig := n.Func.Type().(*types.Signature)
	body := n.Decl.Body

	paramOf := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		paramOf[sig.Params().At(i)] = i
	}
	var recvObj types.Object
	if r := sig.Recv(); r != nil {
		recvObj = r
	}
	owned := locallyOwned(info, body)

	lookup := func(id *ast.Ident) types.Object {
		if obj := info.Uses[id]; obj != nil {
			return obj
		}
		return info.Defs[id]
	}
	raise := func(p Purity, cause string) {
		if p > s.Purity {
			s.Purity = p
			s.PurityCause = cause
		}
	}

	// classifyReach records a write landing in memory reachable from
	// base: fresh local memory is silent, parameters and the receiver
	// ascend to Output and set the per-parameter write bit, globals go
	// to Impure, and aliases of unknown provenance ascend to Output
	// with the escape bit (callers can't attribute the write to any
	// argument they passed).
	classifyReach := func(base *ast.Ident, cause string) {
		if base == nil {
			s.WritesEscaped = true
			raise(PurityOutput, cause)
			return
		}
		obj := lookup(base)
		switch {
		case obj == nil:
			s.WritesEscaped = true
			raise(PurityOutput, cause)
		case isPackageLevelVar(obj):
			raise(PurityImpure, cause+" (package-level "+base.Name+")")
		case owned[obj]:
			// function-created memory: invisible to the caller
		case obj == recvObj:
			s.WritesRecv = true
			raise(PurityOutput, cause)
		default:
			if i, isP := paramOf[obj]; isP {
				if i < len(s.WritesParams) {
					s.WritesParams[i] = true
				}
				raise(PurityOutput, cause)
				return
			}
			s.WritesEscaped = true
			raise(PurityOutput, cause)
		}
	}

	// classifyTarget handles an assignment or ++/-- target.
	classifyTarget := func(expr ast.Expr) {
		expr = ast.Unparen(expr)
		if id, ok := expr.(*ast.Ident); ok {
			if id.Name == "_" {
				return
			}
			if obj := lookup(id); obj != nil && isPackageLevelVar(obj) {
				raise(PurityImpure, "writes package-level variable "+id.Name)
			}
			return // plain local (or named result) assignment
		}
		base, inStorage := writeRoot(info, expr)
		if base != nil {
			if obj := lookup(base); obj != nil && isPackageLevelVar(obj) {
				raise(PurityImpure, "writes through package-level "+base.Name)
				return
			}
			if inStorage {
				// The write lands in a local's (or a value parameter
				// copy's) own storage — a frame-local effect.
				return
			}
		}
		classifyReach(base, "writes through "+types.ExprString(expr))
	}

	// classifyAlias handles memory written THROUGH an expression the
	// function hands to someone else: the first argument of append /
	// copy / delete / clear, or an argument bound to a callee parameter
	// the callee writes through. Passing a value type hands over a
	// copy, which the callee may scribble on freely.
	pointerLike := func(t types.Type) bool {
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
			return true
		}
		return false
	}
	classifyAlias := func(expr ast.Expr, cause string) {
		expr = ast.Unparen(expr)
		if u, ok := expr.(*ast.UnaryExpr); ok && u.Op == token.AND {
			// &x: the callee writes x's storage. A local's storage is
			// frame-local; classifyReach sorts out params and globals.
			if id, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				obj := lookup(id)
				switch {
				case obj == nil:
					s.WritesEscaped = true
					raise(PurityOutput, cause)
				case isPackageLevelVar(obj):
					raise(PurityImpure, cause+" (package-level "+id.Name+")")
				case obj == recvObj:
					s.WritesRecv = true
					raise(PurityOutput, cause)
				default:
					if i, isP := paramOf[obj]; isP {
						if i < len(s.WritesParams) {
							s.WritesParams[i] = true
						}
						raise(PurityOutput, cause)
					}
					// else: a local's own storage — frame-local.
				}
				return
			}
			expr = u.X
		}
		if t := info.TypeOf(expr); t != nil && !pointerLike(t) {
			return // passed by value: the callee writes a copy
		}
		base, _ := writeRoot(info, expr)
		classifyReach(base, cause)
	}

	// applyCallee folds a callee summary (static, or the join of the
	// interface candidates) into this function at one call site.
	applyCallee := func(cs *Summary, call *ast.CallExpr, name string) {
		if cs.Purity == PurityImpure {
			cause := "calls impure " + name
			if cs.PurityCause != "" {
				cause += " [" + cs.PurityCause + "]"
			}
			raise(PurityImpure, cause)
			return
		}
		for ai, arg := range call.Args {
			pi := cs.ParamIndex(ai)
			if pi < 0 || pi >= len(cs.WritesParams) || !cs.WritesParams[pi] {
				continue
			}
			classifyAlias(arg, "passes memory "+name+" writes through")
		}
		if cs.WritesRecv {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				classifyAlias(sel.X, "passes receiver "+name+" writes through")
			} else {
				s.WritesEscaped = true
				raise(PurityOutput, "calls "+name+" which writes its receiver")
			}
		}
		if cs.WritesEscaped {
			s.WritesEscaped = true
			raise(PurityOutput, "calls "+name+" which writes unattributed memory")
		}
	}

	handleCall := func(call *ast.CallExpr) {
		fun := ast.Unparen(call.Fun)
		if _, isLit := fun.(*ast.FuncLit); isLit {
			return // immediately-invoked literal: its body is scanned here anyway
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, builtin := info.Uses[id].(*types.Builtin); builtin {
				switch id.Name {
				case "append", "copy", "delete", "clear":
					if len(call.Args) > 0 {
						classifyAlias(call.Args[0], id.Name+" writes through "+types.ExprString(call.Args[0]))
					}
				case "close":
					raise(PurityImpure, "closes a channel")
				case "panic":
					raise(PurityImpure, "panics")
				case "print", "println", "recover":
					raise(PurityImpure, "calls "+id.Name)
				}
				return
			}
		}
		if callee := StaticCallee(info, call); callee != nil {
			if cs := sums.Of(callee); cs != nil {
				applyCallee(cs, call, callee.Name())
				return
			}
			if pureExternal(callee) {
				return
			}
			raise(PurityImpure, "calls out-of-module "+callee.FullName())
			return
		}
		if cands := sums.Graph.CandidatesOf(info, call); len(cands) > 0 {
			for _, c := range cands {
				if cs := sums.byFunc[c.Func]; cs != nil {
					applyCallee(cs, call, c.String())
				}
			}
			return
		}
		raise(PurityImpure, "dynamic call to "+types.ExprString(call.Fun)+" with no known implementations")
	}

	ast.Inspect(body, func(m ast.Node) bool {
		if s.Purity == PurityImpure {
			return false
		}
		switch m := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range m.Lhs {
				classifyTarget(lhs)
			}
		case *ast.IncDecStmt:
			classifyTarget(m.X)
		case *ast.SendStmt:
			raise(PurityImpure, "sends on a channel")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				raise(PurityImpure, "receives from a channel")
			}
		case *ast.SelectStmt:
			raise(PurityImpure, "selects on channels")
		case *ast.GoStmt:
			raise(PurityImpure, "spawns a goroutine")
		case *ast.RangeStmt:
			if t := info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					raise(PurityImpure, "ranges over a channel")
				}
			}
		case *ast.CallExpr:
			handleCall(m)
		}
		return true
	})
}
