// Package analysis is a small static-analysis framework built only on
// the standard library's go/parser, go/ast, go/types and go/token. It
// loads every package in the module (loader.go) and runs a suite of
// repo-specific checkers that turn this repository's numeric and
// concurrency conventions into machine-checked invariants:
//
//   - floatcmp:   no ==/!= on float operands (exact-zero checks exempt)
//   - gocapture:  goroutines must not write captured variables without
//     a sync primitive or the worker-indexed slot pattern
//   - normreturn: exported score producers must normalize their output
//   - tolerances: tolerance/epsilon literals must come from internal/numeric
//   - panicfree:  no bare panic in library packages
//
// A second generation of checkers is flow-sensitive: each function body
// is compiled to a control-flow graph (cfg.go) and analyzed with a
// forward worklist solver (dataflow.go):
//
//   - errflow:     a returned error must be checked or explicitly
//     discarded on every path
//   - lockbalance: every Lock reaches an Unlock or defer Unlock on all
//     paths (RWMutex aware)
//   - maprange:    map iteration order must not reach an exported score
//     producer's return value unsorted
//   - hotalloc:    no allocations or append growth inside the
//     power-iteration loops of the ranking engines
//
// The third generation is interprocedural: Run builds a module-wide
// call graph (callgraph.go) and computes per-function effect summaries
// bottom-up over its strongly connected components (summary.go), so
// checkers see through helpers. errflow, maprange and hotalloc consume
// the summaries to flag violations a callee hides, and three
// concurrency checkers target the parallel and distributed engines:
//
//   - wgbalance: every wg.Add is matched by a Done guaranteed on all
//     paths of the spawned function, including via callees
//   - chanleak:  no goroutine left blocked forever on a channel that no
//     live path closes or drains
//   - ctxflow:   a ctx-accepting function forwards its ctx to every
//     ctx-accepting callee and spawns no cancellation-blind goroutines
//
// The fifth generation is the concurrency-safety layer: a lockset
// dataflow (gen at Lock, kill at Unlock, intersection at joins, defer
// Unlock held to exit) runs over every function's CFG, and the
// summaries export each function's shared-state accesses — package
// vars, pointer-crossing parameter/receiver paths, goroutine-captured
// locals — tagged with the lockset held (lockset.go, lockfacts.go):
//
//   - racecheck: accesses to the same location from concurrently-live
//     goroutines must share a lock or be joined (wg.Wait, completion
//     channel) before the conflicting access
//   - lockorder: the module-wide lock-acquisition-order graph must be
//     acyclic — no double-lock, no ABBA
//
// The sixth generation is the performance layer: a static cost model
// (cost.go) assigns every function a point in a cost lattice —
// loop-nesting depth with trip classes, plus weighted allocation,
// dynamic-dispatch and goroutine-spawn sites — propagated bottom-up
// through the devirtualized call graph. It powers the driver's
// -report=cost mode, annotates the -callgraph=dot labels, and feeds
// two parallel-performance checkers:
//
//   - spawnloop:  no goroutine spawn + WaitGroup join per iteration of
//     a high-trip loop — hoist the workers into a persistent
//     round-barriered pool
//   - falseshare: sibling goroutines must not write adjacent elements
//     of one backing array — pad per-worker slots to a cache line
//
// A finding can be suppressed with a sentinel comment on the offending
// line or the line above:
//
//	//arlint:allow <checker> [reason...]
//
// The cmd/arlint driver runs the suite from the command line, and
// self_test.go runs it over the whole repository under `go test`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Checker string
	Message string
	// Fix optionally carries a mechanical edit that resolves the
	// finding; the driver applies it under -fix.
	Fix *SuggestedFix
}

// SuggestedFix is a mechanical resolution of a finding: a set of
// non-overlapping text edits within one file.
type SuggestedFix struct {
	// Message describes the edit ("insert sorted key iteration").
	Message string
	// Edits are applied together; all positions refer to the pass's
	// FileSet and must lie in a single file.
	Edits []TextEdit
	// NeedImport optionally names an import path the file must import
	// after the edit (e.g. "sort"); the applier inserts it if missing.
	NeedImport string
}

// TextEdit replaces the half-open source range [Pos, End) with NewText.
// An insertion has Pos == End.
type TextEdit struct {
	Pos, End token.Pos
	NewText  string
}

// String formats the diagnostic in the canonical driver format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Checker, d.Message)
}

// Analyzer is one checker in the suite.
type Analyzer struct {
	// Name is the checker identifier used in diagnostics and in
	// //arlint:allow sentinels.
	Name string
	// Doc is a one-line description (shown by `arlint -list`).
	Doc string
	// LibraryOnly restricts the checker to non-main packages: commands
	// and examples are exempt.
	LibraryOnly bool
	// CanFix marks checkers that attach SuggestedFixes to (some of)
	// their findings, applied by the driver under -fix.
	CanFix bool
	// Run reports findings for one package through pass.Reportf.
	Run func(*Pass)
}

// All is the full checker suite in the order diagnostics are grouped.
var All = []*Analyzer{
	FloatCmp, GoCapture, NormReturn, Tolerances, PanicFree,
	ErrFlow, LockBalance, MapRange, HotAlloc,
	WgBalance, ChanLeak, CtxFlow, HotPure,
	RaceCheck, LockOrder,
	SpawnLoop, FalseShare,
}

// Pass carries one analyzed package to one checker, together with the
// module-wide interprocedural facts shared by every pass of one Run:
// the call graph and the per-function effect summaries.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Graph is the static call graph over every loaded package.
	Graph *CallGraph
	// Summaries holds the bottom-up effect summaries; checkers query
	// them through Summaries.CalleeSummary at call sites. Nil-safe: a
	// Pass constructed without summaries (unit tests driving a single
	// checker) degrades to intraprocedural behavior.
	Summaries *Summaries

	diags *[]Diagnostic
}

// Reportf records a finding at pos unless an //arlint:allow sentinel for
// this checker covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Checker: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportfFix is Reportf with a suggested mechanical fix attached.
func (p *Pass) ReportfFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Checker: p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	})
}

// Run executes the given checkers over the given packages and returns
// the findings sorted by file, line, column, then checker name. The
// call graph and summaries are computed once, before any checker runs,
// so every pass sees the same converged interprocedural facts.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	graph := BuildCallGraph(pkgs)
	sums := ComputeSummaries(graph)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.LibraryOnly && pkg.Name == "main" {
				continue
			}
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Graph: graph, Summaries: sums, diags: &diags})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Checker < b.Checker
	})
	return diags
}

// allowSentinel is the prefix of suppression comments:
//
//	//arlint:allow checker1,checker2 optional free-form reason
const allowSentinel = "arlint:allow"

// buildAllows scans a file's comments for sentinels and returns, per
// line, the set of checkers allowed on that line. A sentinel covers its
// own line (trailing comment) and the line below it (comment above the
// statement).
func buildAllows(fset *token.FileSet, file *ast.File) map[int][]string {
	allows := make(map[int][]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowSentinel) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowSentinel))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, name := range strings.Split(fields[0], ",") {
				if name = strings.TrimSpace(name); name != "" {
					allows[line] = append(allows[line], name)
					allows[line+1] = append(allows[line+1], name)
				}
			}
		}
	}
	return allows
}
