package analysis

import (
	"testing"
)

// TestRepositoryInvariants is the meta-test: it loads every package in
// this module and runs the full checker suite, so `go test ./...`
// enforces the repository's numeric, concurrency and API invariants on
// every change. A failure here means either real code regressed or a
// new finding needs fixing (or, rarely, a documented //arlint:allow
// sentinel).
// TestSuiteComplete pins the size of the checker suite: a checker
// accidentally dropped from All would silently stop being enforced by
// the meta-test and the driver alike.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"floatcmp", "gocapture", "normreturn", "tolerances", "panicfree",
		"errflow", "lockbalance", "maprange", "hotalloc",
		"wgbalance", "chanleak", "ctxflow", "hotpure",
		"racecheck", "lockorder",
		"spawnloop", "falseshare",
	}
	if len(All) != len(want) {
		t.Fatalf("len(All) = %d, want %d", len(All), len(want))
	}
	for i, a := range All {
		if a.Name != want[i] {
			t.Errorf("All[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}

func TestRepositoryInvariants(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().LoadModule(root)
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from %s; the loader is missing most of the module", len(pkgs), root)
	}
	diags := Run(pkgs, All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d finding(s); fix them or add a //arlint:allow sentinel with a reason", len(diags))
	}
}
